#ifndef AGGRECOL_NUMFMT_PARSE_DOUBLE_H_
#define AGGRECOL_NUMFMT_PARSE_DOUBLE_H_

#include <charconv>
#include <optional>
#include <string_view>

namespace aggrecol::numfmt {

/// The project's single sanctioned double parser (lint rule L1).
///
/// Everything that turns canonical decimal text into a double goes through
/// here: the Table 4 number-format normalizer, annotation files, CLI options,
/// and the metrics JSON reader. std::from_chars always parses with the '.'
/// radix point, so a comma-decimal global locale (de_DE et al.) cannot
/// silently truncate "12.5" to 12 the way std::strtod/std::stod do.
///
/// Semantics: optional surrounding ASCII whitespace and an optional leading
/// '+' are accepted (std::strtod compatibility for CLI inputs); the remaining
/// text must parse completely as a decimal or scientific-notation double, or
/// std::nullopt is returned.
inline std::optional<double> ParseDouble(std::string_view text) {
  constexpr auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  if (text.size() >= 2 && text.front() == '+' &&
      (text[1] == '.' || (text[1] >= '0' && text[1] <= '9'))) {
    text.remove_prefix(1);
  }
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

}  // namespace aggrecol::numfmt

#endif  // AGGRECOL_NUMFMT_PARSE_DOUBLE_H_
