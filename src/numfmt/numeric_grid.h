#ifndef AGGRECOL_NUMFMT_NUMERIC_GRID_H_
#define AGGRECOL_NUMFMT_NUMERIC_GRID_H_

#include <string_view>
#include <vector>

#include "csv/grid.h"
#include "numfmt/number_format.h"

namespace aggrecol::numfmt {

/// Interpretation of a single cell after number-format normalization.
enum class CellKind {
  kNumeric,     // an explicit number; may act as aggregate or range element
  kEmptyZero,   // empty cell, interpreted as the number zero (Sec. 2.1)
  kZeroMarker,  // textual zero marker such as 'x' or '-' (Sec. 4.1)
  kText,        // non-numeric content: header, metadata, notes, ...
};

/// Options controlling the normalization of cells into numbers.
struct NormalizeOptions {
  /// Interpret empty cells as the numeric value zero (paper Sec. 2.1:
  /// "users often express the numeric value zero with an empty table cell").
  bool treat_empty_as_zero = true;

  /// Recognize textual zero markers ('x', '-', ...) as zero (Sec. 4.1).
  bool recognize_zero_markers = true;

  /// Extract numbers from decorated cells such as "+1.4 Points" (Sec. 4.1).
  bool lenient_extraction = true;
};

/// A numeric view of a Grid: every cell carries its CellKind and, for numeric
/// and zero-like kinds, its normalized double value. This is the input to all
/// aggregation detectors.
class NumericGrid {
 public:
  /// Normalizes `grid`, electing the number format per Sec. 4.2.
  static NumericGrid FromGrid(const csv::Grid& grid,
                              const NormalizeOptions& options = {});

  /// Normalizes `grid` under a caller-chosen format.
  static NumericGrid FromGrid(const csv::Grid& grid, NumberFormat format,
                              const NormalizeOptions& options = {});

  int rows() const { return rows_; }
  int columns() const { return columns_; }

  CellKind kind(int row, int col) const { return kinds_[Index(row, col)]; }
  double value(int row, int col) const { return values_[Index(row, col)]; }

  /// True for explicit numbers: the only cells allowed as aggregates, and the
  /// cells counted by the sufficiency score denominator (Sec. 3.1).
  bool IsNumeric(int row, int col) const {
    return kind(row, col) == CellKind::kNumeric;
  }

  /// True for cells that carry a numeric value when used inside a range:
  /// explicit numbers plus empty/marker zeros.
  bool IsRangeUsable(int row, int col) const {
    const CellKind k = kind(row, col);
    return k == CellKind::kNumeric || k == CellKind::kEmptyZero ||
           k == CellKind::kZeroMarker;
  }

  /// Number of explicit numeric cells in column `col`.
  int NumericCountInColumn(int col) const;

  /// Number of explicit numeric cells in row `row`.
  int NumericCountInRow(int row) const;

  /// The elected (or supplied) number format of the underlying file.
  NumberFormat format() const { return format_; }

  /// Returns a deep-copied transposed grid: rows become columns. The
  /// detection pipeline no longer uses this — column-wise detection runs on
  /// the zero-copy AxisView::Columns() (see axis_view.h) — but the copy is
  /// kept as the reference for the transpose-elimination benchmark and for
  /// tests.
  NumericGrid Transposed() const;

  /// Returns the view restricted to the columns in `keep`, in order. Used by
  /// the supplemental stage to construct derived files (Alg. 2).
  NumericGrid WithColumns(const std::vector<int>& keep) const;

 private:
  // AxisView (axis_view.h) wraps the SoA buffers with stride arithmetic; it
  // is the only other type allowed at the raw storage.
  friend class AxisView;

  NumericGrid(int rows, int columns, NumberFormat format)
      : rows_(rows),
        columns_(columns),
        format_(format),
        kinds_(static_cast<size_t>(rows) * columns, CellKind::kText),
        values_(static_cast<size_t>(rows) * columns, 0.0) {}

  size_t Index(int row, int col) const {
    return static_cast<size_t>(row) * columns_ + col;
  }

  int rows_ = 0;
  int columns_ = 0;
  NumberFormat format_ = NumberFormat::kCommaDot;
  std::vector<CellKind> kinds_;
  std::vector<double> values_;
};

/// Attempts to interpret a single cell. Exposed for tests and for feature
/// extraction in the cell classifier.
struct CellInterpretation {
  CellKind kind = CellKind::kText;
  double value = 0.0;
};
CellInterpretation InterpretCell(std::string_view cell, NumberFormat format,
                                 const NormalizeOptions& options);

}  // namespace aggrecol::numfmt

#endif  // AGGRECOL_NUMFMT_NUMERIC_GRID_H_
