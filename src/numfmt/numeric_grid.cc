#include "numfmt/numeric_grid.h"

#include <cctype>

#include "util/string_util.h"

namespace aggrecol::numfmt {
namespace {

bool IsZeroMarker(std::string_view stripped) {
  return stripped == "x" || stripped == "X" || stripped == "-" ||
         stripped == "–" /* en dash */ || stripped == "—" /* em dash */;
}

// Strips a trailing textual decoration ("Points", "%", "pts.") that contains
// at least one letter; returns the numeric-looking prefix.
std::string_view StripTextSuffix(std::string_view text) {
  size_t end = text.size();
  bool saw_letter = false;
  while (end > 0) {
    const unsigned char c = static_cast<unsigned char>(text[end - 1]);
    if (std::isalpha(c) || c == '%' || c == '.' || c == ' ') {
      if (std::isalpha(c)) saw_letter = true;
      --end;
    } else {
      break;
    }
  }
  if (!saw_letter) return text;
  return text.substr(0, end);
}

}  // namespace

CellInterpretation InterpretCell(std::string_view cell, NumberFormat format,
                                 const NormalizeOptions& options) {
  const std::string_view stripped = util::StripWhitespace(cell);
  if (stripped.empty()) {
    if (options.treat_empty_as_zero) return {CellKind::kEmptyZero, 0.0};
    return {CellKind::kText, 0.0};
  }
  if (options.recognize_zero_markers && IsZeroMarker(stripped)) {
    return {CellKind::kZeroMarker, 0.0};
  }
  if (auto value = ParseNumber(stripped, format); value.has_value()) {
    return {CellKind::kNumeric, *value};
  }
  if (options.lenient_extraction &&
      !std::isalpha(static_cast<unsigned char>(stripped.front()))) {
    const std::string_view prefix = util::StripWhitespace(StripTextSuffix(stripped));
    if (!prefix.empty() && prefix.size() < stripped.size()) {
      if (auto value = ParseNumber(prefix, format); value.has_value()) {
        return {CellKind::kNumeric, *value};
      }
    }
  }
  return {CellKind::kText, 0.0};
}

NumericGrid NumericGrid::FromGrid(const csv::Grid& grid,
                                  const NormalizeOptions& options) {
  return FromGrid(grid, ElectFormat(grid), options);
}

NumericGrid NumericGrid::FromGrid(const csv::Grid& grid, NumberFormat format,
                                  const NormalizeOptions& options) {
  NumericGrid out(grid.rows(), grid.columns(), format);
  for (int i = 0; i < grid.rows(); ++i) {
    for (int j = 0; j < grid.columns(); ++j) {
      const CellInterpretation cell = InterpretCell(grid.at(i, j), format, options);
      out.kinds_[out.Index(i, j)] = cell.kind;
      out.values_[out.Index(i, j)] = cell.value;
    }
  }
  return out;
}

int NumericGrid::NumericCountInColumn(int col) const {
  int count = 0;
  for (int i = 0; i < rows_; ++i) {
    if (IsNumeric(i, col)) ++count;
  }
  return count;
}

int NumericGrid::NumericCountInRow(int row) const {
  int count = 0;
  for (int j = 0; j < columns_; ++j) {
    if (IsNumeric(row, j)) ++count;
  }
  return count;
}

NumericGrid NumericGrid::Transposed() const {
  NumericGrid out(columns_, rows_, format_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < columns_; ++j) {
      out.kinds_[out.Index(j, i)] = kinds_[Index(i, j)];
      out.values_[out.Index(j, i)] = values_[Index(i, j)];
    }
  }
  return out;
}

NumericGrid NumericGrid::WithColumns(const std::vector<int>& keep) const {
  NumericGrid out(rows_, static_cast<int>(keep.size()), format_);
  for (int i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < keep.size(); ++k) {
      out.kinds_[out.Index(i, static_cast<int>(k))] = kinds_[Index(i, keep[k])];
      out.values_[out.Index(i, static_cast<int>(k))] = values_[Index(i, keep[k])];
    }
  }
  return out;
}

}  // namespace aggrecol::numfmt
