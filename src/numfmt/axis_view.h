#ifndef AGGRECOL_NUMFMT_AXIS_VIEW_H_
#define AGGRECOL_NUMFMT_AXIS_VIEW_H_

#include <cstddef>

#include "numfmt/numeric_grid.h"

namespace aggrecol::numfmt {

/// A zero-copy, strided view of a NumericGrid along one detection axis.
///
/// The detectors are written line-wise: "for every line, scan its cells".
/// Row-wise detection reads the grid as stored; column-wise detection used to
/// materialize `NumericGrid::Transposed()` — a full deep copy of both SoA
/// buffers per file. AxisView replaces that copy with stride arithmetic over
/// the *same* buffers: `Rows()` yields the identity view and `Columns()` the
/// transposed view, so "line" means a row in the former and a column in the
/// latter while the accessor API stays exactly NumericGrid's.
///
/// Views are trivially copyable (two pointers plus strides) and non-owning:
/// the underlying NumericGrid must outlive every view of it. The strided
/// column view reads are non-contiguous, but the stage-1 kernels touch the
/// raw buffers once per line (the LineIndex compaction) and then work on
/// contiguous scratch, so the stride never sits in an inner loop.
class AxisView {
 public:
  /// The identity (row-major) view: lines are grid rows. Implicit so every
  /// line-wise API taking an AxisView also accepts a NumericGrid directly.
  // NOLINTNEXTLINE(google-explicit-constructor)
  AxisView(const NumericGrid& grid) : AxisView(grid, /*transposed=*/false) {}

  /// Lines are grid rows (same as the implicit conversion, named for clarity).
  static AxisView Rows(const NumericGrid& grid) { return AxisView(grid, false); }

  /// Lines are grid columns: the transposed view, without the transpose.
  static AxisView Columns(const NumericGrid& grid) { return AxisView(grid, true); }

  /// Lines of the view ("rows" in detector coordinates).
  int rows() const { return rows_; }

  /// Cells per line ("columns" in detector coordinates).
  int columns() const { return columns_; }

  /// True for the Columns() view (detector indices are grid-transposed).
  bool transposed() const { return transposed_; }

  CellKind kind(int row, int col) const { return kinds_[Offset(row, col)]; }
  double value(int row, int col) const { return values_[Offset(row, col)]; }

  /// True for explicit numbers: the only cells allowed as aggregates (Sec. 3.1).
  bool IsNumeric(int row, int col) const {
    return kind(row, col) == CellKind::kNumeric;
  }

  /// True for cells that carry a numeric value when used inside a range.
  bool IsRangeUsable(int row, int col) const {
    const CellKind k = kind(row, col);
    return k == CellKind::kNumeric || k == CellKind::kEmptyZero ||
           k == CellKind::kZeroMarker;
  }

  /// Number of explicit numeric cells in view column `col` (the sufficiency
  /// denominator of Sec. 3.1, in view coordinates).
  int NumericCountInColumn(int col) const {
    int count = 0;
    for (int i = 0; i < rows_; ++i) {
      if (IsNumeric(i, col)) ++count;
    }
    return count;
  }

  /// Number of explicit numeric cells in view row `row`.
  int NumericCountInRow(int row) const {
    int count = 0;
    for (int j = 0; j < columns_; ++j) {
      if (IsNumeric(row, j)) ++count;
    }
    return count;
  }

  /// The elected number format of the underlying file.
  NumberFormat format() const { return format_; }

 private:
  AxisView(const NumericGrid& grid, bool transposed)
      : kinds_(grid.kinds_.data()),
        values_(grid.values_.data()),
        rows_(transposed ? grid.columns() : grid.rows()),
        columns_(transposed ? grid.rows() : grid.columns()),
        line_stride_(transposed ? 1 : static_cast<size_t>(grid.columns())),
        cell_stride_(transposed ? static_cast<size_t>(grid.columns()) : 1),
        transposed_(transposed),
        format_(grid.format()) {}

  size_t Offset(int row, int col) const {
    return static_cast<size_t>(row) * line_stride_ +
           static_cast<size_t>(col) * cell_stride_;
  }

  const CellKind* kinds_;
  const double* values_;
  int rows_;
  int columns_;
  size_t line_stride_;
  size_t cell_stride_;
  bool transposed_;
  NumberFormat format_;
};

}  // namespace aggrecol::numfmt

#endif  // AGGRECOL_NUMFMT_AXIS_VIEW_H_
