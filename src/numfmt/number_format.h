#ifndef AGGRECOL_NUMFMT_NUMBER_FORMAT_H_
#define AGGRECOL_NUMFMT_NUMBER_FORMAT_H_

#include <array>
#include <optional>
#include <string>
#include <string_view>

#include "csv/grid.h"

namespace aggrecol::numfmt {

/// The five valid number formats observed in the Troy dataset (Table 4).
enum class NumberFormat {
  kSpaceComma,  // 12 345,67
  kSpaceDot,    // 12 345.67
  kCommaDot,    // 12,345.67
  kNoneComma,   // 12345,67
  kNoneDot,     // 12345.67
};

/// All formats, in the order of Table 4.
inline constexpr std::array<NumberFormat, 5> kAllNumberFormats = {
    NumberFormat::kSpaceComma, NumberFormat::kSpaceDot, NumberFormat::kCommaDot,
    NumberFormat::kNoneComma, NumberFormat::kNoneDot};

/// Digit-group separator of `format`, or '\0' when the format has none.
char GroupSeparator(NumberFormat format);

/// Decimal separator of `format`.
char DecimalSeparator(NumberFormat format);

/// Occurrence prior of `format` among the 200 Troy files (Table 4), used to
/// break ties during per-file format election.
double OccurrencePrior(NumberFormat format);

/// Short name, e.g. "space/comma".
std::string ToString(NumberFormat format);

/// True if the whitespace-stripped `text` is a complete number under
/// `format`: optional sign (or accounting parentheses), digits either plain
/// or grouped in threes by the group separator, and an optional decimal part.
bool MatchesFormat(std::string_view text, NumberFormat format);

/// Parses `text` as a number under `format`. Returns std::nullopt when the
/// text does not match the format. A trailing '%' divides the value by 100;
/// accounting parentheses negate it.
std::optional<double> ParseNumber(std::string_view text, NumberFormat format);

/// Elects the number format of a file by counting, for each candidate format,
/// the cells that fully match it; the format with the highest count wins and
/// ties are broken by the Troy occurrence prior (Sec. 4.2).
NumberFormat ElectFormat(const csv::Grid& grid);

/// Renders `value` under `format` with `decimals` digits after the decimal
/// point, grouping digits when the format has a group separator. Used by the
/// data generator to serialize numbers the way real files do.
std::string FormatNumber(double value, NumberFormat format, int decimals);

}  // namespace aggrecol::numfmt

#endif  // AGGRECOL_NUMFMT_NUMBER_FORMAT_H_
