#include "numfmt/number_format.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "numfmt/parse_double.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace aggrecol::numfmt {
namespace {

struct ParsedShape {
  bool negative = false;
  bool percent = false;
  // Views into the caller's `text` argument; a ParsedShape never outlives the
  // ParseShape call that produced it.
  // aggrecol-lint: allow(L7): transient borrow of the caller's text argument
  std::string_view integer;   // as written, group separators still present
  // aggrecol-lint: allow(L7): transient borrow of the caller's text argument
  std::string_view fraction;  // plain digits
};

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Validates an integer part in place — plain digits, or 1-3 digits followed
// by one or more (separator + exactly 3 digits) blocks. Replaces a
// util::Split-based walk so the per-cell path never allocates.
bool ValidIntegerPart(std::string_view text, char group) {
  size_t lead = 0;
  while (lead < text.size() && IsDigit(text[lead])) ++lead;
  if (lead == text.size()) return lead > 0;  // plain digits
  if (group == '\0' || lead == 0 || lead > 3) return false;
  for (size_t pos = lead; pos < text.size(); pos += 4) {
    if (text[pos] != group || pos + 4 > text.size()) return false;
    if (!IsDigit(text[pos + 1]) || !IsDigit(text[pos + 2]) ||
        !IsDigit(text[pos + 3])) {
      return false;
    }
  }
  return true;
}

// Parses the shape of `text` under `format`; returns std::nullopt on mismatch.
std::optional<ParsedShape> ParseShape(std::string_view raw, NumberFormat format) {
  std::string_view text = util::StripWhitespace(raw);
  if (text.empty()) return std::nullopt;

  ParsedShape shape;

  // Accounting negatives: (123) == -123.
  if (text.size() >= 2 && text.front() == '(' && text.back() == ')') {
    shape.negative = true;
    text = util::StripWhitespace(text.substr(1, text.size() - 2));
    if (text.empty()) return std::nullopt;
  }

  if (text.front() == '+' || text.front() == '-') {
    if (text.front() == '-') shape.negative = !shape.negative;
    text.remove_prefix(1);
    if (text.empty()) return std::nullopt;
  }

  // Currency prefixes, common in statistical tables: "$1,234.50", "€12",
  // and the UTF-8 encoded "€"/"£" byte sequences.
  for (std::string_view currency : {std::string_view{"$"}, std::string_view{"\u20ac"},
                                    std::string_view{"\u00a3"}}) {
    if (text.size() > currency.size() && text.substr(0, currency.size()) == currency) {
      text = util::StripWhitespace(text.substr(currency.size()));
      break;
    }
  }
  if (text.empty()) return std::nullopt;

  if (text.back() == '%') {
    shape.percent = true;
    text = util::StripWhitespace(text.substr(0, text.size() - 1));
    if (text.empty()) return std::nullopt;
  }

  const char group = GroupSeparator(format);
  const char decimal = DecimalSeparator(format);

  // Split off the decimal part: the *last* decimal separator, which must be
  // followed by plain digits only.
  size_t decimal_pos = text.rfind(decimal);
  std::string_view integer_part = text;
  std::string_view fraction_part;
  if (decimal_pos != std::string_view::npos) {
    fraction_part = text.substr(decimal_pos + 1);
    integer_part = text.substr(0, decimal_pos);
    if (fraction_part.empty()) return std::nullopt;
    for (char c : fraction_part) {
      if (!IsDigit(c)) return std::nullopt;
    }
    // When the group and decimal separators coincide in no-group formats this
    // cannot happen (group == '\0' there), so no ambiguity arises here.
  }
  if (integer_part.empty()) return std::nullopt;

  if (!ValidIntegerPart(integer_part, group)) return std::nullopt;
  shape.integer = integer_part;
  shape.fraction = fraction_part;
  return shape;
}

// Cold fallback for values whose canonical form overflows ParseNumber's
// stack buffer (more than ~60 significant characters). Deliberately not on
// the hot-path registry: allocation is fine out here.
std::optional<double> ParseCanonicalHeap(const ParsedShape& shape) {
  std::string canonical;
  canonical.reserve(shape.integer.size() + shape.fraction.size() + 1);
  for (const char c : shape.integer) {
    if (IsDigit(c)) canonical += c;
  }
  if (!shape.fraction.empty()) {
    canonical += '.';
    canonical += shape.fraction;
  }
  return ParseDouble(canonical);
}

}  // namespace

char GroupSeparator(NumberFormat format) {
  switch (format) {
    case NumberFormat::kSpaceComma:
    case NumberFormat::kSpaceDot:
      return ' ';
    case NumberFormat::kCommaDot:
      return ',';
    case NumberFormat::kNoneComma:
    case NumberFormat::kNoneDot:
      return '\0';
  }
  return '\0';
}

char DecimalSeparator(NumberFormat format) {
  switch (format) {
    case NumberFormat::kSpaceComma:
    case NumberFormat::kNoneComma:
      return ',';
    case NumberFormat::kSpaceDot:
    case NumberFormat::kCommaDot:
    case NumberFormat::kNoneDot:
      return '.';
  }
  return '.';
}

double OccurrencePrior(NumberFormat format) {
  // Occurrence ratios among the 200 Troy files (Table 4).
  switch (format) {
    case NumberFormat::kSpaceComma:
      return 0.245;
    case NumberFormat::kSpaceDot:
      return 0.060;
    case NumberFormat::kCommaDot:
      return 0.665;
    case NumberFormat::kNoneComma:
      return 0.015;
    case NumberFormat::kNoneDot:
      return 0.015;
  }
  return 0.0;
}

std::string ToString(NumberFormat format) {
  switch (format) {
    case NumberFormat::kSpaceComma:
      return "space/comma";
    case NumberFormat::kSpaceDot:
      return "space/dot";
    case NumberFormat::kCommaDot:
      return "comma/dot";
    case NumberFormat::kNoneComma:
      return "none/comma";
    case NumberFormat::kNoneDot:
      return "none/dot";
  }
  return "unknown";
}

bool MatchesFormat(std::string_view text, NumberFormat format) {
  return ParseShape(text, format).has_value();
}

std::optional<double> ParseNumber(std::string_view text, NumberFormat format) {
  const auto shape = ParseShape(text, format);
  if (!shape.has_value()) return std::nullopt;
  // Canonical "digits.fraction" assembled in a stack buffer so the per-cell
  // path stays allocation-free (rule L8); absurdly long values take the cold
  // heap fallback.
  char buffer[64];
  size_t length = 0;
  std::optional<double> parsed;
  if (shape->integer.size() + shape->fraction.size() + 1 <= sizeof(buffer)) {
    for (const char c : shape->integer) {
      if (IsDigit(c)) buffer[length++] = c;
    }
    if (!shape->fraction.empty()) {
      buffer[length++] = '.';
      for (const char c : shape->fraction) buffer[length++] = c;
    }
    parsed = ParseDouble(std::string_view(buffer, length));
  } else {
    parsed = ParseCanonicalHeap(*shape);
  }
  double value = parsed.value_or(0.0);
  if (shape->negative) value = -value;
  if (shape->percent) value /= 100.0;
  return value;
}

NumberFormat ElectFormat(const csv::Grid& grid) {
  obs::ScopedSpan span("numfmt.elect");
  std::array<int, kAllNumberFormats.size()> counts{};
  for (int i = 0; i < grid.rows(); ++i) {
    for (int j = 0; j < grid.columns(); ++j) {
      const std::string_view cell = grid.at(i, j);
      if (util::StripWhitespace(cell).empty()) continue;
      for (size_t f = 0; f < kAllNumberFormats.size(); ++f) {
        if (MatchesFormat(cell, kAllNumberFormats[f])) ++counts[f];
      }
    }
  }
  size_t best = 0;
  for (size_t f = 1; f < kAllNumberFormats.size(); ++f) {
    if (counts[f] > counts[best] ||
        (counts[f] == counts[best] &&
         OccurrencePrior(kAllNumberFormats[f]) > OccurrencePrior(kAllNumberFormats[best]))) {
      best = f;
    }
  }
  if (obs::Registry::enabled()) {
    obs::Count("numfmt.elect.files");
    // Slash-to-underscore so the winner reads as a metric-name token:
    // "space/comma" -> numfmt.elect.space_comma.
    std::string winner = ToString(kAllNumberFormats[best]);
    std::replace(winner.begin(), winner.end(), '/', '_');
    obs::Count("numfmt.elect." + winner);
  }
  return kAllNumberFormats[best];
}

std::string FormatNumber(double value, NumberFormat format, int decimals) {
  const bool negative = std::signbit(value) && value != 0.0;
  const std::string plain = util::FormatDouble(std::fabs(value), decimals);
  // Split integer and fraction around the '.' emitted by FormatDouble.
  const size_t dot = plain.find('.');
  std::string integer_digits = dot == std::string::npos ? plain : plain.substr(0, dot);
  const std::string fraction = dot == std::string::npos ? "" : plain.substr(dot + 1);

  std::string grouped;
  const char group = GroupSeparator(format);
  if (group != '\0' && integer_digits.size() > 3) {
    const size_t first = integer_digits.size() % 3 == 0 ? 3 : integer_digits.size() % 3;
    grouped = integer_digits.substr(0, first);
    for (size_t pos = first; pos < integer_digits.size(); pos += 3) {
      grouped += group;
      grouped += integer_digits.substr(pos, 3);
    }
  } else {
    grouped = integer_digits;
  }

  std::string out = negative ? "-" : "";
  out += grouped;
  if (!fraction.empty()) {
    out += DecimalSeparator(format);
    out += fraction;
  }
  return out;
}

}  // namespace aggrecol::numfmt
