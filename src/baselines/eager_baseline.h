#ifndef AGGRECOL_BASELINES_EAGER_BASELINE_H_
#define AGGRECOL_BASELINES_EAGER_BASELINE_H_

#include <vector>

#include "core/aggregation.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol::baselines {

/// Configuration of the eager baseline (Sec. 4.4).
struct EagerBaselineConfig {
  /// The function to detect; the paper evaluates the baseline per function.
  core::AggregationFunction function = core::AggregationFunction::kSum;

  /// Maximum tolerable error level (same values as AggreCol for fairness).
  double error_level = 0.0;

  /// Wall-clock budget per file; the paper uses a 5-minute timeout and
  /// observes that the baseline cannot finish many files within it.
  double budget_seconds = 300.0;

  /// Orientations to scan.
  bool rows = true;
  bool columns = true;

  /// Hard cap on reported candidates. Zero-rich lines make every subset a
  /// match, so an uncapped run can exhaust memory long before the time
  /// budget; hitting the cap marks the run unfinished.
  long long max_results = 1'000'000;
};

/// Outcome of a baseline run on one file.
struct EagerBaselineResult {
  std::vector<core::Aggregation> aggregations;

  /// False when the time budget expired before the enumeration completed;
  /// `aggregations` then holds the partial results found so far.
  bool finished = true;

  /// Wall-clock seconds actually spent.
  double seconds = 0.0;
};

/// The eager baseline: for each numeric cell, traverses the permutations of
/// all numeric cells in the same row (and column), treating each as a range
/// candidate — O(n * 2^(n-1)) per line for sum/average and O(n^3) for the
/// pairwise functions (Sec. 4.4). Every candidate within the error level is
/// reported, which is what destroys the baseline's precision.
EagerBaselineResult RunEagerBaseline(const numfmt::NumericGrid& grid,
                                     const EagerBaselineConfig& config);

}  // namespace aggrecol::baselines

#endif  // AGGRECOL_BASELINES_EAGER_BASELINE_H_
