#include "baselines/eager_baseline.h"

#include <algorithm>

#include "numfmt/axis_view.h"
#include "util/stopwatch.h"

namespace aggrecol::baselines {
namespace {

using core::Aggregation;
using core::AggregationFunction;
using core::Axis;
using core::ErrorLevel;

// Shared enumeration state with a periodically-checked deadline.
struct Enumeration {
  const EagerBaselineConfig* config;
  util::Stopwatch stopwatch;
  long long checks = 0;
  long long results = 0;
  bool expired = false;

  bool Expired() {
    if (expired) return true;
    if ((++checks & 0xFFF) == 0 &&
        stopwatch.ElapsedSeconds() > config->budget_seconds) {
      expired = true;
    }
    return expired;
  }

  // Called after recording a match; enforces the result cap.
  void CountResult() {
    if (++results >= config->max_results) expired = true;
  }
};

// Enumerates subsets (size >= 2) of `cells` excluding position `skip`,
// recording every subset whose aggregate matches `observed`.
void EnumerateSubsets(const numfmt::AxisView& grid, int line,
                      const std::vector<int>& cells, size_t skip, double observed,
                      Enumeration* state, std::vector<Aggregation>* out) {
  const AggregationFunction function = state->config->function;
  const size_t n = cells.size();
  std::vector<int> chosen;
  double running_sum = 0.0;

  // Recursive lambda over positions, skipping `skip`.
  auto recurse = [&](auto&& self, size_t pos) -> void {
    if (state->Expired()) return;
    if (chosen.size() >= 2) {
      const double calculated =
          function == AggregationFunction::kAverage
              ? running_sum / static_cast<double>(chosen.size())
              : running_sum;
      const double error = ErrorLevel(observed, calculated);
      if (core::WithinErrorLevel(error, state->config->error_level)) {
        Aggregation aggregation;
        aggregation.axis = Axis::kRow;
        aggregation.line = line;
        aggregation.aggregate = cells[skip];
        aggregation.range = chosen;
        aggregation.function = function;
        aggregation.error = error;
        out->push_back(std::move(aggregation));
        state->CountResult();
      }
    }
    for (size_t next = pos; next < n; ++next) {
      if (next == skip) continue;
      chosen.push_back(cells[next]);
      running_sum += grid.value(line, cells[next]);
      self(self, next + 1);
      running_sum -= grid.value(line, cells[next]);
      chosen.pop_back();
      if (state->Expired()) return;
    }
  };
  recurse(recurse, 0);
}

// Enumerates ordered pairs from `cells` for pairwise functions.
void EnumeratePairs(const numfmt::AxisView& grid, int line,
                    const std::vector<int>& cells, size_t skip, double observed,
                    Enumeration* state, std::vector<Aggregation>* out) {
  const AggregationFunction function = state->config->function;
  for (size_t b = 0; b < cells.size(); ++b) {
    if (b == skip) continue;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c == skip || c == b) continue;
      if (state->Expired()) return;
      const auto calculated = core::ApplyPairwise(function, grid.value(line, cells[b]),
                                                  grid.value(line, cells[c]));
      if (!calculated.has_value()) continue;
      const double error = ErrorLevel(observed, *calculated);
      if (core::WithinErrorLevel(error, state->config->error_level)) {
        Aggregation aggregation;
        aggregation.axis = Axis::kRow;
        aggregation.line = line;
        aggregation.aggregate = cells[skip];
        aggregation.range = {cells[b], cells[c]};
        aggregation.function = function;
        aggregation.error = error;
        out->push_back(std::move(aggregation));
        state->CountResult();
      }
    }
  }
}

void ScanRowwise(const numfmt::AxisView& grid, Axis axis, Enumeration* state,
                 std::vector<Aggregation>* out) {
  const bool pairwise = core::TraitsOf(state->config->function).pairwise;
  for (int line = 0; line < grid.rows(); ++line) {
    // All cells usable as range elements (explicit numbers and zeros).
    std::vector<int> cells;
    for (int col = 0; col < grid.columns(); ++col) {
      if (grid.IsRangeUsable(line, col)) cells.push_back(col);
    }
    std::vector<Aggregation> found;
    for (size_t skip = 0; skip < cells.size(); ++skip) {
      if (!grid.IsNumeric(line, cells[skip])) continue;  // aggregates: numbers
      const double observed = grid.value(line, cells[skip]);
      if (pairwise) {
        EnumeratePairs(grid, line, cells, skip, observed, state, &found);
      } else {
        EnumerateSubsets(grid, line, cells, skip, observed, state, &found);
      }
      if (state->Expired()) break;
    }
    for (auto& aggregation : found) {
      aggregation.axis = axis;
      out->push_back(std::move(aggregation));
    }
    if (state->Expired()) return;
  }
}

}  // namespace

EagerBaselineResult RunEagerBaseline(const numfmt::NumericGrid& grid,
                                     const EagerBaselineConfig& config) {
  EagerBaselineResult result;
  Enumeration state;
  state.config = &config;

  if (config.rows) ScanRowwise(grid, Axis::kRow, &state, &result.aggregations);
  if (config.columns && !state.expired) {
    ScanRowwise(numfmt::AxisView::Columns(grid), Axis::kColumn, &state,
                &result.aggregations);
  }
  result.finished = !state.expired;
  result.seconds = state.stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace aggrecol::baselines
