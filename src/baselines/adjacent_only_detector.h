#ifndef AGGRECOL_BASELINES_ADJACENT_ONLY_DETECTOR_H_
#define AGGRECOL_BASELINES_ADJACENT_ONLY_DETECTOR_H_

#include <vector>

#include "core/aggregation.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol::baselines {

/// Strudel-style aggregate detection (Sec. 4.6 / Sec. 5): a single pass of
/// the adjacency-list strategy for sum and average, row- and column-wise,
/// without extension, pruning, cumulative iteration, or the collective and
/// supplemental stages. This is the "original" source of Strudel's binary
/// is-aggregate cell feature; it finds only adjacent aggregations (Fig. 3a)
/// and misses all cumulative and interrupt cases.
std::vector<core::Aggregation> DetectAdjacentOnly(const numfmt::NumericGrid& grid,
                                                  double error_level);

}  // namespace aggrecol::baselines

#endif  // AGGRECOL_BASELINES_ADJACENT_ONLY_DETECTOR_H_
