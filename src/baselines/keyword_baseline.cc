#include "baselines/keyword_baseline.h"

#include "util/string_util.h"

namespace aggrecol::baselines {

const std::vector<std::string>& KeywordsFor(core::AggregationFunction function) {
  static const std::vector<std::string> kSum = {"total", "all", "sum", "subtotal",
                                                "overall"};
  static const std::vector<std::string> kAverage = {"average", "avg", "mean",
                                                    "per capita"};
  static const std::vector<std::string> kDivision = {"share", "ratio", "proportion",
                                                     "percent", "rate", "%"};
  static const std::vector<std::string> kRelativeChange = {"change", "growth",
                                                           "increase", "decrease"};
  static const std::vector<std::string> kEmpty = {};
  switch (function) {
    case core::AggregationFunction::kSum:
    case core::AggregationFunction::kDifference:
      return kSum;
    case core::AggregationFunction::kAverage:
      return kAverage;
    case core::AggregationFunction::kDivision:
      return kDivision;
    case core::AggregationFunction::kRelativeChange:
      return kRelativeChange;
  }
  return kEmpty;
}

namespace {

bool HasKeyword(std::string_view cell,
                const std::vector<std::string>& keywords) {
  for (const auto& keyword : keywords) {
    if (util::ContainsIgnoreCase(cell, keyword)) return true;
  }
  return false;
}

}  // namespace

KeywordPrediction RunKeywordBaseline(const csv::Grid& grid,
                                     const numfmt::NumericGrid& numeric,
                                     core::AggregationFunction function) {
  const std::vector<std::string>& keywords = KeywordsFor(function);
  KeywordPrediction prediction;

  // A column is flagged when any text cell above the first numeric cell of
  // the column contains a keyword; a row is flagged when any text cell to the
  // left of its first numeric cell does.
  std::vector<bool> column_flagged(grid.columns(), false);
  for (int col = 0; col < grid.columns(); ++col) {
    for (int row = 0; row < grid.rows(); ++row) {
      if (numeric.IsNumeric(row, col)) break;  // past the header zone
      if (numeric.kind(row, col) == numfmt::CellKind::kText &&
          HasKeyword(grid.at(row, col), keywords)) {
        column_flagged[col] = true;
        break;
      }
    }
  }
  std::vector<bool> row_flagged(grid.rows(), false);
  for (int row = 0; row < grid.rows(); ++row) {
    for (int col = 0; col < grid.columns(); ++col) {
      if (numeric.IsNumeric(row, col)) break;
      if (numeric.kind(row, col) == numfmt::CellKind::kText &&
          HasKeyword(grid.at(row, col), keywords)) {
        row_flagged[row] = true;
        break;
      }
    }
  }

  for (int row = 0; row < grid.rows(); ++row) {
    for (int col = 0; col < grid.columns(); ++col) {
      if (!numeric.IsNumeric(row, col)) continue;
      if (column_flagged[col] || row_flagged[row]) {
        prediction.aggregate_cells.emplace_back(row, col);
      }
    }
  }
  return prediction;
}

}  // namespace aggrecol::baselines
