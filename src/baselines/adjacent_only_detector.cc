#include "baselines/adjacent_only_detector.h"

#include "core/adjacency_strategy.h"
#include "numfmt/axis_view.h"

namespace aggrecol::baselines {

std::vector<core::Aggregation> DetectAdjacentOnly(const numfmt::NumericGrid& grid,
                                                  double error_level) {
  std::vector<core::Aggregation> out;
  const std::vector<core::AggregationFunction> functions = {
      core::AggregationFunction::kSum, core::AggregationFunction::kAverage};

  const std::vector<bool> all_rows(grid.columns(), true);
  for (core::AggregationFunction function : functions) {
    for (int row = 0; row < grid.rows(); ++row) {
      auto found =
          core::DetectAdjacentCommutative(grid, all_rows, row, function, error_level);
      out.insert(out.end(), found.begin(), found.end());
    }
  }

  const numfmt::AxisView columns_view = numfmt::AxisView::Columns(grid);
  const std::vector<bool> all_cols(columns_view.columns(), true);
  for (core::AggregationFunction function : functions) {
    for (int row = 0; row < columns_view.rows(); ++row) {
      auto found = core::DetectAdjacentCommutative(columns_view, all_cols, row, function,
                                                   error_level);
      for (auto& aggregation : found) {
        aggregation.axis = core::Axis::kColumn;
        out.push_back(std::move(aggregation));
      }
    }
  }
  return out;
}

}  // namespace aggrecol::baselines
