#ifndef AGGRECOL_BASELINES_KEYWORD_BASELINE_H_
#define AGGRECOL_BASELINES_KEYWORD_BASELINE_H_

#include <string>
#include <utility>
#include <vector>

#include "core/function.h"
#include "csv/grid.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol::baselines {

/// The keyword dictionary the paper probes for `function` (Sec. 1 and 4.4).
/// For sum: total, all, sum, subtotal, overall; the other functions use
/// dictionaries of their own.
const std::vector<std::string>& KeywordsFor(core::AggregationFunction function);

/// Cells predicted as aggregates by the keyword baseline.
struct KeywordPrediction {
  /// (row, column) pairs of numeric cells whose row or column header
  /// contains one of the function's keywords.
  std::vector<std::pair<int, int>> aggregate_cells;
};

/// Keyword-header baseline: a numeric cell is predicted to be an aggregate of
/// `function` when a text cell heading its column (above it) or its row (to
/// its left) contains one of the function's keywords. This is the unreliable
/// approach the paper argues against: keywords miss ~40% of true sum
/// aggregates and fire on many non-aggregate lines.
KeywordPrediction RunKeywordBaseline(const csv::Grid& grid,
                                     const numfmt::NumericGrid& numeric,
                                     core::AggregationFunction function);

}  // namespace aggrecol::baselines

#endif  // AGGRECOL_BASELINES_KEYWORD_BASELINE_H_
