#ifndef AGGRECOL_OBS_METRICS_H_
#define AGGRECOL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

/// Compile-time observability switch. The build defines AGGRECOL_OBS to 0 or
/// 1 (CMake option AGGRECOL_OBS, on by default); when it is 0 every
/// instrumentation helper below collapses to an empty inline function, so the
/// detection pipeline carries no metrics code at all.
#ifndef AGGRECOL_OBS
#define AGGRECOL_OBS 1
#endif

namespace aggrecol::obs {

/// True when instrumentation was compiled in (AGGRECOL_OBS != 0). The
/// registry, sinks, and metric classes exist either way — only the call sites
/// inside the pipeline compile out.
constexpr bool CompiledIn() { return AGGRECOL_OBS != 0; }

namespace internal {

/// Stable shard slot of the calling thread: threads are assigned round-robin
/// on first use, so up to kShards threads never contend on the same cache
/// line. Shared by every sharded metric.
inline constexpr size_t kShards = 8;

inline size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

struct alignas(64) ShardSlot {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// A monotonically increasing counter, sharded per thread slot so concurrent
/// Add calls from the thread pool do not bounce one cache line around.
/// Value() sums the shards; counts are additive, so the total is independent
/// of how work was distributed over threads — the property the determinism
/// battery asserts on.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(uint64_t delta = 1) {
    shards_[internal::ShardIndex()].value.fetch_add(delta,
                                                    std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  std::array<internal::ShardSlot, internal::kShards> shards_;
  std::string name_;
};

/// A last-value / extremum metric (queue depths, window sizes).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }

  /// Raises the gauge to `value` if it is higher (high-water marks).
  void RecordMax(int64_t value) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < value && !value_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::atomic<int64_t> value_{0};
  std::string name_;
};

/// A fixed-boundary histogram with sharded bucket counts. A recorded value
/// lands in the first bucket whose upper bound is >= the value ("le"
/// semantics); values above the last boundary land in the implicit overflow
/// bucket, so BucketCounts() has boundaries().size() + 1 entries.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> boundaries);

  void Record(double value);

  uint64_t Count() const;
  double Sum() const;
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& boundaries() const { return boundaries_; }
  const std::string& name() const { return name_; }
  void Reset();

 private:
  struct alignas(64) Shard {
    explicit Shard(size_t buckets) : bucket_counts(buckets) {}
    std::vector<std::atomic<uint64_t>> bucket_counts;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::string name_;
  std::vector<double> boundaries_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Default histogram boundaries for wall-clock durations in seconds
/// (1 microsecond .. 5 minutes, roughly logarithmic).
const std::vector<double>& LatencyBuckets();

/// A point-in-time copy of one histogram, comparable and serializable.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  std::vector<double> boundaries;
  std::vector<uint64_t> buckets;  // boundaries.size() + 1, overflow last

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// A point-in-time copy of every registered metric, sorted by name. This is
/// what the sinks (JSON, ASCII table) and the per-corpus summaries consume.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of the named counter, or 0 when it was never touched.
  uint64_t counter(std::string_view name) const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Process-wide metrics registry. Metrics are created on first use, keyed by
/// name, and live for the lifetime of the process; references returned by the
/// Get* methods stay valid across Reset() (which zeroes values in place).
///
/// Collection is off until set_enabled(true): the instrumentation helpers
/// below check the flag with one relaxed load and skip all work when it is
/// false, which is the runtime no-op path benchmarked by bench/obs_overhead.
class Registry {
 public:
  static Registry& Instance();

  static bool enabled() {
    return CompiledIn() && enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);

  /// `boundaries` is only consulted when the histogram does not exist yet.
  Histogram& GetHistogram(std::string_view name,
                          const std::vector<double>& boundaries = LatencyBuckets());

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric in place (registered objects survive).
  void Reset();

 private:
  Registry() = default;

  static std::atomic<bool> enabled_;

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Enables metrics collection for a scope: resets the registry so the
/// snapshot covers exactly this run, then restores the previous enabled state
/// on destruction. The CLI wraps each `batch --metrics-json/--trace` run in
/// one of these.
class ScopedMetrics {
 public:
  ScopedMetrics() : previous_(Registry::enabled()) {
    Registry::Instance().Reset();
    Registry::set_enabled(true);
  }
  ~ScopedMetrics() { Registry::set_enabled(previous_); }

  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  bool previous_;
};

/// ---- Instrumentation helpers -------------------------------------------
/// These are the only functions pipeline code calls. Compiled out entirely
/// when AGGRECOL_OBS is 0; a single relaxed load + branch when compiled in
/// but not enabled.

inline void Count(std::string_view name, uint64_t delta = 1) {
  if (!CompiledIn() || !Registry::enabled()) return;
  Registry::Instance().GetCounter(name).Add(delta);
}

inline void GaugeSet(std::string_view name, int64_t value) {
  if (!CompiledIn() || !Registry::enabled()) return;
  Registry::Instance().GetGauge(name).Set(value);
}

inline void GaugeMax(std::string_view name, int64_t value) {
  if (!CompiledIn() || !Registry::enabled()) return;
  Registry::Instance().GetGauge(name).RecordMax(value);
}

inline void Observe(std::string_view name, double value) {
  if (!CompiledIn() || !Registry::enabled()) return;
  Registry::Instance().GetHistogram(name).Record(value);
}

}  // namespace aggrecol::obs

#endif  // AGGRECOL_OBS_METRICS_H_
