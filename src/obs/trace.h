#ifndef AGGRECOL_OBS_TRACE_H_
#define AGGRECOL_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace aggrecol::obs {

/// A scoped wall-clock timer over one pipeline stage. On destruction it
/// records the elapsed seconds into the histogram `span.<name>` (latency
/// buckets), so every span contributes a call count, a total, and a latency
/// distribution without any per-span allocation beyond the first call.
///
/// Spans are thread-safe: concurrent spans of the same name record into the
/// same sharded histogram. The static parent/child structure of the span
/// names is documented in docs/OBSERVABILITY.md (span hierarchy); nesting is
/// by convention of the call sites, not tracked at runtime, so a span costs
/// two clock reads when metrics are enabled and nothing otherwise.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) {
    if (!CompiledIn() || !Registry::enabled()) return;
    histogram_ =
        &Registry::Instance().GetHistogram(std::string(kSpanPrefix) + std::string(name));
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedSpan() {
    if (histogram_ == nullptr) return;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    histogram_->Record(elapsed.count());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Histogram-name prefix identifying span histograms in a snapshot.
  static constexpr std::string_view kSpanPrefix = "span.";

 private:
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aggrecol::obs

#endif  // AGGRECOL_OBS_TRACE_H_
