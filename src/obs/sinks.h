#ifndef AGGRECOL_OBS_SINKS_H_
#define AGGRECOL_OBS_SINKS_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace aggrecol::obs {

/// Serializes `snapshot` as the `aggrecol.metrics.v1` JSON document (the
/// `--metrics-json` output; schema in docs/OBSERVABILITY.md). Deterministic:
/// metrics are emitted sorted by name, doubles with round-trip precision.
void WriteMetricsJson(const MetricsSnapshot& snapshot, std::ostream& os);

/// WriteMetricsJson into a string.
std::string MetricsJson(const MetricsSnapshot& snapshot);

/// Parses a document produced by WriteMetricsJson back into a snapshot.
/// Returns std::nullopt on malformed input or an unknown schema tag. The
/// round trip is exact: Parse(MetricsJson(s)) == s.
std::optional<MetricsSnapshot> ParseMetricsJson(std::string_view text);

/// Renders the snapshot as aligned ASCII tables (counters, gauges, and span
/// histograms with count/total/mean), the human-readable sink.
void PrintMetricsTable(const MetricsSnapshot& snapshot, std::ostream& os);

}  // namespace aggrecol::obs

#endif  // AGGRECOL_OBS_SINKS_H_
