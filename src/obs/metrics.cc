#include "obs/metrics.h"

#include <algorithm>
#include <mutex>

namespace aggrecol::obs {
namespace {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double seen = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(seen, seen + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::string name, std::vector<double> boundaries)
    : name_(std::move(name)), boundaries_(std::move(boundaries)) {
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
  shards_.reserve(internal::kShards);
  for (size_t s = 0; s < internal::kShards; ++s) {
    shards_.push_back(std::make_unique<Shard>(boundaries_.size() + 1));
  }
}

void Histogram::Record(double value) {
  // First boundary >= value; past-the-end means the overflow bucket.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value) -
      boundaries_.begin());
  Shard& shard = *shards_[internal::ShardIndex()];
  shard.bucket_counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&shard.sum, value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard->sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(boundaries_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t b = 0; b < counts.size(); ++b) {
      counts[b] += shard->bucket_counts[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    for (auto& bucket : shard->bucket_counts) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard->count.store(0, std::memory_order_relaxed);
    shard->sum.store(0.0, std::memory_order_relaxed);
  }
}

const std::vector<double>& LatencyBuckets() {
  static const auto* const kBuckets = new std::vector<double>{
      1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0, 300.0};
  return *kBuckets;
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

std::atomic<bool> Registry::enabled_{false};

Registry& Registry::Instance() {
  static auto* const kRegistry = new Registry();
  return *kRegistry;
}

Counter& Registry::GetCounter(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    if (const auto it = counters_.find(name); it != counters_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] =
      counters_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Counter>(std::string(name));
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    if (const auto it = gauges_.find(name); it != gauges_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = gauges_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Gauge>(std::string(name));
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  const std::vector<double>& boundaries) {
  {
    std::shared_lock lock(mutex_);
    if (const auto it = histograms_.find(name); it != histograms_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = histograms_.try_emplace(std::string(name), nullptr);
  if (inserted) {
    it->second = std::make_unique<Histogram>(std::string(name), boundaries);
  }
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::shared_lock lock(mutex_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.boundaries = histogram->boundaries();
    h.buckets = histogram->BucketCounts();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void Registry::Reset() {
  std::shared_lock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace aggrecol::obs
