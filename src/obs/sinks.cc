#include "obs/sinks.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

#include "numfmt/parse_double.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace aggrecol::obs {
namespace {

// ---- JSON writing ---------------------------------------------------------

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Round-trip-exact double rendering (%.17g re-parses to the same bits).
std::string JsonDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// ---- JSON parsing (minimal, only what WriteMetricsJson emits) -------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string number;  // raw token; converted on demand
  std::string text;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [name, value] : object) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    auto value = ParseValue();
    if (!value.has_value()) return std::nullopt;
    SkipWhitespace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool ConsumeKeyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) return false;
    pos_ += keyword.size();
    return true;
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          const unsigned long code =
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16);
          pos_ += 4;
          if (code > 0xFF) return std::nullopt;  // metric names are ASCII
          out += static_cast<char>(code);
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return std::nullopt;
    JsonValue value;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      value.kind = JsonValue::Kind::kObject;
      SkipWhitespace();
      if (Consume('}')) return value;
      while (true) {
        auto key = ParseString();
        if (!key.has_value() || !Consume(':')) return std::nullopt;
        auto member = ParseValue();
        if (!member.has_value()) return std::nullopt;
        value.object.emplace_back(std::move(*key), std::move(*member));
        if (Consume(',')) continue;
        if (Consume('}')) return value;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      value.kind = JsonValue::Kind::kArray;
      SkipWhitespace();
      if (Consume(']')) return value;
      while (true) {
        auto element = ParseValue();
        if (!element.has_value()) return std::nullopt;
        value.array.push_back(std::move(*element));
        if (Consume(',')) continue;
        if (Consume(']')) return value;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto text = ParseString();
      if (!text.has_value()) return std::nullopt;
      value.kind = JsonValue::Kind::kString;
      value.text = std::move(*text);
      return value;
    }
    if (c == 't') {
      if (!ConsumeKeyword("true")) return std::nullopt;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (c == 'f') {
      if (!ConsumeKeyword("false")) return std::nullopt;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (c == 'n') {
      if (!ConsumeKeyword("null")) return std::nullopt;
      value.kind = JsonValue::Kind::kNull;
      return value;
    }
    // Number: consume the maximal [-+0-9.eE] run and validate the full run
    // as a double (locale-independent, lint rule L1).
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::string(text_.substr(start, pos_ - start));
    if (!numfmt::ParseDouble(value.number).has_value()) return std::nullopt;
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

std::optional<uint64_t> AsUint64(const JsonValue* value) {
  if (value == nullptr || value->kind != JsonValue::Kind::kNumber) {
    return std::nullopt;
  }
  return std::strtoull(value->number.c_str(), nullptr, 10);
}

std::optional<int64_t> AsInt64(const JsonValue* value) {
  if (value == nullptr || value->kind != JsonValue::Kind::kNumber) {
    return std::nullopt;
  }
  return std::strtoll(value->number.c_str(), nullptr, 10);
}

std::optional<double> AsDouble(const JsonValue* value) {
  if (value == nullptr || value->kind != JsonValue::Kind::kNumber) {
    return std::nullopt;
  }
  return numfmt::ParseDouble(value->number);
}

}  // namespace

void WriteMetricsJson(const MetricsSnapshot& snapshot, std::ostream& os) {
  os << "{\n";
  os << "  \"schema\": \"aggrecol.metrics.v1\",\n";
  os << "  \"obs_compiled\": " << (CompiledIn() ? "true" : "false") << ",\n";

  os << "  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << JsonEscape(snapshot.counters[i].first)
       << "\": " << snapshot.counters[i].second;
  }
  os << (snapshot.counters.empty() ? "}" : "\n  }") << ",\n";

  os << "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << JsonEscape(snapshot.gauges[i].first)
       << "\": " << snapshot.gauges[i].second;
  }
  os << (snapshot.gauges.empty() ? "}" : "\n  }") << ",\n";

  os << "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << JsonEscape(h.name) << "\": {\n";
    os << "      \"count\": " << h.count << ",\n";
    os << "      \"sum\": " << JsonDouble(h.sum) << ",\n";
    os << "      \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b == 0 ? "" : ", ") << "{\"le\": "
         << (b < h.boundaries.size() ? JsonDouble(h.boundaries[b]) : "null")
         << ", \"count\": " << h.buckets[b] << "}";
    }
    os << "]\n    }";
  }
  os << (snapshot.histograms.empty() ? "}" : "\n  }") << "\n";
  os << "}\n";
}

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream oss;
  WriteMetricsJson(snapshot, oss);
  return oss.str();
}

std::optional<MetricsSnapshot> ParseMetricsJson(std::string_view text) {
  const auto root = JsonParser(text).Parse();
  if (!root.has_value() || root->kind != JsonValue::Kind::kObject) {
    return std::nullopt;
  }
  const JsonValue* schema = root->Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->text != "aggrecol.metrics.v1") {
    return std::nullopt;
  }

  MetricsSnapshot snapshot;
  const JsonValue* counters = root->Find("counters");
  if (counters == nullptr || counters->kind != JsonValue::Kind::kObject) {
    return std::nullopt;
  }
  for (const auto& [name, value] : counters->object) {
    const auto parsed = AsUint64(&value);
    if (!parsed.has_value()) return std::nullopt;
    snapshot.counters.emplace_back(name, *parsed);
  }

  const JsonValue* gauges = root->Find("gauges");
  if (gauges == nullptr || gauges->kind != JsonValue::Kind::kObject) {
    return std::nullopt;
  }
  for (const auto& [name, value] : gauges->object) {
    const auto parsed = AsInt64(&value);
    if (!parsed.has_value()) return std::nullopt;
    snapshot.gauges.emplace_back(name, *parsed);
  }

  const JsonValue* histograms = root->Find("histograms");
  if (histograms == nullptr || histograms->kind != JsonValue::Kind::kObject) {
    return std::nullopt;
  }
  for (const auto& [name, value] : histograms->object) {
    if (value.kind != JsonValue::Kind::kObject) return std::nullopt;
    HistogramSnapshot h;
    h.name = name;
    const auto count = AsUint64(value.Find("count"));
    const auto sum = AsDouble(value.Find("sum"));
    const JsonValue* buckets = value.Find("buckets");
    if (!count.has_value() || !sum.has_value() || buckets == nullptr ||
        buckets->kind != JsonValue::Kind::kArray) {
      return std::nullopt;
    }
    h.count = *count;
    h.sum = *sum;
    for (const auto& bucket : buckets->array) {
      if (bucket.kind != JsonValue::Kind::kObject) return std::nullopt;
      const JsonValue* le = bucket.Find("le");
      const auto bucket_count = AsUint64(bucket.Find("count"));
      if (le == nullptr || !bucket_count.has_value()) return std::nullopt;
      if (le->kind == JsonValue::Kind::kNumber) {
        const auto boundary = AsDouble(le);
        if (!boundary.has_value()) return std::nullopt;
        h.boundaries.push_back(*boundary);
      } else if (le->kind != JsonValue::Kind::kNull) {
        return std::nullopt;
      }
      h.buckets.push_back(*bucket_count);
    }
    // Exactly one overflow bucket (the "le": null entry) is expected.
    if (h.buckets.size() != h.boundaries.size() + 1) return std::nullopt;
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void PrintMetricsTable(const MetricsSnapshot& snapshot, std::ostream& os) {
  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    util::TablePrinter table;
    table.SetHeader({"metric", "kind", "value"});
    for (const auto& [name, value] : snapshot.counters) {
      table.AddRow({name, "counter", std::to_string(value)});
    }
    for (const auto& [name, value] : snapshot.gauges) {
      table.AddRow({name, "gauge", std::to_string(value)});
    }
    table.Print(os);
  }
  if (!snapshot.histograms.empty()) {
    util::TablePrinter table;
    table.SetHeader({"histogram", "count", "total", "mean"});
    for (const auto& h : snapshot.histograms) {
      table.AddRow({h.name, std::to_string(h.count),
                    util::FormatDouble(h.sum, 6),
                    util::FormatDouble(h.count > 0 ? h.sum / h.count : 0.0, 6)});
    }
    table.Print(os);
  }
}

}  // namespace aggrecol::obs
