#include "core/line_index.h"

#include <cmath>
#include <limits>

#include "core/function.h"

namespace aggrecol::core {

void LineIndex::Build(const numfmt::AxisView& view,
                      const std::vector<bool>& active, int line) {
  cols_.clear();
  values_.clear();
  numeric_.clear();
  prefix_.clear();
  prefix_abs_.clear();
  drift_.clear();

  const int columns = view.columns();
  cols_.reserve(static_cast<size_t>(columns));
  values_.reserve(static_cast<size_t>(columns));
  numeric_.reserve(static_cast<size_t>(columns));
  prefix_.reserve(static_cast<size_t>(columns) + 1);
  prefix_abs_.reserve(static_cast<size_t>(columns) + 1);
  drift_.reserve(static_cast<size_t>(columns) + 1);
  pos_of_col_.assign(static_cast<size_t>(columns), -1);

  // drift_[p] = gamma_n-style bound on how far PrefixSum can sit from the
  // compensated reference for a span ending at p: gamma_n ~= n*eps covers the
  // sequential adds feeding prefix_[p]; the extra constant absorbs the prefix
  // subtraction itself and the residual O(eps) of the compensated reference
  // the screen is compared against. The 1.25 headroom keeps the bound safely
  // conservative without inflating it to the point where every candidate
  // falls through to the slow path.
  //
  // The bound is floored at n * DBL_MIN (smallest normal): a line whose
  // usable cells are all exactly zero — or all denormal, where the
  // proportional term itself underflows — would otherwise publish a bound of
  // exactly 0, and a screen treating "0 slack" as "the prefix sum is exact"
  // would certain-miss reject legitimate zero-sum aggregates the moment any
  // future term picks up sub-DBL_MIN rounding. The floor makes the
  // never-exactly-zero contract explicit instead of incidental; it is far
  // below any error-level threshold, so it cannot cost a rejection the
  // proportional bound would have made.
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  constexpr double kDriftFloor = std::numeric_limits<double>::min();
  prefix_.push_back(0.0);
  prefix_abs_.push_back(0.0);
  drift_.push_back(0.0);
  double running = 0.0;
  double running_abs = 0.0;
  for (int col = 0; col < columns; ++col) {
    if (!active[static_cast<size_t>(col)]) continue;
    if (!view.IsRangeUsable(line, col)) continue;
    const double value = view.value(line, col);
    pos_of_col_[static_cast<size_t>(col)] = static_cast<int>(cols_.size());
    cols_.push_back(col);
    values_.push_back(value);
    numeric_.push_back(view.IsNumeric(line, col) ? 1 : 0);
    running += value;
    running_abs += std::fabs(value);
    prefix_.push_back(running);
    prefix_abs_.push_back(running_abs);
    const double n = static_cast<double>(values_.size());
    const double proportional = kEps * (1.25 * n + 8.0) * 2.0 * running_abs;
    const double floored = kDriftFloor * n;
    drift_.push_back(proportional > floored ? proportional : floored);
  }
}

double LineIndex::CompensatedSum(int begin, int end, bool reverse) const {
  KahanAccumulator accumulator;
  if (reverse) {
    for (int pos = end - 1; pos >= begin; --pos) {
      accumulator.Add(values_[static_cast<size_t>(pos)]);
    }
  } else {
    for (int pos = begin; pos < end; ++pos) {
      accumulator.Add(values_[static_cast<size_t>(pos)]);
    }
  }
  return accumulator.Total();
}

void LineIndex::BuildSpanBounds() {
  // Standard sparse table, flattened level-major with stride size():
  // span_min_[l * n + i] = min over values_[i, i + 2^l) (clamped to n).
  // Build is O(n log n) once per line; each SpanMin/SpanMax query is then two
  // loads and a compare, which is what lets the window batch screen stay
  // O(1) per window. Buffers are reused across lines, so after the first
  // (largest) line of a scan no further allocation happens.
  const size_t n = values_.size();
  if (n == 0) return;
  const int levels = SpanLevel(static_cast<int>(n)) + 1;
  span_min_.resize(static_cast<size_t>(levels) * n);
  span_max_.resize(static_cast<size_t>(levels) * n);
  for (size_t i = 0; i < n; ++i) {
    span_min_[i] = values_[i];
    span_max_[i] = values_[i];
  }
  for (int level = 1; level < levels; ++level) {
    const size_t row = static_cast<size_t>(level) * n;
    const size_t prev = row - n;
    const size_t half = size_t{1} << (level - 1);
    for (size_t i = 0; i < n; ++i) {
      const size_t j = i + half < n ? i + half : n - 1;
      span_min_[row + i] = MinOf(span_min_[prev + i], span_min_[prev + j]);
      span_max_[row + i] = MaxOf(span_max_[prev + i], span_max_[prev + j]);
    }
  }
}

}  // namespace aggrecol::core
