#include "core/line_index.h"

#include <cmath>
#include <limits>

#include "core/function.h"

namespace aggrecol::core {

void LineIndex::Build(const numfmt::AxisView& view,
                      const std::vector<bool>& active, int line) {
  cols_.clear();
  values_.clear();
  numeric_.clear();
  prefix_.clear();
  prefix_abs_.clear();
  drift_.clear();

  const int columns = view.columns();
  cols_.reserve(static_cast<size_t>(columns));
  values_.reserve(static_cast<size_t>(columns));
  numeric_.reserve(static_cast<size_t>(columns));
  prefix_.reserve(static_cast<size_t>(columns) + 1);
  prefix_abs_.reserve(static_cast<size_t>(columns) + 1);
  drift_.reserve(static_cast<size_t>(columns) + 1);

  // drift_[p] = gamma_n-style bound on how far PrefixSum can sit from the
  // compensated reference for a span ending at p: gamma_n ~= n*eps covers the
  // sequential adds feeding prefix_[p]; the extra constant absorbs the prefix
  // subtraction itself and the residual O(eps) of the compensated reference
  // the screen is compared against. The 1.25 headroom keeps the bound safely
  // conservative without inflating it to the point where every candidate
  // falls through to the slow path.
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  prefix_.push_back(0.0);
  prefix_abs_.push_back(0.0);
  drift_.push_back(0.0);
  double running = 0.0;
  double running_abs = 0.0;
  for (int col = 0; col < columns; ++col) {
    if (!active[static_cast<size_t>(col)]) continue;
    if (!view.IsRangeUsable(line, col)) continue;
    const double value = view.value(line, col);
    cols_.push_back(col);
    values_.push_back(value);
    numeric_.push_back(view.IsNumeric(line, col) ? 1 : 0);
    running += value;
    running_abs += std::fabs(value);
    prefix_.push_back(running);
    prefix_abs_.push_back(running_abs);
    const double n = static_cast<double>(values_.size());
    drift_.push_back(kEps * (1.25 * n + 8.0) * 2.0 * running_abs);
  }
}

double LineIndex::CompensatedSum(int begin, int end, bool reverse) const {
  KahanAccumulator accumulator;
  if (reverse) {
    for (int pos = end - 1; pos >= begin; --pos) {
      accumulator.Add(values_[static_cast<size_t>(pos)]);
    }
  } else {
    for (int pos = begin; pos < end; ++pos) {
      accumulator.Add(values_[static_cast<size_t>(pos)]);
    }
  }
  return accumulator.Total();
}

}  // namespace aggrecol::core
