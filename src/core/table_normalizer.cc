#include "core/table_normalizer.h"

#include <map>
#include <set>

#include "numfmt/numeric_grid.h"

namespace aggrecol::core {

NormalizationResult StripAggregates(const csv::Grid& grid,
                                    const std::vector<Aggregation>& aggregations,
                                    const NormalizeTableOptions& options) {
  const numfmt::NumericGrid numeric = numfmt::NumericGrid::FromGrid(grid);

  // Canonicalize first: a difference detected as A = B - C is the same
  // relation as the sum B = A + C, and the canonical sum form puts the
  // derived cell on the total side (where "Total" columns live).
  const std::vector<Aggregation> canonical = CanonicalizeAll(aggregations);

  // Count distinct aggregate cells per column (row-wise aggregations) and
  // per row (column-wise aggregations).
  std::map<int, std::set<int>> aggregate_rows_per_column;
  std::map<int, std::set<int>> aggregate_columns_per_row;
  for (const auto& aggregation : canonical) {
    if (aggregation.axis == Axis::kRow) {
      aggregate_rows_per_column[aggregation.aggregate].insert(aggregation.line);
    } else {
      aggregate_columns_per_row[aggregation.aggregate].insert(aggregation.line);
    }
  }

  std::set<int> removed_columns;
  if (options.strip_columns) {
    for (const auto& [column, rows] : aggregate_rows_per_column) {
      const int numeric_cells = numeric.NumericCountInColumn(column);
      if (numeric_cells > 0 &&
          static_cast<double>(rows.size()) / numeric_cells >=
              options.min_line_coverage) {
        removed_columns.insert(column);
      }
    }
  }
  std::set<int> removed_rows;
  if (options.strip_rows) {
    for (const auto& [row, columns] : aggregate_columns_per_row) {
      const int numeric_cells = numeric.NumericCountInRow(row);
      if (numeric_cells > 0 &&
          static_cast<double>(columns.size()) / numeric_cells >=
              options.min_line_coverage) {
        removed_rows.insert(row);
      }
    }
  }

  NormalizationResult result;
  result.removed_rows.assign(removed_rows.begin(), removed_rows.end());
  result.removed_columns.assign(removed_columns.begin(), removed_columns.end());

  std::vector<int> kept_columns;
  for (int column = 0; column < grid.columns(); ++column) {
    if (removed_columns.count(column) == 0) kept_columns.push_back(column);
  }
  // The kept cells are views into `grid`'s arena; sharing that arena makes
  // the normalized grid a re-indexing, not a copy.
  std::vector<std::string_view> cells;
  std::vector<uint32_t> widths;
  for (int row = 0; row < grid.rows(); ++row) {
    if (removed_rows.count(row) > 0) continue;
    for (int column : kept_columns) cells.push_back(grid.at(row, column));
    widths.push_back(static_cast<uint32_t>(kept_columns.size()));
  }
  result.grid = csv::Grid::FromParsed(std::move(cells), widths, grid.arena());
  return result;
}

}  // namespace aggrecol::core
