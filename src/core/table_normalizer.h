#ifndef AGGRECOL_CORE_TABLE_NORMALIZER_H_
#define AGGRECOL_CORE_TABLE_NORMALIZER_H_

#include <vector>

#include "core/aggregation.h"
#include "csv/grid.h"

namespace aggrecol::core {

/// Result of stripping derived (aggregate) lines from a table.
struct NormalizationResult {
  /// The grid without the removed rows/columns.
  csv::Grid grid;

  /// Original indices of the removed rows and columns, ascending.
  std::vector<int> removed_rows;
  std::vector<int> removed_columns;
};

/// Options for StripAggregates.
struct NormalizeTableOptions {
  /// A line is removed when at least this share of its numeric cells are
  /// aggregates of detected aggregations — whole derived columns ("Total")
  /// go away, while a column with one coincidental aggregate stays.
  double min_line_coverage = 0.5;

  /// Remove aggregate columns (row-wise aggregations) / rows (column-wise).
  bool strip_columns = true;
  bool strip_rows = true;
};

/// One of the paper's motivating downstream applications (Sec. 1 and 5.1):
/// normalizing a verbose table by removing the derived aggregate rows and
/// columns, leaving only base data — e.g. before loading it into a database,
/// where the aggregations can be recomputed.
///
/// A column is considered derived when the share of its numeric cells that
/// act as aggregates of row-wise `aggregations` reaches `min_line_coverage`;
/// rows are handled symmetrically with column-wise aggregations.
NormalizationResult StripAggregates(const csv::Grid& grid,
                                    const std::vector<Aggregation>& aggregations,
                                    const NormalizeTableOptions& options = {});

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_TABLE_NORMALIZER_H_
