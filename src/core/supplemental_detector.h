#ifndef AGGRECOL_CORE_SUPPLEMENTAL_DETECTOR_H_
#define AGGRECOL_CORE_SUPPLEMENTAL_DETECTOR_H_

#include <array>
#include <vector>

#include "core/aggregation.h"
#include "core/function.h"
#include "core/pruning.h"
#include "numfmt/axis_view.h"
#include "util/thread_pool.h"

namespace aggrecol::core {

/// Parameters of the supplemental stage (Alg. 2 inputs).
struct SupplementalConfig {
  /// Functions whose detectors participate (queue contents).
  std::vector<AggregationFunction> functions;

  /// Per-function maximum error level, indexed by IndexOf().
  std::array<double, kAllFunctions.size()> error_levels{};

  /// Line aggregation coverage threshold cov.
  double coverage = 0.7;

  /// Sliding-window size for pairwise detectors.
  int window_size = 10;

  /// Pruning-step toggles, shared with the individual detectors.
  PruningRules rules;

  /// Shared pool for the per-configuration detector runs (each derived file
  /// is processed independently; results are filtered in configuration
  /// order, same results for any thread count). nullptr = sequential.
  /// Non-owning.
  util::ThreadPool* pool = nullptr;

  /// Cooperative cancellation, checked per queue round and threaded into the
  /// nested individual detector runs.
  util::CancellationToken cancel;

  /// Cap on the number of constructed files per detector run. Alg. 2
  /// enumerates every include/exclude configuration of cumulative aggregate
  /// columns (2^k); beyond the cap we keep the all-excluded, all-included,
  /// and low-cardinality configurations (documented deviation, DESIGN.md).
  int max_configurations = 64;
};

/// Supplemental aggregation detection (Alg. 2), row-wise on `grid`:
/// constructs derived files from the original by removing aggregate columns
/// of already-detected aggregations — always for non-cumulative aggregates,
/// optionally for cumulative ones — and re-applies the individual detectors
/// on each derived file, so interrupt aggregations (Fig. 3c) whose ranges
/// were blocked by those aggregates become adjacent and detectable.
/// Detectors re-run whenever any detector finds something new; the final
/// result is pruned with the stage-1 rules.
///
/// `detected` holds the (row-wise, same coordinates) aggregations accepted by
/// the earlier stages; the return value contains only *new* aggregations.
std::vector<Aggregation> DetectSupplementalRowwise(
    const numfmt::AxisView& grid, const SupplementalConfig& config,
    const std::vector<Aggregation>& detected);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_SUPPLEMENTAL_DETECTOR_H_
