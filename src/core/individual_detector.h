#ifndef AGGRECOL_CORE_INDIVIDUAL_DETECTOR_H_
#define AGGRECOL_CORE_INDIVIDUAL_DETECTOR_H_

#include <vector>

#include "core/aggregation.h"
#include "core/pruning.h"
#include "numfmt/axis_view.h"
#include "util/thread_pool.h"

namespace aggrecol::core {

/// Parameters of one individual detector run (Alg. 1 inputs).
struct IndividualConfig {
  /// Maximum tolerable error level e for this function.
  double error_level = 0.0;

  /// Line aggregation coverage threshold cov.
  double coverage = 0.7;

  /// Sliding-window size w for non-commutative functions (Sec. 4.3.2 fixes
  /// it at 10 to cover most difference/division/relative-change ranges).
  int window_size = 10;

  /// Pruning-step toggles (all on by default); see PruningRules.
  PruningRules rules;

  /// Shared pool for the per-row detection scan (rows are independent;
  /// results are concatenated in row order, so output is identical for any
  /// thread count). nullptr = sequential. Non-owning.
  util::ThreadPool* pool = nullptr;

  /// Cooperative cancellation: checked between rows and between iterations;
  /// a tripped token aborts the run with util::CancelledError.
  util::CancellationToken cancel;
};

/// Individual aggregation detection (Alg. 1), line-wise on `grid` (a
/// zero-copy AxisView: pass a NumericGrid directly for row-wise detection, or
/// AxisView::Columns() for column-wise detection without a transposed copy):
/// repeatedly (a) detects adjacent aggregations per row using the strategy
/// matching the function's properties, (b) extends them across rows,
/// (c) prunes spurious pattern groups, and, for cumulative functions,
/// (d) logically removes the detected range columns and iterates so that
/// cumulative aggregations (Fig. 3b) surface in later rounds.
///
/// `initial_active` optionally masks columns excluded up front — the
/// supplemental stage's constructed files (Alg. 2) are expressed this way.
/// Pass nullptr for "all columns active". Results are row-wise in the
/// coordinates of `grid`.
std::vector<Aggregation> DetectIndividualRowwise(
    const numfmt::AxisView& grid, AggregationFunction function,
    const IndividualConfig& config,
    const std::vector<bool>* initial_active = nullptr);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_INDIVIDUAL_DETECTOR_H_
