#include "core/aggregation.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace aggrecol::core {

std::string ToString(Axis axis) { return axis == Axis::kRow ? "row" : "column"; }

double ErrorLevel(double observed, double calculated) {
  if (observed == 0.0) return std::fabs(calculated - observed);
  return std::fabs((calculated - observed) / observed);
}

namespace {

std::string RangeToString(const std::vector<int>& range) {
  std::ostringstream oss;
  oss << "{";
  for (size_t i = 0; i < range.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << range[i];
  }
  oss << "}";
  return oss.str();
}

}  // namespace

std::string ToString(const Aggregation& aggregation) {
  std::ostringstream oss;
  oss << "(" << ToString(aggregation.axis) << ":" << aggregation.line << ", "
      << aggregation.aggregate << " <- " << RangeToString(aggregation.range) << ", "
      << ToString(aggregation.function) << ", e=" << aggregation.error << ")";
  return oss.str();
}

Pattern PatternOf(const Aggregation& aggregation) {
  return Pattern{aggregation.axis, aggregation.aggregate, aggregation.range,
                 aggregation.function};
}

std::string ToString(const Pattern& pattern) {
  std::ostringstream oss;
  oss << ToString(pattern.function) << " [" << ToString(pattern.axis) << "]: "
      << pattern.aggregate << " <- " << RangeToString(pattern.range);
  return oss.str();
}

Aggregation Canonicalize(const Aggregation& aggregation) {
  Aggregation out = aggregation;
  if (out.function == AggregationFunction::kDifference && out.range.size() == 2) {
    // A = B - C  ==>  B = A + C.
    const int a = out.aggregate;
    const int b = out.range[0];
    const int c = out.range[1];
    out.aggregate = b;
    out.range = {a, c};
    out.function = AggregationFunction::kSum;
  }
  if (TraitsOf(out.function).commutative) {
    std::sort(out.range.begin(), out.range.end());
  }
  return out;
}

bool AggregationLess(const Aggregation& a, const Aggregation& b) {
  if (a.axis != b.axis) return a.axis < b.axis;
  if (a.line != b.line) return a.line < b.line;
  if (a.aggregate != b.aggregate) return a.aggregate < b.aggregate;
  if (a.function != b.function) return a.function < b.function;
  return a.range < b.range;
}

std::vector<Aggregation> CanonicalizeAll(const std::vector<Aggregation>& aggregations) {
  std::vector<Aggregation> out;
  out.reserve(aggregations.size());
  for (const auto& aggregation : aggregations) {
    out.push_back(Canonicalize(aggregation));
  }
  std::sort(out.begin(), out.end(), AggregationLess);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace aggrecol::core
