#include "core/extension.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "core/line_index.h"

namespace aggrecol::core {
namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();
constexpr double kInflate = 1.0 + 32.0 * kEps;

// One pattern to re-validate across rows, with everything that is
// row-invariant hoisted out of the row loop.
struct PatternPlan {
  const Pattern* pattern = nullptr;
  const std::vector<int>* covered_rows = nullptr;  // sorted
  bool pairwise = false;
  // Ascending range (always true for adjacency-produced commutative
  // patterns); only then can compact-space contiguity make the range a
  // prefix span.
  bool ascending = false;
  std::vector<Aggregation> accepted;  // per-pattern hits, in row order
};

// Screens pattern `plan` against `row` of the compacted `index` and, when the
// exact replay confirms, records the validated aggregation. The screens are
// the same certain-miss bounds as the stage-1 kernels: commutative ranges
// that are contiguous in compact space use the O(1) prefix-sum test
// (adjacency_strategy.cc); pairwise ranges use the division-free pair bounds
// (window_strategy.cc). Every possible accept replays the reference
// Apply()+ErrorLevel() arithmetic over the same values in the same order, so
// the recorded aggregation and error are bit-identical to the naive walk.
void ExtendRowWithIndex(const numfmt::AxisView& grid, const LineIndex& index,
                        int row, double error_level, Axis axis,
                        PatternPlan& plan) {
  const Pattern& pattern = *plan.pattern;
  const double observed = grid.value(row, pattern.aggregate);
  const double threshold = (error_level + kErrorSlack) *
                           (observed != 0.0 ? std::fabs(observed) : 1.0);
  const int k = static_cast<int>(pattern.range.size());
  double calculated = 0.0;
  if (plan.pairwise) {
    const int b_pos = index.PosOfColumn(pattern.range[0]);
    const int c_pos = index.PosOfColumn(pattern.range[1]);
    if (b_pos < 0 || c_pos < 0) return;  // unusable range cell: reference skips
    const double b = index.value(b_pos);
    const double c = index.value(c_pos);
    switch (pattern.function) {
      case AggregationFunction::kDifference: {
        const double diff = b - c;
        if (std::fabs(diff - observed) >
            (threshold + kEps * std::fabs(diff)) * kInflate) {
          return;
        }
        break;
      }
      case AggregationFunction::kDivision: {
        if (c == 0.0) return;  // reference: ApplyPairwise is undefined
        const double target = observed * c;
        if (std::fabs(b - target) >
            (threshold * std::fabs(c) + kEps * std::fabs(target)) * kInflate) {
          return;
        }
        break;
      }
      case AggregationFunction::kRelativeChange: {
        if (b == 0.0) return;  // reference: ApplyPairwise is undefined
        const double diff = c - b;
        const double target = observed * b;
        if (std::fabs(diff - target) >
            (threshold * std::fabs(b) +
             kEps * (std::fabs(diff) + std::fabs(target))) *
                kInflate) {
          return;
        }
        break;
      }
      default:
        break;
    }
    const auto exact = ApplyPairwise(pattern.function, b, c);
    if (!exact.has_value()) return;
    calculated = *exact;
  } else {
    // Commutative: every range cell must be usable in this row, exactly as
    // the reference walk requires; gather compact positions and contiguity
    // in one pass over the (already compacted) range.
    int first_pos = -1;
    int expected = -1;
    bool contiguous = plan.ascending;
    for (int col : pattern.range) {
      const int pos = index.PosOfColumn(col);
      if (pos < 0) return;  // unusable range cell: reference skips the row
      if (expected >= 0 && pos != expected) contiguous = false;
      if (first_pos < 0) first_pos = pos;
      expected = pos + 1;
    }
    const double scale =
        pattern.function == AggregationFunction::kAverage
            ? static_cast<double>(k)
            : 1.0;
    if (contiguous) {
      // O(1) certain-miss screen, identical in form to the adjacency kernel.
      const int lo = first_pos;
      const int hi = first_pos + k;
      const double target = observed * scale;
      const double fast_sum = index.PrefixSum(lo, hi);
      const double gap = std::fabs(fast_sum - target);
      const double drift = index.SumErrorBound(hi) +
                           kEps * (std::fabs(fast_sum) + std::fabs(target));
      if (gap > (threshold * scale + drift) * kInflate) return;  // certain miss
      calculated = index.CompensatedSum(lo, hi, /*reverse=*/false) / scale;
    } else {
      // Non-contiguous (an interleaved usable cell outside the range, or a
      // non-ascending range): no prefix span exists; replay the reference
      // walk over the compacted values in range order.
      KahanAccumulator accumulator;
      for (int col : pattern.range) {
        accumulator.Add(index.value(index.PosOfColumn(col)));
      }
      calculated = accumulator.Total() / scale;
    }
  }
  const double error = ErrorLevel(observed, calculated);
  if (!WithinErrorLevel(error, error_level)) return;
  Aggregation aggregation;
  aggregation.axis = axis;
  aggregation.line = row;
  aggregation.aggregate = pattern.aggregate;
  aggregation.range = pattern.range;
  aggregation.function = pattern.function;
  aggregation.error = error;
  plan.accepted.push_back(std::move(aggregation));
}

}  // namespace

std::vector<Aggregation> ExtendAggregationsNaive(
    const numfmt::AxisView& grid, const std::vector<bool>& active_columns,
    const std::vector<Aggregation>& detected, double error_level) {
  // Pattern -> set of rows already covered.
  std::map<Pattern, std::vector<int>> covered;
  for (const auto& aggregation : detected) {
    covered[PatternOf(aggregation)].push_back(aggregation.line);
  }

  std::vector<Aggregation> out = detected;
  for (auto& [pattern, rows] : covered) {
    std::sort(rows.begin(), rows.end());
    if (!active_columns[pattern.aggregate]) continue;
    for (int row = 0; row < grid.rows(); ++row) {
      if (std::binary_search(rows.begin(), rows.end(), row)) continue;
      if (!grid.IsNumeric(row, pattern.aggregate)) continue;
      bool usable = true;
      std::vector<double> values;
      values.reserve(pattern.range.size());
      for (int col : pattern.range) {
        if (!active_columns[col] || !grid.IsRangeUsable(row, col)) {
          usable = false;
          break;
        }
        values.push_back(grid.value(row, col));
      }
      if (!usable) continue;
      const auto calculated = Apply(pattern.function, values);
      if (!calculated.has_value()) continue;
      const double error = ErrorLevel(grid.value(row, pattern.aggregate), *calculated);
      if (WithinErrorLevel(error, error_level)) {
        Aggregation aggregation;
        aggregation.axis = pattern.axis;
        aggregation.line = row;
        aggregation.aggregate = pattern.aggregate;
        aggregation.range = pattern.range;
        aggregation.function = pattern.function;
        aggregation.error = error;
        out.push_back(std::move(aggregation));
      }
    }
  }
  return out;
}

std::vector<Aggregation> ExtendAggregations(const numfmt::AxisView& grid,
                                            const std::vector<bool>& active_columns,
                                            const std::vector<Aggregation>& detected,
                                            double error_level) {
  // Pattern -> set of rows already covered (identical grouping and ordering
  // to the naive walk: std::map iteration fixes the emission order).
  std::map<Pattern, std::vector<int>> covered;
  for (const auto& aggregation : detected) {
    covered[PatternOf(aggregation)].push_back(aggregation.line);
  }

  // Row-invariant pattern filtering: the active mask does not vary by row,
  // so a pattern with an inactive aggregate or any inactive range column can
  // never validate anywhere — the naive walk re-discovers this per row.
  std::vector<PatternPlan> plans;
  plans.reserve(covered.size());
  size_t range_cells = 0;
  for (auto& [pattern, rows] : covered) {
    std::sort(rows.begin(), rows.end());
    if (!active_columns[pattern.aggregate]) continue;
    bool all_active = true;
    for (int col : pattern.range) {
      if (!active_columns[col]) {
        all_active = false;
        break;
      }
    }
    if (!all_active) continue;
    const FunctionTraits traits = TraitsOf(pattern.function);
    if (pattern.range.empty()) continue;                         // Apply: nullopt
    if (traits.pairwise && pattern.range.size() != 2) continue;  // Apply: nullopt
    PatternPlan plan;
    plan.pattern = &pattern;
    plan.covered_rows = &rows;
    plan.pairwise = traits.pairwise;
    plan.ascending = std::is_sorted(pattern.range.begin(), pattern.range.end());
    plans.push_back(std::move(plan));
    range_cells += pattern.range.size();
  }

  std::vector<Aggregation> out = detected;
  if (plans.empty()) return out;

  // Cost model: the indexed path pays one O(columns) compaction per row
  // (each compacted cell costs roughly 3x a naively gathered one — mask and
  // kind branches plus prefix/drift bookkeeping) and amortizes it over every
  // pattern, where it saves that pattern's per-row gather vector allocation
  // and, on miss rows, its whole range walk. Switch to the index only when
  // the saved work clearly exceeds the compaction; both paths are
  // differentially bit-identical, so this is purely about cost, never about
  // results.
  const bool use_index = range_cells + 16 * plans.size() >=
                         3 * static_cast<size_t>(grid.columns());
  if (!use_index) {
    return ExtendAggregationsNaive(grid, active_columns, detected, error_level);
  }

  LineIndex index;
  for (int row = 0; row < grid.rows(); ++row) {
    index.Build(grid, active_columns, row);
    for (PatternPlan& plan : plans) {
      if (std::binary_search(plan.covered_rows->begin(),
                             plan.covered_rows->end(), row)) {
        continue;
      }
      if (!grid.IsNumeric(row, plan.pattern->aggregate)) continue;
      ExtendRowWithIndex(grid, index, row, error_level, plan.pattern->axis,
                         plan);
    }
  }

  // Emit in the naive order: patterns in map order, rows ascending within
  // each pattern.
  for (PatternPlan& plan : plans) {
    out.insert(out.end(), std::make_move_iterator(plan.accepted.begin()),
               std::make_move_iterator(plan.accepted.end()));
  }
  return out;
}

}  // namespace aggrecol::core
