#include "core/extension.h"

#include <algorithm>
#include <map>

namespace aggrecol::core {

std::vector<Aggregation> ExtendAggregations(const numfmt::AxisView& grid,
                                            const std::vector<bool>& active_columns,
                                            const std::vector<Aggregation>& detected,
                                            double error_level) {
  // Pattern -> set of rows already covered.
  std::map<Pattern, std::vector<int>> covered;
  for (const auto& aggregation : detected) {
    covered[PatternOf(aggregation)].push_back(aggregation.line);
  }

  std::vector<Aggregation> out = detected;
  for (auto& [pattern, rows] : covered) {
    std::sort(rows.begin(), rows.end());
    if (!active_columns[pattern.aggregate]) continue;
    for (int row = 0; row < grid.rows(); ++row) {
      if (std::binary_search(rows.begin(), rows.end(), row)) continue;
      if (!grid.IsNumeric(row, pattern.aggregate)) continue;
      bool usable = true;
      std::vector<double> values;
      values.reserve(pattern.range.size());
      for (int col : pattern.range) {
        if (!active_columns[col] || !grid.IsRangeUsable(row, col)) {
          usable = false;
          break;
        }
        values.push_back(grid.value(row, col));
      }
      if (!usable) continue;
      const auto calculated = Apply(pattern.function, values);
      if (!calculated.has_value()) continue;
      const double error = ErrorLevel(grid.value(row, pattern.aggregate), *calculated);
      if (WithinErrorLevel(error, error_level)) {
        Aggregation aggregation;
        aggregation.axis = pattern.axis;
        aggregation.line = row;
        aggregation.aggregate = pattern.aggregate;
        aggregation.range = pattern.range;
        aggregation.function = pattern.function;
        aggregation.error = error;
        out.push_back(std::move(aggregation));
      }
    }
  }
  return out;
}

}  // namespace aggrecol::core
