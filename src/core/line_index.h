#ifndef AGGRECOL_CORE_LINE_INDEX_H_
#define AGGRECOL_CORE_LINE_INDEX_H_

#include <cstdint>
#include <vector>

#include "numfmt/axis_view.h"

namespace aggrecol::core {

/// Per-line scratch index for the stage-1 hot loops: the numeric-run index
/// plus prefix sums of one grid line.
///
/// The naive scans walk the raw grid once per aggregate candidate, paying the
/// active-mask branch, the CellKind branch, and (on the column axis) a strided
/// load for every cell they merely skip. Build() pays those costs exactly once
/// per line, compacting the range-usable cells — the adjacency list of
/// Sec. 3.1 — into dense arrays:
///
///   cols[p]     original view column of the p-th usable cell
///   value(p)    its numeric value
///   is_numeric  whether it may serve as an aggregate
///
/// plus two prefix arrays over the compacted values (`prefix` of the values,
/// `prefix_abs` of their magnitudes), so any candidate range sum is a O(1)
/// subtraction and its worst-case rounding is boundable. Consecutive usable
/// cells are adjacent in compact space, so every adjacency-list range is a
/// contiguous [begin, end) span here.
class LineIndex {
 public:
  /// Indexes line `line` of `view`, honoring the `active` column mask.
  /// Reuses the buffers across calls; callers keep one instance per scan.
  void Build(const numfmt::AxisView& view, const std::vector<bool>& active,
             int line);

  /// Number of usable (range-eligible) cells in the line.
  int size() const { return static_cast<int>(cols_.size()); }

  /// Original view column of compact position `pos`.
  int col(int pos) const { return cols_[static_cast<size_t>(pos)]; }

  double value(int pos) const { return values_[static_cast<size_t>(pos)]; }

  bool is_numeric(int pos) const {
    return numeric_[static_cast<size_t>(pos)] != 0;
  }

  /// Sum of values over compact positions [begin, end) as one prefix
  /// subtraction. O(1); see SumErrorBound for how far it can sit from the
  /// compensated walk over the same span.
  double PrefixSum(int begin, int end) const {
    return prefix_[static_cast<size_t>(end)] - prefix_[static_cast<size_t>(begin)];
  }

  /// Conservative bound on |PrefixSum(begin, end) - compensated walk sum|
  /// for any span ending at `end`. Both prefix entries carry accumulated
  /// rounding proportional to the *whole-prefix* magnitude mass (not just the
  /// span's), so the bound uses prefix_abs at the span end; the linear factor
  /// covers the classic gamma_n forward-error term of n sequential adds, the
  /// final subtraction, and the O(eps) error of a compensated sum. The value
  /// is precomputed per position in Build(), so the hot screens pay one load.
  double SumErrorBound(int end) const { return drift_[static_cast<size_t>(end)]; }

  /// Compensated (Kahan) sum of values over compact positions [begin, end),
  /// in ascending order, or descending when `reverse` — the exact operation
  /// sequence of the retained naive adjacency walk in each direction, so a
  /// fallback through this path is bit-identical to the reference scan.
  double CompensatedSum(int begin, int end, bool reverse) const;

 private:
  std::vector<int> cols_;
  std::vector<double> values_;
  std::vector<uint8_t> numeric_;
  std::vector<double> prefix_;      // prefix_[p] = sum of values_[0..p)
  std::vector<double> prefix_abs_;  // same over |values_|
  std::vector<double> drift_;       // SumErrorBound(p), precomputed
};

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_LINE_INDEX_H_
