#ifndef AGGRECOL_CORE_LINE_INDEX_H_
#define AGGRECOL_CORE_LINE_INDEX_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "numfmt/axis_view.h"

namespace aggrecol::core {

/// Per-line scratch index for the stage-1 hot loops: the numeric-run index
/// plus prefix sums of one grid line.
///
/// The naive scans walk the raw grid once per aggregate candidate, paying the
/// active-mask branch, the CellKind branch, and (on the column axis) a strided
/// load for every cell they merely skip. Build() pays those costs exactly once
/// per line, compacting the range-usable cells — the adjacency list of
/// Sec. 3.1 — into dense arrays:
///
///   cols[p]     original view column of the p-th usable cell
///   value(p)    its numeric value
///   is_numeric  whether it may serve as an aggregate
///
/// plus two prefix arrays over the compacted values (`prefix` of the values,
/// `prefix_abs` of their magnitudes), so any candidate range sum is a O(1)
/// subtraction and its worst-case rounding is boundable. Consecutive usable
/// cells are adjacent in compact space, so every adjacency-list range is a
/// contiguous [begin, end) span here.
///
/// Build() also records the inverse map (PosOfColumn), which the extension
/// pass uses to locate a detected pattern's columns in another line, and
/// BuildSpanBounds() optionally adds an O(1) range-min/max table for the
/// window batch screens.
class LineIndex {
 public:
  /// Indexes line `line` of `view`, honoring the `active` column mask.
  /// Reuses the buffers across calls; callers keep one instance per scan.
  void Build(const numfmt::AxisView& view, const std::vector<bool>& active,
             int line);

  /// Number of usable (range-eligible) cells in the line.
  int size() const { return static_cast<int>(cols_.size()); }

  /// Original view column of compact position `pos`.
  int col(int pos) const { return cols_[static_cast<size_t>(pos)]; }

  /// Compact position of original view column `col`, or -1 when that column
  /// is inactive or not range-usable in the indexed line.
  int PosOfColumn(int col) const { return pos_of_col_[static_cast<size_t>(col)]; }

  double value(int pos) const { return values_[static_cast<size_t>(pos)]; }

  bool is_numeric(int pos) const {
    return numeric_[static_cast<size_t>(pos)] != 0;
  }

  /// Sum of values over compact positions [begin, end) as one prefix
  /// subtraction. O(1); see SumErrorBound for how far it can sit from the
  /// compensated walk over the same span.
  double PrefixSum(int begin, int end) const {
    return prefix_[static_cast<size_t>(end)] - prefix_[static_cast<size_t>(begin)];
  }

  /// Conservative bound on |PrefixSum(begin, end) - compensated walk sum|
  /// for any span ending at `end`. Both prefix entries carry accumulated
  /// rounding proportional to the *whole-prefix* magnitude mass (not just the
  /// span's), so the bound uses prefix_abs at the span end; the linear factor
  /// covers the classic gamma_n forward-error term of n sequential adds, the
  /// final subtraction, and the O(eps) error of a compensated sum. The value
  /// is precomputed per position in Build(), so the hot screens pay one load.
  /// Never zero for a non-empty span: see the floor note in Build().
  double SumErrorBound(int end) const { return drift_[static_cast<size_t>(end)]; }

  /// Compensated (Kahan) sum of values over compact positions [begin, end),
  /// in ascending order, or descending when `reverse` — the exact operation
  /// sequence of the retained naive adjacency walk in each direction, so a
  /// fallback through this path is bit-identical to the reference scan.
  double CompensatedSum(int begin, int end, bool reverse) const;

  /// Builds the O(1) span-min/max table (sparse table over the compacted
  /// values). Call once after Build() when SpanMin/SpanMax are needed — the
  /// window batch screens do; the adjacency scan does not and skips the
  /// O(n log n) build. Buffers are reused across calls.
  void BuildSpanBounds();

  /// Minimum value over compact positions [begin, end). Requires a prior
  /// BuildSpanBounds() for this line; the span must be non-empty.
  double SpanMin(int begin, int end) const {
    const int level = SpanLevel(end - begin);
    const size_t stride = values_.size();
    return MinOf(span_min_[static_cast<size_t>(level) * stride +
                           static_cast<size_t>(begin)],
                 span_min_[static_cast<size_t>(level) * stride +
                           static_cast<size_t>(end - (1 << level))]);
  }

  /// Maximum value over compact positions [begin, end); same contract as
  /// SpanMin.
  double SpanMax(int begin, int end) const {
    const int level = SpanLevel(end - begin);
    const size_t stride = values_.size();
    return MaxOf(span_max_[static_cast<size_t>(level) * stride +
                           static_cast<size_t>(begin)],
                 span_max_[static_cast<size_t>(level) * stride +
                           static_cast<size_t>(end - (1 << level))]);
  }

 private:
  static int SpanLevel(int length) {
    return std::bit_width(static_cast<unsigned>(length)) - 1;
  }
  static double MinOf(double a, double b) { return a < b ? a : b; }
  static double MaxOf(double a, double b) { return a > b ? a : b; }

  std::vector<int> cols_;
  std::vector<double> values_;
  std::vector<uint8_t> numeric_;
  std::vector<double> prefix_;      // prefix_[p] = sum of values_[0..p)
  std::vector<double> prefix_abs_;  // same over |values_|
  std::vector<double> drift_;       // SumErrorBound(p), precomputed
  std::vector<int> pos_of_col_;     // view column -> compact position (-1)
  std::vector<double> span_min_;    // sparse table, level-major, stride size()
  std::vector<double> span_max_;
};

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_LINE_INDEX_H_
