#include "core/individual_detector.h"

#include <algorithm>
#include <future>
#include <set>

#include "core/adjacency_strategy.h"
#include "core/extension.h"
#include "core/pruning.h"
#include "core/window_strategy.h"

namespace aggrecol::core {

std::vector<Aggregation> DetectIndividualRowwise(
    const numfmt::NumericGrid& grid, AggregationFunction function,
    const IndividualConfig& config, const std::vector<bool>* initial_active) {
  const FunctionTraits traits = TraitsOf(function);
  std::vector<bool> active = initial_active
                                 ? *initial_active
                                 : std::vector<bool>(grid.columns(), true);

  std::vector<Aggregation> detected;
  std::set<Aggregation, bool (*)(const Aggregation&, const Aggregation&)> detected_set(
      &AggregationLess);
  while (true) {
    // Lines 4-7: per-row adjacent detection with the appropriate strategy.
    // Rows are independent; with threads > 1 they are scanned in parallel
    // chunks and concatenated in row order (the Sec. 4.4 parallelism).
    auto scan_row = [&](int row) {
      return traits.commutative
                 ? DetectAdjacentCommutative(grid, active, row, function,
                                             config.error_level)
                 : DetectWindowPairwise(grid, active, row, function,
                                        config.error_level, config.window_size);
    };
    std::vector<Aggregation> round;
    if (config.threads > 1 && grid.rows() > 1) {
      const int chunk_count = std::min(config.threads, grid.rows());
      const int chunk_size = (grid.rows() + chunk_count - 1) / chunk_count;
      std::vector<std::future<std::vector<Aggregation>>> futures;
      for (int chunk = 0; chunk < chunk_count; ++chunk) {
        const int begin = chunk * chunk_size;
        const int end = std::min(grid.rows(), begin + chunk_size);
        futures.push_back(std::async(std::launch::async, [&scan_row, begin, end] {
          std::vector<Aggregation> chunk_results;
          for (int row = begin; row < end; ++row) {
            auto row_results = scan_row(row);
            chunk_results.insert(chunk_results.end(), row_results.begin(),
                                 row_results.end());
          }
          return chunk_results;
        }));
      }
      for (auto& future : futures) {
        auto chunk_results = future.get();
        round.insert(round.end(), chunk_results.begin(), chunk_results.end());
      }
    } else {
      for (int row = 0; row < grid.rows(); ++row) {
        auto row_results = scan_row(row);
        round.insert(round.end(), row_results.begin(), row_results.end());
      }
    }

    // Line 8: extension across rows.
    round = ExtendAggregations(grid, active, round, config.error_level);

    // Drop anything already found in a previous iteration.
    std::erase_if(round, [&detected_set](const Aggregation& candidate) {
      return detected_set.count(candidate) > 0;
    });

    // Lines 9-10.
    if (round.empty()) break;

    // Line 11: prune spurious pattern groups.
    round = PruneIndividual(grid, round, config.coverage, config.rules);
    if (round.empty()) break;  // nothing survived; iterating again would repeat

    detected.insert(detected.end(), round.begin(), round.end());
    for (const auto& aggregation : round) detected_set.insert(aggregation);

    // Lines 13-15: only cumulative functions can stack further aggregations
    // on top of detected aggregates; their range columns are consumed.
    if (!traits.cumulative) break;
    for (const auto& aggregation : round) {
      for (int col : aggregation.range) active[col] = false;
    }
  }
  return detected;
}

}  // namespace aggrecol::core
