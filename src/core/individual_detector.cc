#include "core/individual_detector.h"

#include <algorithm>
#include <set>

#include "core/adjacency_strategy.h"
#include "core/extension.h"
#include "core/pruning.h"
#include "core/window_strategy.h"
#include "obs/metrics.h"

namespace aggrecol::core {

std::vector<Aggregation> DetectIndividualRowwise(
    const numfmt::AxisView& grid, AggregationFunction function,
    const IndividualConfig& config, const std::vector<bool>* initial_active) {
  const FunctionTraits traits = TraitsOf(function);
  std::vector<bool> active = initial_active
                                 ? *initial_active
                                 : std::vector<bool>(grid.columns(), true);

  std::vector<Aggregation> detected;
  std::set<Aggregation, bool (*)(const Aggregation&, const Aggregation&)> detected_set(
      &AggregationLess);
  while (true) {
    config.cancel.ThrowIfCancelled();

    // Lines 4-7: per-row adjacent detection with the appropriate strategy.
    // Rows are independent; with a pool they are scanned in parallel chunks
    // and concatenated in row order (the Sec. 4.4 parallelism), so the
    // output is identical for any thread count.
    auto scan_row = [&](int row) {
      return traits.commutative
                 ? DetectAdjacentCommutative(grid, active, row, function,
                                             config.error_level)
                 : DetectWindowPairwise(grid, active, row, function,
                                        config.error_level, config.window_size);
    };
    const int chunk_count = std::max(
        1, config.pool != nullptr
               ? std::min(config.pool->thread_count() * 2, grid.rows())
               : 1);
    const int chunk_size = (grid.rows() + chunk_count - 1) / chunk_count;
    const auto chunks = util::ParallelMap(
        config.pool, static_cast<size_t>(chunk_count),
        [&](size_t chunk) {
          const int begin = static_cast<int>(chunk) * chunk_size;
          const int end = std::min(grid.rows(), begin + chunk_size);
          std::vector<Aggregation> chunk_results;
          for (int row = begin; row < end; ++row) {
            config.cancel.ThrowIfCancelled();
            auto row_results = scan_row(row);
            chunk_results.insert(chunk_results.end(), row_results.begin(),
                                 row_results.end());
          }
          return chunk_results;
        });
    std::vector<Aggregation> round;
    for (const auto& chunk_results : chunks) {
      round.insert(round.end(), chunk_results.begin(), chunk_results.end());
    }

    // Candidate accounting happens here, after the chunks are merged back on
    // the calling thread, so the counts are position-independent and identical
    // for any thread count.
    const bool obs_on = obs::Registry::enabled();
    if (obs_on) {
      obs::Count("individual.rounds");
      obs::Count(traits.commutative ? "individual.candidates.adjacency"
                                    : "individual.candidates.window",
                 round.size());
    }

    // Line 8: extension across rows.
    round = ExtendAggregations(grid, active, round, config.error_level);
    if (obs_on) obs::Count("individual.candidates.extended", round.size());

    // Drop anything already found in a previous iteration.
    std::erase_if(round, [&detected_set](const Aggregation& candidate) {
      return detected_set.count(candidate) > 0;
    });

    // Lines 9-10.
    if (round.empty()) break;

    // Line 11: prune spurious pattern groups.
    round = PruneIndividual(grid, round, config.coverage, config.rules);
    if (obs_on) obs::Count("individual.accepted", round.size());
    if (round.empty()) break;  // nothing survived; iterating again would repeat

    detected.insert(detected.end(), round.begin(), round.end());
    for (const auto& aggregation : round) detected_set.insert(aggregation);

    // Lines 13-15: only cumulative functions can stack further aggregations
    // on top of detected aggregates; their range columns are consumed.
    if (!traits.cumulative) break;
    for (const auto& aggregation : round) {
      for (int col : aggregation.range) active[col] = false;
    }
  }
  return detected;
}

}  // namespace aggrecol::core
