#ifndef AGGRECOL_CORE_ADJACENCY_STRATEGY_H_
#define AGGRECOL_CORE_ADJACENCY_STRATEGY_H_

#include <vector>

#include "core/aggregation.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol::core {

/// Adjacency-list strategy (Sec. 3.1) for commutative functions (sum,
/// average): for every numeric aggregate candidate in `row`, grow an
/// adjacency list of the closest range-usable cells on each side — skipping
/// text cells and inactive columns — and report the first list whose
/// aggregated value matches the candidate within `error_level`. The search of
/// a side stops greedily at the first match (the extension step later
/// recovers longer true ranges; cf. the Figure 5 discussion).
///
/// `active_columns` masks columns logically removed by the cumulative
/// iteration of Alg. 1 or by the supplemental stage's constructed files.
/// Results are row-wise in the coordinates of `grid`.
std::vector<Aggregation> DetectAdjacentCommutative(
    const numfmt::NumericGrid& grid, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_ADJACENCY_STRATEGY_H_
