#ifndef AGGRECOL_CORE_ADJACENCY_STRATEGY_H_
#define AGGRECOL_CORE_ADJACENCY_STRATEGY_H_

#include <vector>

#include "core/aggregation.h"
#include "numfmt/axis_view.h"

namespace aggrecol::core {

/// Adjacency-list strategy (Sec. 3.1) for commutative functions (sum,
/// average): for every numeric aggregate candidate in `row`, grow an
/// adjacency list of the closest range-usable cells on each side — skipping
/// text cells and inactive columns — and report the first list whose
/// aggregated value matches the candidate within `error_level`. The search of
/// a side stops greedily at the first match (the extension step later
/// recovers longer true ranges; cf. the Figure 5 discussion).
///
/// `active_columns` masks columns logically removed by the cumulative
/// iteration of Alg. 1 or by the supplemental stage's constructed files.
/// Results are row-wise in the coordinates of `view`.
///
/// This is the prefix-sum kernel: the row is compacted once into a LineIndex,
/// each candidate range sum becomes a O(1) prefix subtraction, and only
/// candidates the conservative rounding bound cannot reject fall back to the
/// compensated per-element walk. Detection decisions and reported error
/// levels are bit-identical to DetectAdjacentCommutativeNaive (enforced by
/// tests/stage1_kernel_test.cc).
std::vector<Aggregation> DetectAdjacentCommutative(
    const numfmt::AxisView& view, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level);

/// The retained reference implementation: the original per-candidate walk
/// over the raw view, summing with Kahan compensation. Kept for the
/// differential test and the stage-1 benchmark; the pipeline runs the kernel.
std::vector<Aggregation> DetectAdjacentCommutativeNaive(
    const numfmt::AxisView& view, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_ADJACENCY_STRATEGY_H_
