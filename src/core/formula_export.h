#ifndef AGGRECOL_CORE_FORMULA_EXPORT_H_
#define AGGRECOL_CORE_FORMULA_EXPORT_H_

#include <string>
#include <vector>

#include "core/aggregation.h"
#include "core/composite_detector.h"

namespace aggrecol::core {

/// A reconstructed spreadsheet formula for one aggregate cell.
struct CellFormula {
  int row = 0;
  int column = 0;
  /// A1-notation formula, e.g. "=SUM(C3:E3)" or "=B4/F4".
  std::string formula;
};

/// A1-notation name of a cell, e.g. (0,0) -> "A1", (2,27) -> "AB3".
std::string CellName(int row, int column);

/// Reconstructs the spreadsheet formula a detected aggregation stands for:
/// contiguous commutative ranges render as range references (=SUM(B2:E2)),
/// scattered ones as argument lists (=SUM(B2;D2;F2)); pairwise functions
/// render as arithmetic (=B2-C2, =B2/C2, =(C2-B2)/B2).
///
/// This is the paper's third motivating use case (Sec. 1): many verbose CSV
/// files were exported from spreadsheets with the formulas stripped, and
/// formula-smell detectors need surrounding formulas as input — detected
/// aggregations supply them.
CellFormula FormulaFor(const Aggregation& aggregation);

/// Formula for a composite sum-then-divide aggregation, e.g.
/// "=SUM(B2:D2)/E2".
CellFormula FormulaFor(const CompositeAggregation& composite);

/// Formulas for a whole detection result, sorted by (row, column).
std::vector<CellFormula> ExportFormulas(const std::vector<Aggregation>& aggregations);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_FORMULA_EXPORT_H_
