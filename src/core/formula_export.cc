#include "core/formula_export.h"

#include <algorithm>

namespace aggrecol::core {
namespace {

// (row, column) of an aggregation's cell index under its axis.
std::pair<int, int> CellOf(const Aggregation& aggregation, int index) {
  return aggregation.axis == Axis::kRow
             ? std::pair<int, int>{aggregation.line, index}
             : std::pair<int, int>{index, aggregation.line};
}

std::string Name(const std::pair<int, int>& cell) {
  return CellName(cell.first, cell.second);
}

// Renders a commutative range as "A1:C1" when the indices are contiguous and
// as "A1;B1;D1" otherwise. `indices` are cross-axis indices.
std::string RangeReference(const Aggregation& aggregation, std::vector<int> indices) {
  std::sort(indices.begin(), indices.end());
  bool contiguous = true;
  for (size_t i = 1; i < indices.size(); ++i) {
    if (indices[i] != indices[i - 1] + 1) {
      contiguous = false;
      break;
    }
  }
  if (contiguous && indices.size() > 1) {
    return Name(CellOf(aggregation, indices.front())) + ":" +
           Name(CellOf(aggregation, indices.back()));
  }
  std::string out;
  for (size_t i = 0; i < indices.size(); ++i) {
    if (i > 0) out += ";";
    out += Name(CellOf(aggregation, indices[i]));
  }
  return out;
}

}  // namespace

std::string CellName(int row, int column) {
  std::string letters;
  int remaining = column;
  while (true) {
    letters.insert(letters.begin(), static_cast<char>('A' + remaining % 26));
    remaining = remaining / 26 - 1;
    if (remaining < 0) break;
  }
  return letters + std::to_string(row + 1);
}

CellFormula FormulaFor(const Aggregation& aggregation) {
  CellFormula cell;
  const auto position = CellOf(aggregation, aggregation.aggregate);
  cell.row = position.first;
  cell.column = position.second;
  switch (aggregation.function) {
    case AggregationFunction::kSum:
      cell.formula = "=SUM(" + RangeReference(aggregation, aggregation.range) + ")";
      break;
    case AggregationFunction::kAverage:
      cell.formula =
          "=AVERAGE(" + RangeReference(aggregation, aggregation.range) + ")";
      break;
    case AggregationFunction::kDifference:
      cell.formula = "=" + Name(CellOf(aggregation, aggregation.range[0])) + "-" +
                     Name(CellOf(aggregation, aggregation.range[1]));
      break;
    case AggregationFunction::kDivision:
      cell.formula = "=" + Name(CellOf(aggregation, aggregation.range[0])) + "/" +
                     Name(CellOf(aggregation, aggregation.range[1]));
      break;
    case AggregationFunction::kRelativeChange: {
      const std::string b = Name(CellOf(aggregation, aggregation.range[0]));
      const std::string c = Name(CellOf(aggregation, aggregation.range[1]));
      cell.formula = "=(" + c + "-" + b + ")/" + b;
      break;
    }
  }
  return cell;
}

CellFormula FormulaFor(const CompositeAggregation& composite) {
  // Reuse the sum rendering through a temporary aggregation view.
  Aggregation sum_view;
  sum_view.axis = composite.axis;
  sum_view.line = composite.line;
  sum_view.aggregate = composite.aggregate;
  sum_view.range = composite.numerator;
  sum_view.function = AggregationFunction::kSum;

  CellFormula cell = FormulaFor(sum_view);
  const auto denominator =
      composite.axis == Axis::kRow
          ? std::pair<int, int>{composite.line, composite.denominator}
          : std::pair<int, int>{composite.denominator, composite.line};
  cell.formula = cell.formula.substr(1);  // drop '='
  cell.formula =
      "=" + cell.formula + "/" + CellName(denominator.first, denominator.second);
  return cell;
}

std::vector<CellFormula> ExportFormulas(const std::vector<Aggregation>& aggregations) {
  std::vector<CellFormula> formulas;
  formulas.reserve(aggregations.size());
  for (const auto& aggregation : aggregations) {
    formulas.push_back(FormulaFor(aggregation));
  }
  std::sort(formulas.begin(), formulas.end(),
            [](const CellFormula& a, const CellFormula& b) {
              if (a.row != b.row) return a.row < b.row;
              if (a.column != b.column) return a.column < b.column;
              return a.formula < b.formula;
            });
  return formulas;
}

}  // namespace aggrecol::core
