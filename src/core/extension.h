#ifndef AGGRECOL_CORE_EXTENSION_H_
#define AGGRECOL_CORE_EXTENSION_H_

#include <vector>

#include "core/aggregation.h"
#include "numfmt/axis_view.h"

namespace aggrecol::core {

/// Aggregation extension (Alg. 1, line 8): for every pattern among the
/// detected aggregations, check whether candidates with the same pattern in
/// the *other* rows are also valid aggregations, and add the ones that are.
/// This recovers rows where the greedy adjacency search terminated early on a
/// coincidental shorter range (the Figure 5 / Table 2 scenario).
///
/// Validity of a pattern in a row requires a numeric aggregate cell, all
/// range cells range-usable and active, a defined function value, and an
/// error level within `error_level`. Returns the union of `detected` and the
/// newly validated aggregations, without duplicates.
///
/// This implementation compacts each candidate row once into a LineIndex
/// shared by every pattern, screens commutative patterns whose range is
/// contiguous in compact space with the O(1) prefix-sum certain-miss test,
/// and screens pairwise patterns with the same division-free bounds as the
/// window kernel; every possible accept replays the exact reference
/// arithmetic, so results are bit-identical to ExtendAggregationsNaive
/// (same aggregations, same order, bit-equal `error`). Pattern sets too
/// small to amortize the per-row compaction fall through to the naive walk
/// wholesale — a cost-model switch, never a semantic one.
std::vector<Aggregation> ExtendAggregations(const numfmt::AxisView& grid,
                                            const std::vector<bool>& active_columns,
                                            const std::vector<Aggregation>& detected,
                                            double error_level);

/// The retained reference implementation: the original per-(pattern, row)
/// walk over the raw view. Kept for the differential battery and the
/// extension benchmark; the pipeline runs the screened version above.
std::vector<Aggregation> ExtendAggregationsNaive(
    const numfmt::AxisView& grid, const std::vector<bool>& active_columns,
    const std::vector<Aggregation>& detected, double error_level);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_EXTENSION_H_
