#ifndef AGGRECOL_CORE_EXTENSION_H_
#define AGGRECOL_CORE_EXTENSION_H_

#include <vector>

#include "core/aggregation.h"
#include "numfmt/axis_view.h"

namespace aggrecol::core {

/// Aggregation extension (Alg. 1, line 8): for every pattern among the
/// detected aggregations, check whether candidates with the same pattern in
/// the *other* rows are also valid aggregations, and add the ones that are.
/// This recovers rows where the greedy adjacency search terminated early on a
/// coincidental shorter range (the Figure 5 / Table 2 scenario).
///
/// Validity of a pattern in a row requires a numeric aggregate cell, all
/// range cells range-usable and active, a defined function value, and an
/// error level within `error_level`. Returns the union of `detected` and the
/// newly validated aggregations, without duplicates.
std::vector<Aggregation> ExtendAggregations(const numfmt::AxisView& grid,
                                            const std::vector<bool>& active_columns,
                                            const std::vector<Aggregation>& detected,
                                            double error_level);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_EXTENSION_H_
