#ifndef AGGRECOL_CORE_WINDOW_STRATEGY_H_
#define AGGRECOL_CORE_WINDOW_STRATEGY_H_

#include <vector>

#include "core/aggregation.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol::core {

/// Sliding-window strategy (Sec. 3.1) for non-commutative pairwise functions
/// (difference, division, relative change): for every numeric aggregate
/// candidate in `row`, examine the `window_size` range-usable cells closest
/// to it on each side — each side separately — and test every ordered pair
/// (permutation of size 2) against the candidate. All matches within
/// `error_level` are reported; spurious ones are left to the pruning rules.
///
/// Results are row-wise in the coordinates of `grid`; the range is ordered
/// (B, C) per Table 1.
std::vector<Aggregation> DetectWindowPairwise(
    const numfmt::NumericGrid& grid, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level, int window_size);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_WINDOW_STRATEGY_H_
