#ifndef AGGRECOL_CORE_WINDOW_STRATEGY_H_
#define AGGRECOL_CORE_WINDOW_STRATEGY_H_

#include <vector>

#include "core/aggregation.h"
#include "numfmt/axis_view.h"

namespace aggrecol::core {

/// Sliding-window strategy (Sec. 3.1) for non-commutative pairwise functions
/// (difference, division, relative change): for every numeric aggregate
/// candidate in `row`, examine the `window_size` range-usable cells closest
/// to it on each side — each side separately — and test every ordered pair
/// (permutation of size 2) against the candidate. All matches within
/// `error_level` are reported; spurious ones are left to the pruning rules —
/// except mirrored duplicates: when two candidates of the same row collapse
/// to the same canonical form (a difference A = B - C and its mirror
/// C = B - A both canonicalize to the sum B = A + C), only the first in scan
/// order is emitted. The mirror carries no extra evidence, and emitting both
/// double-counted the same arithmetic fact downstream.
///
/// Results are row-wise in the coordinates of `view`; the range is ordered
/// (B, C) per Table 1.
///
/// This implementation compacts the row once into a LineIndex before the
/// quadratic pair loops; DetectWindowPairwiseNaive retains the raw-view scan
/// for the differential test and the stage-1 benchmark. Both emit identical
/// candidates.
std::vector<Aggregation> DetectWindowPairwise(
    const numfmt::AxisView& view, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level, int window_size);

/// The retained reference implementation: per-aggregate window collection on
/// the raw view. Applies the same mirror suppression.
std::vector<Aggregation> DetectWindowPairwiseNaive(
    const numfmt::AxisView& view, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level, int window_size);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_WINDOW_STRATEGY_H_
