#include "core/collective_detector.h"

#include <algorithm>

#include "core/pruning.h"
#include "obs/metrics.h"

namespace aggrecol::core {
namespace {

bool RangesOverlapLinear(const std::vector<int>& a, const std::vector<int>& b) {
  for (int index : a) {
    if (std::find(b.begin(), b.end(), index) != b.end()) return true;
  }
  return false;
}

// Reference form of the same-aggregate-overlap predicate, with the original
// linear scans; the fast walk uses the PatternGroup overload from pruning.h.
bool SameAggregateOverlappingRangeLinear(const Pattern& a, const Pattern& b) {
  if (a.axis != b.axis) return false;
  if (a.aggregate != b.aggregate) return false;
  return RangesOverlapLinear(a.range, b.range);
}

// Rank by (i) range size, (ii) number of detected aggregations; pattern
// order as a deterministic final tie-break. Shared by both implementations
// so their walk orders are identical by construction.
bool RankBefore(const PatternGroup& a, const PatternGroup& b) {
  if (a.pattern.range.size() != b.pattern.range.size()) {
    return a.pattern.range.size() > b.pattern.range.size();
  }
  if (a.members.size() != b.members.size()) {
    return a.members.size() > b.members.size();
  }
  return a.pattern < b.pattern;
}

}  // namespace

std::vector<Aggregation> CollectivePrune(const numfmt::AxisView& grid,
                                         const std::vector<Aggregation>& candidates) {
  std::vector<PatternGroup> groups = GroupByPattern(grid, candidates);

  const bool obs_on = obs::Registry::enabled();
  if (obs_on) {
    obs::Count("stage2.runs");
    obs::Count("stage2.input.groups", groups.size());
    obs::Count("stage2.input.candidates", candidates.size());
  }

  std::sort(groups.begin(), groups.end(), RankBefore);

  // Division aggregations can always be included (Sec. 3.2): a part-of-whole
  // division legitimately overlaps the sum that produced the whole. They are
  // therefore accepted up front and exempt from being pruned — but they do
  // expose *circular* calculations: a non-division candidate that is mutually
  // inclusive with a division (e.g. the relative change implied by a ratio's
  // own denominator) is pruned against them.
  std::vector<const PatternGroup*> divisions;
  std::vector<Aggregation> out;
  for (const auto& group : groups) {
    if (group.pattern.function == AggregationFunction::kDivision) {
      divisions.push_back(&group);
      out.insert(out.end(), group.members.begin(), group.members.end());
    }
  }
  if (obs_on) obs::Count("stage2.division_exempt.groups", divisions.size());

  std::vector<const PatternGroup*> accepted;
  for (const auto& group : groups) {
    if (group.pattern.function == AggregationFunction::kDivision) continue;
    // First matching reason against the accepted/division sets wins, so each
    // pruned group counts under exactly one stage2.pruned.* reason. The
    // predicates run through the PatternGroup overloads (pruning.h): same
    // answers as the Pattern forms, evaluated over the precomputed sorted
    // ranges instead of nested linear finds per comparison.
    const char* conflict = nullptr;
    for (const PatternGroup* other : accepted) {
      if (CompleteInclusion(group, *other)) {
        conflict = "stage2.pruned.complete_inclusion";
      } else if (MutualInclusion(group, *other)) {
        conflict = "stage2.pruned.mutual_inclusion";
      } else if (SameAggregateOverlappingRange(group, *other)) {
        conflict = "stage2.pruned.same_aggregate_overlap";
      }
      if (conflict != nullptr) break;
    }
    if (conflict == nullptr) {
      for (const PatternGroup* division : divisions) {
        if (MutualInclusion(group, *division)) {
          conflict = "stage2.pruned.division_circular";
          break;
        }
      }
    }
    if (conflict != nullptr) {
      if (obs_on) {
        obs::Count(conflict);
        obs::Count("stage2.pruned.groups");
        obs::Count("stage2.pruned.candidates", group.members.size());
      }
      continue;
    }
    accepted.push_back(&group);
    out.insert(out.end(), group.members.begin(), group.members.end());
  }
  if (obs_on) obs::Count("stage2.accepted.candidates", out.size());
  return out;
}

std::vector<Aggregation> CollectivePruneNaive(
    const numfmt::AxisView& grid, const std::vector<Aggregation>& candidates) {
  std::vector<PatternGroup> groups = GroupByPattern(grid, candidates);
  std::sort(groups.begin(), groups.end(), RankBefore);

  std::vector<const PatternGroup*> divisions;
  std::vector<Aggregation> out;
  for (const auto& group : groups) {
    if (group.pattern.function == AggregationFunction::kDivision) {
      divisions.push_back(&group);
      out.insert(out.end(), group.members.begin(), group.members.end());
    }
  }

  std::vector<const PatternGroup*> accepted;
  for (const auto& group : groups) {
    if (group.pattern.function == AggregationFunction::kDivision) continue;
    bool conflict = false;
    for (const PatternGroup* other : accepted) {
      if (CompleteInclusion(group.pattern, other->pattern) ||
          MutualInclusion(group.pattern, other->pattern) ||
          SameAggregateOverlappingRangeLinear(group.pattern, other->pattern)) {
        conflict = true;
        break;
      }
    }
    if (!conflict) {
      for (const PatternGroup* division : divisions) {
        if (MutualInclusion(group.pattern, division->pattern)) {
          conflict = true;
          break;
        }
      }
    }
    if (conflict) continue;
    accepted.push_back(&group);
    out.insert(out.end(), group.members.begin(), group.members.end());
  }
  return out;
}

}  // namespace aggrecol::core
