#include "core/collective_detector.h"

#include <algorithm>

#include "core/pruning.h"

namespace aggrecol::core {
namespace {

bool RangesOverlap(const std::vector<int>& a, const std::vector<int>& b) {
  for (int index : a) {
    if (std::find(b.begin(), b.end(), index) != b.end()) return true;
  }
  return false;
}

// Same aggregate with (partly) shared range: a cell acting as the aggregate
// of one function should not aggregate an overlapping range with another.
bool SameAggregateOverlappingRange(const Pattern& a, const Pattern& b) {
  if (a.axis != b.axis) return false;
  if (a.aggregate != b.aggregate) return false;
  return RangesOverlap(a.range, b.range);
}

}  // namespace

std::vector<Aggregation> CollectivePrune(const numfmt::NumericGrid& grid,
                                         const std::vector<Aggregation>& candidates) {
  std::vector<PatternGroup> groups = GroupByPattern(grid, candidates);

  // Rank by (i) range size, (ii) number of detected aggregations; pattern
  // order as a deterministic final tie-break.
  std::sort(groups.begin(), groups.end(),
            [](const PatternGroup& a, const PatternGroup& b) {
              if (a.pattern.range.size() != b.pattern.range.size()) {
                return a.pattern.range.size() > b.pattern.range.size();
              }
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.pattern < b.pattern;
            });

  // Division aggregations can always be included (Sec. 3.2): a part-of-whole
  // division legitimately overlaps the sum that produced the whole. They are
  // therefore accepted up front and exempt from being pruned — but they do
  // expose *circular* calculations: a non-division candidate that is mutually
  // inclusive with a division (e.g. the relative change implied by a ratio's
  // own denominator) is pruned against them.
  std::vector<const PatternGroup*> divisions;
  std::vector<Aggregation> out;
  for (const auto& group : groups) {
    if (group.pattern.function == AggregationFunction::kDivision) {
      divisions.push_back(&group);
      out.insert(out.end(), group.members.begin(), group.members.end());
    }
  }

  std::vector<const PatternGroup*> accepted;
  for (const auto& group : groups) {
    if (group.pattern.function == AggregationFunction::kDivision) continue;
    const bool conflicts =
        std::any_of(accepted.begin(), accepted.end(),
                    [&group](const PatternGroup* other) {
                      return CompleteInclusion(group.pattern, other->pattern) ||
                             MutualInclusion(group.pattern, other->pattern) ||
                             SameAggregateOverlappingRange(group.pattern, other->pattern);
                    }) ||
        std::any_of(divisions.begin(), divisions.end(),
                    [&group](const PatternGroup* division) {
                      return MutualInclusion(group.pattern, division->pattern);
                    });
    if (conflicts) continue;
    accepted.push_back(&group);
    out.insert(out.end(), group.members.begin(), group.members.end());
  }
  return out;
}

}  // namespace aggrecol::core
