#ifndef AGGRECOL_CORE_FUNCTION_H_
#define AGGRECOL_CORE_FUNCTION_H_

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aggrecol::core {

/// The five aggregation functions covered by the paper (Table 1). Each
/// appears in more than 5% of the annotated files (Fig. 2).
enum class AggregationFunction {
  kSum,             // A = sum(B_i)
  kDifference,      // A = B - C
  kAverage,         // A = sum(B_i) / n
  kDivision,        // A = B / C
  kRelativeChange,  // A = (C - B) / B
};

/// All functions, in Table 1 order.
inline constexpr std::array<AggregationFunction, 5> kAllFunctions = {
    AggregationFunction::kSum, AggregationFunction::kDifference,
    AggregationFunction::kAverage, AggregationFunction::kDivision,
    AggregationFunction::kRelativeChange};

/// Mathematical properties of an aggregation function (Table 1), which drive
/// strategy selection (Sec. 3.1) and the cumulative iteration of Alg. 1.
struct FunctionTraits {
  /// Exactly-two-element range (difference, division, relative change)?
  bool pairwise = false;

  /// Element order is irrelevant; enables the greedy adjacency-list strategy.
  bool commutative = false;

  /// The aggregate can serve as a range element of further aggregations
  /// (sum and difference only).
  bool cumulative = false;
};

/// Traits of `function` per Table 1.
FunctionTraits TraitsOf(AggregationFunction function);

/// Dense index of `function` within kAllFunctions, for per-function arrays
/// (e.g. the per-function error levels of Sec. 4.3.2).
constexpr size_t IndexOf(AggregationFunction function) {
  return static_cast<size_t>(function);
}

/// Short lower-case name, e.g. "sum", "relative change".
std::string ToString(AggregationFunction function);

/// Inverse of ToString; also accepts the hyphenated form "relative-change".
/// Returns std::nullopt for unknown names.
std::optional<AggregationFunction> FunctionFromName(std::string_view name);

/// Kahan (compensated) running sum. Every summation on the detection path —
/// ApplyCommutative, the adjacency walks, and the LineIndex precision
/// fallback — goes through this one accumulator so their results are
/// bit-identical for the same value order. Plain left-to-right accumulation
/// drifts by O(n·eps·Σ|v|), which on long ranges (hundreds of columns) can
/// exceed a Def. 5 error level of 0 + kErrorSlack and flip a detection;
/// compensation keeps the error at O(eps·Σ|v|) independent of length.
struct KahanAccumulator {
  double sum = 0.0;
  double compensation = 0.0;

  void Add(double value) {
    const double y = value - compensation;
    const double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }

  double Total() const { return sum; }
};

/// Applies a commutative function (sum or average) to `values`, summing with
/// Kahan compensation in the given order.
/// Must not be called with a pairwise function.
double ApplyCommutative(AggregationFunction function, const std::vector<double>& values);

/// Applies a pairwise function to the ordered pair (b, c) per Table 1.
/// Returns std::nullopt when the formula is undefined (division by zero,
/// relative change from zero). Must not be called with sum or average.
std::optional<double> ApplyPairwise(AggregationFunction function, double b, double c);

/// Evaluates `function` on `values` in their given order. Works for both
/// commutative and pairwise functions; pairwise functions require exactly two
/// values. Returns std::nullopt when undefined.
std::optional<double> Apply(AggregationFunction function, const std::vector<double>& values);

/// The minimum number of range elements AggreCol requires for `function`.
/// Sum and average formally allow one element, but single-element ranges
/// yield massive false positives, so the approach requires two (Sec. 3.1).
int MinRangeSize(AggregationFunction function);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_FUNCTION_H_
