#ifndef AGGRECOL_CORE_PRUNING_H_
#define AGGRECOL_CORE_PRUNING_H_

#include <vector>

#include "core/aggregation.h"
#include "numfmt/axis_view.h"

namespace aggrecol::core {

/// Side of a range relative to its aggregate.
enum class RangeSide { kLeft, kRight, kMixed };

/// A group of aggregation candidates sharing one pattern (Sec. 3.1).
///
/// GroupByPattern also precomputes everything the stage-1/stage-2 ranking and
/// conflict walks would otherwise rederive per pairwise comparison — the
/// range in sorted order (for binary-search membership and two-pointer
/// overlap), the range's side, and the division ratio preference — turning
/// each predicate evaluation in the O(groups^2) walks from a linear rescan of
/// members or range cells into O(log k) lookups over shared immutable state.
struct PatternGroup {
  Pattern pattern;
  std::vector<Aggregation> members;
  /// |members| / number of numeric cells in the aggregate's column.
  double sufficiency = 0.0;
  /// Mean observed error level of the members (rank tie-break).
  double mean_error = 0.0;
  /// `pattern.range` sorted ascending — set semantics for the inclusion and
  /// overlap predicates, which are order-independent by definition.
  std::vector<int> sorted_range;
  /// SideOf(pattern), precomputed.
  RangeSide side = RangeSide::kRight;
  /// Fraction of members whose observed aggregate is ratio-like (in (-1, 1),
  /// nonzero); computed for division groups only, 0 otherwise. Drives the
  /// part-of-whole rank preference of Sec. 3.2.
  double ratio_fraction = 0.0;
};

/// Groups `candidates` by pattern and computes sufficiency scores against
/// `grid` (the denominator counts numeric cells in the aggregate's column),
/// along with the precomputed predicate state described on PatternGroup.
std::vector<PatternGroup> GroupByPattern(const numfmt::AxisView& grid,
                                         const std::vector<Aggregation>& candidates);

/// Side of `pattern`'s range relative to its aggregate.
RangeSide SideOf(const Pattern& pattern);

/// Directional disagreement (Sec. 3.1): same-function candidates sharing the
/// same aggregate must grow their ranges toward the same side.
bool DirectionalDisagreement(const Pattern& a, const Pattern& b);

/// Complete inclusion (Sec. 3.1): the aggregate and part of the range of one
/// pattern are both contained in the range of the other — range elements
/// should be semantic peers, so one cannot aggregate its fellows.
bool CompleteInclusion(const Pattern& a, const Pattern& b);

/// Mutual inclusion (Sec. 3.1): each pattern's aggregate lies in the other's
/// range, a circular calculation that cannot be semantically correct.
bool MutualInclusion(const Pattern& a, const Pattern& b);

/// Same aggregate with (partly) shared range (Sec. 3.2): a cell acting as the
/// aggregate of one function should not aggregate an overlapping range with
/// another.
bool SameAggregateOverlappingRange(const Pattern& a, const Pattern& b);

/// PatternGroup overloads of the four conflict predicates: identical boolean
/// results to the Pattern forms above (the predicates are set-membership
/// questions, so evaluating them over the precomputed sorted ranges and sides
/// cannot change an answer), but O(log k) / two-pointer instead of nested
/// linear scans. The stage-1 and stage-2 conflict walks call these; the
/// Pattern forms are retained as the differential oracles.
bool DirectionalDisagreement(const PatternGroup& a, const PatternGroup& b);
bool CompleteInclusion(const PatternGroup& a, const PatternGroup& b);
bool MutualInclusion(const PatternGroup& a, const PatternGroup& b);
bool SameAggregateOverlappingRange(const PatternGroup& a, const PatternGroup& b);

/// Toggles for the stage-1 pruning steps; used by the ablation experiments
/// (bench/ablation_pruning_rules) to quantify each rule's contribution. All
/// rules are on by default, which is the paper's configuration.
struct PruningRules {
  bool coverage_threshold = true;
  bool same_aggregate_dedup = true;
  bool same_range_dedup = true;
  bool directional_disagreement = true;
  bool complete_inclusion = true;
  bool mutual_inclusion = true;
};

/// Stage-1 pruning (Alg. 1, line 11) applied to same-function candidates:
///  1. discard groups whose sufficiency score is below `coverage`;
///  2. among groups sharing an aggregate, keep only the best-scoring ones;
///     likewise for groups sharing a range;
///  3. rank the survivors (more members first, then smaller mean error) and
///     greedily drop lower-ranked groups whose patterns cannot co-exist with
///     an accepted one per the three heuristics above.
/// Returns the aggregations of the accepted groups. `rules` disables
/// individual steps for ablation.
std::vector<Aggregation> PruneIndividual(const numfmt::AxisView& grid,
                                         const std::vector<Aggregation>& candidates,
                                         double coverage,
                                         const PruningRules& rules = {});

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_PRUNING_H_
