#include "core/composite_detector.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "core/approx.h"

namespace aggrecol::core {
namespace {

// The `window` nearest active range-usable cells on one side of a column,
// ordered by increasing distance (the same collection the sliding-window
// strategy uses).
std::vector<int> CollectWindow(const numfmt::AxisView& grid, int row, int column,
                               int step, int window) {
  std::vector<int> cells;
  for (int index = column + step;
       index >= 0 && index < grid.columns() &&
       static_cast<int>(cells.size()) < window;
       index += step) {
    if (grid.IsRangeUsable(row, index)) cells.push_back(index);
  }
  return cells;
}

// Pattern identity of a composite (line stripped).
struct CompositePattern {
  int aggregate;
  std::vector<int> numerator;
  int denominator;

  friend auto operator<=>(const CompositePattern&, const CompositePattern&) = default;
};

}  // namespace

std::string ToString(const CompositeAggregation& composite) {
  std::ostringstream oss;
  oss << "(" << ToString(composite.axis) << ":" << composite.line << ", "
      << composite.aggregate << " <- sum{";
  for (size_t i = 0; i < composite.numerator.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << composite.numerator[i];
  }
  oss << "} / " << composite.denominator << ", e=" << composite.error << ")";
  return oss.str();
}

std::vector<CompositeAggregation> DetectCompositeRowwise(
    const numfmt::AxisView& grid, const CompositeConfig& config,
    const std::vector<Aggregation>& detected) {
  // Ranges of detected sum aggregations (any line): a composite whose
  // numerator matches one of them is redundant with the plain division over
  // the existing intermediate total.
  std::set<std::vector<int>> detected_sum_ranges;
  // Cells already acting as division aggregates: the plain division covers
  // them.
  std::set<std::pair<int, int>> division_aggregates;  // (line, column)
  for (const auto& aggregation : detected) {
    const Aggregation canonical = Canonicalize(aggregation);
    if (canonical.function == AggregationFunction::kSum) {
      detected_sum_ranges.insert(canonical.range);
    } else if (canonical.function == AggregationFunction::kDivision) {
      division_aggregates.insert({canonical.line, canonical.aggregate});
    }
  }

  std::vector<CompositeAggregation> candidates;
  for (int row = 0; row < grid.rows(); ++row) {
    for (int column = 0; column < grid.columns(); ++column) {
      if (!grid.IsNumeric(row, column)) continue;
      if (division_aggregates.count({row, column}) > 0) continue;
      const double observed = grid.value(row, column);
      for (int step : {+1, -1}) {
        const std::vector<int> window =
            CollectWindow(grid, row, column, step, config.window_size);
        const int n = static_cast<int>(window.size());
        for (int start = 0; start < n; ++start) {
          double numerator_sum = 0.0;
          for (int length = 1; start + length <= n; ++length) {
            numerator_sum += grid.value(row, window[start + length - 1]);
            if (length < config.min_numerator) continue;
            if (length > config.max_numerator) break;
            for (int d = 0; d < n; ++d) {
              if (d >= start && d < start + length) continue;  // inside the run
              const double denominator = grid.value(row, window[d]);
              if (denominator == 0.0) continue;
              const double error =
                  ErrorLevel(observed, numerator_sum / denominator);
              if (!WithinErrorLevel(error, config.error_level)) continue;
              CompositeAggregation composite;
              composite.axis = Axis::kRow;
              composite.line = row;
              composite.aggregate = column;
              composite.numerator.assign(window.begin() + start,
                                         window.begin() + start + length);
              std::sort(composite.numerator.begin(), composite.numerator.end());
              composite.denominator = window[d];
              composite.error = error;
              if (detected_sum_ranges.count(composite.numerator) > 0) continue;
              if (std::find(candidates.begin(), candidates.end(), composite) ==
                  candidates.end()) {
                candidates.push_back(std::move(composite));
              }
            }
          }
        }
      }
    }
  }

  // Group by pattern and apply the coverage threshold; among groups sharing
  // an aggregate, keep the best-covered one (the stage-1 discipline).
  std::map<CompositePattern, std::vector<CompositeAggregation>> groups;
  for (const auto& candidate : candidates) {
    groups[{candidate.aggregate, candidate.numerator, candidate.denominator}]
        .push_back(candidate);
  }
  struct ScoredGroup {
    CompositePattern pattern;
    std::vector<CompositeAggregation> members;
    double sufficiency;
  };
  std::vector<ScoredGroup> scored;
  for (auto& [pattern, members] : groups) {
    const int numeric_cells = grid.NumericCountInColumn(pattern.aggregate);
    const double sufficiency =
        numeric_cells > 0
            ? static_cast<double>(members.size()) / numeric_cells
            : 0.0;
    if (sufficiency >= config.coverage) {
      scored.push_back({pattern, std::move(members), sufficiency});
    }
  }
  std::map<int, double> best_by_aggregate;
  for (const auto& group : scored) {
    auto [it, inserted] =
        best_by_aggregate.try_emplace(group.pattern.aggregate, group.sufficiency);
    if (!inserted) it->second = std::max(it->second, group.sufficiency);
  }
  std::erase_if(scored, [&best_by_aggregate](const ScoredGroup& group) {
    return group.sufficiency < best_by_aggregate.at(group.pattern.aggregate);
  });

  // A = sum(M)/C implies the mirror C = sum(M)/A — a circular pair like the
  // division inversion of the core pipeline. Rank ratio-valued aggregates
  // first (real composites record part-of-whole shares) and drop the
  // lower-ranked partner of any circular pair.
  auto ratio_fraction = [&grid](const ScoredGroup& group) {
    int ratio_like = 0;
    for (const auto& member : group.members) {
      const double value = grid.value(member.line, member.aggregate);
      if (value > -1.0 && value < 1.0 && value != 0.0) ++ratio_like;
    }
    return static_cast<double>(ratio_like) / static_cast<double>(group.members.size());
  };
  std::sort(scored.begin(), scored.end(),
            [&ratio_fraction](const ScoredGroup& a, const ScoredGroup& b) {
              const double ratio_a = ratio_fraction(a);
              const double ratio_b = ratio_fraction(b);
              if (!ApproxEq(ratio_a, ratio_b)) return ratio_a > ratio_b;
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.pattern < b.pattern;
            });
  std::vector<const ScoredGroup*> accepted;
  for (const auto& group : scored) {
    const bool circular = std::any_of(
        accepted.begin(), accepted.end(), [&group](const ScoredGroup* other) {
          return (group.pattern.denominator == other->pattern.aggregate &&
                  other->pattern.denominator == group.pattern.aggregate) ||
                 std::find(other->pattern.numerator.begin(),
                           other->pattern.numerator.end(),
                           group.pattern.aggregate) != other->pattern.numerator.end();
        });
    if (!circular) accepted.push_back(&group);
  }

  std::vector<CompositeAggregation> out;
  for (const ScoredGroup* group : accepted) {
    out.insert(out.end(), group->members.begin(), group->members.end());
  }
  return out;
}

}  // namespace aggrecol::core
