#include "core/function.h"

#include <cmath>

namespace aggrecol::core {

FunctionTraits TraitsOf(AggregationFunction function) {
  switch (function) {
    case AggregationFunction::kSum:
      return {.pairwise = false, .commutative = true, .cumulative = true};
    case AggregationFunction::kDifference:
      return {.pairwise = true, .commutative = false, .cumulative = true};
    case AggregationFunction::kAverage:
      return {.pairwise = false, .commutative = true, .cumulative = false};
    case AggregationFunction::kDivision:
      return {.pairwise = true, .commutative = false, .cumulative = false};
    case AggregationFunction::kRelativeChange:
      return {.pairwise = true, .commutative = false, .cumulative = false};
  }
  return {};
}

std::string ToString(AggregationFunction function) {
  switch (function) {
    case AggregationFunction::kSum:
      return "sum";
    case AggregationFunction::kDifference:
      return "difference";
    case AggregationFunction::kAverage:
      return "average";
    case AggregationFunction::kDivision:
      return "division";
    case AggregationFunction::kRelativeChange:
      return "relative change";
  }
  return "unknown";
}

std::optional<AggregationFunction> FunctionFromName(std::string_view name) {
  for (AggregationFunction function : kAllFunctions) {
    if (ToString(function) == name) return function;
  }
  if (name == "relative-change") return AggregationFunction::kRelativeChange;
  return std::nullopt;
}

double ApplyCommutative(AggregationFunction function, const std::vector<double>& values) {
  KahanAccumulator accumulator;
  for (double v : values) accumulator.Add(v);
  if (function == AggregationFunction::kAverage && !values.empty()) {
    return accumulator.Total() / static_cast<double>(values.size());
  }
  return accumulator.Total();
}

std::optional<double> ApplyPairwise(AggregationFunction function, double b, double c) {
  switch (function) {
    case AggregationFunction::kDifference:
      return b - c;
    case AggregationFunction::kDivision:
      if (c == 0.0) return std::nullopt;
      return b / c;
    case AggregationFunction::kRelativeChange:
      if (b == 0.0) return std::nullopt;
      return (c - b) / b;
    default:
      return std::nullopt;
  }
}

std::optional<double> Apply(AggregationFunction function, const std::vector<double>& values) {
  const FunctionTraits traits = TraitsOf(function);
  if (traits.pairwise) {
    if (values.size() != 2) return std::nullopt;
    return ApplyPairwise(function, values[0], values[1]);
  }
  if (values.empty()) return std::nullopt;
  return ApplyCommutative(function, values);
}

int MinRangeSize(AggregationFunction /*function*/) { return 2; }

}  // namespace aggrecol::core
