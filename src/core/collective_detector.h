#ifndef AGGRECOL_CORE_COLLECTIVE_DETECTOR_H_
#define AGGRECOL_CORE_COLLECTIVE_DETECTOR_H_

#include <vector>

#include "core/aggregation.h"
#include "numfmt/axis_view.h"

namespace aggrecol::core {

/// Collective aggregation detection (Sec. 3.2): refines the union of all
/// individual detectors' results by pruning *across* functions.
///
/// Candidates are grouped by pattern and ranked primarily by range size
/// (fewer range elements => more likely a false positive) and secondarily by
/// group size. Walking the ranked list, a group is dropped when it
/// contradicts an already-validated group through complete inclusion, mutual
/// inclusion, or by sharing its aggregate with overlapping ranges (one cell
/// cannot be the aggregate of two functions over overlapping ranges, though
/// disjoint ranges are fine — the net-income example). Division groups are
/// exempt on both sides: a part-of-whole division legitimately divides a
/// range element by its own aggregate (the a2/a4 example of Fig. 5).
/// The conflict walk evaluates its predicates through the PatternGroup
/// overloads (pruning.h) over sorted ranges precomputed once per group,
/// instead of rescanning raw ranges with nested linear finds per comparison.
/// Output is identical to CollectivePruneNaive — same aggregations, same
/// order.
std::vector<Aggregation> CollectivePrune(const numfmt::AxisView& grid,
                                         const std::vector<Aggregation>& candidates);

/// The retained reference implementation of the stage-2 walk, with the
/// original per-comparison linear-scan predicates. Kept as the differential
/// oracle for the parity tests and the stage-2 benchmark.
std::vector<Aggregation> CollectivePruneNaive(const numfmt::AxisView& grid,
                                              const std::vector<Aggregation>& candidates);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_COLLECTIVE_DETECTOR_H_
