#include "core/pruning.h"

#include <algorithm>
#include <map>

#include "core/approx.h"
#include "obs/metrics.h"

namespace aggrecol::core {
namespace {

// Sums the member (candidate) counts of `groups` for the prune accounting.
size_t MemberCount(const std::vector<PatternGroup>& groups) {
  size_t members = 0;
  for (const auto& group : groups) members += group.members.size();
  return members;
}

bool Contains(const std::vector<int>& range, int index) {
  return std::find(range.begin(), range.end(), index) != range.end();
}

bool RangesOverlap(const std::vector<int>& a, const std::vector<int>& b) {
  for (int index : a) {
    if (Contains(b, index)) return true;
  }
  return false;
}

// One-directional complete inclusion: inner's aggregate and part of inner's
// range lie inside outer's range.
bool CompletelyIncluded(const Pattern& inner, const Pattern& outer) {
  return Contains(outer.range, inner.aggregate) &&
         RangesOverlap(inner.range, outer.range);
}

// Sorted-range counterparts of the helpers above, for the PatternGroup
// predicate overloads: membership is a binary search, overlap a two-pointer
// merge walk. Set questions over the same elements — answers are identical
// to the linear forms.
bool SortedContains(const std::vector<int>& sorted, int index) {
  return std::binary_search(sorted.begin(), sorted.end(), index);
}

bool SortedOverlap(const std::vector<int>& a, const std::vector<int>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool CompletelyIncluded(const PatternGroup& inner, const PatternGroup& outer) {
  return SortedContains(outer.sorted_range, inner.pattern.aggregate) &&
         SortedOverlap(inner.sorted_range, outer.sorted_range);
}

}  // namespace

std::vector<PatternGroup> GroupByPattern(const numfmt::AxisView& grid,
                                         const std::vector<Aggregation>& candidates) {
  std::map<Pattern, PatternGroup> groups;
  for (const auto& candidate : candidates) {
    const Pattern pattern = PatternOf(candidate);
    auto& group = groups[pattern];
    group.pattern = pattern;
    group.members.push_back(candidate);
  }
  std::vector<PatternGroup> out;
  out.reserve(groups.size());
  for (auto& [pattern, group] : groups) {
    const int numeric_in_column = grid.NumericCountInColumn(pattern.aggregate);
    group.sufficiency = numeric_in_column > 0
                            ? static_cast<double>(group.members.size()) / numeric_in_column
                            : 0.0;
    double total_error = 0.0;
    for (const auto& member : group.members) total_error += member.error;
    group.mean_error = total_error / static_cast<double>(group.members.size());
    group.sorted_range = pattern.range;
    std::sort(group.sorted_range.begin(), group.sorted_range.end());
    group.side = SideOf(pattern);
    if (pattern.function == AggregationFunction::kDivision) {
      // Precomputed once here; the stage-1 rank comparator used to rescan
      // every member on every comparison inside the sort.
      int ratio_like = 0;
      for (const auto& member : group.members) {
        const double value = grid.value(member.line, member.aggregate);
        if (value > -1.0 && value < 1.0 && value != 0.0) ++ratio_like;
      }
      group.ratio_fraction = static_cast<double>(ratio_like) /
                             static_cast<double>(group.members.size());
    }
    out.push_back(std::move(group));
  }
  return out;
}

RangeSide SideOf(const Pattern& pattern) {
  bool any_left = false;
  bool any_right = false;
  for (int col : pattern.range) {
    if (col < pattern.aggregate) any_left = true;
    if (col > pattern.aggregate) any_right = true;
  }
  if (any_left && any_right) return RangeSide::kMixed;
  return any_left ? RangeSide::kLeft : RangeSide::kRight;
}

bool DirectionalDisagreement(const Pattern& a, const Pattern& b) {
  if (a.axis != b.axis || a.function != b.function) return false;
  if (a.aggregate != b.aggregate) return false;
  const RangeSide side_a = SideOf(a);
  const RangeSide side_b = SideOf(b);
  if (side_a == RangeSide::kMixed || side_b == RangeSide::kMixed) return true;
  return side_a != side_b;
}

bool CompleteInclusion(const Pattern& a, const Pattern& b) {
  if (a.axis != b.axis) return false;
  return CompletelyIncluded(a, b) || CompletelyIncluded(b, a);
}

bool MutualInclusion(const Pattern& a, const Pattern& b) {
  if (a.axis != b.axis) return false;
  return Contains(b.range, a.aggregate) && Contains(a.range, b.aggregate);
}

bool SameAggregateOverlappingRange(const Pattern& a, const Pattern& b) {
  if (a.axis != b.axis) return false;
  if (a.aggregate != b.aggregate) return false;
  return RangesOverlap(a.range, b.range);
}

bool DirectionalDisagreement(const PatternGroup& a, const PatternGroup& b) {
  if (a.pattern.axis != b.pattern.axis ||
      a.pattern.function != b.pattern.function) {
    return false;
  }
  if (a.pattern.aggregate != b.pattern.aggregate) return false;
  if (a.side == RangeSide::kMixed || b.side == RangeSide::kMixed) return true;
  return a.side != b.side;
}

bool CompleteInclusion(const PatternGroup& a, const PatternGroup& b) {
  if (a.pattern.axis != b.pattern.axis) return false;
  return CompletelyIncluded(a, b) || CompletelyIncluded(b, a);
}

bool MutualInclusion(const PatternGroup& a, const PatternGroup& b) {
  if (a.pattern.axis != b.pattern.axis) return false;
  return SortedContains(b.sorted_range, a.pattern.aggregate) &&
         SortedContains(a.sorted_range, b.pattern.aggregate);
}

bool SameAggregateOverlappingRange(const PatternGroup& a, const PatternGroup& b) {
  if (a.pattern.axis != b.pattern.axis) return false;
  if (a.pattern.aggregate != b.pattern.aggregate) return false;
  return SortedOverlap(a.sorted_range, b.sorted_range);
}

std::vector<Aggregation> PruneIndividual(const numfmt::AxisView& grid,
                                         const std::vector<Aggregation>& candidates,
                                         double coverage, const PruningRules& rules) {
  std::vector<PatternGroup> groups = GroupByPattern(grid, candidates);

  // Per-rule prune accounting (docs/OBSERVABILITY.md): every drop below is
  // attributed to the rule that caused it. The obs helpers no-op unless a
  // metrics run is active, and the group/member counting is gated the same
  // way so the disabled path does no extra work.
  const bool obs_on = obs::Registry::enabled();
  if (obs_on) {
    obs::Count("prune.runs");
    obs::Count("prune.input.groups", groups.size());
    obs::Count("prune.input.candidates", candidates.size());
  }

  // 1. Coverage threshold on the sufficiency score (rule R1).
  if (rules.coverage_threshold) {
    const size_t groups_before = groups.size();
    const size_t members_before = obs_on ? MemberCount(groups) : 0;
    std::erase_if(groups, [coverage](const PatternGroup& group) {
      return group.sufficiency < coverage;
    });
    if (obs_on) {
      obs::Count("prune.r1_coverage.groups", groups_before - groups.size());
      obs::Count("prune.r1_coverage.candidates",
                 members_before - MemberCount(groups));
    }
  }

  // Rank order used both for the same-aggregate/same-range dedup below and
  // for the conflict walk: higher sufficiency first, then (for divisions)
  // the part-of-whole ratio preference, then more members, smaller mean
  // error, and pattern order as a deterministic final tie-break. The ratio
  // preference resolves the inherent A = B/C vs C = B/A ambiguity toward the
  // ratio-valued aggregate, per the paper's Sec. 3.2 observation that real
  // divisions record "the percentage that a part accounts for in the
  // entirety".
  auto ranks_before = [](const PatternGroup& a, const PatternGroup& b) {
    if (a.pattern.function == AggregationFunction::kDivision &&
        b.pattern.function == AggregationFunction::kDivision) {
      // ratio_fraction is precomputed by GroupByPattern; the comparator used
      // to rescan every member's aggregate cell on every sort comparison.
      if (!ApproxEq(a.ratio_fraction, b.ratio_fraction)) {
        return a.ratio_fraction > b.ratio_fraction;
      }
    }
    if (a.members.size() != b.members.size()) {
      return a.members.size() > b.members.size();
    }
    if (!ApproxEq(a.mean_error, b.mean_error)) return a.mean_error < b.mean_error;
    return a.pattern < b.pattern;
  };

  // 2a/2b. Among same-function groups sharing an aggregate, only the one
  // with the highest sufficiency score is preserved (Sec. 3.1); likewise for
  // groups sharing a range. Sufficiency ties resolve by the rank order so a
  // single group survives per key. The keys are function-scoped: a cell may
  // legitimately be the aggregate of two different functions with disjoint
  // ranges (the net-income example of Sec. 3.2), which the collective stage
  // arbitrates.
  auto dedup_by = [&](auto key_of, const char* rule) {
    std::map<decltype(key_of(groups.front())), const PatternGroup*> best;
    for (const auto& group : groups) {
      auto [it, inserted] = best.try_emplace(key_of(group), &group);
      if (!inserted &&
          (ApproxEq(group.sufficiency, it->second->sufficiency)
               ? ranks_before(group, *it->second)
               : group.sufficiency > it->second->sufficiency)) {
        it->second = &group;
      }
    }
    std::vector<PatternGroup> kept;
    kept.reserve(best.size());
    for (const auto& group : groups) {
      if (best.at(key_of(group)) == &group) kept.push_back(group);
    }
    if (obs_on) {
      obs::Count(std::string(rule) + ".groups", groups.size() - kept.size());
      obs::Count(std::string(rule) + ".candidates",
                 MemberCount(groups) - MemberCount(kept));
    }
    groups = std::move(kept);
  };
  if (rules.same_aggregate_dedup && !groups.empty()) {
    // Rule R2.
    dedup_by(
        [](const PatternGroup& group) {
          return std::pair<AggregationFunction, int>{group.pattern.function,
                                                     group.pattern.aggregate};
        },
        "prune.r2_same_aggregate");
  }
  if (rules.same_range_dedup && !groups.empty()) {
    // Rule R3.
    dedup_by(
        [](const PatternGroup& group) {
          return std::pair<AggregationFunction, std::vector<int>>{
              group.pattern.function, group.pattern.range};
        },
        "prune.r3_same_range");
  }

  // 3. Rank the survivors and walk the list, dropping groups that cannot
  // co-exist with an already-accepted one.
  std::sort(groups.begin(), groups.end(), ranks_before);

  std::vector<const PatternGroup*> accepted;
  for (const auto& group : groups) {
    // Rule R4: the first matching heuristic against any accepted group wins,
    // so drops are attributed to exactly one of the three conflict reasons.
    const char* conflict = nullptr;
    for (const PatternGroup* other : accepted) {
      // Group-overload predicates: same answers as the Pattern forms over the
      // precomputed sorted ranges and sides (see pruning.h).
      if (rules.directional_disagreement &&
          DirectionalDisagreement(group, *other)) {
        conflict = "prune.r4_conflict.directional";
      } else if (rules.complete_inclusion && CompleteInclusion(group, *other)) {
        conflict = "prune.r4_conflict.complete_inclusion";
      } else if (rules.mutual_inclusion && MutualInclusion(group, *other)) {
        conflict = "prune.r4_conflict.mutual_inclusion";
      }
      if (conflict != nullptr) break;
    }
    if (conflict == nullptr) {
      accepted.push_back(&group);
    } else if (obs_on) {
      obs::Count(conflict);
      obs::Count("prune.r4_conflict.groups");
      obs::Count("prune.r4_conflict.candidates", group.members.size());
    }
  }

  std::vector<Aggregation> out;
  for (const PatternGroup* group : accepted) {
    out.insert(out.end(), group->members.begin(), group->members.end());
  }
  if (obs_on) {
    obs::Count("prune.accepted.groups", accepted.size());
    obs::Count("prune.accepted.candidates", out.size());
  }
  return out;
}

}  // namespace aggrecol::core
