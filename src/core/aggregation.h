#ifndef AGGRECOL_CORE_AGGREGATION_H_
#define AGGRECOL_CORE_AGGREGATION_H_

#include <string>
#include <vector>

#include "core/function.h"

namespace aggrecol::core {

/// Orientation of a same-line aggregation (Sec. 2.1): aggregate and range
/// share a row (kRow) or a column (kColumn).
enum class Axis { kRow, kColumn };

/// Short name: "row" or "column".
std::string ToString(Axis axis);

/// Error level of an aggregation (Definition 5): the deviation factor of the
/// computed value `calculated` from the observed aggregate `observed`,
/// normalized by the observed value; the absolute difference when the
/// observed value is zero.
double ErrorLevel(double observed, double calculated);

/// Absolute slack added to every error-level comparison so that binary
/// floating-point noise (re-parsing decimal cell values, re-associating
/// sums) cannot break an exact (e = 0) match.
inline constexpr double kErrorSlack = 1e-9;

/// True when an observed `error` is within the configured `level`, allowing
/// for kErrorSlack of floating-point noise.
inline bool WithinErrorLevel(double error, double level) {
  return error <= level + kErrorSlack;
}

/// A detected or annotated aggregation: (r <- E, f, e) plus its orientation
/// (Definitions 4-5 with the row/column notation of Sec. 2.1).
///
/// For a row-wise aggregation, `line` is the shared row index, `aggregate`
/// the column index of the aggregate cell, and `range` the column indices of
/// the range elements — ordered for non-commutative functions (B first, then
/// C per Table 1), ascending for commutative ones. Column-wise aggregations
/// swap the roles of rows and columns.
struct Aggregation {
  Axis axis = Axis::kRow;
  int line = 0;
  int aggregate = 0;
  std::vector<int> range;
  AggregationFunction function = AggregationFunction::kSum;
  double error = 0.0;

  /// Identity ignores the observed error (two detections of the same cells
  /// and function are the same aggregation).
  friend bool operator==(const Aggregation& a, const Aggregation& b) {
    return a.axis == b.axis && a.line == b.line && a.aggregate == b.aggregate &&
           a.function == b.function && a.range == b.range;
  }
};

/// Notation of Sec. 2.1, e.g. "(row:2, 1 <- {2, 3, 4}, sum, e=0)".
std::string ToString(const Aggregation& aggregation);

/// The pattern j_r <- j_E of an aggregation (Sec. 2.1): its scope without the
/// line index. Stage-1 extension and all pruning rules group by pattern.
struct Pattern {
  Axis axis = Axis::kRow;
  int aggregate = 0;
  std::vector<int> range;
  AggregationFunction function = AggregationFunction::kSum;

  friend bool operator==(const Pattern&, const Pattern&) = default;
  friend auto operator<=>(const Pattern&, const Pattern&) = default;
};

/// The pattern of `aggregation`.
Pattern PatternOf(const Aggregation& aggregation);

/// e.g. "sum: 1 <- {2, 3, 4}".
std::string ToString(const Pattern& pattern);

/// Canonicalizes a difference aggregation A = B - C into its sum form
/// B = A + C (Sec. 4.3.2 merges sum and difference this way for evaluation).
/// Non-difference aggregations are returned unchanged; commutative ranges are
/// sorted ascending so set comparison is positional.
Aggregation Canonicalize(const Aggregation& aggregation);

/// Strict weak ordering over aggregation identity (axis, line, aggregate,
/// function, range); error is ignored, matching operator==. Enables sorted
/// deduplication and set membership for large result sets (the eager
/// baseline can produce millions of candidates).
bool AggregationLess(const Aggregation& a, const Aggregation& b);

/// Canonicalizes and deduplicates a whole result set. The result is sorted
/// by AggregationLess.
std::vector<Aggregation> CanonicalizeAll(const std::vector<Aggregation>& aggregations);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_AGGREGATION_H_
