#include "core/aggrecol.h"

#include <algorithm>
#include <set>

#include "core/collective_detector.h"
#include "core/individual_detector.h"
#include "core/supplemental_detector.h"
#include "csv/parser.h"
#include "csv/sniffer.h"
#include "numfmt/axis_view.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "structure/table_splitter.h"
#include "util/stopwatch.h"

namespace aggrecol::core {
namespace {

// Converts aggregations found row-wise on a (possibly transposed) grid into
// the requested axis. For kColumn, the detector ran on the transpose, so the
// local row index is the original column (the shared line) and the local
// column indices are original rows; the field semantics already encode this,
// only the axis tag changes.
std::vector<Aggregation> TagAxis(std::vector<Aggregation> aggregations, Axis axis) {
  for (auto& aggregation : aggregations) aggregation.axis = axis;
  return aggregations;
}

// Metric-name suffix for a function: like ToString() but underscore-joined
// ("relative change" -> "relative_change") so names stay dot-delimited tokens.
std::string MetricNameOf(AggregationFunction function) {
  std::string name = ToString(function);
  std::replace(name.begin(), name.end(), ' ', '_');
  return name;
}

void AppendUnique(std::vector<Aggregation>* out, const std::vector<Aggregation>& in) {
  // Set-based dedup: large files carry thousands of detections and a linear
  // scan per insertion turns the driver quadratic.
  std::set<Aggregation, bool (*)(const Aggregation&, const Aggregation&)> seen(
      &AggregationLess);
  for (const auto& aggregation : *out) seen.insert(aggregation);
  for (const auto& aggregation : in) {
    if (seen.insert(aggregation).second) {
      out->push_back(aggregation);
    }
  }
}

}  // namespace

AggreCol::AggreCol(AggreColConfig config) : config_(std::move(config)) {
  if (config_.pool != nullptr) {
    pool_ = config_.pool;
  } else if (config_.threads > 1) {
    owned_pool_ = std::make_unique<util::ThreadPool>(config_.threads);
    pool_ = owned_pool_.get();
  }
}

DetectionResult AggreCol::Detect(const csv::Grid& grid) const {
  // The number format is elected once for the whole file (Sec. 4.2).
  const numfmt::NumberFormat format = numfmt::ElectFormat(grid);
  if (!config_.split_tables) {
    return Detect(numfmt::NumericGrid::FromGrid(grid, format, config_.normalize));
  }

  const auto regions = structure::SplitTables(grid);
  if (regions.size() <= 1) {
    return Detect(numfmt::NumericGrid::FromGrid(grid, format, config_.normalize));
  }

  // Detect per region and shift row indices back into file coordinates.
  DetectionResult merged;
  merged.format = format;
  for (const auto& region : regions) {
    config_.cancel.ThrowIfCancelled();
    const csv::Grid slice = grid.SubRows(region.first_row, region.row_count);
    DetectionResult result =
        Detect(numfmt::NumericGrid::FromGrid(slice, format, config_.normalize));
    auto shift = [&region](std::vector<Aggregation>* aggregations) {
      for (auto& aggregation : *aggregations) {
        if (aggregation.axis == Axis::kRow) {
          aggregation.line += region.first_row;
        } else {
          aggregation.aggregate += region.first_row;
          for (int& index : aggregation.range) index += region.first_row;
        }
      }
    };
    shift(&result.aggregations);
    shift(&result.individual_stage);
    shift(&result.collective_stage);
    for (auto& composite : result.composites) {
      if (composite.axis == Axis::kRow) {
        composite.line += region.first_row;
      } else {
        composite.aggregate += region.first_row;
        composite.denominator += region.first_row;
        for (int& index : composite.numerator) index += region.first_row;
      }
    }
    merged.aggregations.insert(merged.aggregations.end(),
                               result.aggregations.begin(),
                               result.aggregations.end());
    merged.individual_stage.insert(merged.individual_stage.end(),
                                   result.individual_stage.begin(),
                                   result.individual_stage.end());
    merged.collective_stage.insert(merged.collective_stage.end(),
                                   result.collective_stage.begin(),
                                   result.collective_stage.end());
    merged.composites.insert(merged.composites.end(), result.composites.begin(),
                             result.composites.end());
    merged.seconds_individual += result.seconds_individual;
    merged.seconds_collective += result.seconds_collective;
    merged.seconds_supplemental += result.seconds_supplemental;
  }
  return merged;
}

DetectionResult AggreCol::DetectText(std::string_view csv_text) const {
  const csv::SniffResult sniffed = csv::SniffDialect(csv_text);
  return Detect(csv::ParseGrid(csv_text, sniffed.dialect,
                               csv::ParseHints{sniffed.modal_row_width}));
}

DetectionResult AggreCol::Detect(const numfmt::NumericGrid& numeric) const {
  obs::ScopedSpan detect_span("detect");
  const bool obs_on = obs::Registry::enabled();
  if (obs_on) obs::Count("detect.runs");

  DetectionResult result;
  result.format = numeric.format();

  // Both axes are zero-copy strided views of the same grid: the column axis
  // no longer materializes a transposed deep copy (see numfmt/axis_view.h).
  struct DetectionAxis {
    Axis axis;
    numfmt::AxisView grid;
  };
  std::vector<DetectionAxis> views;
  if (config_.detect_rows) {
    views.push_back({Axis::kRow, numfmt::AxisView::Rows(numeric)});
  }
  if (config_.detect_columns) {
    views.push_back({Axis::kColumn, numfmt::AxisView::Columns(numeric)});
  }

  util::Stopwatch stopwatch;

  // Stage 1: individual detection per function, per axis. Each (axis,
  // function) run is independent — the parallelism the paper points out in
  // Sec. 4.4; jobs go to the shared work-stealing pool (which also balances
  // their nested per-row scans) and results are merged in a fixed order so
  // any thread count yields identical output.
  std::vector<std::vector<Aggregation>> per_axis_individual(views.size());
  {
    obs::ScopedSpan stage1_span("detect.stage1");
    config_.cancel.ThrowIfCancelled();
    struct Job {
      size_t view;
      AggregationFunction function;
    };
    std::vector<Job> jobs;
    for (size_t v = 0; v < views.size(); ++v) {
      for (AggregationFunction function : config_.functions) {
        jobs.push_back({v, function});
      }
    }
    const std::vector<std::vector<Aggregation>> job_results =
        util::ParallelMap(pool_, jobs.size(), [&](size_t j) {
          IndividualConfig individual;
          individual.error_level = config_.error_level(jobs[j].function);
          individual.coverage = config_.coverage;
          individual.window_size = config_.window_size;
          individual.rules = config_.pruning_rules;
          individual.pool = pool_;
          individual.cancel = config_.cancel;
          return DetectIndividualRowwise(views[jobs[j].view].grid,
                                         jobs[j].function, individual);
        });
    for (size_t j = 0; j < jobs.size(); ++j) {
      AppendUnique(&per_axis_individual[jobs[j].view], job_results[j]);
    }
    for (size_t v = 0; v < views.size(); ++v) {
      AppendUnique(&result.individual_stage,
                   TagAxis(per_axis_individual[v], views[v].axis));
    }
    if (obs_on) {
      obs::Count("stage1.accepted", result.individual_stage.size());
      for (const auto& aggregation : result.individual_stage) {
        obs::Count("stage1.accepted." + MetricNameOf(aggregation.function));
      }
    }
  }
  result.seconds_individual = stopwatch.ElapsedSeconds();

  // Stage 2: collective cross-function pruning, per axis.
  stopwatch.Reset();
  config_.cancel.ThrowIfCancelled();
  std::vector<std::vector<Aggregation>> per_axis_collective(views.size());
  {
    obs::ScopedSpan stage2_span("detect.stage2");
    // The per-axis walks are independent, so they run as pool jobs like the
    // stage-1 (axis, function) grid; the merge stays in fixed view order, so
    // any thread count yields identical output.
    std::vector<std::vector<Aggregation>> collective_results =
        util::ParallelMap(pool_, views.size(), [&](size_t v) {
          return config_.run_collective
                     ? CollectivePrune(views[v].grid, per_axis_individual[v])
                     : per_axis_individual[v];
        });
    for (size_t v = 0; v < views.size(); ++v) {
      per_axis_collective[v] = std::move(collective_results[v]);
      AppendUnique(&result.collective_stage,
                   TagAxis(per_axis_collective[v], views[v].axis));
    }
    if (obs_on) obs::Count("stage2.accepted", result.collective_stage.size());
  }
  result.seconds_collective = stopwatch.ElapsedSeconds();

  // Stage 3: supplemental detection of interrupt aggregations, per axis.
  stopwatch.Reset();
  config_.cancel.ThrowIfCancelled();
  result.aggregations = result.collective_stage;
  if (config_.run_supplemental) {
    obs::ScopedSpan stage3_span("detect.stage3");
    SupplementalConfig supplemental;
    supplemental.functions = config_.functions;
    supplemental.error_levels = config_.error_levels;
    supplemental.coverage = config_.coverage;
    supplemental.window_size = config_.window_size;
    supplemental.rules = config_.pruning_rules;
    supplemental.pool = pool_;
    supplemental.cancel = config_.cancel;
    supplemental.max_configurations = config_.max_configurations;
    const std::vector<std::vector<Aggregation>> extras =
        util::ParallelMap(pool_, views.size(), [&](size_t v) {
          return DetectSupplementalRowwise(views[v].grid, supplemental,
                                           per_axis_collective[v]);
        });
    const size_t before_supplemental = result.aggregations.size();
    for (size_t v = 0; v < views.size(); ++v) {
      AppendUnique(&result.aggregations, TagAxis(extras[v], views[v].axis));
    }
    if (obs_on) {
      obs::Count("stage3.recovered",
                 result.aggregations.size() - before_supplemental);
    }
    // Final per-axis sets (local coordinates) for the optional composite pass.
    for (size_t v = 0; v < views.size(); ++v) {
      AppendUnique(&per_axis_collective[v], extras[v]);
    }
  }
  result.seconds_supplemental = stopwatch.ElapsedSeconds();

  // Optional extension: composite sum-then-divide aggregations (Sec. 6).
  if (config_.detect_composites) {
    config_.cancel.ThrowIfCancelled();
    for (size_t v = 0; v < views.size(); ++v) {
      auto composites = DetectCompositeRowwise(views[v].grid, config_.composite,
                                               per_axis_collective[v]);
      for (auto& composite : composites) {
        composite.axis = views[v].axis;
        if (std::find(result.composites.begin(), result.composites.end(),
                      composite) == result.composites.end()) {
          result.composites.push_back(std::move(composite));
        }
      }
    }
  }
  return result;
}

}  // namespace aggrecol::core
