#include "core/supplemental_detector.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "core/individual_detector.h"
#include "core/pruning.h"
#include "obs/metrics.h"

namespace aggrecol::core {
namespace {

// Collects the distinct aggregate columns of `aggregations`, split by the
// cumulative property of their function.
void CollectAggregateColumns(const std::vector<Aggregation>& aggregations,
                             std::set<int>* non_cumulative, std::set<int>* cumulative) {
  for (const auto& aggregation : aggregations) {
    if (TraitsOf(aggregation.function).cumulative) {
      cumulative->insert(aggregation.aggregate);
    } else {
      non_cumulative->insert(aggregation.aggregate);
    }
  }
  // A column already forced out stays out.
  for (int col : *non_cumulative) cumulative->erase(col);
}

// Enumerates the column-removal configurations (Alg. 2, line 6): the
// non-cumulative aggregate columns are always removed; each subset of the
// cumulative aggregate columns may additionally be removed. Configurations
// are emitted as active-column masks. Beyond `max_configurations`, subsets
// are taken in order of increasing cardinality (plus the full set), so the
// most-informative all-excluded/all-included extremes always survive the cap.
std::vector<std::vector<bool>> BuildConfigurations(
    int columns, const std::set<int>& non_cumulative, const std::set<int>& cumulative,
    int max_configurations) {
  const std::vector<int> cumulative_cols(cumulative.begin(), cumulative.end());
  const size_t k = cumulative_cols.size();

  std::vector<std::vector<bool>> masks;
  auto make_mask = [&](uint64_t subset_bits) {
    std::vector<bool> active(columns, true);
    for (int col : non_cumulative) active[col] = false;
    for (size_t b = 0; b < k; ++b) {
      if (subset_bits & (uint64_t{1} << b)) active[cumulative_cols[b]] = false;
    }
    return active;
  };

  if (k < 63 && (uint64_t{1} << k) <= static_cast<uint64_t>(max_configurations)) {
    for (uint64_t bits = 0; bits < (uint64_t{1} << k); ++bits) {
      masks.push_back(make_mask(bits));
    }
  } else {
    std::set<uint64_t> chosen;
    const uint64_t full = k >= 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;
    chosen.insert(0);
    chosen.insert(full);
    // Subsets by increasing cardinality: singletons, then pairs, ...
    for (size_t cardinality = 1;
         cardinality < k && chosen.size() < static_cast<size_t>(max_configurations);
         ++cardinality) {
      // Iterate singleton/pair/... subsets via simple index combinations.
      std::vector<size_t> combo(cardinality);
      for (size_t i = 0; i < cardinality; ++i) combo[i] = i;
      while (chosen.size() < static_cast<size_t>(max_configurations)) {
        uint64_t bits = 0;
        for (size_t idx : combo) bits |= uint64_t{1} << idx;
        chosen.insert(bits);
        // Next combination.
        size_t i = cardinality;
        while (i > 0 && combo[i - 1] == k - cardinality + (i - 1)) --i;
        if (i == 0) break;
        ++combo[i - 1];
        for (size_t j = i; j < cardinality; ++j) combo[j] = combo[j - 1] + 1;
      }
    }
    for (uint64_t bits : chosen) masks.push_back(make_mask(bits));
  }

  // Drop the configuration that removes nothing: it is the original file,
  // which the earlier stages already processed.
  std::erase_if(masks, [columns](const std::vector<bool>& mask) {
    return std::all_of(mask.begin(), mask.end(), [](bool b) { return b; });
  });
  return masks;
}

}  // namespace

std::vector<Aggregation> DetectSupplementalRowwise(
    const numfmt::AxisView& grid, const SupplementalConfig& config,
    const std::vector<Aggregation>& detected) {
  std::deque<AggregationFunction> queue(config.functions.begin(),
                                        config.functions.end());
  std::vector<Aggregation> supplemental;

  // Sorted indexes over the accepted aggregations: membership, and the
  // ranges claimed per (function, aggregate) — both hot on files with
  // thousands of detections.
  std::set<Aggregation, bool (*)(const Aggregation&, const Aggregation&)> known_set(
      &AggregationLess);
  std::map<std::pair<AggregationFunction, int>, std::set<std::vector<int>>>
      claimed_ranges;
  auto index_aggregation = [&](const Aggregation& aggregation) {
    known_set.insert(aggregation);
    claimed_ranges[{aggregation.function, aggregation.aggregate}].insert(
        aggregation.range);
  };
  for (const auto& aggregation : detected) index_aggregation(aggregation);

  auto known = [&](const Aggregation& candidate) {
    return known_set.count(candidate) > 0;
  };

  // A cell carries at most one aggregation per function (the same-aggregate
  // dedup of the stage-1 pruning): a supplemental candidate whose aggregate
  // is already claimed by an accepted same-function aggregation is an
  // alternative decomposition exposed by the column removal, not a new
  // aggregation. Division stays exempt, as in the collective stage.
  auto aggregate_claimed = [&](const Aggregation& candidate) {
    if (candidate.function == AggregationFunction::kDivision) return false;
    const auto it =
        claimed_ranges.find({candidate.function, candidate.aggregate});
    if (it == claimed_ranges.end()) return false;
    // Same pattern on another line is fine; a *different* range over the
    // same aggregate is the conflicting alternative decomposition.
    return it->second.size() > 1 || it->second.count(candidate.range) == 0;
  };

  const bool obs_on = obs::Registry::enabled();
  if (obs_on) obs::Count("stage3.runs");

  while (!queue.empty()) {
    config.cancel.ThrowIfCancelled();
    const AggregationFunction function = queue.front();
    queue.pop_front();
    if (obs_on) obs::Count("stage3.rounds");

    // Construct derived files from everything detected so far (line 6).
    std::set<int> non_cumulative_cols;
    std::set<int> cumulative_cols;
    CollectAggregateColumns(detected, &non_cumulative_cols, &cumulative_cols);
    CollectAggregateColumns(supplemental, &non_cumulative_cols, &cumulative_cols);
    const std::vector<std::vector<bool>> configurations = BuildConfigurations(
        grid.columns(), non_cumulative_cols, cumulative_cols,
        config.max_configurations);
    if (obs_on) obs::Count("stage3.configurations", configurations.size());

    IndividualConfig individual;
    individual.error_level = config.error_levels[IndexOf(function)];
    individual.coverage = config.coverage;
    individual.window_size = config.window_size;
    individual.rules = config.rules;
    // The pool's work stealing spreads workers over the derived files and
    // their per-row scans; no static thread split needed.
    individual.pool = config.pool;
    individual.cancel = config.cancel;

    // Each derived file is independent; run them concurrently when a pool is
    // present, then filter in configuration order so results stay
    // deterministic.
    const std::vector<std::vector<Aggregation>> per_configuration =
        util::ParallelMap(config.pool, configurations.size(), [&](size_t c) {
          return DetectIndividualRowwise(grid, function, individual,
                                         &configurations[c]);
        });

    std::vector<Aggregation> fresh;
    std::set<Aggregation, bool (*)(const Aggregation&, const Aggregation&)> fresh_set(
        &AggregationLess);
    for (const auto& results : per_configuration) {
      for (const auto& result : results) {
        // Attribution mirrors the original short-circuit order, so every
        // rejected candidate counts under exactly one stage3.dropped.* reason.
        if (known(result)) {
          if (obs_on) obs::Count("stage3.dropped.known");
          continue;
        }
        if (aggregate_claimed(result)) {
          if (obs_on) obs::Count("stage3.dropped.claimed");
          continue;
        }
        if (fresh_set.count(result) > 0) {
          if (obs_on) obs::Count("stage3.dropped.duplicate");
          continue;
        }
        fresh.push_back(result);
        fresh_set.insert(result);
      }
    }
    if (obs_on) obs::Count("stage3.fresh", fresh.size());

    if (!fresh.empty()) {
      supplemental.insert(supplemental.end(), fresh.begin(), fresh.end());
      for (const auto& aggregation : fresh) index_aggregation(aggregation);
      // Reload the other detectors (line 13): new aggregates may unblock
      // interrupt aggregations of other functions.
      for (AggregationFunction other : config.functions) {
        if (other == function) continue;  // q <- {detectors \ d} ∪ q
        if (std::find(queue.begin(), queue.end(), other) == queue.end()) {
          queue.push_back(other);
        }
      }
    }
  }

  // Line 15: prune with the stage-1 rules. The already-accepted aggregations
  // take part in the pruning so that a supplemental candidate sharing an
  // aggregate with a validated pattern (an "alternative decomposition" of a
  // cumulative total, exposed by removing the intermediate aggregate columns)
  // loses the same-aggregate sufficiency contest; only the surviving *new*
  // aggregations are returned.
  std::vector<Aggregation> joint = detected;
  joint.insert(joint.end(), supplemental.begin(), supplemental.end());
  std::vector<Aggregation> pruned =
      PruneIndividual(grid, joint, config.coverage, config.rules);
  std::erase_if(pruned, [&detected](const Aggregation& aggregation) {
    return std::find(detected.begin(), detected.end(), aggregation) != detected.end();
  });
  if (obs_on) obs::Count("stage3.returned", pruned.size());
  return pruned;
}

}  // namespace aggrecol::core
