#ifndef AGGRECOL_CORE_COMPOSITE_DETECTOR_H_
#define AGGRECOL_CORE_COMPOSITE_DETECTOR_H_

#include <string>
#include <vector>

#include "core/aggregation.h"
#include "numfmt/axis_view.h"

namespace aggrecol::core {

/// A multi-function aggregation of the sum-then-divide shape the paper's
/// future work calls for (Sec. 6): A = (sum of `numerator`) / `denominator`,
/// e.g. "the percentage of population holding at least a university degree
/// is the sum of populations with bachelor, master, and doctor degrees
/// divided by the total population". Single-function divisions are covered
/// by the core pipeline; composites apply when no intermediate sum column
/// exists.
struct CompositeAggregation {
  Axis axis = Axis::kRow;
  int line = 0;
  int aggregate = 0;
  std::vector<int> numerator;  // >= 2 column indices, ascending
  int denominator = 0;
  double error = 0.0;

  friend bool operator==(const CompositeAggregation& a,
                         const CompositeAggregation& b) {
    return a.axis == b.axis && a.line == b.line && a.aggregate == b.aggregate &&
           a.numerator == b.numerator && a.denominator == b.denominator;
  }
};

/// e.g. "(row:2, 5 <- sum{1, 2, 3} / 0, e=0)".
std::string ToString(const CompositeAggregation& composite);

/// Parameters of composite detection.
struct CompositeConfig {
  /// Maximum tolerable error level (ratios are usually rounded, so the
  /// division default applies).
  double error_level = 0.03;

  /// Line aggregation coverage threshold, as in the core stages.
  double coverage = 0.7;

  /// Sliding-window size: numerator runs and the denominator must lie within
  /// this many range-usable cells of the aggregate, per side.
  int window_size = 10;

  /// Numerator run lengths considered (contiguous in window order).
  int min_numerator = 2;
  int max_numerator = 4;
};

/// Detects row-wise composite aggregations on `grid`: for every numeric
/// aggregate candidate, contiguous runs of 2..max_numerator range-usable
/// cells within the window are summed and divided by every other window cell;
/// matches are grouped by pattern and pruned by the coverage threshold.
/// Candidates whose numerator equals the range of an already-`detected`
/// same-axis sum aggregation are dropped — there the intermediate total
/// exists and the plain division of the core pipeline already explains the
/// relationship.
std::vector<CompositeAggregation> DetectCompositeRowwise(
    const numfmt::AxisView& grid, const CompositeConfig& config,
    const std::vector<Aggregation>& detected);

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_COMPOSITE_DETECTOR_H_
