#include "core/window_strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/line_index.h"

namespace aggrecol::core {
namespace {

// Collects the `window_size` active, range-usable columns closest to
// `aggregate_col` in direction `step` (raw-view reference path).
std::vector<int> CollectWindow(const numfmt::AxisView& view,
                               const std::vector<bool>& active_columns, int row,
                               int aggregate_col, int step, int window_size) {
  std::vector<int> window;
  for (int col = aggregate_col + step;
       col >= 0 && col < view.columns() &&
       static_cast<int>(window.size()) < window_size;
       col += step) {
    if (!active_columns[col]) continue;
    if (!view.IsRangeUsable(row, col)) continue;
    window.push_back(col);
  }
  return window;
}

// Keep-first suppression of candidates whose canonical forms collide. For
// difference, A = B - C (aggregate A) and its mirror C = B - A (aggregate C)
// both canonicalize to the sum B = A + C; the later one in scan order is the
// mirror and is dropped. Division and relative change are their own canonical
// forms, so they pass through untouched.
std::vector<Aggregation> SuppressCanonicalMirrors(std::vector<Aggregation> found) {
  std::vector<Aggregation> kept;
  kept.reserve(found.size());
  std::vector<Aggregation> canonical_seen;
  for (Aggregation& aggregation : found) {
    Aggregation canonical = Canonicalize(aggregation);
    const auto at = std::lower_bound(canonical_seen.begin(), canonical_seen.end(),
                                     canonical, AggregationLess);
    if (at != canonical_seen.end() && *at == canonical) continue;
    canonical_seen.insert(at, std::move(canonical));
    kept.push_back(std::move(aggregation));
  }
  return kept;
}

constexpr double kEps = std::numeric_limits<double>::epsilon();
constexpr double kInflate = 1.0 + 32.0 * kEps;
// The batch screen's inflation: one extra kInflate's worth of headroom over
// the per-pair screens whose decisions it has to dominate.
constexpr double kInflateBatch = 1.0 + 64.0 * kEps;

// O(1) certain-miss rejection of one *whole* window [lo, hi) in compact
// space against the aggregate `observed`: returns true only when every
// ordered pair (b, c) drawn from the window would be rejected by the
// per-pair screens in TestWindows, in which case the O(width^2) pair loop is
// skipped outright. Built from the window's min/max value bounds
// (LineIndex::SpanMin/SpanMax — the prefix machinery's range queries):
// each screen's left-hand side g is *linear* in (b, c), so its exact range
// over the window box [wmin, wmax]^2 is spanned by the four corner
// evaluations; `margin` widens that interval by more than the evaluation
// rounding of any individual pair, and the per-pair right-hand side is
// replaced by its window-wide maximum. Batch rejection therefore implies
// per-pair rejection for every pair — it can never suppress an emission, so
// candidate order (and the mirrored-difference keep-first suppression that
// depends on it) is untouched.
//
// Division and relative change refuse to batch-reject when the window's
// value range spans zero (wmin <= 0 <= wmax): a ratio bound derived from
// min/max is invalid once the divisor range crosses 0 — the achievable
// quotients are unbounded on both sides, and zero or ±denormal divisors sit
// exactly on that boundary — so those windows fall through to the per-pair
// screens (which skip b==0 / c==0 exactly like the reference) and their
// exact replays.
bool RejectWholeWindow(const LineIndex& index, int lo, int hi,
                       AggregationFunction function, double observed,
                       double threshold) {
  const double wmin = index.SpanMin(lo, hi);
  const double wmax = index.SpanMax(lo, hi);
  const double span = wmax - wmin;
  const double abs_max = std::max(std::fabs(wmin), std::fabs(wmax));
  const double abs_obs = std::fabs(observed);
  double g_lo = 0.0;
  double g_hi = 0.0;
  double margin = 0.0;
  double rhs = 0.0;
  switch (function) {
    case AggregationFunction::kDifference: {
      // Pair term g = (b - c) - obs; b - c ranges over [-span, span].
      g_lo = -span - observed;
      g_hi = span - observed;
      margin = kEps * 4.0 * (span + abs_obs);
      rhs = (threshold + kEps * span) * kInflateBatch;
      break;
    }
    case AggregationFunction::kDivision: {
      if (wmin <= 0.0 && wmax >= 0.0) return false;  // divisor range spans 0
      // Pair term g = b - obs*c; per-pair RHS thr*|c| + eps*|obs*c| is
      // bounded by its value at |c| = abs_max.
      const double c1 = observed * wmin;
      const double c2 = observed * wmax;
      g_lo = std::min(std::min(wmin - c1, wmin - c2),
                      std::min(wmax - c1, wmax - c2));
      g_hi = std::max(std::max(wmin - c1, wmin - c2),
                      std::max(wmax - c1, wmax - c2));
      margin = kEps * 4.0 * (1.0 + abs_obs) * abs_max;
      rhs = (threshold * abs_max + kEps * abs_obs * abs_max) * kInflateBatch;
      break;
    }
    case AggregationFunction::kRelativeChange: {
      if (wmin <= 0.0 && wmax >= 0.0) return false;  // divisor range spans 0
      // Pair term g = (c - b) - obs*b = c - (1 + obs)*b.
      const double t = 1.0 + observed;
      const double b1 = t * wmin;
      const double b2 = t * wmax;
      g_lo = std::min(std::min(wmin - b1, wmin - b2),
                      std::min(wmax - b1, wmax - b2));
      g_hi = std::max(std::max(wmin - b1, wmin - b2),
                      std::max(wmax - b1, wmax - b2));
      margin = kEps * 4.0 * (span + (1.0 + abs_obs) * abs_max);
      rhs = (threshold * abs_max + kEps * (span + abs_obs * abs_max)) *
            kInflateBatch;
      break;
    }
    default:
      return false;  // commutative functions never reach the window scan
  }
  // Distance from 0 to the widened interval [g_lo - margin, g_hi + margin].
  // NaN/inf corners (overflowing obs*c products) fail both comparisons and
  // fall through to the per-pair path — conservative by construction.
  const double widened_lo = g_lo - margin;
  const double widened_hi = g_hi + margin;
  double distance = 0.0;
  if (widened_lo > 0.0) {
    distance = widened_lo;
  } else if (widened_hi < 0.0) {
    distance = -widened_hi;
  } else {
    return false;  // 0 is achievable: some pair may survive its screen
  }
  return distance > rhs;
}

// Shared pair loop: tests every ordered pair of each side's window against
// the aggregate at compact position `pos` of `index`.
//
// Each side's window is first screened *as a whole* (RejectWholeWindow
// above); a surviving window's pairs are then screened division-free: the
// reference test
//   ErrorLevel(obs, ApplyPairwise(f, b, c)) <= level + slack
// is multiplied through by the pairwise function's denominator, turning it
// into one absolute comparison per pair (no division, no optional, no call).
// The eps terms and kInflate make the screen strictly conservative — it can
// only certify *misses* — so every survivor replays the exact
// ApplyPairwise + ErrorLevel decision and the kernel stays bit-identical to
// the naive scan. (When obs == 0 the reference error is absolute; then
// target = obs * denom = 0 and threshold = level + slack, so the same
// formulas cover both cases without a branch.)
void TestWindows(const LineIndex& index, int row, int pos,
                 AggregationFunction function, double error_level,
                 int window_size, std::vector<Aggregation>& found) {
  const double observed = index.value(pos);
  const double threshold = (error_level + kErrorSlack) *
                           (observed != 0.0 ? std::fabs(observed) : 1.0);
  for (int step : {+1, -1}) {
    // The window in compact space: the nearest usable positions on one side.
    const int available = step > 0 ? index.size() - 1 - pos : pos;
    const int width = std::min(window_size, available);
    if (width >= 2) {
      const int window_lo = step > 0 ? pos + 1 : pos - width;
      const int window_hi = step > 0 ? pos + 1 + width : pos;
      if (RejectWholeWindow(index, window_lo, window_hi, function, observed,
                            threshold)) {
        continue;  // every pair in this window is a certain miss
      }
    }
    for (int bi = 1; bi <= width; ++bi) {
      for (int ci = 1; ci <= width; ++ci) {
        if (bi == ci) continue;
        const int b_pos = pos + step * bi;
        const int c_pos = pos + step * ci;
        const double b = index.value(b_pos);
        const double c = index.value(c_pos);
        switch (function) {
          case AggregationFunction::kDifference: {
            // |(b - c) - obs| > (level + slack) * |obs|  => miss.
            const double diff = b - c;
            if (std::fabs(diff - observed) >
                (threshold + kEps * std::fabs(diff)) * kInflate) {
              continue;
            }
            break;
          }
          case AggregationFunction::kDivision: {
            // b / c vs obs, scaled by |c|: |b - obs*c| > thr*|c|  => miss.
            if (c == 0.0) continue;  // reference skips the pair entirely
            const double target = observed * c;
            if (std::fabs(b - target) >
                (threshold * std::fabs(c) + kEps * std::fabs(target)) *
                    kInflate) {
              continue;
            }
            break;
          }
          case AggregationFunction::kRelativeChange: {
            // (c - b) / b vs obs, scaled by |b|: |(c-b) - obs*b| > thr*|b|.
            if (b == 0.0) continue;  // reference skips the pair entirely
            const double diff = c - b;
            const double target = observed * b;
            if (std::fabs(diff - target) >
                (threshold * std::fabs(b) +
                 kEps * (std::fabs(diff) + std::fabs(target))) *
                    kInflate) {
              continue;
            }
            break;
          }
          default:
            break;  // commutative functions never reach the window scan
        }
        const auto calculated = ApplyPairwise(function, b, c);
        if (!calculated.has_value()) continue;
        const double error = ErrorLevel(observed, *calculated);
        if (WithinErrorLevel(error, error_level)) {
          Aggregation aggregation;
          aggregation.axis = Axis::kRow;
          aggregation.line = row;
          aggregation.aggregate = index.col(pos);
          aggregation.range = {index.col(b_pos), index.col(c_pos)};
          aggregation.function = function;
          aggregation.error = error;
          found.push_back(std::move(aggregation));
        }
      }
    }
  }
}

}  // namespace

std::vector<Aggregation> DetectWindowPairwise(
    const numfmt::AxisView& view, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level, int window_size) {
  std::vector<Aggregation> found;
  LineIndex index;
  index.Build(view, active_columns, row);
  index.BuildSpanBounds();  // the batch screen's O(1) window min/max
  for (int pos = 0; pos < index.size(); ++pos) {
    if (!index.is_numeric(pos)) continue;
    TestWindows(index, row, pos, function, error_level, window_size, found);
  }
  return SuppressCanonicalMirrors(std::move(found));
}

std::vector<Aggregation> DetectWindowPairwiseNaive(
    const numfmt::AxisView& view, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level, int window_size) {
  std::vector<Aggregation> found;
  for (int j = 0; j < view.columns(); ++j) {
    if (!active_columns[j]) continue;
    if (!view.IsNumeric(row, j)) continue;
    const double observed = view.value(row, j);
    for (int step : {+1, -1}) {
      const std::vector<int> window =
          CollectWindow(view, active_columns, row, j, step, window_size);
      for (int b_col : window) {
        for (int c_col : window) {
          if (b_col == c_col) continue;
          const auto calculated = ApplyPairwise(function, view.value(row, b_col),
                                                view.value(row, c_col));
          if (!calculated.has_value()) continue;
          const double error = ErrorLevel(observed, *calculated);
          if (WithinErrorLevel(error, error_level)) {
            Aggregation aggregation;
            aggregation.axis = Axis::kRow;
            aggregation.line = row;
            aggregation.aggregate = j;
            aggregation.range = {b_col, c_col};
            aggregation.function = function;
            aggregation.error = error;
            found.push_back(std::move(aggregation));
          }
        }
      }
    }
  }
  return SuppressCanonicalMirrors(std::move(found));
}

}  // namespace aggrecol::core
