#include "core/window_strategy.h"

namespace aggrecol::core {
namespace {

// Collects the `window_size` active, range-usable columns closest to
// `aggregate_col` in direction `step`.
std::vector<int> CollectWindow(const numfmt::NumericGrid& grid,
                               const std::vector<bool>& active_columns, int row,
                               int aggregate_col, int step, int window_size) {
  std::vector<int> window;
  for (int col = aggregate_col + step;
       col >= 0 && col < grid.columns() &&
       static_cast<int>(window.size()) < window_size;
       col += step) {
    if (!active_columns[col]) continue;
    if (!grid.IsRangeUsable(row, col)) continue;
    window.push_back(col);
  }
  return window;
}

}  // namespace

std::vector<Aggregation> DetectWindowPairwise(
    const numfmt::NumericGrid& grid, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level, int window_size) {
  std::vector<Aggregation> found;
  for (int j = 0; j < grid.columns(); ++j) {
    if (!active_columns[j]) continue;
    if (!grid.IsNumeric(row, j)) continue;
    const double observed = grid.value(row, j);
    for (int step : {+1, -1}) {
      const std::vector<int> window =
          CollectWindow(grid, active_columns, row, j, step, window_size);
      for (int b_col : window) {
        for (int c_col : window) {
          if (b_col == c_col) continue;
          const auto calculated = ApplyPairwise(function, grid.value(row, b_col),
                                                grid.value(row, c_col));
          if (!calculated.has_value()) continue;
          const double error = ErrorLevel(observed, *calculated);
          if (WithinErrorLevel(error, error_level)) {
            Aggregation aggregation;
            aggregation.axis = Axis::kRow;
            aggregation.line = row;
            aggregation.aggregate = j;
            aggregation.range = {b_col, c_col};
            aggregation.function = function;
            aggregation.error = error;
            found.push_back(std::move(aggregation));
          }
        }
      }
    }
  }
  return found;
}

}  // namespace aggrecol::core
