#include "core/window_strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/line_index.h"

namespace aggrecol::core {
namespace {

// Collects the `window_size` active, range-usable columns closest to
// `aggregate_col` in direction `step` (raw-view reference path).
std::vector<int> CollectWindow(const numfmt::AxisView& view,
                               const std::vector<bool>& active_columns, int row,
                               int aggregate_col, int step, int window_size) {
  std::vector<int> window;
  for (int col = aggregate_col + step;
       col >= 0 && col < view.columns() &&
       static_cast<int>(window.size()) < window_size;
       col += step) {
    if (!active_columns[col]) continue;
    if (!view.IsRangeUsable(row, col)) continue;
    window.push_back(col);
  }
  return window;
}

// Keep-first suppression of candidates whose canonical forms collide. For
// difference, A = B - C (aggregate A) and its mirror C = B - A (aggregate C)
// both canonicalize to the sum B = A + C; the later one in scan order is the
// mirror and is dropped. Division and relative change are their own canonical
// forms, so they pass through untouched.
std::vector<Aggregation> SuppressCanonicalMirrors(std::vector<Aggregation> found) {
  std::vector<Aggregation> kept;
  kept.reserve(found.size());
  std::vector<Aggregation> canonical_seen;
  for (Aggregation& aggregation : found) {
    Aggregation canonical = Canonicalize(aggregation);
    const auto at = std::lower_bound(canonical_seen.begin(), canonical_seen.end(),
                                     canonical, AggregationLess);
    if (at != canonical_seen.end() && *at == canonical) continue;
    canonical_seen.insert(at, std::move(canonical));
    kept.push_back(std::move(aggregation));
  }
  return kept;
}

// Shared pair loop: tests every ordered pair of each side's window against
// the aggregate at compact position `pos` of `index`.
//
// Each pair is first screened division-free: the reference test
//   ErrorLevel(obs, ApplyPairwise(f, b, c)) <= level + slack
// is multiplied through by the pairwise function's denominator, turning it
// into one absolute comparison per pair (no division, no optional, no call).
// The eps terms and kInflate make the screen strictly conservative — it can
// only certify *misses* — so every survivor replays the exact
// ApplyPairwise + ErrorLevel decision and the kernel stays bit-identical to
// the naive scan. (When obs == 0 the reference error is absolute; then
// target = obs * denom = 0 and threshold = level + slack, so the same
// formulas cover both cases without a branch.)
void TestWindows(const LineIndex& index, int row, int pos,
                 AggregationFunction function, double error_level,
                 int window_size, std::vector<Aggregation>& found) {
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  constexpr double kInflate = 1.0 + 32.0 * kEps;
  const double observed = index.value(pos);
  const double threshold = (error_level + kErrorSlack) *
                           (observed != 0.0 ? std::fabs(observed) : 1.0);
  for (int step : {+1, -1}) {
    // The window in compact space: the nearest usable positions on one side.
    const int available = step > 0 ? index.size() - 1 - pos : pos;
    const int width = std::min(window_size, available);
    for (int bi = 1; bi <= width; ++bi) {
      for (int ci = 1; ci <= width; ++ci) {
        if (bi == ci) continue;
        const int b_pos = pos + step * bi;
        const int c_pos = pos + step * ci;
        const double b = index.value(b_pos);
        const double c = index.value(c_pos);
        switch (function) {
          case AggregationFunction::kDifference: {
            // |(b - c) - obs| > (level + slack) * |obs|  => miss.
            const double diff = b - c;
            if (std::fabs(diff - observed) >
                (threshold + kEps * std::fabs(diff)) * kInflate) {
              continue;
            }
            break;
          }
          case AggregationFunction::kDivision: {
            // b / c vs obs, scaled by |c|: |b - obs*c| > thr*|c|  => miss.
            if (c == 0.0) continue;  // reference skips the pair entirely
            const double target = observed * c;
            if (std::fabs(b - target) >
                (threshold * std::fabs(c) + kEps * std::fabs(target)) *
                    kInflate) {
              continue;
            }
            break;
          }
          case AggregationFunction::kRelativeChange: {
            // (c - b) / b vs obs, scaled by |b|: |(c-b) - obs*b| > thr*|b|.
            if (b == 0.0) continue;  // reference skips the pair entirely
            const double diff = c - b;
            const double target = observed * b;
            if (std::fabs(diff - target) >
                (threshold * std::fabs(b) +
                 kEps * (std::fabs(diff) + std::fabs(target))) *
                    kInflate) {
              continue;
            }
            break;
          }
          default:
            break;  // commutative functions never reach the window scan
        }
        const auto calculated = ApplyPairwise(function, b, c);
        if (!calculated.has_value()) continue;
        const double error = ErrorLevel(observed, *calculated);
        if (WithinErrorLevel(error, error_level)) {
          Aggregation aggregation;
          aggregation.axis = Axis::kRow;
          aggregation.line = row;
          aggregation.aggregate = index.col(pos);
          aggregation.range = {index.col(b_pos), index.col(c_pos)};
          aggregation.function = function;
          aggregation.error = error;
          found.push_back(std::move(aggregation));
        }
      }
    }
  }
}

}  // namespace

std::vector<Aggregation> DetectWindowPairwise(
    const numfmt::AxisView& view, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level, int window_size) {
  std::vector<Aggregation> found;
  LineIndex index;
  index.Build(view, active_columns, row);
  for (int pos = 0; pos < index.size(); ++pos) {
    if (!index.is_numeric(pos)) continue;
    TestWindows(index, row, pos, function, error_level, window_size, found);
  }
  return SuppressCanonicalMirrors(std::move(found));
}

std::vector<Aggregation> DetectWindowPairwiseNaive(
    const numfmt::AxisView& view, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level, int window_size) {
  std::vector<Aggregation> found;
  for (int j = 0; j < view.columns(); ++j) {
    if (!active_columns[j]) continue;
    if (!view.IsNumeric(row, j)) continue;
    const double observed = view.value(row, j);
    for (int step : {+1, -1}) {
      const std::vector<int> window =
          CollectWindow(view, active_columns, row, j, step, window_size);
      for (int b_col : window) {
        for (int c_col : window) {
          if (b_col == c_col) continue;
          const auto calculated = ApplyPairwise(function, view.value(row, b_col),
                                                view.value(row, c_col));
          if (!calculated.has_value()) continue;
          const double error = ErrorLevel(observed, *calculated);
          if (WithinErrorLevel(error, error_level)) {
            Aggregation aggregation;
            aggregation.axis = Axis::kRow;
            aggregation.line = row;
            aggregation.aggregate = j;
            aggregation.range = {b_col, c_col};
            aggregation.function = function;
            aggregation.error = error;
            found.push_back(std::move(aggregation));
          }
        }
      }
    }
  }
  return SuppressCanonicalMirrors(std::move(found));
}

}  // namespace aggrecol::core
