#ifndef AGGRECOL_CORE_APPROX_H_
#define AGGRECOL_CORE_APPROX_H_

#include <algorithm>
#include <cmath>

namespace aggrecol::core {

/// Default tolerance of ApproxEq. Derived scores (sufficiency ratios, mean
/// error levels, ratio fractions) are quotients of values that already went
/// through decimal round-trips, so two mathematically equal scores can differ
/// by a few ulps; 1e-12 absorbs that noise while staying far below any
/// difference the detector treats as meaningful.
inline constexpr double kApproxEps = 1e-12;

/// The project's sanctioned floating-point equality (lint rule L2): true when
/// `a` and `b` differ by at most `eps`, absolutely for values near or below
/// magnitude one and relatively for larger magnitudes. Raw `==`/`!=` between
/// doubles in src/core/ must route through this helper (or be an exact-zero
/// guard) so tie-breaks stay stable under floating-point noise.
///
/// NaN compares unequal to everything, matching IEEE semantics; equal
/// infinities compare equal.
inline bool ApproxEq(double a, double b, double eps = kApproxEps) {
  if (a == b) return true;  // exact hits, including equal infinities
  const double diff = std::fabs(a - b);
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return diff <= eps * scale;
}

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_APPROX_H_
