#include "core/adjacency_strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "core/line_index.h"

namespace aggrecol::core {
namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

// Grows the adjacency list from compact position `pos` of `index` in
// direction `step` (+1 or -1) and returns the first matching aggregation, if
// any. Each candidate size is first evaluated as a prefix subtraction; only
// when the conservative rounding bound cannot *reject* the candidate does the
// compensated per-element walk run. A candidate is only ever accepted from
// the exact walk, so the emitted decision and error level are those of the
// reference scan regardless of how tight the bound is.
std::optional<Aggregation> SearchDirectionIndexed(const LineIndex& index,
                                                  int row, int pos, int step,
                                                  AggregationFunction function,
                                                  double error_level) {
  const double observed = index.value(pos);
  const bool average = function == AggregationFunction::kAverage;
  const int min_range = MinRangeSize(function);
  const int limit = step > 0 ? index.size() - 1 - pos : pos;

  // Division-free screen. The reference tests
  //   |calc - obs| / |obs| <= level + slack   (obs != 0; calc = sum / scale)
  //   |calc - obs|         <= level + slack   (obs == 0)
  // with scale = m for average and 1 for sum. Multiplying through by
  // scale * |obs| (resp. scale) turns both into one absolute comparison on
  // the raw prefix-subtracted sum — no division per candidate:
  //   |sum - obs*scale| > (threshold*scale + drift) * kInflate  => certain miss
  // `drift` bounds |sum_fast - sum_exact| plus the rounding of forming the
  // screen's own terms; kInflate absorbs the few-eps relative rounding of the
  // reference's division/comparison. The screen therefore only ever certifies
  // misses; any potential accept falls through to the exact replay, which
  // alone decides — keeping the kernel bit-identical to the naive scan.
  constexpr double kInflate = 1.0 + 32.0 * kEps;
  const double threshold = (error_level + kErrorSlack) *
                           (observed != 0.0 ? std::fabs(observed) : 1.0);
  for (int m = min_range; m <= limit; ++m) {
    const int lo = step > 0 ? pos + 1 : pos - m;
    const int hi = step > 0 ? pos + 1 + m : pos;  // exclusive
    const double scale = average ? static_cast<double>(m) : 1.0;
    const double target = observed * scale;
    const double fast_sum = index.PrefixSum(lo, hi);
    const double gap = std::fabs(fast_sum - target);
    const double drift = index.SumErrorBound(hi) +
                         kEps * (std::fabs(fast_sum) + std::fabs(target));
    if (gap > (threshold * scale + drift) * kInflate) continue;  // certain miss

    // Ambiguous or likely hit: replay the reference walk over this span (the
    // incremental Kahan state after m adds equals a fresh compensated sum of
    // the same values in the same order).
    const double exact_sum = index.CompensatedSum(lo, hi, /*reverse=*/step < 0);
    const double calculated =
        average ? exact_sum / static_cast<double>(m) : exact_sum;
    const double error = ErrorLevel(observed, calculated);
    if (!WithinErrorLevel(error, error_level)) continue;

    Aggregation found;
    found.axis = Axis::kRow;
    found.line = row;
    found.aggregate = index.col(pos);
    found.range.reserve(static_cast<size_t>(m));
    for (int p = lo; p < hi; ++p) found.range.push_back(index.col(p));
    found.function = function;
    found.error = error;
    return found;
  }
  return std::nullopt;
}

// The reference per-candidate walk of the naive implementation, on the raw
// view. Sums with the same incremental Kahan accumulator the kernel's exact
// path replays.
std::optional<Aggregation> SearchDirection(const numfmt::AxisView& view,
                                           const std::vector<bool>& active_columns,
                                           int row, int aggregate_col, int step,
                                           AggregationFunction function,
                                           double error_level) {
  const double observed = view.value(row, aggregate_col);
  const int min_range = MinRangeSize(function);
  std::vector<int> range;
  KahanAccumulator running_sum;
  for (int col = aggregate_col + step; col >= 0 && col < view.columns(); col += step) {
    if (!active_columns[col]) continue;
    if (!view.IsRangeUsable(row, col)) continue;  // text cells are skipped
    range.push_back(col);
    running_sum.Add(view.value(row, col));
    if (static_cast<int>(range.size()) < min_range) continue;
    const double calculated = function == AggregationFunction::kAverage
                                  ? running_sum.Total() / static_cast<double>(range.size())
                                  : running_sum.Total();
    if (WithinErrorLevel(ErrorLevel(observed, calculated), error_level)) {
      Aggregation found;
      found.axis = Axis::kRow;
      found.line = row;
      found.aggregate = aggregate_col;
      found.range = range;
      if (step < 0) std::reverse(found.range.begin(), found.range.end());
      found.function = function;
      found.error = ErrorLevel(observed, calculated);
      return found;
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<Aggregation> DetectAdjacentCommutative(
    const numfmt::AxisView& view, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level) {
  std::vector<Aggregation> found;
  LineIndex index;
  index.Build(view, active_columns, row);
  for (int pos = 0; pos < index.size(); ++pos) {
    if (!index.is_numeric(pos)) continue;  // aggregates must be explicit numbers
    for (int step : {+1, -1}) {
      if (auto aggregation = SearchDirectionIndexed(index, row, pos, step,
                                                    function, error_level)) {
        found.push_back(std::move(*aggregation));
      }
    }
  }
  return found;
}

std::vector<Aggregation> DetectAdjacentCommutativeNaive(
    const numfmt::AxisView& view, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level) {
  std::vector<Aggregation> found;
  for (int j = 0; j < view.columns(); ++j) {
    if (!active_columns[j]) continue;
    if (!view.IsNumeric(row, j)) continue;  // aggregates must be explicit numbers
    for (int step : {+1, -1}) {
      if (auto aggregation = SearchDirection(view, active_columns, row, j, step,
                                             function, error_level)) {
        found.push_back(std::move(*aggregation));
      }
    }
  }
  return found;
}

}  // namespace aggrecol::core
