#include "core/adjacency_strategy.h"

#include <algorithm>

namespace aggrecol::core {
namespace {

// Grows the adjacency list from `aggregate_col` in direction `step` (+1 or
// -1) and returns the first matching aggregation, if any.
std::optional<Aggregation> SearchDirection(const numfmt::NumericGrid& grid,
                                           const std::vector<bool>& active_columns,
                                           int row, int aggregate_col, int step,
                                           AggregationFunction function,
                                           double error_level) {
  const double observed = grid.value(row, aggregate_col);
  const int min_range = MinRangeSize(function);
  std::vector<int> range;
  double running_sum = 0.0;
  for (int col = aggregate_col + step; col >= 0 && col < grid.columns(); col += step) {
    if (!active_columns[col]) continue;
    if (!grid.IsRangeUsable(row, col)) continue;  // text cells are skipped
    range.push_back(col);
    running_sum += grid.value(row, col);
    if (static_cast<int>(range.size()) < min_range) continue;
    const double calculated = function == AggregationFunction::kAverage
                                  ? running_sum / static_cast<double>(range.size())
                                  : running_sum;
    if (WithinErrorLevel(ErrorLevel(observed, calculated), error_level)) {
      Aggregation found;
      found.axis = Axis::kRow;
      found.line = row;
      found.aggregate = aggregate_col;
      found.range = range;
      if (step < 0) std::reverse(found.range.begin(), found.range.end());
      found.function = function;
      found.error = ErrorLevel(observed, calculated);
      return found;
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<Aggregation> DetectAdjacentCommutative(
    const numfmt::NumericGrid& grid, const std::vector<bool>& active_columns,
    int row, AggregationFunction function, double error_level) {
  std::vector<Aggregation> found;
  for (int j = 0; j < grid.columns(); ++j) {
    if (!active_columns[j]) continue;
    if (!grid.IsNumeric(row, j)) continue;  // aggregates must be explicit numbers
    for (int step : {+1, -1}) {
      if (auto aggregation = SearchDirection(grid, active_columns, row, j, step,
                                             function, error_level)) {
        found.push_back(std::move(*aggregation));
      }
    }
  }
  return found;
}

}  // namespace aggrecol::core
