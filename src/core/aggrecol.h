#ifndef AGGRECOL_CORE_AGGRECOL_H_
#define AGGRECOL_CORE_AGGRECOL_H_

#include <array>
#include <memory>
#include <string_view>
#include <vector>

#include "core/aggregation.h"
#include "core/composite_detector.h"
#include "core/function.h"
#include "core/pruning.h"
#include "csv/grid.h"
#include "numfmt/numeric_grid.h"
#include "util/thread_pool.h"

namespace aggrecol::core {

/// Full configuration of the three-stage AggreCol pipeline (Sec. 3).
struct AggreColConfig {
  /// Per-function maximum error level, indexed by IndexOf(). Defaults are
  /// the per-function optima selected on the VALIDATION corpus (Sec. 4.3.2 /
  /// Fig. 7 methodology; regenerate with bench/fig7_error_levels).
  std::array<double, kAllFunctions.size()> error_levels = {
      /*sum=*/0.01, /*difference=*/0.01, /*average=*/0.01,
      /*division=*/0.03, /*relative change=*/0.03};

  /// Line aggregation coverage threshold cov (best average F1 at 0.7).
  double coverage = 0.7;

  /// Sliding-window size (fixed at 10 in the paper).
  int window_size = 10;

  /// Which aggregation functions to detect.
  std::vector<AggregationFunction> functions = {
      AggregationFunction::kSum, AggregationFunction::kDifference,
      AggregationFunction::kAverage, AggregationFunction::kDivision,
      AggregationFunction::kRelativeChange};

  /// Detect row-wise / column-wise aggregations (both by default, Sec. 3).
  bool detect_rows = true;
  bool detect_columns = true;

  /// Stage toggles, used by the Fig. 8 stage-ablation experiment: "I" runs
  /// only individual detection, "C" adds collective pruning, "S" adds the
  /// supplemental stage.
  bool run_collective = true;
  bool run_supplemental = true;

  /// Cap on constructed files per supplemental detector run (see
  /// SupplementalConfig::max_configurations).
  int max_configurations = 64;

  /// Stage-1/3 pruning-step toggles (ablation; all on by default).
  PruningRules pruning_rules;

  /// Worker threads for the embarrassingly parallel parts (the per-function,
  /// per-axis individual detectors, their per-row scans, and the supplemental
  /// stage's derived files). The paper notes the individual detectors "can be
  /// easily implemented in parallel to improve efficiency" (Sec. 4.4);
  /// 1 = sequential. Results are bit-identical for any thread count — every
  /// merge happens in a fixed order (enforced by tests/determinism_test.cc).
  /// Ignored when `pool` is injected.
  int threads = 1;

  /// Injected work-stealing pool shared across detectors (and, in batch
  /// runs, across files — see eval::BatchRunner). Non-owning; must outlive
  /// the AggreCol instance. When null and threads > 1, the detector creates
  /// a private pool of `threads` workers. All parallelism in the pipeline
  /// goes through this pool: no code path creates threads directly.
  util::ThreadPool* pool = nullptr;

  /// Cooperative cancellation/deadline token, polled between rows, derived
  /// files, and stages. When it trips, Detect() aborts by throwing
  /// util::CancelledError (the batch engine maps this to a `timed_out`
  /// outcome).
  util::CancellationToken cancel;

  /// Split the file into blank-row-separated regions and detect per region
  /// (structure-detection extension): verbose files often stack several
  /// tables, and whole-file pattern coverage dilutes when their layouts
  /// differ. Off by default — the paper processes files whole.
  bool split_tables = false;

  /// Opt-in detection of sum-then-divide composite aggregations — the
  /// multi-function future work of the paper's Sec. 6. Off by default to
  /// keep the core pipeline the paper's.
  bool detect_composites = false;
  CompositeConfig composite;

  /// Number normalization behaviour (Sec. 4.2 and zero conventions).
  numfmt::NormalizeOptions normalize;

  double& error_level(AggregationFunction function) {
    return error_levels[IndexOf(function)];
  }
  double error_level(AggregationFunction function) const {
    return error_levels[IndexOf(function)];
  }
};

/// Output of a full pipeline run, with per-stage snapshots for the Fig. 8
/// ablation and per-stage timings for the runtime analysis (Sec. 4.4).
struct DetectionResult {
  /// Final detections (after every enabled stage), deduplicated.
  std::vector<Aggregation> aggregations;

  /// Snapshot after stage 1 (union of all individual detectors, both axes).
  std::vector<Aggregation> individual_stage;

  /// Snapshot after stage 2 (collective pruning; == individual_stage when
  /// the stage is disabled).
  std::vector<Aggregation> collective_stage;

  /// Composite sum-then-divide aggregations (only when
  /// AggreColConfig::detect_composites is set).
  std::vector<CompositeAggregation> composites;

  /// Number format elected for the file (Sec. 4.2).
  numfmt::NumberFormat format = numfmt::NumberFormat::kCommaDot;

  /// Wall-clock seconds spent per stage.
  double seconds_individual = 0.0;
  double seconds_collective = 0.0;
  double seconds_supplemental = 0.0;
};

/// The three-stage AggreCol detector (Sec. 3): individual detection per
/// aggregation function, collective cross-function pruning, and supplemental
/// detection of interrupt aggregations on derived files.
class AggreCol {
 public:
  explicit AggreCol(AggreColConfig config = {});

  /// Detects aggregations in a parsed grid; elects the number format first.
  DetectionResult Detect(const csv::Grid& grid) const;

  /// Detects aggregations in an already-normalized numeric grid.
  DetectionResult Detect(const numfmt::NumericGrid& numeric) const;

  /// Convenience: sniffs the dialect, parses, and detects.
  DetectionResult DetectText(std::string_view csv_text) const;

  const AggreColConfig& config() const { return config_; }

  /// The pool detection runs on: the injected one, the private one created
  /// for threads > 1, or nullptr (sequential).
  util::ThreadPool* pool() const { return pool_; }

 private:
  AggreColConfig config_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace aggrecol::core

#endif  // AGGRECOL_CORE_AGGRECOL_H_
