#include "cellclass/strudel_experiment.h"

#include "baselines/adjacent_only_detector.h"
#include "cellclass/features.h"
#include "core/aggrecol.h"

namespace aggrecol::cellclass {
namespace {

// Dense class labels exclude kEmpty (index 0 of kAllCellRoles).
constexpr int kClassCount = static_cast<int>(eval::kAllCellRoles.size()) - 1;

int LabelOf(eval::CellRole role) { return static_cast<int>(eval::IndexOf(role)) - 1; }

eval::CellRole RoleOfLabel(int label) { return eval::kAllCellRoles[label + 1]; }

// Feature vectors and labels of one file's non-empty cells.
struct FileSamples {
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
};

FileSamples BuildSamples(const eval::AnnotatedFile& file,
                         AggregateFeatureSource source) {
  const numfmt::NumericGrid numeric = numfmt::NumericGrid::FromGrid(file.grid);

  std::vector<core::Aggregation> aggregations;
  if (source == AggregateFeatureSource::kAdjacentOnly) {
    // The original Strudel feature: a single adjacency pass for sum/average
    // with the same tolerance AggreCol uses for sum.
    aggregations = baselines::DetectAdjacentOnly(numeric, 0.01);
  } else {
    aggregations = core::AggreCol().Detect(numeric).aggregations;
  }
  const std::vector<bool> mask = AggregateMask(file.grid, aggregations);
  const auto all_features = ExtractFeatures(file.grid, numeric, mask);

  FileSamples samples;
  for (int i = 0; i < file.grid.rows(); ++i) {
    for (int j = 0; j < file.grid.columns(); ++j) {
      const eval::CellRole role = file.roles[i][j];
      if (role == eval::CellRole::kEmpty) continue;
      samples.features.push_back(
          all_features[static_cast<size_t>(i) * file.grid.columns() + j]);
      samples.labels.push_back(LabelOf(role));
    }
  }
  return samples;
}

}  // namespace

ExperimentResult RunStrudelExperiment(const std::vector<eval::AnnotatedFile>& files,
                                      AggregateFeatureSource source, int folds,
                                      const ForestConfig& forest_config) {
  // Per-file samples, computed once.
  std::vector<FileSamples> samples;
  samples.reserve(files.size());
  for (const auto& file : files) samples.push_back(BuildSamples(file, source));

  ExperimentResult result;
  int correct = 0;

  for (int fold = 0; fold < folds; ++fold) {
    Dataset train;
    std::vector<std::vector<float>> test_features;
    std::vector<int> test_labels;
    for (size_t f = 0; f < samples.size(); ++f) {
      const bool in_test = static_cast<int>(f % folds) == fold;
      if (in_test) {
        test_features.insert(test_features.end(), samples[f].features.begin(),
                             samples[f].features.end());
        test_labels.insert(test_labels.end(), samples[f].labels.begin(),
                           samples[f].labels.end());
      } else {
        train.features.insert(train.features.end(), samples[f].features.begin(),
                              samples[f].features.end());
        train.labels.insert(train.labels.end(), samples[f].labels.begin(),
                            samples[f].labels.end());
      }
    }
    if (train.size() == 0 || test_labels.empty()) continue;

    RandomForest forest(forest_config);
    forest.Fit(train, kClassCount);
    const std::vector<int> predictions = forest.PredictAll(test_features);

    for (size_t i = 0; i < predictions.size(); ++i) {
      const eval::CellRole truth = RoleOfLabel(test_labels[i]);
      const eval::CellRole predicted = RoleOfLabel(predictions[i]);
      ++result.cells;
      if (truth == predicted) {
        ++correct;
        ++result.per_role[eval::IndexOf(truth)].true_positives;
      } else {
        ++result.per_role[eval::IndexOf(truth)].false_negatives;
        ++result.per_role[eval::IndexOf(predicted)].false_positives;
      }
    }
  }
  result.accuracy = result.cells > 0 ? static_cast<double>(correct) / result.cells : 0.0;
  return result;
}

}  // namespace aggrecol::cellclass
