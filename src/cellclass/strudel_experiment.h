#ifndef AGGRECOL_CELLCLASS_STRUDEL_EXPERIMENT_H_
#define AGGRECOL_CELLCLASS_STRUDEL_EXPERIMENT_H_

#include <array>
#include <vector>

#include "cellclass/random_forest.h"
#include "eval/annotations.h"
#include "eval/cell_role.h"

namespace aggrecol::cellclass {

/// Where the binary is-aggregate feature comes from (the Table 5 variable):
/// Strudel's original adjacency-only sum/average detector, or the full
/// three-stage AggreCol pipeline.
enum class AggregateFeatureSource { kAdjacentOnly, kAggreCol };

/// Per-class scores of the cell classifier.
struct ClassScores {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;

  double Precision() const {
    const int predicted = true_positives + false_positives;
    return predicted == 0 ? 1.0 : static_cast<double>(true_positives) / predicted;
  }
  double Recall() const {
    const int actual = true_positives + false_negatives;
    return actual == 0 ? 1.0 : static_cast<double>(true_positives) / actual;
  }
  double F1() const {
    const double p = Precision();
    const double r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Cross-validated result of one experiment variant.
struct ExperimentResult {
  /// Scores per cell role, indexed by eval::IndexOf(role). kEmpty is unused
  /// (empty cells are not classified).
  std::array<ClassScores, eval::kAllCellRoles.size()> per_role{};
  double accuracy = 0.0;
  int cells = 0;
};

/// Runs the Sec. 4.6 experiment: extracts Strudel-style features for every
/// non-empty cell of `files` — with the is-aggregate feature filled from
/// `source` — and evaluates a random-forest cell classifier by `folds`-fold
/// cross-validation split at file granularity. Comparing the two sources
/// reproduces Table 5 (Strudel^O vs Strudel^A).
ExperimentResult RunStrudelExperiment(const std::vector<eval::AnnotatedFile>& files,
                                      AggregateFeatureSource source, int folds,
                                      const ForestConfig& forest_config = {});

}  // namespace aggrecol::cellclass

#endif  // AGGRECOL_CELLCLASS_STRUDEL_EXPERIMENT_H_
