#ifndef AGGRECOL_CELLCLASS_FEATURES_H_
#define AGGRECOL_CELLCLASS_FEATURES_H_

#include <string>
#include <vector>

#include "core/aggregation.h"
#include "csv/grid.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol::cellclass {

/// Number of features produced per cell.
inline constexpr int kFeatureCount = 20;

/// Names of the features, index-aligned with the extracted vectors.
const std::vector<std::string>& FeatureNames();

/// Extracts per-cell feature vectors for every cell of `grid`, in row-major
/// order. The feature set follows the spirit of Strudel's cell features
/// (content, contextual, and computational): value/shape features of the cell
/// text, row/column context ratios, and one binary *is-aggregate* feature
/// (index kAggregateFeature) filled from `aggregate_cells`, the flattened
/// (row * columns + col) indices of cells some detector marked as aggregates.
/// Swapping that detector is exactly the Table 5 experiment (Sec. 4.6).
std::vector<std::vector<float>> ExtractFeatures(
    const csv::Grid& grid, const numfmt::NumericGrid& numeric,
    const std::vector<bool>& aggregate_cells);

/// Index of the binary is-aggregate feature.
inline constexpr int kAggregateFeature = 19;

/// Flattens detected aggregations into a per-cell aggregate mask for
/// ExtractFeatures.
std::vector<bool> AggregateMask(const csv::Grid& grid,
                                const std::vector<core::Aggregation>& aggregations);

}  // namespace aggrecol::cellclass

#endif  // AGGRECOL_CELLCLASS_FEATURES_H_
