#include "cellclass/features.h"

#include <cctype>
#include <cmath>

#include "util/string_util.h"

namespace aggrecol::cellclass {
namespace {

bool ContainsAggregationKeyword(std::string_view text) {
  static const char* const kKeywords[] = {"total", "sum",     "all",  "overall",
                                          "average", "mean",  "avg",  "subtotal",
                                          "share",   "change", "rate", "%"};
  for (const char* keyword : kKeywords) {
    if (util::ContainsIgnoreCase(text, keyword)) return true;
  }
  return false;
}

}  // namespace

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string>* const kNames = new std::vector<std::string>{
      "is_numeric",        "is_empty",        "is_zero_like",    "log_magnitude",
      "has_decimals",      "text_length",     "digit_fraction",  "alpha_fraction",
      "starts_alpha",      "has_keyword",     "row_position",    "col_position",
      "row_numeric_frac",  "col_numeric_frac", "row_empty_frac", "col_empty_frac",
      "is_first_column",   "left_empty",      "above_empty",     "is_aggregate"};
  return *kNames;
}

std::vector<std::vector<float>> ExtractFeatures(
    const csv::Grid& grid, const numfmt::NumericGrid& numeric,
    const std::vector<bool>& aggregate_cells) {
  const int rows = grid.rows();
  const int columns = grid.columns();

  // Row/column context statistics.
  std::vector<float> row_numeric(rows, 0.0f), row_empty(rows, 0.0f);
  std::vector<float> col_numeric(columns, 0.0f), col_empty(columns, 0.0f);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < columns; ++j) {
      const bool is_numeric = numeric.IsNumeric(i, j);
      const bool is_empty = grid.IsEmpty(i, j);
      row_numeric[i] += is_numeric ? 1.0f : 0.0f;
      row_empty[i] += is_empty ? 1.0f : 0.0f;
      col_numeric[j] += is_numeric ? 1.0f : 0.0f;
      col_empty[j] += is_empty ? 1.0f : 0.0f;
    }
  }
  for (int i = 0; i < rows; ++i) {
    row_numeric[i] /= static_cast<float>(columns);
    row_empty[i] /= static_cast<float>(columns);
  }
  for (int j = 0; j < columns; ++j) {
    col_numeric[j] /= static_cast<float>(rows);
    col_empty[j] /= static_cast<float>(rows);
  }

  std::vector<std::vector<float>> features;
  features.reserve(static_cast<size_t>(rows) * columns);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < columns; ++j) {
      const std::string_view text = grid.at(i, j);
      const bool is_numeric = numeric.IsNumeric(i, j);
      const bool is_empty = grid.IsEmpty(i, j);
      int digits = 0;
      int alphas = 0;
      for (char c : text) {
        if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
        if (std::isalpha(static_cast<unsigned char>(c))) ++alphas;
      }
      const float length = static_cast<float>(text.size());
      const double value = numeric.value(i, j);

      std::vector<float> cell(kFeatureCount, 0.0f);
      cell[0] = is_numeric ? 1.0f : 0.0f;
      cell[1] = is_empty ? 1.0f : 0.0f;
      cell[2] = numeric.IsRangeUsable(i, j) && value == 0.0 ? 1.0f : 0.0f;
      cell[3] = is_numeric ? static_cast<float>(std::log1p(std::fabs(value))) : 0.0f;
      cell[4] = is_numeric && value != std::floor(value) ? 1.0f : 0.0f;
      cell[5] = length;
      cell[6] = length > 0 ? digits / length : 0.0f;
      cell[7] = length > 0 ? alphas / length : 0.0f;
      cell[8] = !text.empty() && std::isalpha(static_cast<unsigned char>(text[0]))
                    ? 1.0f
                    : 0.0f;
      cell[9] = ContainsAggregationKeyword(text) ? 1.0f : 0.0f;
      cell[10] = rows > 1 ? static_cast<float>(i) / (rows - 1) : 0.0f;
      cell[11] = columns > 1 ? static_cast<float>(j) / (columns - 1) : 0.0f;
      cell[12] = row_numeric[i];
      cell[13] = col_numeric[j];
      cell[14] = row_empty[i];
      cell[15] = col_empty[j];
      cell[16] = j == 0 ? 1.0f : 0.0f;
      cell[17] = j > 0 && grid.IsEmpty(i, j - 1) ? 1.0f : 0.0f;
      cell[18] = i > 0 && grid.IsEmpty(i - 1, j) ? 1.0f : 0.0f;
      cell[kAggregateFeature] =
          aggregate_cells[static_cast<size_t>(i) * columns + j] ? 1.0f : 0.0f;
      features.push_back(std::move(cell));
    }
  }
  return features;
}

std::vector<bool> AggregateMask(const csv::Grid& grid,
                                const std::vector<core::Aggregation>& aggregations) {
  std::vector<bool> mask(static_cast<size_t>(grid.rows()) * grid.columns(), false);
  for (const auto& aggregation : aggregations) {
    int row = 0;
    int col = 0;
    if (aggregation.axis == core::Axis::kRow) {
      row = aggregation.line;
      col = aggregation.aggregate;
    } else {
      row = aggregation.aggregate;
      col = aggregation.line;
    }
    if (row >= 0 && row < grid.rows() && col >= 0 && col < grid.columns()) {
      mask[static_cast<size_t>(row) * grid.columns() + col] = true;
    }
  }
  return mask;
}

}  // namespace aggrecol::cellclass
