#include "cellclass/random_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace aggrecol::cellclass {
namespace {

// Gini impurity of class counts.
double Gini(const std::vector<int>& counts, int total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (int count : counts) {
    const double p = static_cast<double>(count) / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

int Majority(const std::vector<int>& counts) {
  int best = 0;
  for (size_t c = 1; c < counts.size(); ++c) {
    if (counts[c] > counts[best]) best = static_cast<int>(c);
  }
  return best;
}

}  // namespace

RandomForest::RandomForest(ForestConfig config) : config_(config) {}

void RandomForest::Fit(const Dataset& data, int num_classes) {
  num_classes_ = num_classes;
  trees_.clear();
  if (data.size() == 0) return;
  std::mt19937_64 rng(config_.seed);
  const int sample_count =
      std::max(1, static_cast<int>(config_.bootstrap_fraction * data.size()));
  for (int t = 0; t < config_.tree_count; ++t) {
    std::vector<int> indices(sample_count);
    std::uniform_int_distribution<int> pick(0, static_cast<int>(data.size()) - 1);
    for (int& index : indices) index = pick(rng);
    Tree tree;
    GrowNode(&tree, data, indices, 0, sample_count, 0, rng);
    trees_.push_back(std::move(tree));
  }
}

int RandomForest::GrowNode(Tree* tree, const Dataset& data, std::vector<int>& indices,
                           int begin, int end, int depth, std::mt19937_64& rng) {
  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();

  std::vector<int> counts(num_classes_, 0);
  for (int i = begin; i < end; ++i) ++counts[data.labels[indices[i]]];
  const int total = end - begin;
  tree->nodes[node_index].label = Majority(counts);

  const double impurity = Gini(counts, total);
  if (depth >= config_.max_depth || total < 2 * config_.min_samples_leaf ||
      impurity == 0.0) {
    return node_index;
  }

  const int feature_count = static_cast<int>(data.features[0].size());
  int per_split = config_.features_per_split;
  if (per_split <= 0) {
    per_split = std::max(1, static_cast<int>(std::sqrt(static_cast<double>(feature_count))));
  }
  std::vector<int> candidate_features(feature_count);
  std::iota(candidate_features.begin(), candidate_features.end(), 0);
  std::shuffle(candidate_features.begin(), candidate_features.end(), rng);
  candidate_features.resize(std::min(per_split, feature_count));

  int best_feature = -1;
  float best_threshold = 0.0f;
  double best_gain = 1e-9;
  std::vector<int> sorted(indices.begin() + begin, indices.begin() + end);
  for (int feature : candidate_features) {
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return data.features[a][feature] < data.features[b][feature];
    });
    std::vector<int> left_counts(num_classes_, 0);
    std::vector<int> right_counts = counts;
    for (int i = 0; i + 1 < total; ++i) {
      const int label = data.labels[sorted[i]];
      ++left_counts[label];
      --right_counts[label];
      const float value = data.features[sorted[i]][feature];
      const float next_value = data.features[sorted[i + 1]][feature];
      if (value == next_value) continue;
      const int left_total = i + 1;
      const int right_total = total - left_total;
      if (left_total < config_.min_samples_leaf ||
          right_total < config_.min_samples_leaf) {
        continue;
      }
      const double gain = impurity -
                          (left_total * Gini(left_counts, left_total) +
                           right_total * Gini(right_counts, right_total)) /
                              total;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = feature;
        best_threshold = (value + next_value) / 2.0f;
      }
    }
  }
  if (best_feature < 0) return node_index;

  // Partition [begin, end) in place.
  const auto middle = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](int index) {
        return data.features[index][best_feature] <= best_threshold;
      });
  const int split = static_cast<int>(middle - indices.begin());
  if (split == begin || split == end) return node_index;

  tree->nodes[node_index].feature = best_feature;
  tree->nodes[node_index].threshold = best_threshold;
  const int left = GrowNode(tree, data, indices, begin, split, depth + 1, rng);
  tree->nodes[node_index].left = left;
  const int right = GrowNode(tree, data, indices, split, end, depth + 1, rng);
  tree->nodes[node_index].right = right;
  return node_index;
}

int RandomForest::PredictTree(const Tree& tree, const std::vector<float>& features) const {
  int node = 0;
  while (tree.nodes[node].feature >= 0) {
    node = features[tree.nodes[node].feature] <= tree.nodes[node].threshold
               ? tree.nodes[node].left
               : tree.nodes[node].right;
  }
  return tree.nodes[node].label;
}

int RandomForest::Predict(const std::vector<float>& features) const {
  std::vector<int> votes(num_classes_, 0);
  for (const Tree& tree : trees_) ++votes[PredictTree(tree, features)];
  return Majority(votes);
}

std::vector<int> RandomForest::PredictAll(
    const std::vector<std::vector<float>>& features) const {
  std::vector<int> predictions;
  predictions.reserve(features.size());
  for (const auto& row : features) predictions.push_back(Predict(row));
  return predictions;
}

}  // namespace aggrecol::cellclass
