#ifndef AGGRECOL_CELLCLASS_RANDOM_FOREST_H_
#define AGGRECOL_CELLCLASS_RANDOM_FOREST_H_

#include <cstdint>
#include <random>
#include <vector>

namespace aggrecol::cellclass {

/// A labeled dataset: row-major feature matrix plus integer class labels.
struct Dataset {
  std::vector<std::vector<float>> features;
  std::vector<int> labels;

  size_t size() const { return features.size(); }
};

/// Hyper-parameters of the forest.
struct ForestConfig {
  int tree_count = 24;
  int max_depth = 12;
  int min_samples_leaf = 3;
  /// Features inspected per split; <= 0 means sqrt(feature count).
  int features_per_split = 0;
  /// Fraction of the training set bootstrapped per tree.
  double bootstrap_fraction = 0.8;
  uint64_t seed = 7;
};

/// A from-scratch random forest classifier (bagged CART trees with Gini
/// impurity and per-split feature subsampling). This is the supervised
/// substrate for the Strudel-style cell classification experiment (Table 5);
/// no external ML dependency is available offline.
class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {});

  /// Trains on `data`. Labels must be dense integers in [0, num_classes).
  void Fit(const Dataset& data, int num_classes);

  /// Predicts the class of one feature vector by majority vote.
  int Predict(const std::vector<float>& features) const;

  /// Predicts classes for a whole feature matrix.
  std::vector<int> PredictAll(const std::vector<std::vector<float>>& features) const;

  int num_classes() const { return num_classes_; }

 private:
  struct Node {
    int feature = -1;       // -1 for leaves
    float threshold = 0.0f; // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    int label = 0;          // majority label (leaves)
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int GrowNode(Tree* tree, const Dataset& data, std::vector<int>& indices, int begin,
               int end, int depth, std::mt19937_64& rng);
  int PredictTree(const Tree& tree, const std::vector<float>& features) const;

  ForestConfig config_;
  int num_classes_ = 0;
  std::vector<Tree> trees_;
};

}  // namespace aggrecol::cellclass

#endif  // AGGRECOL_CELLCLASS_RANDOM_FOREST_H_
