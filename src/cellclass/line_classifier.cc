#include "cellclass/line_classifier.h"

#include <cctype>

#include "baselines/adjacent_only_detector.h"
#include "cellclass/features.h"
#include "core/aggrecol.h"
#include "util/string_util.h"

namespace aggrecol::cellclass {
namespace {

constexpr int kClassCount = static_cast<int>(eval::kAllCellRoles.size());

}  // namespace

std::vector<std::vector<float>> ExtractLineFeatures(
    const csv::Grid& grid, const numfmt::NumericGrid& numeric,
    const std::vector<core::Aggregation>& aggregations) {
  const int rows = grid.rows();
  const int columns = grid.columns();
  const std::vector<bool> aggregate_mask = AggregateMask(grid, aggregations);

  std::vector<std::vector<float>> features;
  features.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    int numeric_cells = 0;
    int empty_cells = 0;
    int text_cells = 0;
    int aggregate_cells = 0;
    float total_length = 0.0f;
    for (int j = 0; j < columns; ++j) {
      if (numeric.IsNumeric(i, j)) ++numeric_cells;
      if (grid.IsEmpty(i, j)) ++empty_cells;
      if (numeric.kind(i, j) == numfmt::CellKind::kText) ++text_cells;
      if (aggregate_mask[static_cast<size_t>(i) * columns + j]) ++aggregate_cells;
      total_length += static_cast<float>(grid.at(i, j).size());
    }
    const std::string_view first = grid.at(i, 0);
    const bool first_alpha =
        !first.empty() && std::isalpha(static_cast<unsigned char>(first[0]));
    const bool has_keyword = util::ContainsIgnoreCase(first, "total") ||
                             util::ContainsIgnoreCase(first, "average") ||
                             util::ContainsIgnoreCase(first, "sum") ||
                             util::ContainsIgnoreCase(first, "source") ||
                             util::ContainsIgnoreCase(first, "note");

    std::vector<float> line(kLineFeatureCount, 0.0f);
    line[0] = static_cast<float>(numeric_cells) / columns;
    line[1] = static_cast<float>(empty_cells) / columns;
    line[2] = static_cast<float>(text_cells) / columns;
    line[3] = rows > 1 ? static_cast<float>(i) / (rows - 1) : 0.0f;
    line[4] = i == 0 ? 1.0f : 0.0f;
    line[5] = i == rows - 1 ? 1.0f : 0.0f;
    line[6] = total_length / columns;
    line[7] = first_alpha ? 1.0f : 0.0f;
    line[8] = has_keyword ? 1.0f : 0.0f;
    line[9] = first.empty() ? 1.0f : 0.0f;
    // Only the leading cell is populated (titles, notes, group headers).
    line[10] = (!first.empty() && empty_cells == columns - 1) ? 1.0f : 0.0f;
    line[11] = i > 0 ? (grid.IsEmpty(i - 1, 0) ? 1.0f : 0.0f) : 1.0f;
    line[12] = numeric_cells > 0 ? 1.0f : 0.0f;
    line[kAggregateLineFeature] =
        numeric_cells > 0 ? static_cast<float>(aggregate_cells) / numeric_cells : 0.0f;
    features.push_back(std::move(line));
  }
  return features;
}

eval::CellRole DominantLineRole(const std::vector<eval::CellRole>& row_roles) {
  std::array<int, eval::kAllCellRoles.size()> counts{};
  for (eval::CellRole role : row_roles) {
    if (role != eval::CellRole::kEmpty) ++counts[eval::IndexOf(role)];
  }
  int best = 0;  // kEmpty
  int best_count = 0;
  for (size_t r = 1; r < counts.size(); ++r) {
    if (counts[r] > best_count) {
      best = static_cast<int>(r);
      best_count = counts[r];
    }
  }
  return eval::kAllCellRoles[best];
}

LineExperimentResult RunLineExperiment(const std::vector<eval::AnnotatedFile>& files,
                                       AggregateFeatureSource source, int folds,
                                       const ForestConfig& forest_config) {
  struct FileSamples {
    std::vector<std::vector<float>> features;
    std::vector<int> labels;
  };
  std::vector<FileSamples> samples;
  samples.reserve(files.size());
  for (const auto& file : files) {
    const numfmt::NumericGrid numeric = numfmt::NumericGrid::FromGrid(file.grid);
    std::vector<core::Aggregation> aggregations;
    if (source == AggregateFeatureSource::kAdjacentOnly) {
      aggregations = baselines::DetectAdjacentOnly(numeric, 0.01);
    } else {
      aggregations = core::AggreCol().Detect(numeric).aggregations;
    }
    FileSamples file_samples;
    const auto features = ExtractLineFeatures(file.grid, numeric, aggregations);
    for (int i = 0; i < file.grid.rows(); ++i) {
      file_samples.features.push_back(features[i]);
      file_samples.labels.push_back(
          static_cast<int>(eval::IndexOf(DominantLineRole(file.roles[i]))));
    }
    samples.push_back(std::move(file_samples));
  }

  LineExperimentResult result;
  int correct = 0;
  for (int fold = 0; fold < folds; ++fold) {
    Dataset train;
    std::vector<std::vector<float>> test_features;
    std::vector<int> test_labels;
    for (size_t f = 0; f < samples.size(); ++f) {
      auto& target_features =
          static_cast<int>(f % folds) == fold ? test_features : train.features;
      auto& target_labels =
          static_cast<int>(f % folds) == fold ? test_labels : train.labels;
      target_features.insert(target_features.end(), samples[f].features.begin(),
                             samples[f].features.end());
      target_labels.insert(target_labels.end(), samples[f].labels.begin(),
                           samples[f].labels.end());
    }
    if (train.size() == 0 || test_labels.empty()) continue;

    RandomForest forest(forest_config);
    forest.Fit(train, kClassCount);
    const std::vector<int> predictions = forest.PredictAll(test_features);
    for (size_t i = 0; i < predictions.size(); ++i) {
      ++result.lines;
      if (predictions[i] == test_labels[i]) {
        ++correct;
        ++result.per_role[test_labels[i]].true_positives;
      } else {
        ++result.per_role[test_labels[i]].false_negatives;
        ++result.per_role[predictions[i]].false_positives;
      }
    }
  }
  result.accuracy = result.lines > 0 ? static_cast<double>(correct) / result.lines : 0.0;
  return result;
}

}  // namespace aggrecol::cellclass
