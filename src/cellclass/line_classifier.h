#ifndef AGGRECOL_CELLCLASS_LINE_CLASSIFIER_H_
#define AGGRECOL_CELLCLASS_LINE_CLASSIFIER_H_

#include <vector>

#include "cellclass/random_forest.h"
#include "cellclass/strudel_experiment.h"
#include "core/aggregation.h"
#include "csv/grid.h"
#include "eval/annotations.h"
#include "eval/cell_role.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol::cellclass {

/// Number of features produced per line (row).
inline constexpr int kLineFeatureCount = 14;

/// Index of the is-aggregate-line feature (the share of a row's numeric
/// cells that act as aggregates) — the line-level analogue of Strudel's
/// binary cell feature, fed from a detector's output.
inline constexpr int kAggregateLineFeature = 13;

/// Extracts one feature vector per row of `grid`: emptiness/numeric
/// fractions, positional features, text-shape features of the leading cell,
/// keyword presence, and the aggregate-cell share derived from
/// `aggregations`. Line (row) classification is the sibling task of cell
/// classification in the structure-detection literature the paper builds on
/// (Sec. 5.1), with "aggregation" among the line types.
std::vector<std::vector<float>> ExtractLineFeatures(
    const csv::Grid& grid, const numfmt::NumericGrid& numeric,
    const std::vector<core::Aggregation>& aggregations);

/// Majority role of a row's non-empty cells; kEmpty for blank rows. This is
/// how per-cell ground-truth roles induce line labels.
eval::CellRole DominantLineRole(const std::vector<eval::CellRole>& row_roles);

/// Cross-validated line-classification experiment, mirroring the Table 5
/// cell-level setup: per-line-type F1 of a random forest whose aggregate
/// feature comes either from the adjacency-only detector or from AggreCol.
struct LineExperimentResult {
  std::array<ClassScores, eval::kAllCellRoles.size()> per_role{};
  double accuracy = 0.0;
  int lines = 0;
};

LineExperimentResult RunLineExperiment(const std::vector<eval::AnnotatedFile>& files,
                                       AggregateFeatureSource source, int folds,
                                       const ForestConfig& forest_config = {});

}  // namespace aggrecol::cellclass

#endif  // AGGRECOL_CELLCLASS_LINE_CLASSIFIER_H_
