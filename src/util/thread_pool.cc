#include "util/thread_pool.h"

#include <algorithm>

namespace aggrecol::util {
namespace {

// Worker identity for nested-wait detection: which pool the thread belongs
// to, and its own deque index within it.
thread_local ThreadPool* current_pool = nullptr;
thread_local size_t current_worker = 0;

}  // namespace

ThreadPool::ThreadPool(int thread_count) {
  const size_t n = static_cast<size_t>(std::max(1, thread_count));
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

ThreadPool* ThreadPool::Current() { return current_pool; }

void ThreadPool::Push(std::function<void()> task) {
  // A worker pushes onto its own deque (LIFO end); external submitters
  // round-robin across the workers.
  const size_t target =
      current_pool == this
          ? current_worker
          : next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++pending_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::PopFrom(size_t worker, bool steal, std::function<void()>* task) {
  std::lock_guard<std::mutex> lock(workers_[worker]->mutex);
  auto& queue = workers_[worker]->queue;
  if (queue.empty()) return false;
  if (steal) {
    *task = std::move(queue.front());
    queue.pop_front();
  } else {
    *task = std::move(queue.back());
    queue.pop_back();
  }
  return true;
}

bool ThreadPool::RunOneTask() {
  const bool is_worker = current_pool == this;
  const size_t self = is_worker ? current_worker : 0;

  std::function<void()> task;
  bool found = is_worker && PopFrom(self, /*steal=*/false, &task);
  if (!found) {
    // Steal FIFO from the other deques, scanning from the next index so the
    // victims rotate instead of piling onto worker 0.
    for (size_t offset = 1; offset <= workers_.size() && !found; ++offset) {
      const size_t victim = (self + offset) % workers_.size();
      if (is_worker && victim == self) continue;
      found = PopFrom(victim, /*steal=*/true, &task);
    }
  }
  if (!found) return false;

  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    --pending_;
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  current_pool = this;
  current_worker = index;
  for (;;) {
    if (RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (pending_ > 0) continue;  // raced with a submit; go pick it up
    if (stopping_) break;        // drained and told to stop
    wake_cv_.wait(lock, [this] { return pending_ > 0 || stopping_; });
  }
  current_pool = nullptr;
}

}  // namespace aggrecol::util
