#ifndef AGGRECOL_UTIL_THREAD_POOL_H_
#define AGGRECOL_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace aggrecol::util {

/// Thrown by CancellationToken::ThrowIfCancelled when the token's source
/// requested cancellation or the token's deadline passed. Pipeline stages
/// let it propagate so a whole detection run unwinds cooperatively.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("operation cancelled") {}
};

/// A copyable view onto a cancellation request. Default-constructed tokens
/// are never cancelled. A token combines two triggers:
///   * its CancellationSource called RequestCancel(), and/or
///   * its own deadline (a steady_clock time point) passed.
/// Checking is cheap (one relaxed atomic load; the clock is only read when a
/// deadline is set), so tasks may poll per work item.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancelled() const {
    if (flag_ && flag_->load(std::memory_order_relaxed)) return true;
    return deadline_ != kNoDeadline && std::chrono::steady_clock::now() > deadline_;
  }

  void ThrowIfCancelled() const {
    if (cancelled()) throw CancelledError();
  }

  /// A copy of this token that additionally trips once `deadline` passes.
  CancellationToken WithDeadline(std::chrono::steady_clock::time_point deadline) const {
    CancellationToken token = *this;
    token.deadline_ = std::min(token.deadline_, deadline);
    return token;
  }

 private:
  friend class CancellationSource;
  static constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
  std::chrono::steady_clock::time_point deadline_ = kNoDeadline;
};

/// Owner side of a cancellation request; hand out token() to the work.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const { return flag_->load(std::memory_order_relaxed); }
  CancellationToken token() const { return CancellationToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class ThreadPool;

namespace internal {

template <typename T>
struct FutureState {
  std::mutex mutex;
  std::condition_variable ready_cv;
  bool ready = false;
  std::optional<T> value;
  std::exception_ptr error;
};

}  // namespace internal

/// Handle to the result of a ThreadPool::Submit call. Get() blocks until the
/// task ran and returns its value or rethrows its exception. When Get() (or
/// Wait()) is called from inside a pool task, the calling worker executes
/// other queued tasks while waiting, so a task may submit subtasks to its own
/// pool and wait on them without deadlocking — even on a one-worker pool.
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  bool Ready() const {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->ready;
  }

  void Wait();

  T Get() {
    Wait();
    if (state_->error) std::rethrow_exception(state_->error);
    return std::move(*state_->value);
  }

 private:
  friend class ThreadPool;
  std::shared_ptr<internal::FutureState<T>> state_;
  ThreadPool* pool_ = nullptr;
};

/// A work-stealing thread pool. Each worker owns a deque: it pushes and pops
/// its own work LIFO (keeps nested subtasks hot in cache) and steals FIFO
/// from the other workers when its deque runs dry. External submissions are
/// distributed round-robin. The pool itself imposes no ordering — callers
/// that need determinism collect futures and merge results in a fixed order
/// (see ParallelMap).
///
/// Destruction drains every queued task before joining the workers, so no
/// submitted future is left forever-pending.
class ThreadPool {
 public:
  /// Spawns `thread_count` workers (clamped to at least 1).
  explicit ThreadPool(int thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// The pool the calling thread is a worker of, or nullptr.
  static ThreadPool* Current();

  /// Schedules `fn` and returns a future for its result. Safe to call from
  /// inside a pool task (the subtask goes onto the calling worker's own
  /// deque).
  template <typename F>
  auto Submit(F&& fn) -> Future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    static_assert(!std::is_void_v<R>,
                  "Submit a function returning a value (wrap side effects in "
                  "a sentinel return)");
    auto state = std::make_shared<internal::FutureState<R>>();
    Push([state, fn = std::forward<F>(fn)]() mutable {
      try {
        state->value.emplace(fn());
      } catch (...) {
        state->error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->ready = true;
      }
      state->ready_cv.notify_all();
    });
    Future<R> future;
    future.state_ = std::move(state);
    future.pool_ = this;
    return future;
  }

  /// Runs one queued task on the calling thread if any is available.
  /// Used by Future::Wait to keep workers productive while they wait on
  /// subtasks; also callable from external threads to help drain the pool.
  bool RunOneTask();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> queue;
  };

  void Push(std::function<void()> task);
  bool PopFrom(size_t worker, bool steal, std::function<void()>* task);
  void WorkerLoop(size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleep coordination: pending_ counts queued-but-not-started tasks and is
  // only touched under sleep_mutex_, so a submit cannot slip between a
  // worker's emptiness check and its wait (no lost wakeups).
  std::mutex sleep_mutex_;
  std::condition_variable wake_cv_;
  int pending_ = 0;
  bool stopping_ = false;

  std::atomic<size_t> next_worker_{0};
};

template <typename T>
void Future<T>::Wait() {
  if (pool_ != nullptr && ThreadPool::Current() == pool_) {
    // Called from a worker of the same pool: execute other tasks instead of
    // blocking, so nested submission cannot deadlock.
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(state_->mutex);
        if (state_->ready) return;
      }
      if (!pool_->RunOneTask()) {
        // Nothing runnable right now (our dependency is in flight on another
        // worker, or queues are empty): sleep briefly on the future itself.
        std::unique_lock<std::mutex> lock(state_->mutex);
        state_->ready_cv.wait_for(lock, std::chrono::microseconds(200),
                                  [this] { return state_->ready; });
        if (state_->ready) return;
      }
    }
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->ready_cv.wait(lock, [this] { return state_->ready; });
}

/// Applies `fn(0) .. fn(count - 1)` and returns the results in index order —
/// the fixed-order merge that keeps pipelines bit-identical for any thread
/// count. With a pool, iterations run as pool tasks; without one (or for a
/// single item) they run inline. Every iteration is waited for even when one
/// throws — references captured by `fn` stay valid until ParallelMap returns —
/// and the exception of the smallest failing index is rethrown.
template <typename Fn>
auto ParallelMap(ThreadPool* pool, size_t count, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, size_t>> {
  using R = std::invoke_result_t<Fn&, size_t>;
  std::vector<R> results;
  results.reserve(count);
  if (pool == nullptr || count <= 1) {
    for (size_t i = 0; i < count; ++i) results.push_back(fn(i));
    return results;
  }
  std::vector<Future<R>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(pool->Submit([&fn, i] { return fn(i); }));
  }
  std::exception_ptr first_error;
  for (size_t i = 0; i < count; ++i) {
    try {
      results.push_back(futures[i].Get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      results.emplace_back();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace aggrecol::util

#endif  // AGGRECOL_UTIL_THREAD_POOL_H_
