#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace aggrecol::util {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(s.substr(start));
      break;
    }
    fields.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string Join(const std::vector<std::string>& parts, std::string_view delimiter) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delimiter);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool ContainsIgnoreCase(std::string_view s, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > s.size()) return false;
  const std::string lower_s = ToLower(s);
  const std::string lower_needle = ToLower(needle);
  return lower_s.find(lower_needle) != std::string::npos;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; });
}

std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace aggrecol::util
