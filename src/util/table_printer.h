#ifndef AGGRECOL_UTIL_TABLE_PRINTER_H_
#define AGGRECOL_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace aggrecol::util {

/// Renders rows of string cells as an aligned, pipe-separated ASCII table.
/// Used by the experiment harnesses to print paper-style tables.
class TablePrinter {
 public:
  /// Sets the header row. Column count of subsequent rows should match.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line at the current position.
  void AddSeparator();

  /// Writes the formatted table to `os`.
  void Print(std::ostream& os) const;

  /// Returns the formatted table as a string.
  std::string ToString() const;

 private:
  static constexpr const char* kSeparatorMarker = "\x01--";

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aggrecol::util

#endif  // AGGRECOL_UTIL_TABLE_PRINTER_H_
