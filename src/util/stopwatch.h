#ifndef AGGRECOL_UTIL_STOPWATCH_H_
#define AGGRECOL_UTIL_STOPWATCH_H_

#include <chrono>

namespace aggrecol::util {

/// Simple wall-clock stopwatch used by the experiment harnesses to impose
/// per-file budgets (the paper uses a 5-minute timeout for the baseline).
class Stopwatch {
 public:
  Stopwatch();

  /// Restarts the stopwatch.
  void Reset();

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aggrecol::util

#endif  // AGGRECOL_UTIL_STOPWATCH_H_
