#ifndef AGGRECOL_UTIL_STRING_UTIL_H_
#define AGGRECOL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace aggrecol::util {

/// Removes leading and trailing ASCII whitespace from `s`.
std::string_view StripWhitespace(std::string_view s);

/// Splits `s` on every occurrence of `delimiter`. An empty input yields a
/// single empty field, matching the behaviour of spreadsheet CSV exports.
std::vector<std::string> Split(std::string_view s, char delimiter);

/// Joins `parts` with `delimiter` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view delimiter);

/// Returns a copy of `s` with all ASCII letters lower-cased.
std::string ToLower(std::string_view s);

/// True if `s` contains `needle` case-insensitively (ASCII).
bool ContainsIgnoreCase(std::string_view s, std::string_view needle);

/// True if every character of `s` is an ASCII digit and `s` is non-empty.
bool IsAllDigits(std::string_view s);

/// Replaces every occurrence of `from` in `s` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to);

/// Formats `value` with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

}  // namespace aggrecol::util

#endif  // AGGRECOL_UTIL_STRING_UTIL_H_
