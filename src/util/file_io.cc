#include "util/file_io.h"

#include <fstream>
#include <sstream>

namespace aggrecol::util {

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buffer.str();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return out.good();
}

}  // namespace aggrecol::util
