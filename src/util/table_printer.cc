#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace aggrecol::util {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() {
  rows_.push_back({kSeparatorMarker});
}

void TablePrinter::Print(std::ostream& os) const {
  size_t columns = header_.size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorMarker) continue;
    columns = std::max(columns, row.size());
  }
  std::vector<size_t> widths(columns, 0);
  auto measure = [&widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorMarker) continue;
    measure(row);
  }

  auto print_line = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_rule = [&]() {
    os << "|";
    for (size_t i = 0; i < columns; ++i) {
      os << std::string(widths[i] + 2, '-') << "|";
    }
    os << "\n";
  };

  if (!header_.empty()) {
    print_line(header_);
    print_rule();
  }
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorMarker) {
      print_rule();
    } else {
      print_line(row);
    }
  }
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace aggrecol::util
