#ifndef AGGRECOL_UTIL_FILE_IO_H_
#define AGGRECOL_UTIL_FILE_IO_H_

#include <optional>
#include <string>

namespace aggrecol::util {

/// Reads the whole file at `path` into a string. Returns std::nullopt when
/// the file cannot be opened or read.
std::optional<std::string> ReadFile(const std::string& path);

/// Writes `content` to `path`, replacing any existing file. Returns false on
/// I/O failure.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace aggrecol::util

#endif  // AGGRECOL_UTIL_FILE_IO_H_
