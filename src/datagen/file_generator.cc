#include "datagen/file_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <vector>

#include "core/aggregation.h"
#include "core/composite_detector.h"
#include "numfmt/parse_double.h"
#include "util/string_util.h"

namespace aggrecol::datagen {
namespace {

using core::Aggregation;
using core::AggregationFunction;
using core::Axis;
using eval::CellRole;
using numfmt::NumberFormat;

// ---------------------------------------------------------------------------
// Random helpers (all deterministic from the per-file mt19937_64).
// ---------------------------------------------------------------------------

bool Bernoulli(std::mt19937_64& rng, double p) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
}

int UniformInt(std::mt19937_64& rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

double UniformReal(std::mt19937_64& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

size_t WeightedChoice(std::mt19937_64& rng, const std::array<double, 5>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double draw = UniformReal(rng, 0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0.0) return i;
  }
  return weights.size() - 1;
}

// Rounds `value` through its decimal representation with `decimals` digits so
// the stored double is bit-identical to what a detector parses back from the
// serialized cell.
double DisplayRound(double value, int decimals) {
  const std::string text = util::FormatDouble(value, decimals);
  return numfmt::ParseDouble(text).value_or(0.0);
}

// Rounds to `digits` significant digits (the coarse-aggregate error mode).
double RoundSignificant(double value, int digits) {
  if (value == 0.0) return 0.0;
  const double magnitude =
      std::pow(10.0, digits - 1 - static_cast<int>(std::floor(std::log10(std::fabs(value)))));
  return std::round(value * magnitude) / magnitude;
}

// ---------------------------------------------------------------------------
// Table plan.
// ---------------------------------------------------------------------------

enum class ColumnKind {
  kLabel,       // row-header names or years
  kData,        // plain data
  kIndicator,   // mostly-zero 0/1 roster column (false-positive material)
  kGroupSum,    // row-wise sum over a member group
  kGrandSum,    // row-wise sum over group totals (cumulative pattern)
  kAverage,     // row-wise average over a member group
  kShare,       // row-wise division part/whole
  kRelChange,   // row-wise relative change between two columns
  kDifference,  // row-wise difference B - C
  kComposite,   // row-wise (sum of members) / base — the Sec. 6 extension
};

bool IsAggregateKind(ColumnKind kind) {
  return kind == ColumnKind::kGroupSum || kind == ColumnKind::kGrandSum ||
         kind == ColumnKind::kAverage || kind == ColumnKind::kShare ||
         kind == ColumnKind::kRelChange || kind == ColumnKind::kDifference ||
         kind == ColumnKind::kComposite;
}

bool IsColumnSummable(ColumnKind kind) {
  return kind == ColumnKind::kData || kind == ColumnKind::kIndicator ||
         kind == ColumnKind::kGroupSum || kind == ColumnKind::kGrandSum;
}

AggregationFunction FunctionOfKind(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kGroupSum:
    case ColumnKind::kGrandSum:
      return AggregationFunction::kSum;
    case ColumnKind::kAverage:
      return AggregationFunction::kAverage;
    case ColumnKind::kShare:
      return AggregationFunction::kDivision;
    case ColumnKind::kRelChange:
      return AggregationFunction::kRelativeChange;
    case ColumnKind::kDifference:
      return AggregationFunction::kDifference;
    default:
      return AggregationFunction::kSum;
  }
}

struct ColumnPlan {
  ColumnKind kind = ColumnKind::kData;
  std::string header;
  std::vector<int> sources;  // absolute column indices; ordered (B, C) for pairs
  double magnitude = 1000.0;
  int decimals = 0;
  bool coarse = false;       // coarse significant-digit rounding of aggregates
  int coarse_digits = 2;     // significant digits kept when coarse
  double one_rate = 0.1;     // kIndicator: probability of a 1
};

enum class ZeroStyle { kDigit, kEmpty, kMarker };

struct TablePlan {
  std::vector<ColumnPlan> columns;
  bool label_is_year = false;
  int data_rows = 10;
  int group_header_count = 0;  // text-only separator rows inside the data area
  bool total_row = false;
  bool average_row = false;
  bool rounded = false;  // aggregates computed on unrounded values
  bool has_title = true;
  bool multirow_header = false;  // extra banner row above the headers
  int footnotes = 1;
  ZeroStyle zero_style = ZeroStyle::kDigit;
  double zero_rate = 0.03;
  int repeat_tables = 1;  // a second stacked table reuses the same plan
};

const char* const kRegionNames[] = {"Europe", "Africa",  "Asia",   "Americas",
                                    "Oceania", "Nordics", "Baltics", "Benelux"};
const char* const kMemberNames[] = {
    "Bulgaria", "France", "Germany", "Poland",  "Portugal", "Romania", "Kenya",
    "Ethiopia", "Chile",  "Austria", "Finland", "Denmark",  "Norway",  "Iceland",
    "Estonia",  "Latvia", "Japan",   "Brazil",  "Canada",   "Mexico"};
std::string PickName(std::mt19937_64& rng, const char* const* pool, int pool_size) {
  return pool[UniformInt(rng, 0, pool_size - 1)];
}

// Draws the shape and content plan of one table.
TablePlan BuildPlan(const GeneratorProfile& profile, std::mt19937_64& rng,
                    bool with_aggregations) {
  TablePlan plan;
  plan.label_is_year = Bernoulli(rng, 0.5);
  plan.data_rows = Bernoulli(rng, profile.p_big_file)
                       ? profile.big_file_rows
                       : UniformInt(rng, profile.min_data_rows, profile.max_data_rows);
  if (with_aggregations && Bernoulli(rng, profile.p_tiny_file)) {
    plan.data_rows = UniformInt(rng, 1, 3);  // minimal files (paper min = 1)
  }
  plan.rounded = Bernoulli(rng, profile.p_rounded);
  plan.has_title = Bernoulli(rng, 0.75);
  plan.footnotes = UniformInt(rng, 0, 2);
  plan.zero_rate = profile.zero_rate;
  const double zero_draw = UniformReal(rng, 0.0, 1.0);
  plan.zero_style = zero_draw < profile.p_zero_empty ? ZeroStyle::kEmpty
                    : zero_draw < profile.p_zero_empty + profile.p_zero_marker
                        ? ZeroStyle::kMarker
                        : ZeroStyle::kDigit;
  plan.repeat_tables = Bernoulli(rng, profile.p_second_table) ? 2 : 1;
  plan.multirow_header = Bernoulli(rng, profile.p_multirow_header);

  bool has_sum = with_aggregations && Bernoulli(rng, profile.p_sum);
  bool has_average = with_aggregations && Bernoulli(rng, profile.p_average);
  bool has_division = with_aggregations && Bernoulli(rng, profile.p_division);
  bool has_relchange =
      with_aggregations && Bernoulli(rng, profile.p_relative_change);
  bool has_difference =
      with_aggregations && Bernoulli(rng, profile.p_difference);

  if (with_aggregations && !has_sum && !has_average && !has_division &&
      !has_relchange && !has_difference) {
    // A file labeled as aggregated must carry at least one function; fall
    // back to a uniformly drawn one so sum does not dominate artificially.
    switch (UniformInt(rng, 0, 4)) {
      case 0:
        has_sum = true;
        break;
      case 1:
        has_average = true;
        break;
      case 2:
        has_division = true;
        break;
      case 3:
        has_relchange = true;
        break;
      default:
        has_difference = true;
        break;
    }
  }
  const bool cumulative = has_sum && Bernoulli(rng, profile.p_cumulative);
  const bool interrupt = has_sum && has_average && Bernoulli(rng, profile.p_interrupt);

  auto data_decimals = [&rng]() {
    const double draw = UniformReal(rng, 0.0, 1.0);
    return draw < 0.6 ? 0 : draw < 0.8 ? 1 : 2;
  };
  auto keyword = [&rng, &profile](const std::string& keyword_header,
                                  const std::string& plain_header) {
    return Bernoulli(rng, profile.p_keyword_header) ? keyword_header : plain_header;
  };

  // Label column.
  ColumnPlan label;
  label.kind = ColumnKind::kLabel;
  label.header = plan.label_is_year ? "Year" : "Item";
  plan.columns.push_back(label);

  // Member groups with their sum/average columns.
  const int group_count =
      has_sum ? UniformInt(rng, 1, profile.max_groups) : UniformInt(rng, 1, 2);
  std::vector<int> group_total_columns;
  int division_group_total = -1;
  std::vector<int> division_group_members;

  for (int g = 0; g < group_count; ++g) {
    const int group_size = UniformInt(rng, 2, profile.max_group_size);
    const double magnitude = std::pow(10.0, UniformReal(rng, 1.5, 5.5));
    const int decimals = data_decimals();
    const std::string group_name =
        PickName(rng, kRegionNames, std::size(kRegionNames));

    const bool total_first = Bernoulli(rng, 0.5);
    const bool group_interrupt = interrupt && g == 0;  // avg blocks the sum range
    const bool group_average =
        has_average && (group_interrupt || (g == group_count - 1 && !interrupt));

    int total_col = -1;
    int average_col = -1;
    std::vector<int> member_cols;

    auto add_total = [&]() {
      ColumnPlan total;
      total.kind = has_sum ? ColumnKind::kGroupSum : ColumnKind::kData;
      total.header = keyword("Total " + group_name, group_name);
      total.magnitude = magnitude;
      total.decimals = decimals;
      total.coarse = plan.rounded && Bernoulli(rng, profile.p_coarse_aggregate);
      total.coarse_digits = UniformInt(rng, 2, 3);
      total_col = static_cast<int>(plan.columns.size());
      plan.columns.push_back(total);
    };
    auto add_average = [&]() {
      ColumnPlan average;
      average.kind = ColumnKind::kAverage;
      average.header = Bernoulli(rng, 0.85) ? "Average " + group_name : "Per member";
      average.magnitude = magnitude;
      average.decimals = decimals + (Bernoulli(rng, 0.5) ? 1 : 0);
      average_col = static_cast<int>(plan.columns.size());
      plan.columns.push_back(average);
    };
    auto add_members = [&]() {
      for (int m = 0; m < group_size; ++m) {
        ColumnPlan member;
        member.kind = ColumnKind::kData;
        member.header = PickName(rng, kMemberNames, std::size(kMemberNames));
        member.magnitude = magnitude;
        member.decimals = decimals;
        member_cols.push_back(static_cast<int>(plan.columns.size()));
        plan.columns.push_back(member);
      }
    };

    if (group_interrupt) {
      // [Total][Average][m1..mk]: the average aggregate blocks the sum range.
      add_total();
      add_average();
      add_members();
    } else if (total_first) {
      // [Total][m1..mk](average last when drawn).
      add_total();
      add_members();
      if (group_average) add_average();
    } else {
      // (average first when drawn)[m1..mk][Total].
      if (group_average) add_average();
      add_members();
      add_total();
    }

    if (total_col >= 0 && plan.columns[total_col].kind == ColumnKind::kGroupSum) {
      plan.columns[total_col].sources = member_cols;
      group_total_columns.push_back(total_col);
    }
    if (total_col >= 0) {
      // The share block is appended right after the groups, so it references
      // the *last* group to keep all operands within the sliding window.
      division_group_total = total_col;
      division_group_members = member_cols;
    }
    if (average_col >= 0) {
      plan.columns[average_col].sources = member_cols;
    }
  }

  // Division (share) columns right after the groups: part / group total.
  if (has_division && division_group_total >= 0) {
    const int share_count =
        std::min<int>(UniformInt(rng, 1, 3), static_cast<int>(division_group_members.size()));
    for (int s = 0; s < share_count; ++s) {
      ColumnPlan share;
      share.kind = ColumnKind::kShare;
      share.header = Bernoulli(rng, 0.55)
                         ? plan.columns[division_group_members[s]].header + " %"
                         : plan.columns[division_group_members[s]].header + " in " +
                               plan.columns[division_group_total].header;
      share.sources = {division_group_members[s], division_group_total};
      share.decimals = Bernoulli(rng, profile.p_full_precision_ratio)
                           ? 10
                           : UniformInt(rng, 2, 3);
      plan.columns.push_back(share);
    }
  }

  // Cumulative grand total summing the group totals (placed in front so the
  // iteration of Alg. 1 finds it once member columns are consumed).
  if (cumulative && group_total_columns.size() >= 2) {
    ColumnPlan grand;
    grand.kind = ColumnKind::kGrandSum;
    grand.header = keyword("Total", "World");
    grand.sources = group_total_columns;
    grand.magnitude = plan.columns[group_total_columns[0]].magnitude;
    grand.decimals = plan.columns[group_total_columns[0]].decimals;
    grand.coarse = plan.rounded && Bernoulli(rng, profile.p_coarse_aggregate);
    grand.coarse_digits = UniformInt(rng, 2, 3);
    plan.columns.insert(plan.columns.begin() + 1, grand);
    // Re-index: every source index >= 1 shifts by one.
    for (auto& column : plan.columns) {
      if (column.kind == ColumnKind::kGrandSum) continue;
      for (int& source : column.sources) {
        if (source >= 1) ++source;
      }
    }
    for (int& source : plan.columns[1].sources) {
      if (source >= 1) ++source;
    }
  }

  // Relative change block [y1][y2][change].
  if (has_relchange) {
    const double magnitude = std::pow(10.0, UniformReal(rng, 2.0, 5.0));
    const int decimals = data_decimals();
    ColumnPlan y1;
    y1.kind = ColumnKind::kData;
    y1.header = "2018";
    y1.magnitude = magnitude;
    y1.decimals = decimals;
    const int y1_col = static_cast<int>(plan.columns.size());
    plan.columns.push_back(y1);
    ColumnPlan y2 = y1;
    y2.header = "2019";
    const int y2_col = static_cast<int>(plan.columns.size());
    plan.columns.push_back(y2);
    ColumnPlan change;
    change.kind = ColumnKind::kRelChange;
    change.header = Bernoulli(rng, 0.9) ? "Change %" : "2019 vs 2018";
    change.sources = {y1_col, y2_col};
    change.decimals = Bernoulli(rng, profile.p_full_precision_ratio)
                          ? 10
                          : UniformInt(rng, 2, 3);
    plan.columns.push_back(change);
  }

  // Difference block [net][gross][expense].
  if (has_difference) {
    const double magnitude = std::pow(10.0, UniformReal(rng, 2.0, 5.0));
    const int decimals = data_decimals();
    ColumnPlan net;
    net.kind = ColumnKind::kDifference;
    net.header = "Net";
    net.magnitude = magnitude;
    net.decimals = decimals;
    const int net_col = static_cast<int>(plan.columns.size());
    plan.columns.push_back(net);
    ColumnPlan gross;
    gross.kind = ColumnKind::kData;
    gross.header = "Gross";
    gross.magnitude = magnitude;
    gross.decimals = decimals;
    const int gross_col = static_cast<int>(plan.columns.size());
    plan.columns.push_back(gross);
    ColumnPlan expense = gross;
    expense.header = "Expense";
    const int expense_col = static_cast<int>(plan.columns.size());
    plan.columns.push_back(expense);
    plan.columns[net_col].sources = {gross_col, expense_col};
  }

  // Composite sum-then-divide block [base][m1][m2][m3][share] with no
  // intermediate sum of the members (the paper's university-degree example).
  if (with_aggregations && Bernoulli(rng, profile.p_composite)) {
    const double magnitude = std::pow(10.0, UniformReal(rng, 3.0, 5.0));
    const int decimals = data_decimals();
    ColumnPlan base;
    base.kind = ColumnKind::kData;
    base.header = "Population";
    base.magnitude = magnitude * 4.0;  // the whole is larger than the parts
    base.decimals = decimals;
    const int base_col = static_cast<int>(plan.columns.size());
    plan.columns.push_back(base);
    std::vector<int> member_cols;
    const int member_count = UniformInt(rng, 2, 3);
    const char* const kDegrees[] = {"Bachelor", "Master", "Doctor"};
    for (int m = 0; m < member_count; ++m) {
      ColumnPlan member;
      member.kind = ColumnKind::kData;
      member.header = kDegrees[m];
      member.magnitude = magnitude;
      member.decimals = decimals;
      member_cols.push_back(static_cast<int>(plan.columns.size()));
      plan.columns.push_back(member);
    }
    ColumnPlan share;
    share.kind = ColumnKind::kComposite;
    share.header = "Degree holders %";
    share.sources = member_cols;
    share.sources.push_back(base_col);  // denominator last
    share.decimals = Bernoulli(rng, profile.p_full_precision_ratio)
                         ? 10
                         : UniformInt(rng, 2, 3);
    plan.columns.push_back(share);
  }

  // Roster-style indicator columns (mostly zeros: false-positive material).
  if (Bernoulli(rng, profile.p_indicator_columns)) {
    const int indicator_count = UniformInt(rng, 2, 3);
    for (int i = 0; i < indicator_count; ++i) {
      ColumnPlan indicator;
      indicator.kind = ColumnKind::kIndicator;
      indicator.header = "Flag " + std::to_string(i + 1);
      indicator.one_rate = UniformReal(rng, 0.05, 0.2);
      plan.columns.push_back(indicator);
    }
  }

  // Plain data columns frequently carry keyword-bearing headers without
  // being aggregates ("Average age", "Exchange rate", "Change in stock") —
  // the reason keyword dictionaries have poor precision (Sec. 4.4).
  {
    const char* const kDecorations[] = {"All ",     "Total ",   "Average ",
                                        "Mean ",    "Share of ", "Change in ",
                                        "Rate of ", "Growth of "};
    for (auto& column : plan.columns) {
      if (column.kind != ColumnKind::kData && column.kind != ColumnKind::kIndicator) {
        continue;
      }
      if (Bernoulli(rng, profile.p_spurious_keyword)) {
        column.header =
            kDecorations[UniformInt(rng, 0, std::size(kDecorations) - 1)] +
            column.header;
      }
    }
  }

  plan.total_row = with_aggregations && Bernoulli(rng, profile.p_total_row);
  plan.average_row =
      with_aggregations && !plan.total_row && Bernoulli(rng, profile.p_average_row);
  // Group-header separator rows would distort a column-wise average's element
  // count; only combine them with total rows.
  if (!plan.average_row && Bernoulli(rng, 0.15)) {
    plan.group_header_count = UniformInt(rng, 1, 2);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Materialization.
// ---------------------------------------------------------------------------

struct FileBuilder {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<CellRole>> roles;
  std::vector<Aggregation> annotations;
  std::vector<core::CompositeAggregation> composites;
  NumberFormat format = NumberFormat::kCommaDot;

  int AddRow(int width) {
    rows.emplace_back(width);
    roles.emplace_back(width, CellRole::kEmpty);
    return static_cast<int>(rows.size()) - 1;
  }
};

// Displayed value of every cell of one table: position [row][column], absent
// when the cell is empty (undefined aggregate or separator row).
using ValueMatrix = std::vector<std::vector<std::optional<double>>>;

void RenderCell(FileBuilder* builder, const TablePlan& plan, int grid_row, int col,
                double value, int decimals, CellRole role, bool aggregate_column) {
  std::string text;
  if (value == 0.0 && !aggregate_column) {
    switch (plan.zero_style) {
      case ZeroStyle::kEmpty:
        text.clear();
        break;
      case ZeroStyle::kMarker:
        text = "-";
        break;
      case ZeroStyle::kDigit:
        text = numfmt::FormatNumber(0.0, builder->format, decimals);
        break;
    }
  } else {
    text = numfmt::FormatNumber(value, builder->format, decimals);
  }
  builder->rows[grid_row][col] = text;
  builder->roles[grid_row][col] = text.empty() ? CellRole::kEmpty : role;
}

// Materializes one table (plan) into the builder, appending rows and
// recording ground truth. Returns nothing; annotations use grid coordinates.
void MaterializeTable(const TablePlan& plan, std::mt19937_64& rng,
                      FileBuilder* builder) {
  const int width = static_cast<int>(plan.columns.size());
  const int R = plan.data_rows;

  // --- Underlying and displayed values -------------------------------------
  ValueMatrix underlying(R, std::vector<std::optional<double>>(width));
  ValueMatrix displayed(R, std::vector<std::optional<double>>(width));

  // Base columns first.
  for (int c = 0; c < width; ++c) {
    const ColumnPlan& column = plan.columns[c];
    for (int r = 0; r < R; ++r) {
      switch (column.kind) {
        case ColumnKind::kLabel:
          break;  // rendered as text later
        case ColumnKind::kData: {
          double value = Bernoulli(rng, plan.zero_rate)
                             ? 0.0
                             : UniformReal(rng, 0.1, 1.0) * column.magnitude;
          if (!plan.rounded) value = DisplayRound(value, column.decimals);
          underlying[r][c] = value;
          displayed[r][c] = DisplayRound(value, column.decimals);
          break;
        }
        case ColumnKind::kIndicator: {
          const double value = Bernoulli(rng, column.one_rate) ? 1.0 : 0.0;
          underlying[r][c] = value;
          displayed[r][c] = value;
          break;
        }
        default:
          break;  // aggregates in the second pass
      }
    }
  }

  // Aggregate columns in dependency order: group sums, then grand sums, then
  // the remaining single-pass kinds.
  auto compute_column = [&](int c) {
    const ColumnPlan& column = plan.columns[c];
    for (int r = 0; r < R; ++r) {
      // In rounded files aggregates are computed on unrounded values and then
      // rounded for display (the Sec. 4.1 error mechanism); in exact files
      // they are computed on the displayed values themselves.
      auto base = [&](int source) -> std::optional<double> {
        return plan.rounded ? underlying[r][source] : displayed[r][source];
      };
      std::optional<double> value;
      switch (column.kind) {
        case ColumnKind::kGroupSum:
        case ColumnKind::kGrandSum: {
          double sum = 0.0;
          bool ok = true;
          for (int source : column.sources) {
            if (!base(source).has_value()) ok = false;
            sum += base(source).value_or(0.0);
          }
          if (ok) value = sum;
          break;
        }
        case ColumnKind::kAverage: {
          double sum = 0.0;
          for (int source : column.sources) sum += base(source).value_or(0.0);
          value = sum / static_cast<double>(column.sources.size());
          break;
        }
        case ColumnKind::kShare: {
          const double num = base(column.sources[0]).value_or(0.0);
          const double den = base(column.sources[1]).value_or(0.0);
          if (den != 0.0) value = num / den;
          break;
        }
        case ColumnKind::kRelChange: {
          const double b = base(column.sources[0]).value_or(0.0);
          const double c2 = base(column.sources[1]).value_or(0.0);
          if (b != 0.0) value = (c2 - b) / b;
          break;
        }
        case ColumnKind::kDifference: {
          value = base(column.sources[0]).value_or(0.0) -
                  base(column.sources[1]).value_or(0.0);
          break;
        }
        case ColumnKind::kComposite: {
          double numerator = 0.0;
          for (size_t k = 0; k + 1 < column.sources.size(); ++k) {
            numerator += base(column.sources[k]).value_or(0.0);
          }
          const double denominator = base(column.sources.back()).value_or(0.0);
          if (denominator != 0.0) value = numerator / denominator;
          break;
        }
        default:
          return;
      }
      underlying[r][c] = value;
      if (value.has_value()) {
        // Coarse aggregates keep only 2-3 significant digits; at 2 digits the
        // error level often exceeds the detector tolerance, reproducing the
        // paper's error-level false negatives and their cumulative cascades.
        const double shown =
            column.coarse ? RoundSignificant(*value, column.coarse_digits) : *value;
        displayed[r][c] = DisplayRound(shown, column.decimals);
      }
    }
  };
  for (int c = 0; c < width; ++c) {
    if (plan.columns[c].kind == ColumnKind::kGroupSum) compute_column(c);
  }
  for (int c = 0; c < width; ++c) {
    if (plan.columns[c].kind == ColumnKind::kGrandSum) compute_column(c);
  }
  for (int c = 0; c < width; ++c) {
    const ColumnKind kind = plan.columns[c].kind;
    if (kind == ColumnKind::kAverage || kind == ColumnKind::kShare ||
        kind == ColumnKind::kRelChange || kind == ColumnKind::kDifference ||
        kind == ColumnKind::kComposite) {
      compute_column(c);
    }
  }

  // --- Rows -----------------------------------------------------------------
  if (plan.has_title) {
    const int row = builder->AddRow(width);
    builder->rows[row][0] = "Table of " + plan.columns.back().header + " figures";
    builder->roles[row][0] = CellRole::kMetadata;
    builder->AddRow(width);  // blank separator
  }

  if (plan.multirow_header) {
    // A banner header row spanning a few columns, above the real headers.
    const int banner_row = builder->AddRow(width);
    builder->rows[banner_row][1] = "Figures by " + plan.columns.back().header;
    builder->roles[banner_row][1] = CellRole::kHeader;
    if (width > 4) {
      builder->rows[banner_row][width / 2] = "(units)";
      builder->roles[banner_row][width / 2] = CellRole::kHeader;
    }
  }
  const int header_row = builder->AddRow(width);
  for (int c = 0; c < width; ++c) {
    builder->rows[header_row][c] = plan.columns[c].header;
    builder->roles[header_row][c] = CellRole::kHeader;
  }

  // Group-header separator positions among the data rows.
  std::vector<int> separators;
  for (int s = 0; s < plan.group_header_count; ++s) {
    separators.push_back(UniformInt(rng, 1, std::max(1, R - 1)));
  }
  std::sort(separators.begin(), separators.end());
  separators.erase(std::unique(separators.begin(), separators.end()),
                   separators.end());

  const int start_year = UniformInt(rng, 1950, 2010);
  std::vector<int> data_grid_rows(R);
  int first_region_row = -1;
  int last_region_row = -1;
  size_t next_separator = 0;
  for (int r = 0; r < R; ++r) {
    while (next_separator < separators.size() && separators[next_separator] == r) {
      const int row = builder->AddRow(width);
      builder->rows[row][0] = "Group " + std::to_string(next_separator + 1);
      builder->roles[row][0] = CellRole::kGroupHeader;
      if (first_region_row < 0) first_region_row = row;
      last_region_row = row;
      ++next_separator;
    }
    const int row = builder->AddRow(width);
    data_grid_rows[r] = row;
    if (first_region_row < 0) first_region_row = row;
    last_region_row = row;
    for (int c = 0; c < width; ++c) {
      const ColumnPlan& column = plan.columns[c];
      if (column.kind == ColumnKind::kLabel) {
        builder->rows[row][c] = plan.label_is_year
                                    ? std::to_string(start_year + r)
                                    : "Item " + std::to_string(r + 1);
        builder->roles[row][c] = CellRole::kHeader;
        continue;
      }
      if (!displayed[r][c].has_value()) continue;
      const bool aggregate_column = IsAggregateKind(column.kind);
      RenderCell(builder, plan, row, c, *displayed[r][c], column.decimals,
                 aggregate_column ? CellRole::kAggregation : CellRole::kData,
                 aggregate_column);
    }
  }

  // --- Total / average row ----------------------------------------------------
  int total_row = -1;
  std::vector<std::optional<double>> total_displayed(width);
  if (plan.total_row) {
    total_row = builder->AddRow(width);
    builder->rows[total_row][0] = "Total";
    builder->roles[total_row][0] = CellRole::kHeader;
    for (int c = 0; c < width; ++c) {
      const ColumnPlan& column = plan.columns[c];
      if (!IsColumnSummable(column.kind)) continue;
      double sum = 0.0;
      bool ok = true;
      for (int r = 0; r < R; ++r) {
        const auto& cell = plan.rounded ? underlying[r][c] : displayed[r][c];
        if (!cell.has_value()) ok = false;
        sum += cell.value_or(0.0);
      }
      if (!ok) continue;
      total_displayed[c] = DisplayRound(sum, column.decimals);
      RenderCell(builder, plan, total_row, c, *total_displayed[c], column.decimals,
                 CellRole::kAggregation, /*aggregate_column=*/true);
    }
  }

  int average_row = -1;
  std::vector<std::optional<double>> average_displayed(width);
  if (plan.average_row) {
    average_row = builder->AddRow(width);
    builder->rows[average_row][0] = "Average";
    builder->roles[average_row][0] = CellRole::kHeader;
    for (int c = 0; c < width; ++c) {
      const ColumnPlan& column = plan.columns[c];
      if (column.kind != ColumnKind::kData) continue;
      double sum = 0.0;
      for (int r = 0; r < R; ++r) {
        sum += (plan.rounded ? underlying[r][c] : displayed[r][c]).value_or(0.0);
      }
      const double mean = sum / static_cast<double>(R);
      average_displayed[c] = DisplayRound(mean, column.decimals + 1);
      RenderCell(builder, plan, average_row, c, *average_displayed[c],
                 column.decimals + 1, CellRole::kAggregation,
                 /*aggregate_column=*/true);
    }
  }

  // --- Footnotes ---------------------------------------------------------------
  if (plan.footnotes > 0) {
    builder->AddRow(width);  // blank separator
    const char* const kNotes[] = {"Source: national statistics office",
                                  "Inquiries: statistics department",
                                  "Figures may not add up due to rounding"};
    for (int n = 0; n < plan.footnotes; ++n) {
      const int row = builder->AddRow(width);
      builder->rows[row][0] = kNotes[n % 3];
      builder->roles[row][0] = CellRole::kNotes;
    }
  }

  // --- Ground truth --------------------------------------------------------
  auto annotate = [&](Axis axis, int line, int aggregate, std::vector<int> range,
                      AggregationFunction function, double observed,
                      double calculated) {
    Aggregation aggregation;
    aggregation.axis = axis;
    aggregation.line = line;
    aggregation.aggregate = aggregate;
    aggregation.range = std::move(range);
    aggregation.function = function;
    aggregation.error = core::ErrorLevel(observed, calculated);
    builder->annotations.push_back(std::move(aggregation));
  };

  // Row-wise aggregations: every data row, per aggregate column.
  for (int c = 0; c < width; ++c) {
    const ColumnPlan& column = plan.columns[c];
    if (!IsAggregateKind(column.kind)) continue;
    if (column.kind == ColumnKind::kComposite) {
      // Composite ground truth lives in its own list.
      for (int r = 0; r < R; ++r) {
        if (!displayed[r][c].has_value()) continue;
        double numerator = 0.0;
        bool ok = true;
        for (size_t k = 0; k + 1 < column.sources.size(); ++k) {
          if (!displayed[r][column.sources[k]].has_value()) {
            ok = false;
            break;
          }
          numerator += *displayed[r][column.sources[k]];
        }
        const auto& denominator = displayed[r][column.sources.back()];
        if (!ok || !denominator.has_value() || *denominator == 0.0) continue;
        core::CompositeAggregation composite;
        composite.axis = Axis::kRow;
        composite.line = data_grid_rows[r];
        composite.aggregate = c;
        composite.numerator.assign(column.sources.begin(),
                                   column.sources.end() - 1);
        composite.denominator = column.sources.back();
        composite.error =
            core::ErrorLevel(*displayed[r][c], numerator / *denominator);
        builder->composites.push_back(std::move(composite));
      }
      continue;
    }
    const AggregationFunction function = FunctionOfKind(column.kind);
    for (int r = 0; r < R; ++r) {
      if (!displayed[r][c].has_value()) continue;
      std::vector<double> values;
      bool ok = true;
      for (int source : column.sources) {
        if (!displayed[r][source].has_value()) {
          ok = false;
          break;
        }
        values.push_back(*displayed[r][source]);
      }
      if (!ok) continue;
      const auto calculated = core::Apply(function, values);
      if (!calculated.has_value()) continue;
      annotate(Axis::kRow, data_grid_rows[r], c, column.sources, function,
               *displayed[r][c], *calculated);
    }
    // Sum-of-sums: the same row-wise pattern holds on the total row.
    if (total_row >= 0 &&
        (column.kind == ColumnKind::kGroupSum || column.kind == ColumnKind::kGrandSum) &&
        total_displayed[c].has_value()) {
      std::vector<double> values;
      bool ok = true;
      for (int source : column.sources) {
        if (!total_displayed[source].has_value()) {
          ok = false;
          break;
        }
        values.push_back(*total_displayed[source]);
      }
      if (ok) {
        const auto calculated = core::Apply(function, values);
        if (calculated.has_value()) {
          annotate(Axis::kRow, total_row, c, column.sources, function,
                   *total_displayed[c], *calculated);
        }
      }
    }
  }

  // Column-wise aggregations from the total and average rows. The range spans
  // the whole data region including separator rows, whose empty cells stand
  // for zero (the paper's empty-cell convention).
  std::vector<int> region_rows;
  for (int row = first_region_row; row <= last_region_row; ++row) {
    region_rows.push_back(row);
  }
  auto column_values = [&](int c) {
    std::vector<double> values;
    for (int row : region_rows) {
      // Separator rows contribute zero; data rows their displayed value.
      double value = 0.0;
      for (int r = 0; r < R; ++r) {
        if (data_grid_rows[r] == row) {
          value = displayed[r][c].value_or(0.0);
          break;
        }
      }
      values.push_back(value);
    }
    return values;
  };
  if (total_row >= 0) {
    for (int c = 0; c < width; ++c) {
      if (!total_displayed[c].has_value()) continue;
      const auto calculated =
          core::Apply(AggregationFunction::kSum, column_values(c));
      if (!calculated.has_value()) continue;
      annotate(Axis::kColumn, c, total_row, region_rows, AggregationFunction::kSum,
               *total_displayed[c], *calculated);
    }
  }
  if (average_row >= 0) {
    for (int c = 0; c < width; ++c) {
      if (!average_displayed[c].has_value()) continue;
      const auto calculated =
          core::Apply(AggregationFunction::kAverage, column_values(c));
      if (!calculated.has_value()) continue;
      annotate(Axis::kColumn, c, average_row, region_rows,
               AggregationFunction::kAverage, *average_displayed[c], *calculated);
    }
  }
}

}  // namespace

eval::AnnotatedFile GenerateFile(const GeneratorProfile& profile, uint64_t seed,
                                 const std::string& name) {
  std::mt19937_64 rng(seed);
  FileBuilder builder;
  builder.format = numfmt::kAllNumberFormats[WeightedChoice(rng, profile.format_weights)];

  const bool with_aggregations = !Bernoulli(rng, profile.p_no_aggregation);
  const TablePlan plan = BuildPlan(profile, rng, with_aggregations);
  for (int t = 0; t < plan.repeat_tables; ++t) {
    if (t > 0) builder.AddRow(static_cast<int>(plan.columns.size()));
    if (t > 0 && profile.second_table_new_plan) {
      TablePlan second = BuildPlan(profile, rng, with_aggregations);
      second.repeat_tables = 1;
      MaterializeTable(second, rng, &builder);
    } else {
      MaterializeTable(plan, rng, &builder);
    }
  }

  eval::AnnotatedFile file;
  file.name = name;
  file.grid = csv::Grid(builder.rows);
  file.annotations = std::move(builder.annotations);
  file.composites = std::move(builder.composites);
  file.format = builder.format;
  // Pad role rows to the rectangularized grid width.
  const int width = file.grid.columns();
  for (auto& row : builder.roles) row.resize(width, CellRole::kEmpty);
  file.roles = std::move(builder.roles);
  return file;
}

}  // namespace aggrecol::datagen
