#ifndef AGGRECOL_DATAGEN_MESSY_GENERATOR_H_
#define AGGRECOL_DATAGEN_MESSY_GENERATOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "csv/dialect.h"
#include "datagen/file_generator.h"
#include "eval/annotations.h"
#include "eval/robustness.h"

namespace aggrecol::datagen {

/// The adversarial corpus categories, each isolating one real-world failure
/// mode the clean VALIDATION/UNSEEN generators never produce (van den Burg
/// et al. measure dialect detection as the dominant failure mode on wild
/// files). Categories are pure — one quirk each — so the per-category
/// robustness score attributes regressions to a specific defence.
enum class MessyCategory {
  kAmbiguousDialect,      // every row carries a comma inside a ';'/tab file
  kRaggedRows,            // trailing empty cells dropped from the byte stream
  kEncodingQuirks,        // UTF-8 BOM, CRLF, and lone-CR line endings
  kQuotedContent,         // embedded delimiters, quotes, and newlines
  kInterleavedFootnotes,  // footnote/source rows between the data rows
  kMultiTable,            // two stacked tables split by a blank line
};

inline constexpr std::array<MessyCategory, 6> kAllMessyCategories = {
    MessyCategory::kAmbiguousDialect,  MessyCategory::kRaggedRows,
    MessyCategory::kEncodingQuirks,    MessyCategory::kQuotedContent,
    MessyCategory::kInterleavedFootnotes, MessyCategory::kMultiTable,
};

/// Stable kebab-case name, e.g. "ambiguous-dialect". These names key the
/// per-category entries of BENCH_robustness.json and the category table of
/// docs/ROBUSTNESS.md (drift-checked by tests/docs_test.cc).
std::string ToString(MessyCategory category);

/// One messy file: the raw bytes as they would sit on disk, the ground-truth
/// dialect they were written under, and the annotated ground truth (grid +
/// aggregations) a correct sniff-parse-detect run should recover — the same
/// contract the VALIDATION/UNSEEN corpora score against.
struct MessyFile {
  MessyCategory category = MessyCategory::kAmbiguousDialect;
  csv::Dialect dialect;
  std::string text;
  eval::AnnotatedFile annotated;
};

/// A named, seeded recipe for the whole adversarial corpus.
struct MessyCorpusSpec {
  int files_per_category = 8;
  uint64_t seed = 6021;
  GeneratorProfile profile;
};

/// Generates one messy file of `category`, deterministically from `seed`.
MessyFile GenerateMessyFile(MessyCategory category, const GeneratorProfile& profile,
                            uint64_t seed, const std::string& name);

/// Deterministically materializes `files_per_category` files of every
/// category, in kAllMessyCategories order.
std::vector<MessyFile> GenerateMessyCorpus(const MessyCorpusSpec& spec);

/// Adapts messy files to the eval scoring plumbing (eval cannot depend on
/// datagen, so the conversion lives here).
std::vector<eval::RobustnessCase> ToRobustnessCases(
    const std::vector<MessyFile>& files);

}  // namespace aggrecol::datagen

#endif  // AGGRECOL_DATAGEN_MESSY_GENERATOR_H_
