#ifndef AGGRECOL_DATAGEN_FILE_GENERATOR_H_
#define AGGRECOL_DATAGEN_FILE_GENERATOR_H_

#include <array>
#include <cstdint>
#include <random>
#include <string>

#include "eval/annotations.h"
#include "numfmt/number_format.h"

namespace aggrecol::datagen {

/// Distributional knobs for generating one verbose CSV file. The defaults
/// approximate the published marginals of the paper's VALIDATION dataset
/// (Table 3, Fig. 2, Table 4, Sec. 2.2); corpus.h derives the VALIDATION and
/// UNSEEN profiles from them.
struct GeneratorProfile {
  /// Probability that a file carries no aggregations at all (50/385 files in
  /// VALIDATION; zero in UNSEEN).
  double p_no_aggregation = 50.0 / 385.0;

  /// Per-file probabilities that a table includes each function's
  /// aggregations (conditioned on the file having aggregations; Fig. 2).
  double p_sum = 0.74;
  double p_average = 0.08;
  double p_division = 0.22;
  double p_relative_change = 0.06;
  double p_difference = 0.06;

  /// Aggregation patterns (Sec. 2.2): cumulative grand totals and interrupt
  /// layouts where a non-cumulative aggregate blocks a sum's range.
  double p_cumulative = 0.25;
  double p_interrupt = 0.15;

  /// Column-wise aggregate rows.
  double p_total_row = 0.5;
  double p_average_row = 0.08;

  /// File-level rounding mode: aggregates are computed on unrounded values
  /// and then rounded for display, producing nonzero error levels (Sec. 4.1
  /// observes errors in ~29% of aggregations).
  double p_rounded = 0.35;

  /// Within rounded files, probability that one aggregate is very coarsely
  /// rounded (1-2 significant digits), producing errors beyond the detector
  /// tolerance — the paper's error-level false-negative mode (Sec. 4.5).
  double p_coarse_aggregate = 0.08;

  /// Probability that the file stacks a second, independent table.
  double p_second_table = 0.10;

  /// When a second table is drawn, lay it out with a *different* plan
  /// instead of repeating the first one. Distinct layouts dilute whole-file
  /// pattern coverage — the case the table-splitting extension addresses.
  bool second_table_new_plan = false;

  /// Probability of including 0/1 indicator columns (roster-style content,
  /// the paper's main false-positive mode; prevalent in UNSEEN).
  double p_indicator_columns = 0.05;

  /// Probability that any single data value is a true zero.
  double zero_rate = 0.03;

  /// How zeros are displayed: empty cell, textual marker, or the digit 0.
  double p_zero_empty = 0.35;
  double p_zero_marker = 0.10;

  /// Number-format mix (Table 4 order).
  std::array<double, 5> format_weights = {0.245, 0.060, 0.665, 0.015, 0.015};

  /// Header conventions: aggregate columns carry a keyword header ("Total
  /// ...") with this probability (the paper measures ~60% for sum), and
  /// non-aggregate columns occasionally carry a spurious keyword.
  double p_keyword_header = 0.6;
  double p_spurious_keyword = 0.12;

  /// Ratio aggregates (shares, relative changes) are sometimes exported at
  /// full precision instead of being rounded to 2-3 decimals, making their
  /// observed error level effectively zero (the paper's error>0 share is
  /// ~29%, so many of its divisions must be exact).
  double p_full_precision_ratio = 0.45;

  /// A few minimal files carry only a handful of rows (the paper's smallest
  /// file holds a single aggregation).
  double p_tiny_file = 0.05;

  /// Probability of a second header row above the column headers (a group
  /// banner such as "Population by region"); ~9.2% of open-portal tables
  /// have multi-row headers or correlated comment lines (Sec. 1).
  double p_multirow_header = 0.10;

  /// Probability of a composite sum-then-divide block (the Sec. 6 future-work
  /// shape): share = (m1 + m2 + m3) / base, with no intermediate sum column.
  /// Zero by default so the core experiments stay the paper's.
  double p_composite = 0.0;

  /// Table shape.
  int min_data_rows = 5;
  int max_data_rows = 40;
  int max_groups = 3;
  int max_group_size = 6;

  /// A few very large files (the paper's widest/longest tables reach
  /// hundreds of rows and one file holds 1,651 aggregations).
  double p_big_file = 0.02;
  int big_file_rows = 300;
};

/// Generates one annotated verbose CSV file from `profile`, deterministically
/// from `seed`. The returned AnnotatedFile carries the serialized-style grid,
/// the semantic aggregation ground truth (with observed error levels), and
/// per-cell roles for the cell-classification experiment.
eval::AnnotatedFile GenerateFile(const GeneratorProfile& profile, uint64_t seed,
                                 const std::string& name);

}  // namespace aggrecol::datagen

#endif  // AGGRECOL_DATAGEN_FILE_GENERATOR_H_
