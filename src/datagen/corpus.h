#ifndef AGGRECOL_DATAGEN_CORPUS_H_
#define AGGRECOL_DATAGEN_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/file_generator.h"
#include "eval/annotations.h"

namespace aggrecol::datagen {

/// A named, seeded recipe for a whole corpus of annotated files.
struct CorpusSpec {
  std::string name;
  int file_count = 0;
  uint64_t seed = 0;
  GeneratorProfile profile;
};

/// The VALIDATION-like corpus: 385 files, ~50 without aggregations, the
/// Table 4 number-format mix, and the Sec. 2.2 pattern mix. This substitutes
/// the Troy+EUSES dataset the paper annotated (see DESIGN.md).
CorpusSpec ValidationCorpus();

/// The UNSEEN-like corpus: 81 files, all with aggregations, with a higher
/// prevalence of zero-valued cells and roster-style indicator columns — the
/// property the paper blames for the precision drop on its unseen test set
/// (Sec. 4.3.4). Substitutes the SAUS/CIUS/UK sample.
CorpusSpec UnseenCorpus();

/// Deterministically materializes all files of `spec`.
std::vector<eval::AnnotatedFile> GenerateCorpus(const CorpusSpec& spec);

/// Convenience for unit tests and micro-benchmarks: a small corpus of
/// `file_count` VALIDATION-profile files.
std::vector<eval::AnnotatedFile> GenerateSmallCorpus(int file_count, uint64_t seed);

}  // namespace aggrecol::datagen

#endif  // AGGRECOL_DATAGEN_CORPUS_H_
