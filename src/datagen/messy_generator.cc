#include "datagen/messy_generator.h"

#include <random>
#include <utility>

#include "csv/parser.h"
#include "csv/writer.h"

namespace aggrecol::datagen {
namespace {

using core::Aggregation;
using core::Axis;

bool Bernoulli(std::mt19937_64& rng, double p) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
}

int UniformInt(std::mt19937_64& rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

std::vector<std::string> RowStrings(const csv::Grid& grid, int row) {
  const auto cells = grid.row(row);
  return {cells.begin(), cells.end()};
}

std::vector<std::vector<std::string>> RowsOf(const csv::Grid& grid) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(grid.rows());
  for (int i = 0; i < grid.rows(); ++i) rows.push_back(RowStrings(grid, i));
  return rows;
}

bool RowIsBlank(const std::vector<std::string>& row) {
  for (const auto& cell : row) {
    if (!cell.empty()) return false;
  }
  return true;
}

/// Shifts every row index >= `at` in `annotations` up by one — the remap for
/// inserting a row at position `at`. Row-wise aggregations live on a row
/// (`line`); column-wise aggregations index rows through aggregate/range.
void ShiftAnnotationsForInsertedRow(std::vector<Aggregation>* annotations, int at) {
  for (Aggregation& aggregation : *annotations) {
    if (aggregation.axis == Axis::kRow) {
      if (aggregation.line >= at) ++aggregation.line;
    } else {
      if (aggregation.aggregate >= at) ++aggregation.aggregate;
      for (int& index : aggregation.range) {
        if (index >= at) ++index;
      }
    }
  }
}

/// A base table for one messy file: the clean generator's output with the
/// knobs that would double up on messiness disabled (stacked tables are the
/// kMultiTable category's job, and ground-truth roles do not survive the row
/// surgery some categories perform).
eval::AnnotatedFile BaseFile(GeneratorProfile profile, uint64_t seed,
                             const std::string& name) {
  profile.p_second_table = 0.0;
  profile.p_no_aggregation = 0.0;  // every messy file carries signal to score
  eval::AnnotatedFile file = GenerateFile(profile, seed, name);
  file.roles.clear();
  file.composites.clear();
  return file;
}

char PickDelimiter(std::mt19937_64& rng) {
  constexpr std::array<char, 4> delimiters = {',', ';', '\t', '|'};
  return delimiters[UniformInt(rng, 0, static_cast<int>(delimiters.size()) - 1)];
}

// ---------------------------------------------------------------------------
// Category transforms. Each returns the serialized bytes and mutates the
// annotated ground truth so that ParseGrid(text, dialect) == annotated.grid
// and the annotations index that grid (tests/robustness_corpus_test.cc
// asserts both for every generated file).
// ---------------------------------------------------------------------------

/// Every non-blank row's first cell gains exactly `columns - 1` commas
/// ("Berlin, North, est."): under the true ';'/tab dialect the file is
/// perfectly regular at width W, and under ',' it is *also* perfectly
/// regular at the same width W. Row-width statistics alone cannot break the
/// tie (the legacy sniffer resolves it by candidate order and elects ','),
/// but under ',' every field is a shredded text fragment while the true
/// dialect keeps the numbers lexable — the type model disarms the trap. The
/// profile is forced to the none/dot number format so digit grouping cannot
/// add uncontrolled commas.
std::string MakeAmbiguousDialect(std::mt19937_64& rng, csv::Dialect* dialect,
                                 eval::AnnotatedFile* file) {
  static const char* const kSuffixes[] = {"North", "South", "East", "West",
                                          "total", "est.", "rev."};
  dialect->delimiter = Bernoulli(rng, 0.7) ? ';' : '\t';
  dialect->quote = '"';
  auto rows = RowsOf(file->grid);
  const int commas = file->grid.columns() - 1;
  for (auto& row : rows) {
    // Blank separator rows are decorated too ("cf. notes, ..."), otherwise
    // they parse as width-1 outliers under ',' and break the tie the trap
    // depends on.
    std::string decorated = row[0].empty()
                                ? (RowIsBlank(row) ? "cf. notes" : "area")
                                : row[0];
    for (int k = 0; k < commas; ++k) {
      decorated += std::string(", ") + kSuffixes[UniformInt(rng, 0, 6)];
    }
    row[0] = std::move(decorated);
  }
  file->grid = csv::Grid(rows);
  return csv::WriteGrid(file->grid, *dialect);
}

/// Serializes the grid with trailing empty cells dropped from most rows —
/// the way spreadsheet exports shorten footnote and title lines. The parser
/// re-pads, so the ground-truth grid is unchanged; at least one row keeps
/// the full width so no column disappears.
std::string MakeRaggedRows(std::mt19937_64& rng, csv::Dialect* dialect,
                           eval::AnnotatedFile* file) {
  dialect->delimiter = PickDelimiter(rng);
  dialect->quote = '"';
  const csv::Grid& grid = file->grid;

  // Effective width of each row (index of the last non-empty cell + 1).
  std::vector<int> effective(grid.rows(), 0);
  int max_effective = 0;
  for (int i = 0; i < grid.rows(); ++i) {
    for (int j = grid.columns() - 1; j >= 0; --j) {
      if (!grid.at(i, j).empty()) {
        effective[i] = j + 1;
        break;
      }
    }
    if (effective[i] > max_effective) max_effective = effective[i];
  }
  // An everywhere-empty last column would be truncated away by the parser;
  // keep the serialization rectangular in that (degenerate) case.
  const bool can_truncate = max_effective == grid.columns();

  std::string out;
  for (int i = 0; i < grid.rows(); ++i) {
    int width = grid.columns();
    if (can_truncate && effective[i] < grid.columns() && Bernoulli(rng, 0.75)) {
      width = effective[i] > 0 ? effective[i] : 1;
    }
    for (int j = 0; j < width; ++j) {
      if (j > 0) out.push_back(dialect->delimiter);
      out.append(csv::EscapeField(grid.at(i, j), *dialect));
    }
    out.push_back('\n');
  }
  return out;
}

/// Standard serialization wrapped in encoding quirks: a UTF-8 BOM and/or
/// CRLF or lone-CR line endings. Cells contain no line breaks here, so the
/// rewrite cannot touch quoted content.
std::string MakeEncodingQuirks(std::mt19937_64& rng, csv::Dialect* dialect,
                               eval::AnnotatedFile* file) {
  dialect->delimiter = PickDelimiter(rng);
  dialect->quote = '"';
  std::string text = csv::WriteGrid(file->grid, *dialect);
  const int variant = UniformInt(rng, 0, 3);
  if (variant == 1 || variant == 2) {  // CRLF (with or without BOM)
    std::string crlf;
    crlf.reserve(text.size() + text.size() / 16);
    for (char c : text) {
      if (c == '\n') crlf.push_back('\r');
      crlf.push_back(c);
    }
    text = std::move(crlf);
  } else if (variant == 3) {  // classic-Mac lone-CR endings
    for (char& c : text) {
      if (c == '\n') c = '\r';
    }
  }
  if (variant != 2) text.insert(0, "\xEF\xBB\xBF");
  return text;
}

/// Embeds the active delimiter, literal quotes, and newlines inside label
/// cells, exercising the writer's escaping and the sniffer's quote election.
/// Only cells with alphabetic content are decorated — annotations reference
/// numeric cells only, so the ground truth indices stay valid.
std::string MakeQuotedContent(std::mt19937_64& rng, csv::Dialect* dialect,
                              eval::AnnotatedFile* file) {
  dialect->delimiter = PickDelimiter(rng);
  dialect->quote = Bernoulli(rng, 0.75) ? '"' : '\'';
  auto rows = RowsOf(file->grid);

  auto has_alpha = [](const std::string& cell) {
    for (char c : cell) {
      if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) return true;
    }
    return false;
  };
  int decorated = 0;
  const int want = UniformInt(rng, 2, 5);
  for (auto& row : rows) {
    if (decorated >= want) break;
    for (auto& cell : row) {
      if (decorated >= want) break;
      if (!has_alpha(cell)) continue;
      if (!Bernoulli(rng, 0.4)) continue;
      switch (decorated % 3) {
        case 0:
          cell += std::string(1, dialect->delimiter) + " incl. tax";
          break;
        case 1:
          cell = "said " + std::string(1, dialect->quote) + cell +
                 std::string(1, dialect->quote);
          break;
        default:
          cell += "\n(estimate)";
          break;
      }
      ++decorated;
    }
  }
  file->grid = csv::Grid(rows);
  return csv::WriteGrid(file->grid, *dialect);
}

/// Inserts footnote/source rows *between* the data rows (not just at the
/// file edges), shifting the ground-truth row indices accordingly.
std::string MakeInterleavedFootnotes(std::mt19937_64& rng, csv::Dialect* dialect,
                                     eval::AnnotatedFile* file) {
  static const char* const kFootnotes[] = {
      "1) provisional figures", "Source: national statistics office",
      "*) break in series", "Note: values rounded"};
  dialect->delimiter = PickDelimiter(rng);
  dialect->quote = '"';
  auto rows = RowsOf(file->grid);
  const int width = file->grid.columns();
  const int inserts = UniformInt(rng, 1, 3);
  for (int n = 0; n < inserts; ++n) {
    const int at = UniformInt(rng, 1, static_cast<int>(rows.size()));
    std::vector<std::string> footnote(width);
    footnote[0] = kFootnotes[UniformInt(rng, 0, 3)];
    rows.insert(rows.begin() + at, std::move(footnote));
    ShiftAnnotationsForInsertedRow(&file->annotations, at);
  }
  file->grid = csv::Grid(rows);
  return csv::WriteGrid(file->grid, *dialect);
}

/// Stacks a second, independently generated table under the first with a
/// blank separator line — the multi-table layout the table splitter exists
/// for. Ground truth covers both tables in whole-file coordinates.
std::string MakeMultiTable(std::mt19937_64& rng, csv::Dialect* dialect,
                           eval::AnnotatedFile* file,
                           const GeneratorProfile& profile,
                           const std::string& name) {
  dialect->delimiter = PickDelimiter(rng);
  dialect->quote = '"';
  eval::AnnotatedFile second = BaseFile(profile, rng(), name + "#2");

  auto rows = RowsOf(file->grid);
  const int offset = static_cast<int>(rows.size()) + 1;  // + blank separator
  const int width = std::max(file->grid.columns(), second.grid.columns());
  rows.emplace_back();  // blank separator row; Grid() re-pads all widths
  for (int i = 0; i < second.grid.rows(); ++i) {
    rows.push_back(RowStrings(second.grid, i));
  }

  for (Aggregation aggregation : second.annotations) {
    if (aggregation.axis == Axis::kRow) {
      aggregation.line += offset;
    } else {
      aggregation.aggregate += offset;
      for (int& index : aggregation.range) index += offset;
    }
    file->annotations.push_back(std::move(aggregation));
  }
  for (auto& row : rows) row.resize(width);
  file->grid = csv::Grid(rows);
  return csv::WriteGrid(file->grid, *dialect);
}

}  // namespace

std::string ToString(MessyCategory category) {
  switch (category) {
    case MessyCategory::kAmbiguousDialect:
      return "ambiguous-dialect";
    case MessyCategory::kRaggedRows:
      return "ragged-rows";
    case MessyCategory::kEncodingQuirks:
      return "encoding-quirks";
    case MessyCategory::kQuotedContent:
      return "quoted-content";
    case MessyCategory::kInterleavedFootnotes:
      return "interleaved-footnotes";
    case MessyCategory::kMultiTable:
      return "multi-table";
  }
  return "unknown";
}

MessyFile GenerateMessyFile(MessyCategory category, const GeneratorProfile& profile,
                            uint64_t seed, const std::string& name) {
  std::mt19937_64 rng(seed);
  GeneratorProfile base_profile = profile;
  if (category == MessyCategory::kAmbiguousDialect) {
    // No digit grouping: a grouped "12,345" would add uncontrolled commas to
    // the exactly-one-comma-per-row construction.
    base_profile.format_weights = {0.0, 0.0, 0.0, 0.0, 1.0};
  }

  MessyFile messy;
  messy.category = category;
  messy.annotated = BaseFile(base_profile, rng(), name);

  switch (category) {
    case MessyCategory::kAmbiguousDialect:
      messy.text = MakeAmbiguousDialect(rng, &messy.dialect, &messy.annotated);
      break;
    case MessyCategory::kRaggedRows:
      messy.text = MakeRaggedRows(rng, &messy.dialect, &messy.annotated);
      break;
    case MessyCategory::kEncodingQuirks:
      messy.text = MakeEncodingQuirks(rng, &messy.dialect, &messy.annotated);
      break;
    case MessyCategory::kQuotedContent:
      messy.text = MakeQuotedContent(rng, &messy.dialect, &messy.annotated);
      break;
    case MessyCategory::kInterleavedFootnotes:
      messy.text = MakeInterleavedFootnotes(rng, &messy.dialect, &messy.annotated);
      break;
    case MessyCategory::kMultiTable:
      messy.text = MakeMultiTable(rng, &messy.dialect, &messy.annotated,
                                  base_profile, name);
      break;
  }
  return messy;
}

std::vector<MessyFile> GenerateMessyCorpus(const MessyCorpusSpec& spec) {
  std::vector<MessyFile> files;
  files.reserve(kAllMessyCategories.size() *
                static_cast<size_t>(spec.files_per_category));
  for (MessyCategory category : kAllMessyCategories) {
    for (int i = 0; i < spec.files_per_category; ++i) {
      const std::string name =
          "messy_" + ToString(category) + "_" + std::to_string(i) + ".csv";
      // Category and index key the per-file seed so adding files to one
      // category never reshuffles another.
      const uint64_t seed = spec.seed * 1000003ULL +
                            static_cast<uint64_t>(category) * 1009ULL +
                            static_cast<uint64_t>(i);
      files.push_back(GenerateMessyFile(category, spec.profile, seed, name));
    }
  }
  return files;
}

std::vector<eval::RobustnessCase> ToRobustnessCases(
    const std::vector<MessyFile>& files) {
  std::vector<eval::RobustnessCase> cases;
  cases.reserve(files.size());
  for (const MessyFile& file : files) {
    eval::RobustnessCase robustness_case;
    robustness_case.name = file.annotated.name;
    robustness_case.category = ToString(file.category);
    robustness_case.text = file.text;
    robustness_case.expected_dialect = file.dialect;
    robustness_case.expected_grid = file.annotated.grid;
    robustness_case.truth = file.annotated.annotations;
    cases.push_back(std::move(robustness_case));
  }
  return cases;
}

}  // namespace aggrecol::datagen
