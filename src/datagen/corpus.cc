#include "datagen/corpus.h"

namespace aggrecol::datagen {

CorpusSpec ValidationCorpus() {
  CorpusSpec spec;
  spec.name = "VALIDATION";
  spec.file_count = 385;
  spec.seed = 0xA66EC01ULL;  // stable across runs; all results reproducible
  spec.profile = GeneratorProfile{};
  return spec;
}

CorpusSpec UnseenCorpus() {
  CorpusSpec spec;
  spec.name = "UNSEEN";
  spec.file_count = 81;
  spec.seed = 0x5EED5EEDULL;
  GeneratorProfile profile;
  profile.p_no_aggregation = 0.0;          // every sampled file has aggregations
  profile.zero_rate = 0.08;                // zero-valued cells are prevalent
  profile.p_indicator_columns = 0.25;      // roster-style 0/1 columns
  profile.p_average = 0.04;                // few average aggregations (Table 3)
  profile.p_relative_change = 0.09;
  profile.p_second_table = 0.12;
  spec.profile = profile;
  return spec;
}

std::vector<eval::AnnotatedFile> GenerateCorpus(const CorpusSpec& spec) {
  std::vector<eval::AnnotatedFile> files;
  files.reserve(spec.file_count);
  for (int i = 0; i < spec.file_count; ++i) {
    const std::string name = spec.name + "/" + std::to_string(i) + ".csv";
    // A large odd stride decorrelates per-file streams under mt19937_64.
    files.push_back(GenerateFile(spec.profile, spec.seed + 0x9E3779B97F4A7C15ULL * i, name));
  }
  return files;
}

std::vector<eval::AnnotatedFile> GenerateSmallCorpus(int file_count, uint64_t seed) {
  CorpusSpec spec = ValidationCorpus();
  spec.name = "SMALL";
  spec.file_count = file_count;
  spec.seed = seed;
  return GenerateCorpus(spec);
}

}  // namespace aggrecol::datagen
