#include "csv/mapped_file.h"

#include <utility>

#include "obs/metrics.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#include <sstream>
#endif

namespace aggrecol::csv {

#if !defined(_WIN32)

std::optional<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  MappedFile file;
  if (S_ISREG(st.st_mode) && st.st_size > 0) {
    const auto size = static_cast<size_t>(st.st_size);
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      ::madvise(map, size, MADV_SEQUENTIAL);
      file.map_ = map;
      file.size_ = size;
      file.source_ = Source::kMmap;
      if (obs::Registry::enabled()) obs::Count("csv.ingest.mmap");
      return file;
    }
    // Fall through to read(): some filesystems refuse mmap.
  }

  // Pipes, FIFOs, devices, empty files, or a refused mapping: drain the
  // descriptor into an owned buffer.
  std::string buffer;
  if (S_ISREG(st.st_mode)) buffer.reserve(static_cast<size_t>(st.st_size));
  char chunk[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0) {
      ::close(fd);
      return std::nullopt;
    }
    if (got == 0) break;
    buffer.append(chunk, static_cast<size_t>(got));
  }
  ::close(fd);
  file.buffer_ = std::move(buffer);
  file.source_ = Source::kRead;
  if (obs::Registry::enabled()) obs::Count("csv.ingest.read");
  return file;
}

void MappedFile::Release() {
  if (map_ != nullptr) {
    ::munmap(map_, size_);
    map_ = nullptr;
    size_ = 0;
  }
}

#else  // _WIN32: no mmap wrapper wired up; plain buffered read.

std::optional<MappedFile> MappedFile::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream contents;
  contents << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  MappedFile file;
  file.buffer_ = std::move(contents).str();
  file.source_ = Source::kRead;
  if (obs::Registry::enabled()) obs::Count("csv.ingest.read");
  return file;
}

void MappedFile::Release() {}

#endif

MappedFile MappedFile::FromBuffer(std::string buffer) {
  MappedFile file;
  file.buffer_ = std::move(buffer);
  file.source_ = Source::kRead;
  return file;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      buffer_(std::move(other.buffer_)),
      source_(other.source_) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Release();
    map_ = std::exchange(other.map_, nullptr);
    size_ = std::exchange(other.size_, 0);
    buffer_ = std::move(other.buffer_);
    source_ = other.source_;
  }
  return *this;
}

MappedFile::~MappedFile() { Release(); }

}  // namespace aggrecol::csv
