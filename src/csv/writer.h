#ifndef AGGRECOL_CSV_WRITER_H_
#define AGGRECOL_CSV_WRITER_H_

#include <string>
#include <string_view>

#include "csv/dialect.h"
#include "csv/grid.h"

namespace aggrecol::csv {

/// Serializes a single field under `dialect`, quoting it when it contains the
/// delimiter, the quote character, or a line break (RFC 4180 rules).
std::string EscapeField(std::string_view field, const Dialect& dialect);

/// Serializes `grid` to CSV text under `dialect` with LF line endings.
/// Round-trips with ParseGrid for any cell content.
std::string WriteGrid(const Grid& grid, const Dialect& dialect);

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_WRITER_H_
