#include "csv/parser.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "csv/scanner.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aggrecol::csv {
namespace {

enum class State {
  kFieldStart,    // at the beginning of a field
  kUnquoted,      // inside an unquoted field
  kQuoted,        // inside a quoted field
  kQuoteInQuote,  // just saw a quote inside a quoted field
};

constexpr std::string_view kUtf8Bom = "\xEF\xBB\xBF";

}  // namespace

std::string_view StripBom(std::string_view text) {
  if (text.substr(0, kUtf8Bom.size()) == kUtf8Bom) {
    text.remove_prefix(kUtf8Bom.size());
  }
  return text;
}

std::vector<std::vector<std::string>> ParseRows(std::string_view text,
                                                const Dialect& dialect) {
  // A leading UTF-8 byte-order mark is file metadata, not cell content;
  // leaving it attached would corrupt the first header cell (and make a
  // numeric first cell unparseable).
  text = StripBom(text);

  // The escape character is only honored when it cannot collide with the
  // structural characters; a dialect claiming '"' both as quote and escape
  // still means RFC doubling.
  const char escape = (dialect.escape != '\0' && dialect.escape != dialect.quote &&
                       dialect.escape != dialect.delimiter)
                          ? dialect.escape
                          : '\0';

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  State state = State::kFieldStart;
  bool row_has_content = false;  // a delimiter or any character was seen

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    state = State::kFieldStart;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };
  // Consumes the character after an escape; at end-of-input the dangling
  // escape character is kept literally to stay lossless.
  auto consume_escaped = [&](size_t pos) {
    if (pos + 1 < text.size()) {
      field.push_back(text[pos + 1]);
      return true;
    }
    field.push_back(escape);
    return false;
  };

  for (size_t pos = 0; pos < text.size(); ++pos) {
    const char c = text[pos];
    switch (state) {
      case State::kFieldStart:
        if (escape != '\0' && c == escape) {
          if (consume_escaped(pos)) ++pos;
          state = State::kUnquoted;
          row_has_content = true;
        } else if (c == dialect.quote) {
          state = State::kQuoted;
          row_has_content = true;
        } else if (c == dialect.delimiter) {
          end_field();
          row_has_content = true;
        } else if (c == '\r') {
          // Swallow; the following '\n' (if any) ends the row.
          if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
        } else if (c == '\n') {
          end_row();
        } else {
          field.push_back(c);
          state = State::kUnquoted;
          row_has_content = true;
        }
        break;
      case State::kUnquoted:
        if (escape != '\0' && c == escape) {
          if (consume_escaped(pos)) ++pos;
        } else if (c == dialect.delimiter) {
          end_field();
        } else if (c == '\r') {
          if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
        } else if (c == '\n') {
          end_row();
        } else {
          field.push_back(c);
        }
        break;
      case State::kQuoted:
        if (escape != '\0' && c == escape) {
          if (consume_escaped(pos)) ++pos;
        } else if (c == dialect.quote) {
          state = State::kQuoteInQuote;
        } else {
          field.push_back(c);
        }
        break;
      case State::kQuoteInQuote:
        if (c == dialect.quote) {
          field.push_back(dialect.quote);  // escaped quote
          state = State::kQuoted;
        } else if (c == dialect.delimiter) {
          end_field();
        } else if (c == '\r') {
          state = State::kUnquoted;
          if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
        } else if (c == '\n') {
          end_row();
        } else {
          // Malformed input such as `"a"b`; keep the stray character to stay
          // lossless on messy real-world files.
          field.push_back(c);
          state = State::kUnquoted;
        }
        break;
    }
  }

  // Flush the final row unless the input ended with a row terminator and the
  // trailing row is completely empty. An unterminated final quoted field
  // (state still kQuoted at end-of-input) flushes its accumulated content —
  // truncated uploads lose their closing quote, not their data.
  if (row_has_content || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

namespace {

// Accumulates one field of the structural walk. A field whose decoded
// content is a single contiguous slice of the input stays zero-copy; the
// moment content becomes non-contiguous (doubled quote, escape sequence,
// malformed-quote repair) it spills into a scratch buffer and is interned
// into the arena when the field ends.
class FieldBuilder {
 public:
  FieldBuilder(std::string_view text, CellArena& arena)
      : text_(text), arena_(&arena) {}

  // Appends the byte at `pos` verbatim.
  void PushLiteral(size_t pos) {
    if (dirty_) {
      scratch_.push_back(text_[pos]);
      return;
    }
    if (len_ == 0) {
      begin_ = pos;
      len_ = 1;
      return;
    }
    if (begin_ + len_ == pos) {
      ++len_;
      return;
    }
    Spill();
    scratch_.push_back(text_[pos]);
  }

  // Appends `length` bytes starting at `pos` verbatim.
  void PushSpan(size_t pos, size_t length) {
    if (dirty_) {
      scratch_.append(text_.substr(pos, length));
      return;
    }
    if (len_ == 0) {
      begin_ = pos;
      len_ = length;
      return;
    }
    if (begin_ + len_ == pos) {
      len_ += length;
      return;
    }
    Spill();
    scratch_.append(text_.substr(pos, length));
  }

  // Appends a synthesized character not present at a usable input position.
  void PushChar(char c) {
    if (!dirty_) Spill();
    scratch_.push_back(c);
  }

  bool Empty() const { return dirty_ ? scratch_.empty() : len_ == 0; }

  // Finishes the field: a clean field is a free slice of the input, a dirty
  // one is interned into the arena. Resets for the next field.
  std::string_view Take() {
    std::string_view out;
    if (dirty_) {
      arena_->CountIntern();
      out = arena_->Intern(scratch_);
    } else if (len_ > 0) {
      out = text_.substr(begin_, len_);
    }
    begin_ = 0;
    len_ = 0;
    dirty_ = false;
    scratch_.clear();
    return out;
  }

 private:
  void Spill() {
    scratch_.assign(text_.substr(begin_, len_));
    dirty_ = true;
  }

  // aggrecol-lint: allow(L7): FieldBuilder is a transient borrower — it lives
  // only inside ParseStructural's frame, where the mapped input outlives it
  std::string_view text_;
  CellArena* arena_;
  size_t begin_ = 0;
  size_t len_ = 0;
  bool dirty_ = false;
  std::string scratch_;
};

// The zero-copy core: locate structural bytes with the scanner, then replay
// ParseRows' state machine jumping position-to-position. Every branch below
// mirrors a branch of the reference — same per-state check order (escape,
// quote, delimiter, CR, LF), no escape check in kQuoteInQuote, quote
// literal in kUnquoted — so the output is bit-identical by construction;
// tests/csv_ingest_test.cc pins that differentially.
Grid ParseStructural(std::string_view raw, const Dialect& dialect,
                     const ParseHints& hints,
                     std::shared_ptr<CellArena> arena) {
  const std::string_view text = StripBom(raw);
  const char escape = (dialect.escape != '\0' && dialect.escape != dialect.quote &&
                       dialect.escape != dialect.delimiter)
                          ? dialect.escape
                          : '\0';

  StructuralSet set;
  set.Add(dialect.delimiter);
  set.Add(dialect.quote);
  set.Add('\r');
  set.Add('\n');
  if (escape != '\0') set.Add(escape);
  const ScanTier tier =
      EffectiveScanTier(ActiveScanTier(), text.size(), set.count);

  FieldBuilder field(text, *arena);
  std::vector<std::string_view> cells;
  std::vector<uint32_t> row_widths;
  size_t row_start = 0;
  State state = State::kFieldStart;
  bool row_has_content = false;

  auto end_field = [&]() {
    cells.push_back(field.Take());
    state = State::kFieldStart;
  };
  auto end_row = [&]() {
    end_field();
    row_widths.push_back(static_cast<uint32_t>(cells.size() - row_start));
    row_start = cells.size();
    row_has_content = false;
  };
  auto consume_escaped = [&](size_t pos) {
    if (pos + 1 < text.size()) {
      field.PushLiteral(pos + 1);
      return true;
    }
    field.PushLiteral(pos);  // dangling escape kept literally (== escape char)
    return false;
  };
  // A run of non-structural bytes. The reference would take its per-state
  // `else` branch for each byte: from kFieldStart the first byte starts an
  // unquoted field, from kQuoteInQuote it is the malformed-quote repair
  // (keep the stray bytes, drop to kUnquoted).
  auto literal_run = [&](size_t start, size_t length) {
    if (state == State::kFieldStart) {
      state = State::kUnquoted;
      row_has_content = true;
    } else if (state == State::kQuoteInQuote) {
      state = State::kUnquoted;
    }
    field.PushSpan(start, length);
  };

  std::vector<uint32_t> positions;
  size_t cursor = 0;  // next unconsumed byte
  for (size_t block = 0; block < text.size(); block += kScanBlockBytes) {
    const size_t block_len = std::min(kScanBlockBytes, text.size() - block);
    positions.clear();
    ScanStructural(text.substr(block, block_len), set, tier, positions);
    // Every field ends at a structural byte or EOF, so positions.size() + 1
    // bounds the cells this block can add: one reserve, no regrowth.
    cells.reserve(cells.size() + positions.size() + 1);
    if (block == 0 && hints.expected_columns > 0) {
      row_widths.reserve(
          cells.capacity() / static_cast<size_t>(hints.expected_columns) + 1);
    }
    for (const uint32_t rel : positions) {
      const size_t pos = block + rel;
      if (pos < cursor) continue;  // swallowed by an escape sequence
      if (pos > cursor) literal_run(cursor, pos - cursor);
      cursor = pos + 1;
      const char c = text[pos];
      switch (state) {
        case State::kFieldStart:
          if (escape != '\0' && c == escape) {
            if (consume_escaped(pos)) cursor = pos + 2;
            state = State::kUnquoted;
            row_has_content = true;
          } else if (c == dialect.quote) {
            state = State::kQuoted;
            row_has_content = true;
          } else if (c == dialect.delimiter) {
            end_field();
            row_has_content = true;
          } else if (c == '\r') {
            if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
          } else {  // '\n'
            end_row();
          }
          break;
        case State::kUnquoted:
          if (escape != '\0' && c == escape) {
            if (consume_escaped(pos)) cursor = pos + 2;
          } else if (c == dialect.delimiter) {
            end_field();
          } else if (c == '\r') {
            if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
          } else if (c == '\n') {
            end_row();
          } else {
            field.PushLiteral(pos);  // the quote char is literal here
          }
          break;
        case State::kQuoted:
          if (escape != '\0' && c == escape) {
            if (consume_escaped(pos)) cursor = pos + 2;
          } else if (c == dialect.quote) {
            state = State::kQuoteInQuote;
          } else {
            field.PushLiteral(pos);  // delimiter/CR/LF are content in quotes
          }
          break;
        case State::kQuoteInQuote:
          if (c == dialect.quote) {
            // Doubled quote encodes one literal quote. The previous byte is
            // the first quote of the pair, so the slice stays contiguous.
            if (pos > 0 && text[pos - 1] == dialect.quote) {
              field.PushLiteral(pos - 1);
            } else {
              field.PushChar(dialect.quote);
            }
            state = State::kQuoted;
          } else if (c == dialect.delimiter) {
            end_field();
          } else if (c == '\r') {
            state = State::kUnquoted;
            if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
          } else if (c == '\n') {
            end_row();
          } else {
            field.PushLiteral(pos);  // stray byte after closing quote
            state = State::kUnquoted;
          }
          break;
      }
    }
  }
  if (cursor < text.size()) literal_run(cursor, text.size() - cursor);
  if (row_has_content || !field.Empty() || cells.size() > row_start) {
    end_row();
  }
  return Grid::FromParsed(std::move(cells), row_widths, std::move(arena));
}

void CountParse(const Grid& grid) {
  if (obs::Registry::enabled()) {
    obs::Count("csv.parse.grids");
    obs::Count("csv.parse.rows", grid.rows());
    obs::Count("csv.parse.cells",
               static_cast<size_t>(grid.rows()) * grid.columns());
  }
}

}  // namespace

Grid ParseGrid(std::string_view text, const Dialect& dialect,
               const ParseHints& hints) {
  // Instrumented here rather than in ParseRows: the sniffer calls ParseRows
  // once per candidate dialect, which would inflate the parse counters.
  obs::ScopedSpan span("csv.parse");
  auto arena = std::make_shared<CellArena>();
  // One bulk copy so the grid owns its bytes; the MappedFile overload
  // avoids even this.
  const std::string_view stable = arena->AddBlock(text);
  Grid grid = ParseStructural(stable, dialect, hints, std::move(arena));
  CountParse(grid);
  return grid;
}

Grid ParseGrid(MappedFile file, const Dialect& dialect,
               const ParseHints& hints) {
  obs::ScopedSpan span("csv.parse");
  auto arena = std::make_shared<CellArena>();
  auto holder = std::make_shared<MappedFile>(std::move(file));
  const std::string_view stable = holder->view();
  arena->KeepAlive(std::move(holder));
  Grid grid = ParseStructural(stable, dialect, hints, std::move(arena));
  CountParse(grid);
  return grid;
}

Grid ParseGridReference(std::string_view text, const Dialect& dialect) {
  return Grid(ParseRows(text, dialect));
}

}  // namespace aggrecol::csv
