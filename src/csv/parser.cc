#include "csv/parser.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aggrecol::csv {
namespace {

enum class State {
  kFieldStart,    // at the beginning of a field
  kUnquoted,      // inside an unquoted field
  kQuoted,        // inside a quoted field
  kQuoteInQuote,  // just saw a quote inside a quoted field
};

}  // namespace

std::vector<std::vector<std::string>> ParseRows(std::string_view text,
                                                const Dialect& dialect) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  State state = State::kFieldStart;
  bool row_has_content = false;  // a delimiter or any character was seen

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    state = State::kFieldStart;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (size_t pos = 0; pos < text.size(); ++pos) {
    const char c = text[pos];
    switch (state) {
      case State::kFieldStart:
        if (c == dialect.quote) {
          state = State::kQuoted;
          row_has_content = true;
        } else if (c == dialect.delimiter) {
          end_field();
          row_has_content = true;
        } else if (c == '\r') {
          // Swallow; the following '\n' (if any) ends the row.
          if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
        } else if (c == '\n') {
          end_row();
        } else {
          field.push_back(c);
          state = State::kUnquoted;
          row_has_content = true;
        }
        break;
      case State::kUnquoted:
        if (c == dialect.delimiter) {
          end_field();
        } else if (c == '\r') {
          if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
        } else if (c == '\n') {
          end_row();
        } else {
          field.push_back(c);
        }
        break;
      case State::kQuoted:
        if (c == dialect.quote) {
          state = State::kQuoteInQuote;
        } else {
          field.push_back(c);
        }
        break;
      case State::kQuoteInQuote:
        if (c == dialect.quote) {
          field.push_back(dialect.quote);  // escaped quote
          state = State::kQuoted;
        } else if (c == dialect.delimiter) {
          end_field();
        } else if (c == '\r') {
          state = State::kUnquoted;
          if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
        } else if (c == '\n') {
          end_row();
        } else {
          // Malformed input such as `"a"b`; keep the stray character to stay
          // lossless on messy real-world files.
          field.push_back(c);
          state = State::kUnquoted;
        }
        break;
    }
  }

  // Flush the final row unless the input ended with a row terminator and the
  // trailing row is completely empty.
  if (row_has_content || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

Grid ParseGrid(std::string_view text, const Dialect& dialect) {
  // Instrumented here rather than in ParseRows: the sniffer calls ParseRows
  // once per candidate dialect, which would inflate the parse counters.
  obs::ScopedSpan span("csv.parse");
  Grid grid(ParseRows(text, dialect));
  if (obs::Registry::enabled()) {
    obs::Count("csv.parse.grids");
    obs::Count("csv.parse.rows", grid.rows());
    obs::Count("csv.parse.cells",
               static_cast<size_t>(grid.rows()) * grid.columns());
  }
  return grid;
}

}  // namespace aggrecol::csv
