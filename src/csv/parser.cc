#include "csv/parser.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aggrecol::csv {
namespace {

enum class State {
  kFieldStart,    // at the beginning of a field
  kUnquoted,      // inside an unquoted field
  kQuoted,        // inside a quoted field
  kQuoteInQuote,  // just saw a quote inside a quoted field
};

constexpr std::string_view kUtf8Bom = "\xEF\xBB\xBF";

}  // namespace

std::string_view StripBom(std::string_view text) {
  if (text.substr(0, kUtf8Bom.size()) == kUtf8Bom) {
    text.remove_prefix(kUtf8Bom.size());
  }
  return text;
}

std::vector<std::vector<std::string>> ParseRows(std::string_view text,
                                                const Dialect& dialect) {
  // A leading UTF-8 byte-order mark is file metadata, not cell content;
  // leaving it attached would corrupt the first header cell (and make a
  // numeric first cell unparseable).
  text = StripBom(text);

  // The escape character is only honored when it cannot collide with the
  // structural characters; a dialect claiming '"' both as quote and escape
  // still means RFC doubling.
  const char escape = (dialect.escape != '\0' && dialect.escape != dialect.quote &&
                       dialect.escape != dialect.delimiter)
                          ? dialect.escape
                          : '\0';

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  State state = State::kFieldStart;
  bool row_has_content = false;  // a delimiter or any character was seen

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    state = State::kFieldStart;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };
  // Consumes the character after an escape; at end-of-input the dangling
  // escape character is kept literally to stay lossless.
  auto consume_escaped = [&](size_t pos) {
    if (pos + 1 < text.size()) {
      field.push_back(text[pos + 1]);
      return true;
    }
    field.push_back(escape);
    return false;
  };

  for (size_t pos = 0; pos < text.size(); ++pos) {
    const char c = text[pos];
    switch (state) {
      case State::kFieldStart:
        if (escape != '\0' && c == escape) {
          if (consume_escaped(pos)) ++pos;
          state = State::kUnquoted;
          row_has_content = true;
        } else if (c == dialect.quote) {
          state = State::kQuoted;
          row_has_content = true;
        } else if (c == dialect.delimiter) {
          end_field();
          row_has_content = true;
        } else if (c == '\r') {
          // Swallow; the following '\n' (if any) ends the row.
          if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
        } else if (c == '\n') {
          end_row();
        } else {
          field.push_back(c);
          state = State::kUnquoted;
          row_has_content = true;
        }
        break;
      case State::kUnquoted:
        if (escape != '\0' && c == escape) {
          if (consume_escaped(pos)) ++pos;
        } else if (c == dialect.delimiter) {
          end_field();
        } else if (c == '\r') {
          if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
        } else if (c == '\n') {
          end_row();
        } else {
          field.push_back(c);
        }
        break;
      case State::kQuoted:
        if (escape != '\0' && c == escape) {
          if (consume_escaped(pos)) ++pos;
        } else if (c == dialect.quote) {
          state = State::kQuoteInQuote;
        } else {
          field.push_back(c);
        }
        break;
      case State::kQuoteInQuote:
        if (c == dialect.quote) {
          field.push_back(dialect.quote);  // escaped quote
          state = State::kQuoted;
        } else if (c == dialect.delimiter) {
          end_field();
        } else if (c == '\r') {
          state = State::kUnquoted;
          if (pos + 1 >= text.size() || text[pos + 1] != '\n') end_row();
        } else if (c == '\n') {
          end_row();
        } else {
          // Malformed input such as `"a"b`; keep the stray character to stay
          // lossless on messy real-world files.
          field.push_back(c);
          state = State::kUnquoted;
        }
        break;
    }
  }

  // Flush the final row unless the input ended with a row terminator and the
  // trailing row is completely empty. An unterminated final quoted field
  // (state still kQuoted at end-of-input) flushes its accumulated content —
  // truncated uploads lose their closing quote, not their data.
  if (row_has_content || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

Grid ParseGrid(std::string_view text, const Dialect& dialect) {
  // Instrumented here rather than in ParseRows: the sniffer calls ParseRows
  // once per candidate dialect, which would inflate the parse counters.
  obs::ScopedSpan span("csv.parse");
  Grid grid(ParseRows(text, dialect));
  if (obs::Registry::enabled()) {
    obs::Count("csv.parse.grids");
    obs::Count("csv.parse.rows", grid.rows());
    obs::Count("csv.parse.cells",
               static_cast<size_t>(grid.rows()) * grid.columns());
  }
  return grid;
}

}  // namespace aggrecol::csv
