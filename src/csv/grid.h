#ifndef AGGRECOL_CSV_GRID_H_
#define AGGRECOL_CSV_GRID_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "csv/cell_arena.h"

namespace aggrecol::csv {

/// A rectangular, in-memory model of a verbose CSV file: an M x N matrix of
/// string cells. Short rows are padded with empty cells so every row has the
/// same width, which is the cell-addressing model the paper assumes
/// (Definition 2 indexes cells as c_{i,j} with i < M, j < N).
///
/// Cells are `std::string_view`s into a shared CellArena (see
/// docs/INGEST.md): in the zero-copy parse path most cells are slices of
/// the arena-held input buffer, and only cells whose decoded content
/// differs from the raw bytes (doubled quotes, escapes) own arena storage.
/// Grids derived from one another (Transposed, WithColumns, SubRows, plain
/// copies) share the arena, so derived grids stay valid after the original
/// is destroyed. Equality compares shape and cell *content*, never arena
/// identity.
class Grid {
 public:
  Grid() = default;

  /// Builds a grid from parsed rows, padding short rows with empty cells.
  /// Every cell is interned into a fresh arena owned by this grid.
  explicit Grid(std::vector<std::vector<std::string>> rows);

  /// Builds an empty grid of the given shape.
  Grid(int rows, int columns);

  /// Zero-copy construction from the structural parser: `cells` holds the
  /// rows back to back, `row_widths[i]` is row i's field count, and `arena`
  /// owns (or keeps alive) every byte the views point at. Short rows are
  /// padded to the widest; when all rows already share one width the flat
  /// vector is adopted as-is.
  static Grid FromParsed(std::vector<std::string_view> cells,
                         const std::vector<uint32_t>& row_widths,
                         std::shared_ptr<CellArena> arena);

  int rows() const { return rows_; }
  int columns() const { return columns_; }

  /// Cell accessors; indices must satisfy 0 <= row < rows(), 0 <= col < columns().
  std::string_view at(int row, int col) const {
    return cells_[static_cast<size_t>(row) * columns_ + col];
  }
  /// Interns `value` into this grid's arena and points the cell at it.
  void set(int row, int col, std::string_view value);

  /// Whole-row view (size == columns()).
  std::span<const std::string_view> row(int r) const {
    return {cells_.data() + static_cast<size_t>(r) * columns_,
            static_cast<size_t>(columns_)};
  }

  /// Returns the transposed grid; row-wise algorithms applied to the
  /// transpose operate column-wise on the original (Sec. 3). Shares the
  /// arena with this grid — only the view table is re-permuted.
  Grid Transposed() const;

  /// Returns a grid containing only the columns listed in `keep`, in order.
  /// Used by the supplemental stage to construct derived files (Alg. 2).
  Grid WithColumns(const std::vector<int>& keep) const;

  /// Returns the `row_count` rows starting at `first_row` as their own grid.
  /// Used by the table splitter to process stacked tables independently.
  Grid SubRows(int first_row, int row_count) const;

  /// True if the cell is empty after whitespace stripping.
  bool IsEmpty(int row, int col) const;

  /// Number of non-empty cells in the whole grid.
  int CountNonEmpty() const;

  /// Content equality: same shape and same cell text. Arena identity is
  /// irrelevant — a zero-copy grid equals its reference-parsed twin.
  friend bool operator==(const Grid& a, const Grid& b) {
    return a.rows_ == b.rows_ && a.columns_ == b.columns_ &&
           a.cells_ == b.cells_;
  }

  /// The arena backing this grid's cell views; null only for
  /// default-constructed or shape-only grids that were never set().
  const std::shared_ptr<CellArena>& arena() const { return arena_; }

 private:
  CellArena& MutableArena();

  // Cell views borrow from the shared arena below; derived views
  // (Transposed, WithColumns, SubRows) copy the shared_ptr so the bytes
  // outlive every view.
  // aggrecol-lint: owns(arena_)
  std::vector<std::string_view> cells_;  // rows_ * columns_, row-major
  int rows_ = 0;
  int columns_ = 0;
  std::shared_ptr<CellArena> arena_;
};

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_GRID_H_
