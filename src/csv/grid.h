#ifndef AGGRECOL_CSV_GRID_H_
#define AGGRECOL_CSV_GRID_H_

#include <string>
#include <vector>

namespace aggrecol::csv {

/// A rectangular, in-memory model of a verbose CSV file: an M x N matrix of
/// string cells. Short rows are padded with empty cells so every row has the
/// same width, which is the cell-addressing model the paper assumes
/// (Definition 2 indexes cells as c_{i,j} with i < M, j < N).
class Grid {
 public:
  Grid() = default;

  /// Builds a grid from parsed rows, padding short rows with empty cells.
  explicit Grid(std::vector<std::vector<std::string>> rows);

  /// Builds an empty grid of the given shape.
  Grid(int rows, int columns);

  int rows() const { return static_cast<int>(cells_.size()); }
  int columns() const { return columns_; }

  /// Cell accessors; indices must satisfy 0 <= row < rows(), 0 <= col < columns().
  const std::string& at(int row, int col) const { return cells_[row][col]; }
  void set(int row, int col, std::string value) { cells_[row][col] = std::move(value); }

  /// Whole-row view (size == columns()).
  const std::vector<std::string>& row(int r) const { return cells_[r]; }

  /// Returns the transposed grid; row-wise algorithms applied to the
  /// transpose operate column-wise on the original (Sec. 3).
  Grid Transposed() const;

  /// Returns a grid containing only the columns listed in `keep`, in order.
  /// Used by the supplemental stage to construct derived files (Alg. 2).
  Grid WithColumns(const std::vector<int>& keep) const;

  /// Returns the `row_count` rows starting at `first_row` as their own grid.
  /// Used by the table splitter to process stacked tables independently.
  Grid SubRows(int first_row, int row_count) const;

  /// True if the cell is empty after whitespace stripping.
  bool IsEmpty(int row, int col) const;

  /// Number of non-empty cells in the whole grid.
  int CountNonEmpty() const;

  friend bool operator==(const Grid&, const Grid&) = default;

 private:
  std::vector<std::vector<std::string>> cells_;
  int columns_ = 0;
};

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_GRID_H_
