#ifndef AGGRECOL_CSV_PARSER_H_
#define AGGRECOL_CSV_PARSER_H_

#include <string_view>
#include <vector>

#include "csv/dialect.h"
#include "csv/grid.h"

namespace aggrecol::csv {

/// Parses CSV `text` under `dialect` into rows of fields.
///
/// The parser is a single-pass state machine implementing the RFC 4180
/// grammar generalized to arbitrary delimiter/quote characters: quoted fields
/// may contain delimiters and line breaks, a doubled quote inside a quoted
/// field encodes a literal quote, and both LF and CRLF line endings are
/// accepted. A trailing newline does not produce an extra empty row.
std::vector<std::vector<std::string>> ParseRows(std::string_view text,
                                                const Dialect& dialect);

/// Convenience wrapper: parses and rectangularizes into a Grid.
Grid ParseGrid(std::string_view text, const Dialect& dialect);

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_PARSER_H_
