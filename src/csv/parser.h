#ifndef AGGRECOL_CSV_PARSER_H_
#define AGGRECOL_CSV_PARSER_H_

#include <string_view>
#include <vector>

#include "csv/dialect.h"
#include "csv/grid.h"
#include "csv/mapped_file.h"

namespace aggrecol::csv {

/// Returns `text` without a leading UTF-8 byte-order mark, if present.
/// Exposed so the sniffer and other text-level consumers can share the
/// parser's definition of "content starts here".
std::string_view StripBom(std::string_view text);

/// Parses CSV `text` under `dialect` into rows of fields.
///
/// The parser is a single-pass state machine implementing the RFC 4180
/// grammar generalized to arbitrary delimiter/quote/escape characters:
/// quoted fields may contain delimiters and line breaks, a doubled quote
/// inside a quoted field encodes a literal quote, and when the dialect has
/// an escape character it yields the following character literally. LF,
/// CRLF, and lone-CR line endings are all accepted, a leading UTF-8 BOM is
/// stripped, and an unterminated final quoted field keeps its content. A
/// trailing newline does not produce an extra empty row.
///
/// This is the retained differential REFERENCE implementation (same
/// discipline as SniffDialectReference): the zero-copy ParseGrid below must
/// stay bit-identical to it for every input and dialect, and the
/// differential tests in tests/csv_ingest_test.cc pin that. Do not optimize
/// this function; optimize the structural path and keep this as the oracle.
std::vector<std::vector<std::string>> ParseRows(std::string_view text,
                                                const Dialect& dialect);

/// Optional knowledge the caller already has about the file, used to
/// pre-size parser buffers. The sniffer measures the modal row width while
/// electing a dialect; threading it through here turns the cell-table
/// growth into a single up-front reserve on wide files.
struct ParseHints {
  int expected_columns = 0;  // sniffer's modal row width; 0 = unknown
};

/// Zero-copy parse: scans `text` for structural bytes with the best
/// available ScanTier (see csv/scanner.h), then replays the reference state
/// machine position-to-position, bulk-slicing the literal spans in between.
/// `text` is copied ONCE into the grid's arena so the returned cells own
/// their storage; use the MappedFile overload to avoid even that copy.
/// Output is bit-identical to `Grid(ParseRows(text, dialect))`.
Grid ParseGrid(std::string_view text, const Dialect& dialect,
               const ParseHints& hints = {});

/// True zero-copy parse: the mapping is moved into the grid's arena and
/// cells are slices of the mapped bytes — no bulk copy, no per-cell
/// allocation for clean fields.
Grid ParseGrid(MappedFile file, const Dialect& dialect,
               const ParseHints& hints = {});

/// Reference grid construction via ParseRows, for differential tests and
/// the parse-throughput bench. Uninstrumented.
Grid ParseGridReference(std::string_view text, const Dialect& dialect);

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_PARSER_H_
