#ifndef AGGRECOL_CSV_PARSER_H_
#define AGGRECOL_CSV_PARSER_H_

#include <string_view>
#include <vector>

#include "csv/dialect.h"
#include "csv/grid.h"

namespace aggrecol::csv {

/// Returns `text` without a leading UTF-8 byte-order mark, if present.
/// Exposed so the sniffer and other text-level consumers can share the
/// parser's definition of "content starts here".
std::string_view StripBom(std::string_view text);

/// Parses CSV `text` under `dialect` into rows of fields.
///
/// The parser is a single-pass state machine implementing the RFC 4180
/// grammar generalized to arbitrary delimiter/quote/escape characters:
/// quoted fields may contain delimiters and line breaks, a doubled quote
/// inside a quoted field encodes a literal quote, and when the dialect has
/// an escape character it yields the following character literally. LF,
/// CRLF, and lone-CR line endings are all accepted, a leading UTF-8 BOM is
/// stripped, and an unterminated final quoted field keeps its content. A
/// trailing newline does not produce an extra empty row.
std::vector<std::vector<std::string>> ParseRows(std::string_view text,
                                                const Dialect& dialect);

/// Convenience wrapper: parses and rectangularizes into a Grid.
Grid ParseGrid(std::string_view text, const Dialect& dialect);

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_PARSER_H_
