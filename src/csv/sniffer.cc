#include "csv/sniffer.h"

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "csv/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aggrecol::csv {
namespace {

constexpr std::array<char, 4> kCandidateDelimiters = {',', ';', '\t', '|'};
constexpr std::array<char, 2> kCandidateQuotes = {'"', '\''};
constexpr std::array<char, 2> kCandidateEscapes = {'\0', '\\'};

/// The consistency sniffer scores a bounded prefix: dialect evidence
/// saturates quickly, and `DetectText` must not pay O(file size) once per
/// candidate on multi-megabyte uploads.
constexpr size_t kSniffPrefixBytes = 64 * 1024;

/// Free-text cells (labels, headers, footnotes) are expected in verbose CSV
/// files, so they must not zero a candidate's type score — but a dialect
/// that shreds numbers into text fragments has to lose to one that keeps
/// them lexable. A small epsilon per text cell encodes exactly that.
constexpr double kTextCellScore = 0.1;

// ---------------------------------------------------------------------------
// Legacy reference scoring (row-width agreement x mean field count).
// ---------------------------------------------------------------------------

// Scores a parse: high when rows agree on a common width > 1.
double ReferenceScoreParse(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return 0.0;
  std::map<size_t, int> width_counts;
  double total_fields = 0.0;
  for (const auto& row : rows) {
    ++width_counts[row.size()];
    total_fields += static_cast<double>(row.size());
  }
  // Most frequent width and its share of rows.
  size_t mode_width = 1;
  int mode_count = 0;
  for (const auto& [width, count] : width_counts) {
    if (count > mode_count || (count == mode_count && width > mode_width)) {
      mode_width = width;
      mode_count = count;
    }
  }
  const double consistency = static_cast<double>(mode_count) / rows.size();
  const double mean_fields = total_fields / rows.size();
  if (mode_width <= 1) {
    // A dialect that never splits anything carries no structural evidence.
    return 0.0;
  }
  // Consistency dominates; mean width breaks ties between dialects that both
  // split the file consistently (e.g. ',' vs '\t' in a file using only one).
  return consistency * 1000.0 + mean_fields;
}

// ---------------------------------------------------------------------------
// Consistency scoring (row-pattern regularity x type plausibility).
// ---------------------------------------------------------------------------

/// Row-pattern regularity: sum over distinct widths w of
/// (rows with width w / rows)^2 * (w - 1) / w. A single agreed width w > 1
/// scores (w-1)/w (close to 1); a 50/50 width split scores ~0.5 * (w-1)/w;
/// a dialect that never splits anything scores 0.
double PatternScore(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return 0.0;
  std::map<size_t, int> width_counts;
  for (const auto& row : rows) ++width_counts[row.size()];
  const double total = static_cast<double>(rows.size());
  double score = 0.0;
  for (const auto& [width, count] : width_counts) {
    if (width <= 1) continue;
    const double share = static_cast<double>(count) / total;
    const double w = static_cast<double>(width);
    score += share * share * (w - 1.0) / w;
  }
  return score;
}

/// Most frequent row width (ties prefer the wider width, matching the
/// reference scorer's mode election); 0 for an empty parse. Threaded into
/// SniffResult::modal_row_width as the parser's reserve hint.
int ModalRowWidth(const std::vector<std::vector<std::string>>& rows) {
  std::map<size_t, int> width_counts;
  for (const auto& row : rows) ++width_counts[row.size()];
  size_t mode_width = 0;
  int mode_count = 0;
  for (const auto& [width, count] : width_counts) {
    if (count > mode_count || (count == mode_count && width > mode_width)) {
      mode_width = width;
      mode_count = count;
    }
  }
  return static_cast<int>(mode_width);
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

/// The five valid (group separator, decimal separator) pairs of Table 4,
/// mirrored lexically from numfmt::MatchesFormat. The csv module cannot link
/// against numfmt (numfmt's grids are built from csv::Grid, so the
/// dependency points the other way); the sniffer only needs to *recognize*
/// numbers, never to parse their values, so a match-only mirror is enough —
/// tests/csv_sniffer_test.cc pins the two against each other.
struct SeparatorPair {
  char group;    // '\0' = no digit grouping
  char decimal;
};
constexpr std::array<SeparatorPair, 5> kNumberFormats = {{
    {' ', ','},   // 12 345,67
    {' ', '.'},   // 12 345.67
    {',', '.'},   // 12,345.67
    {'\0', ','},  // 12345,67
    {'\0', '.'},  // 12345.67
}};

/// True when `text` is a complete number under the separator pair: optional
/// sign or accounting parentheses, an integer part of plain digits or 1-3
/// digits followed by exactly-3-digit groups, an optional decimal part split
/// on the *last* decimal separator, and an optional trailing '%' — the same
/// shape grammar as numfmt::MatchesFormat, minus its currency prefixes.
bool MatchesSeparators(std::string_view text, const SeparatorPair& format) {
  if (text.size() >= 2 && text.front() == '(' && text.back() == ')') {
    text = text.substr(1, text.size() - 2);
  } else if (!text.empty() && (text.front() == '-' || text.front() == '+')) {
    text.remove_prefix(1);
  }
  if (!text.empty() && text.back() == '%') text.remove_suffix(1);
  if (text.empty()) return false;

  std::string_view integer_part = text;
  const size_t decimal_pos = text.rfind(format.decimal);
  if (decimal_pos != std::string_view::npos) {
    const std::string_view fraction = text.substr(decimal_pos + 1);
    integer_part = text.substr(0, decimal_pos);
    if (fraction.empty() || integer_part.empty()) return false;
    for (char c : fraction) {
      if (!IsAsciiDigit(c)) return false;
    }
  }

  // Plain digit run?
  bool plain = true;
  for (char c : integer_part) {
    if (!IsAsciiDigit(c)) {
      plain = false;
      break;
    }
  }
  if (plain) return !integer_part.empty();

  // Grouped form: 1-3 digits, then (separator + exactly 3 digits)+.
  if (format.group == '\0') return false;
  size_t pos = 0;
  size_t leading = 0;
  while (pos < integer_part.size() && IsAsciiDigit(integer_part[pos])) {
    ++pos;
    ++leading;
  }
  if (leading == 0 || leading > 3) return false;
  while (pos < integer_part.size()) {
    if (integer_part[pos] != format.group) return false;
    ++pos;
    for (int i = 0; i < 3; ++i, ++pos) {
      if (pos >= integer_part.size() || !IsAsciiDigit(integer_part[pos])) {
        return false;
      }
    }
  }
  return true;
}

/// Elects the per-candidate number format by counting, for each separator
/// pair, the cells that fully match it — the sniffer-local analogue of
/// numfmt::ElectFormat. Ties keep the earlier (Table 4 order) pair.
SeparatorPair ElectSeparators(const std::vector<std::vector<std::string>>& rows) {
  std::array<int, kNumberFormats.size()> counts{};
  for (const auto& row : rows) {
    for (const auto& cell : row) {
      const std::string_view trimmed = Trim(cell);
      if (trimmed.empty()) continue;
      for (size_t f = 0; f < kNumberFormats.size(); ++f) {
        if (MatchesSeparators(trimmed, kNumberFormats[f])) ++counts[f];
      }
    }
  }
  size_t best = 0;
  for (size_t f = 1; f < kNumberFormats.size(); ++f) {
    if (counts[f] > counts[best]) best = f;
  }
  return kNumberFormats[best];
}

/// Matches the common date/time shapes of open-portal tables: `1999-12-31`,
/// `31.12.1999`, `12/31/99`, and `23:59(:59)`. Years alone lex as numbers
/// already, so they need no case here.
bool LooksLikeDateOrTime(std::string_view text) {
  // Split on the single separator kind the text uses.
  const auto count_groups = [&](char sep, int* groups, int* digits_min,
                                int* digits_max) {
    *groups = 1;
    *digits_min = 1 << 20;
    *digits_max = 0;
    int run = 0;
    for (char c : text) {
      if (IsAsciiDigit(c)) {
        ++run;
      } else if (c == sep && run > 0) {
        ++*groups;
        if (run < *digits_min) *digits_min = run;
        if (run > *digits_max) *digits_max = run;
        run = 0;
      } else {
        return false;  // a character outside digits + this separator
      }
    }
    if (run == 0) return false;  // trailing separator
    if (run < *digits_min) *digits_min = run;
    if (run > *digits_max) *digits_max = run;
    return true;
  };
  for (char sep : {'-', '.', '/', ':'}) {
    int groups = 0, digits_min = 0, digits_max = 0;
    if (!count_groups(sep, &groups, &digits_min, &digits_max)) continue;
    if (sep == ':') {
      if ((groups == 2 || groups == 3) && digits_max <= 2) return true;
    } else if (groups == 3 && digits_min >= 1 && digits_max <= 4) {
      return true;
    }
  }
  return false;
}

/// Type plausibility: mean over cells of 1.0 for empty / number (under the
/// per-candidate elected separator pair) / date / time cells and
/// kTextCellScore for anything else.
double TypeScore(const std::vector<std::vector<std::string>>& rows) {
  size_t cells = 0;
  for (const auto& row : rows) cells += row.size();
  if (cells == 0) return 0.0;
  const SeparatorPair format = ElectSeparators(rows);
  double total = 0.0;
  for (const auto& row : rows) {
    for (const auto& cell : row) {
      const std::string_view trimmed = Trim(cell);
      if (trimmed.empty() || LooksLikeDateOrTime(trimmed) ||
          MatchesSeparators(trimmed, format)) {
        total += 1.0;
      } else {
        total += kTextCellScore;
      }
    }
  }
  return total / static_cast<double>(cells);
}

/// The prefix the consistency sniffer scores: at most kSniffPrefixBytes,
/// never cut mid-row (a truncated final row would count as a width outlier
/// under every candidate).
std::string_view SniffPrefix(std::string_view text) {
  if (text.size() <= kSniffPrefixBytes) return text;
  const size_t last_newline = text.rfind('\n', kSniffPrefixBytes);
  if (last_newline == std::string_view::npos) {
    return text.substr(0, kSniffPrefixBytes);
  }
  return text.substr(0, last_newline + 1);
}

}  // namespace

SniffResult SniffDialect(std::string_view text) {
  obs::ScopedSpan span("csv.sniff");
  const bool obs_on = obs::Registry::enabled();
  if (obs_on) obs::Count("csv.sniff.files");
  const std::string_view prefix = SniffPrefix(StripBom(text));
  const bool has_backslash = prefix.find('\\') != std::string_view::npos;

  SniffResult best;
  best.dialect = Dialect{',', '"'};
  best.score = -1.0;
  // Candidate order encodes the tie-break preference: the RFC 4180 default
  // first, then delimiters in conventional order, double quote before single
  // quote, doubling-only before an escape character. Later candidates must
  // win strictly.
  for (char delimiter : kCandidateDelimiters) {
    for (char quote : kCandidateQuotes) {
      for (char escape : kCandidateEscapes) {
        // Without a backslash in the prefix the escape variant parses
        // identically to the doubling-only variant; skip the duplicate.
        if (escape != '\0' && !has_backslash) continue;
        const Dialect candidate{delimiter, quote, escape};
        const auto rows = ParseRows(prefix, candidate);
        const double pattern = PatternScore(rows);
        // A dialect that never splits anything carries no structural
        // evidence; its (possibly high) type score must not outrank one
        // that does split.
        const double type = pattern > 0.0 ? TypeScore(rows) : 0.0;
        const double score = pattern * type;
        if (obs_on) obs::Count("csv.sniff.candidates");
        if (score > best.score) {
          best.dialect = candidate;
          best.score = score;
          best.pattern_score = pattern;
          best.type_score = type;
          best.modal_row_width = ModalRowWidth(rows);
        }
      }
    }
  }
  if (best.score <= 0.0) {
    // No delimiter produced structure; fall back to the RFC 4180 default.
    best = SniffResult{};
    best.dialect = Dialect{',', '"'};
  }
  return best;
}

SniffResult SniffDialectReference(std::string_view text) {
  SniffResult best;
  best.dialect = Dialect{',', '"'};
  best.score = -1.0;
  for (char delimiter : kCandidateDelimiters) {
    for (char quote : kCandidateQuotes) {
      const Dialect candidate{delimiter, quote};
      const auto rows = ParseRows(text, candidate);
      const double score = ReferenceScoreParse(rows);
      if (score > best.score) {
        best.dialect = candidate;
        best.score = score;
      }
    }
  }
  if (best.score <= 0.0) {
    best = SniffResult{};
    best.dialect = Dialect{',', '"'};
  }
  return best;
}

}  // namespace aggrecol::csv
