#include "csv/sniffer.h"

#include <array>
#include <map>

#include "csv/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aggrecol::csv {
namespace {

constexpr std::array<char, 4> kCandidateDelimiters = {',', ';', '\t', '|'};
constexpr std::array<char, 2> kCandidateQuotes = {'"', '\''};

// Scores a parse: high when rows agree on a common width > 1.
double ScoreParse(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return 0.0;
  std::map<size_t, int> width_counts;
  double total_fields = 0.0;
  for (const auto& row : rows) {
    ++width_counts[row.size()];
    total_fields += static_cast<double>(row.size());
  }
  // Most frequent width and its share of rows.
  size_t mode_width = 1;
  int mode_count = 0;
  for (const auto& [width, count] : width_counts) {
    if (count > mode_count || (count == mode_count && width > mode_width)) {
      mode_width = width;
      mode_count = count;
    }
  }
  const double consistency = static_cast<double>(mode_count) / rows.size();
  const double mean_fields = total_fields / rows.size();
  if (mode_width <= 1) {
    // A dialect that never splits anything carries no structural evidence.
    return 0.0;
  }
  // Consistency dominates; mean width breaks ties between dialects that both
  // split the file consistently (e.g. ',' vs '\t' in a file using only one).
  return consistency * 1000.0 + mean_fields;
}

}  // namespace

SniffResult SniffDialect(std::string_view text) {
  obs::ScopedSpan span("csv.sniff");
  const bool obs_on = obs::Registry::enabled();
  if (obs_on) obs::Count("csv.sniff.files");
  SniffResult best;
  best.dialect = Dialect{',', '"'};
  best.score = -1.0;
  for (char delimiter : kCandidateDelimiters) {
    for (char quote : kCandidateQuotes) {
      Dialect candidate{delimiter, quote};
      const auto rows = ParseRows(text, candidate);
      const double score = ScoreParse(rows);
      if (obs_on) obs::Count("csv.sniff.candidates");
      if (score > best.score) {
        best.dialect = candidate;
        best.score = score;
      }
    }
  }
  if (best.score <= 0.0) {
    // No delimiter produced structure; fall back to the RFC 4180 default.
    best.dialect = Dialect{',', '"'};
    best.score = 0.0;
  }
  return best;
}

}  // namespace aggrecol::csv
