#include "csv/dialect.h"

namespace aggrecol::csv {

std::string ToString(const Dialect& dialect) {
  std::string out = "delimiter='";
  out += dialect.delimiter;
  out += "' quote='";
  out += dialect.quote;
  out += "'";
  return out;
}

}  // namespace aggrecol::csv
