#include "csv/dialect.h"

namespace aggrecol::csv {

std::string ToString(const Dialect& dialect) {
  std::string out = "delimiter='";
  out += dialect.delimiter;
  out += "' quote='";
  out += dialect.quote;
  out += "'";
  if (dialect.escape != '\0') {
    out += " escape='";
    out += dialect.escape;
    out += "'";
  }
  return out;
}

}  // namespace aggrecol::csv
