#include "csv/writer.h"

namespace aggrecol::csv {

std::string EscapeField(const std::string& field, const Dialect& dialect) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == dialect.delimiter || c == dialect.quote || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back(dialect.quote);
  for (char c : field) {
    if (c == dialect.quote) out.push_back(dialect.quote);
    out.push_back(c);
  }
  out.push_back(dialect.quote);
  return out;
}

std::string WriteGrid(const Grid& grid, const Dialect& dialect) {
  std::string out;
  for (int i = 0; i < grid.rows(); ++i) {
    for (int j = 0; j < grid.columns(); ++j) {
      if (j > 0) out.push_back(dialect.delimiter);
      out.append(EscapeField(grid.at(i, j), dialect));
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace aggrecol::csv
