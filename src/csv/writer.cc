#include "csv/writer.h"

#include <string_view>

namespace aggrecol::csv {
namespace {

constexpr std::string_view kUtf8Bom = "\xEF\xBB\xBF";

std::string EscapeFieldImpl(std::string_view field, const Dialect& dialect,
                            bool force_quote) {
  // Mirrors the parser's guard: a colliding escape character is inert.
  const char escape = (dialect.escape != '\0' && dialect.escape != dialect.quote &&
                       dialect.escape != dialect.delimiter)
                          ? dialect.escape
                          : '\0';
  bool needs_quote = force_quote;
  for (char c : field) {
    if (needs_quote) break;
    if (c == dialect.delimiter || c == dialect.quote || c == '\n' || c == '\r' ||
        (escape != '\0' && c == escape)) {
      needs_quote = true;
    }
  }
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back(dialect.quote);
  for (char c : field) {
    // A literal escape character must escape itself; quotes keep the RFC
    // doubling convention, which the parser honors in every dialect.
    if (escape != '\0' && c == escape) out.push_back(escape);
    if (c == dialect.quote) out.push_back(dialect.quote);
    out.push_back(c);
  }
  out.push_back(dialect.quote);
  return out;
}

}  // namespace

std::string EscapeField(std::string_view field, const Dialect& dialect) {
  return EscapeFieldImpl(field, dialect, /*force_quote=*/false);
}

std::string WriteGrid(const Grid& grid, const Dialect& dialect) {
  std::string out;
  for (int i = 0; i < grid.rows(); ++i) {
    for (int j = 0; j < grid.columns(); ++j) {
      if (j > 0) out.push_back(dialect.delimiter);
      // A first cell beginning with the UTF-8 BOM must be quoted: emitted
      // bare, the re-parse would strip those bytes as file metadata and the
      // write/parse round trip would lose them.
      const bool force_quote =
          i == 0 && j == 0 &&
          grid.at(i, j).substr(0, kUtf8Bom.size()) == kUtf8Bom;
      out.append(EscapeFieldImpl(grid.at(i, j), dialect, force_quote));
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace aggrecol::csv
