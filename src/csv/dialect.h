#ifndef AGGRECOL_CSV_DIALECT_H_
#define AGGRECOL_CSV_DIALECT_H_

#include <string>

namespace aggrecol::csv {

/// A CSV file dialect: the utility characters used to interpret the file's
/// structure (Sec. 2.1 of the paper; cf. RFC 4180). Quote characters are
/// escaped by doubling, as in RFC 4180; dialects may additionally use an
/// escape character (van den Burg et al.'s dialect model is the triple
/// delimiter x quote x escape).
struct Dialect {
  char delimiter = ',';
  char quote = '"';

  /// Escape character active inside quoted fields: `escape` followed by any
  /// character yields that character literally. '\0' (the default) means the
  /// dialect escapes quotes only by doubling, exactly as before.
  char escape = '\0';

  friend bool operator==(const Dialect&, const Dialect&) = default;
};

/// Human-readable description, e.g. `delimiter=';' quote='"'`.
std::string ToString(const Dialect& dialect);

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_DIALECT_H_
