#ifndef AGGRECOL_CSV_DIALECT_H_
#define AGGRECOL_CSV_DIALECT_H_

#include <string>

namespace aggrecol::csv {

/// A CSV file dialect: the utility characters used to interpret the file's
/// structure (Sec. 2.1 of the paper; cf. RFC 4180). Quote characters are
/// escaped by doubling, as in RFC 4180.
struct Dialect {
  char delimiter = ',';
  char quote = '"';

  friend bool operator==(const Dialect&, const Dialect&) = default;
};

/// Human-readable description, e.g. `delimiter=';' quote='"'`.
std::string ToString(const Dialect& dialect);

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_DIALECT_H_
