#include "csv/scanner.h"

#include <bit>
#include <cstring>

#if defined(AGGRECOL_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
#define AGGRECOL_SCAN_X86 1
#include <immintrin.h>
#else
#define AGGRECOL_SCAN_X86 0
#endif

namespace aggrecol::csv {
namespace {

constexpr size_t kScalarCutoffBytes = 64;
constexpr int kMaxVectorTargets = 4;

bool SwarSupported() { return std::endian::native == std::endian::little; }

// Exact per-byte zero detector: bit 7 of byte k is set iff byte k of `x` is
// zero. Unlike the classic (x - kOnes) & ~x & kHighs trick this has no
// false positives from borrow propagation, so each set bit maps to exactly
// one structural byte.
uint64_t ZeroBytes(uint64_t x) {
  constexpr uint64_t kLow7 = 0x7F7F7F7F7F7F7F7FULL;
  return ~(((x & kLow7) + kLow7) | x | kLow7);
}

void ScanScalar(std::string_view text, const StructuralSet& set,
                std::vector<uint32_t>& out, size_t base) {
  std::array<bool, 256> table{};
  for (int i = 0; i < set.count; ++i) {
    table[static_cast<unsigned char>(set.bytes[i])] = true;
  }
  for (size_t pos = 0; pos < text.size(); ++pos) {
    if (table[static_cast<unsigned char>(text[pos])]) {
      out.push_back(static_cast<uint32_t>(base + pos));
    }
  }
}

void ScanSwar(std::string_view text, const StructuralSet& set,
              std::vector<uint32_t>& out) {
  const char* data = text.data();
  const size_t size = text.size();
  std::array<uint64_t, 5> patterns{};
  for (int i = 0; i < set.count; ++i) {
    patterns[i] =
        0x0101010101010101ULL * static_cast<unsigned char>(set.bytes[i]);
  }
  size_t pos = 0;
  for (; pos + 8 <= size; pos += 8) {
    uint64_t word = 0;
    std::memcpy(&word, data + pos, sizeof(word));
    uint64_t mask = 0;
    for (int i = 0; i < set.count; ++i) {
      mask |= ZeroBytes(word ^ patterns[i]);
    }
    while (mask != 0) {
      // Little-endian: lowest set bit belongs to the lowest-address byte,
      // so offsets come out ascending.
      const int byte = std::countr_zero(mask) >> 3;
      out.push_back(static_cast<uint32_t>(pos + static_cast<size_t>(byte)));
      mask &= mask - 1;
    }
  }
  ScanScalar(text.substr(pos), set, out, pos);
}

#if AGGRECOL_SCAN_X86

void ScanSse2(std::string_view text, const StructuralSet& set,
              std::vector<uint32_t>& out) {
  const char* data = text.data();
  const size_t size = text.size();
  // Plain array: std::array<__m128i, N> trips -Wignored-attributes (the
  // vector type's alignment attribute is dropped on template arguments).
  __m128i patterns[5];
  for (int i = 0; i < set.count; ++i) {
    patterns[i] = _mm_set1_epi8(set.bytes[i]);
  }
  size_t pos = 0;
  for (; pos + 16 <= size; pos += 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    __m128i hits = _mm_setzero_si128();
    for (int i = 0; i < set.count; ++i) {
      hits = _mm_or_si128(hits, _mm_cmpeq_epi8(chunk, patterns[i]));
    }
    unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(hits));
    while (mask != 0) {
      const int byte = std::countr_zero(mask);
      out.push_back(static_cast<uint32_t>(pos + static_cast<size_t>(byte)));
      mask &= mask - 1;
    }
  }
  ScanScalar(text.substr(pos), set, out, pos);
}

__attribute__((target("avx2"))) void ScanAvx2(std::string_view text,
                                              const StructuralSet& set,
                                              std::vector<uint32_t>& out) {
  const char* data = text.data();
  const size_t size = text.size();
  __m256i patterns[5];
  for (int i = 0; i < set.count; ++i) {
    patterns[i] = _mm256_set1_epi8(set.bytes[i]);
  }
  size_t pos = 0;
  for (; pos + 32 <= size; pos += 32) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + pos));
    __m256i hits = _mm256_setzero_si256();
    for (int i = 0; i < set.count; ++i) {
      hits = _mm256_or_si256(hits, _mm256_cmpeq_epi8(chunk, patterns[i]));
    }
    unsigned mask = static_cast<unsigned>(_mm256_movemask_epi8(hits));
    while (mask != 0) {
      const int byte = std::countr_zero(mask);
      out.push_back(static_cast<uint32_t>(pos + static_cast<size_t>(byte)));
      mask &= mask - 1;
    }
  }
  ScanScalar(text.substr(pos), set, out, pos);
}

bool Avx2Supported() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#endif  // AGGRECOL_SCAN_X86

}  // namespace

std::string_view ToString(ScanTier tier) {
  switch (tier) {
    case ScanTier::kScalar:
      return "scalar";
    case ScanTier::kSwar:
      return "swar";
    case ScanTier::kSse2:
      return "sse2";
    case ScanTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::vector<ScanTier> CompiledScanTiers() {
  std::vector<ScanTier> tiers = {ScanTier::kScalar, ScanTier::kSwar};
#if AGGRECOL_SCAN_X86
  tiers.push_back(ScanTier::kSse2);
  tiers.push_back(ScanTier::kAvx2);
#endif
  return tiers;
}

std::vector<ScanTier> RuntimeScanTiers() {
  std::vector<ScanTier> tiers = {ScanTier::kScalar};
  if (SwarSupported()) tiers.push_back(ScanTier::kSwar);
#if AGGRECOL_SCAN_X86
  tiers.push_back(ScanTier::kSse2);  // baseline on every x86-64 CPU
  if (Avx2Supported()) tiers.push_back(ScanTier::kAvx2);
#endif
  return tiers;
}

ScanTier ActiveScanTier() {
  static const ScanTier best = RuntimeScanTiers().back();
  return best;
}

ScanTier EffectiveScanTier(ScanTier requested, size_t text_size,
                           int structural_count) {
  if (text_size < kScalarCutoffBytes) return ScanTier::kScalar;
  if (structural_count > kMaxVectorTargets) return ScanTier::kScalar;
  return requested;
}

void ScanStructural(std::string_view text, const StructuralSet& set,
                    ScanTier tier, std::vector<uint32_t>& out) {
  switch (tier) {
    case ScanTier::kScalar:
      ScanScalar(text, set, out, 0);
      return;
    case ScanTier::kSwar:
      if (SwarSupported()) {
        ScanSwar(text, set, out);
      } else {
        ScanScalar(text, set, out, 0);
      }
      return;
    case ScanTier::kSse2:
#if AGGRECOL_SCAN_X86
      ScanSse2(text, set, out);
#else
      ScanScalar(text, set, out, 0);
#endif
      return;
    case ScanTier::kAvx2:
#if AGGRECOL_SCAN_X86
      if (Avx2Supported()) {
        ScanAvx2(text, set, out);
      } else {
        ScanSse2(text, set, out);
      }
#else
      ScanScalar(text, set, out, 0);
#endif
      return;
  }
}

}  // namespace aggrecol::csv
