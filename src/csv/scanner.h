#ifndef AGGRECOL_CSV_SCANNER_H_
#define AGGRECOL_CSV_SCANNER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace aggrecol::csv {

/// Kernel tiers for the structural scanner, ordered weakest to strongest.
/// The dispatch policy (which tier actually runs for a given input) is
/// documented in docs/INGEST.md and drift-checked by tests/docs_test.cc.
enum class ScanTier {
  kScalar,  // byte-at-a-time lookup table; always available
  kSwar,    // 8-byte words, branch-free zero-byte trick; little-endian only
  kSse2,    // 16-byte vectors; x86-64 baseline, needs AGGRECOL_SIMD=ON
  kAvx2,    // 32-byte vectors; runtime __builtin_cpu_supports dispatch
};

/// Every tier the enum defines, for docs drift checks and tier iteration.
inline constexpr std::array<ScanTier, 4> kAllScanTiers = {
    ScanTier::kScalar, ScanTier::kSwar, ScanTier::kSse2, ScanTier::kAvx2};

/// Stable lowercase name ("scalar", "swar", "sse2", "avx2") used in docs,
/// bench JSON, and test output.
std::string_view ToString(ScanTier tier);

/// Tiers whose kernels are compiled into this binary. kScalar and kSwar are
/// unconditional; kSse2/kAvx2 require an x86-64 build with AGGRECOL_SIMD=ON.
std::vector<ScanTier> CompiledScanTiers();

/// Subset of CompiledScanTiers() that can run on this machine: kSwar needs a
/// little-endian CPU, kAvx2 needs AVX2 (checked once at runtime).
std::vector<ScanTier> RuntimeScanTiers();

/// The strongest runtime tier; what the parser requests by default.
ScanTier ActiveScanTier();

/// The set of bytes the scanner hunts for: delimiter, quote, CR, LF, and
/// (when active) the escape character. Deduplicated; at most 5 entries.
struct StructuralSet {
  std::array<char, 5> bytes{};
  int count = 0;

  void Add(char c) {
    if (!Contains(c) && count < static_cast<int>(bytes.size())) {
      bytes[count++] = c;
    }
  }
  bool Contains(char c) const {
    for (int i = 0; i < count; ++i) {
      if (bytes[i] == c) return true;
    }
    return false;
  }
};

/// Dispatch policy — the "fallback matrix" of docs/INGEST.md. Degrades
/// `requested` to kScalar for tiny inputs (vector setup costs more than it
/// saves) and for dialects whose structural set exceeds four bytes (an
/// active escape character adds a fifth scan target; the wide kernels are
/// tuned for the four RFC bytes). Otherwise returns `requested` unchanged.
ScanTier EffectiveScanTier(ScanTier requested, size_t text_size,
                           int structural_count);

/// Appends the ascending byte offsets of every structural character in
/// `text` to `out`, using the kernel for `tier`. `tier` must come from
/// RuntimeScanTiers(). `text.size()` must fit in uint32_t — the parser
/// feeds bounded blocks (kScanBlockBytes), never whole huge files.
/// All tiers produce identical output by construction; the alignment
/// battery in tests/csv_scanner_test.cc pins this.
void ScanStructural(std::string_view text, const StructuralSet& set,
                    ScanTier tier, std::vector<uint32_t>& out);

/// Block granularity the parser scans at; bounds offset width and keeps the
/// positions buffer cache-resident.
inline constexpr size_t kScanBlockBytes = size_t{4} << 20;

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_SCANNER_H_
