#ifndef AGGRECOL_CSV_MAPPED_FILE_H_
#define AGGRECOL_CSV_MAPPED_FILE_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace aggrecol::csv {

/// Read-only view of an input file, mmap'd when possible.
///
/// This is the single place in the repository allowed to call mmap
/// (aggrecol-lint rule L6). Regular non-empty files are mapped
/// MAP_PRIVATE/PROT_READ with a sequential-access hint; pipes, FIFOs,
/// devices, and empty files (zero-length mappings are invalid) fall back to
/// a plain read() loop into an owned buffer. Either way `view()` exposes
/// the full contents and stays valid for this object's lifetime.
///
/// Lifetime rule (docs/INGEST.md): any `std::string_view` derived from
/// `view()` — including every cell of a Grid parsed zero-copy from it —
/// dangles once this object is destroyed. `ParseGrid(MappedFile, ...)`
/// enforces this by moving the file into the grid's arena. Take `view()`
/// only after the object has reached its final address: moving a MappedFile
/// that used the read() fallback may relocate a small buffer.
class MappedFile {
 public:
  enum class Source {
    kMmap,  // contents are a kernel mapping
    kRead,  // contents were read() into an owned buffer
  };

  /// Opens `path`; nullopt on open/stat/read failure. Never throws.
  static std::optional<MappedFile> Open(const std::string& path);

  /// Wraps an already-read buffer (stdin capture, tests) in the same
  /// interface; always Source::kRead.
  static MappedFile FromBuffer(std::string buffer);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::string_view view() const {
    if (map_ != nullptr) {
      return std::string_view(static_cast<const char*>(map_), size_);
    }
    return buffer_;
  }
  size_t size() const { return map_ != nullptr ? size_ : buffer_.size(); }
  Source source() const { return source_; }

 private:
  MappedFile() = default;
  void Release();

  void* map_ = nullptr;  // mmap base, or nullptr when buffer_ holds the bytes
  size_t size_ = 0;      // mapping length (only meaningful with map_)
  std::string buffer_;
  Source source_ = Source::kRead;
};

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_MAPPED_FILE_H_
