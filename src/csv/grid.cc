#include "csv/grid.h"

#include <algorithm>

#include "util/string_util.h"

namespace aggrecol::csv {

Grid::Grid(std::vector<std::vector<std::string>> rows) : cells_(std::move(rows)) {
  for (const auto& row : cells_) {
    columns_ = std::max(columns_, static_cast<int>(row.size()));
  }
  for (auto& row : cells_) {
    row.resize(columns_);
  }
}

Grid::Grid(int rows, int columns)
    : cells_(rows, std::vector<std::string>(columns)), columns_(columns) {}

Grid Grid::Transposed() const {
  Grid out(columns_, rows());
  for (int i = 0; i < rows(); ++i) {
    for (int j = 0; j < columns_; ++j) {
      out.cells_[j][i] = cells_[i][j];
    }
  }
  return out;
}

Grid Grid::WithColumns(const std::vector<int>& keep) const {
  Grid out(rows(), static_cast<int>(keep.size()));
  for (int i = 0; i < rows(); ++i) {
    for (size_t k = 0; k < keep.size(); ++k) {
      out.cells_[i][k] = cells_[i][keep[k]];
    }
  }
  return out;
}

Grid Grid::SubRows(int first_row, int row_count) const {
  Grid out;
  out.columns_ = columns_;
  out.cells_.assign(cells_.begin() + first_row,
                    cells_.begin() + first_row + row_count);
  return out;
}

bool Grid::IsEmpty(int row, int col) const {
  return util::StripWhitespace(cells_[row][col]).empty();
}

int Grid::CountNonEmpty() const {
  int count = 0;
  for (int i = 0; i < rows(); ++i) {
    for (int j = 0; j < columns_; ++j) {
      if (!IsEmpty(i, j)) ++count;
    }
  }
  return count;
}

}  // namespace aggrecol::csv
