#include "csv/grid.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace aggrecol::csv {

Grid::Grid(std::vector<std::vector<std::string>> rows) {
  rows_ = static_cast<int>(rows.size());
  for (const auto& row : rows) {
    columns_ = std::max(columns_, static_cast<int>(row.size()));
  }
  cells_.resize(static_cast<size_t>(rows_) * columns_);
  if (rows_ > 0 && columns_ > 0) {
    CellArena& arena = MutableArena();
    size_t out = 0;
    for (const auto& row : rows) {
      for (const auto& cell : row) {
        cells_[out++] = cell.empty() ? std::string_view() : arena.Intern(cell);
      }
      out += columns_ - row.size();  // padding cells stay default (empty)
    }
  }
}

Grid::Grid(int rows, int columns)
    : cells_(static_cast<size_t>(rows) * columns), rows_(rows),
      columns_(columns) {}

Grid Grid::FromParsed(std::vector<std::string_view> cells,
                      const std::vector<uint32_t>& row_widths,
                      std::shared_ptr<CellArena> arena) {
  Grid out;
  out.arena_ = std::move(arena);
  out.rows_ = static_cast<int>(row_widths.size());
  if (row_widths.empty()) return out;

  uint32_t max_width = 0;
  bool uniform = true;
  for (const uint32_t width : row_widths) {
    max_width = std::max(max_width, width);
    uniform = uniform && width == row_widths.front();
  }
  out.columns_ = static_cast<int>(max_width);
  if (uniform) {
    out.cells_ = std::move(cells);
    return out;
  }
  out.cells_.resize(static_cast<size_t>(out.rows_) * out.columns_);
  size_t src = 0;
  size_t dst = 0;
  for (const uint32_t width : row_widths) {
    std::copy_n(cells.begin() + src, width, out.cells_.begin() + dst);
    src += width;
    dst += max_width;  // the short tail stays default-constructed (empty)
  }
  return out;
}

CellArena& Grid::MutableArena() {
  if (!arena_) arena_ = std::make_shared<CellArena>();
  return *arena_;
}

void Grid::set(int row, int col, std::string_view value) {
  cells_[static_cast<size_t>(row) * columns_ + col] =
      value.empty() ? std::string_view() : MutableArena().Intern(value);
}

Grid Grid::Transposed() const {
  Grid out(columns_, rows_);
  out.arena_ = arena_;
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < columns_; ++j) {
      out.cells_[static_cast<size_t>(j) * rows_ + i] = at(i, j);
    }
  }
  return out;
}

Grid Grid::WithColumns(const std::vector<int>& keep) const {
  Grid out(rows_, static_cast<int>(keep.size()));
  out.arena_ = arena_;
  for (int i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < keep.size(); ++k) {
      out.cells_[static_cast<size_t>(i) * keep.size() + k] = at(i, keep[k]);
    }
  }
  return out;
}

Grid Grid::SubRows(int first_row, int row_count) const {
  Grid out;
  out.rows_ = row_count;
  out.columns_ = columns_;
  out.arena_ = arena_;
  const auto begin =
      cells_.begin() + static_cast<size_t>(first_row) * columns_;
  out.cells_.assign(begin, begin + static_cast<size_t>(row_count) * columns_);
  return out;
}

bool Grid::IsEmpty(int row, int col) const {
  return util::StripWhitespace(at(row, col)).empty();
}

int Grid::CountNonEmpty() const {
  int count = 0;
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < columns_; ++j) {
      if (!IsEmpty(i, j)) ++count;
    }
  }
  return count;
}

}  // namespace aggrecol::csv
