#ifndef AGGRECOL_CSV_CELL_ARENA_H_
#define AGGRECOL_CSV_CELL_ARENA_H_

#include <algorithm>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace aggrecol::csv {

/// Per-file bump allocator backing a zero-copy Grid (see docs/INGEST.md).
///
/// Two kinds of bytes live here:
///   * **blocks** — a whole input buffer copied (or, via KeepAlive, shared)
///     once, so clean cells can be `std::string_view` slices into it with no
///     per-cell allocation;
///   * **interned cells** — the rare cells whose content differs from the
///     raw bytes (doubled quotes, escape sequences, malformed-quote repair),
///     appended into chunk storage.
///
/// Every view handed out stays valid for the arena's lifetime: chunks are
/// append-only, each chunk is a heap-allocated std::string that is never
/// grown past its reserved capacity, and the vectors only hold owning
/// pointers (so vector reallocation never moves the bytes themselves).
///
/// Not thread-safe: one arena belongs to one file's grid(s). Grids derived
/// from the same file (SubRows, Transposed, ...) share the arena via
/// shared_ptr; concurrent *reads* of existing views are safe, concurrent
/// interning is not (the detection pipeline only reads).
class CellArena {
 public:
  CellArena() = default;
  CellArena(const CellArena&) = delete;
  CellArena& operator=(const CellArena&) = delete;

  /// Copies `s` into stable storage and returns the owned view.
  std::string_view Intern(std::string_view s) {
    if (chunks_.empty() || chunks_.back()->size() + s.size() >
                               chunks_.back()->capacity()) {
      auto chunk = std::make_unique<std::string>();
      chunk->reserve(std::max(kMinChunkBytes, s.size()));
      chunks_.push_back(std::move(chunk));
    }
    std::string& chunk = *chunks_.back();
    const size_t offset = chunk.size();
    chunk.append(s);
    return std::string_view(chunk).substr(offset, s.size());
  }

  /// Copies a whole input buffer into the arena as one stable block and
  /// returns the owned view. Used by the text-input parse path: one bulk
  /// copy up front, then every clean cell is a free slice of it.
  std::string_view AddBlock(std::string_view text) {
    blocks_.push_back(std::make_unique<std::string>(text));
    return *blocks_.back();
  }

  /// Shares ownership of an external backing buffer (an mmap'd file) whose
  /// bytes grid cells point into. The mapping must outlive every view into
  /// it; parking it here ties the two lifetimes together.
  void KeepAlive(std::shared_ptr<const void> backing) {
    backings_.push_back(std::move(backing));
  }

  /// Number of Intern() calls served — i.e. cells that could not be
  /// zero-copy slices. Exposed for tests and the parse-throughput bench.
  size_t interned_cells() const { return interned_cells_; }
  void CountIntern() { ++interned_cells_; }

 private:
  static constexpr size_t kMinChunkBytes = 4096;

  std::vector<std::unique_ptr<std::string>> chunks_;
  std::vector<std::unique_ptr<std::string>> blocks_;
  std::vector<std::shared_ptr<const void>> backings_;
  size_t interned_cells_ = 0;
};

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_CELL_ARENA_H_
