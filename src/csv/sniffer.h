#ifndef AGGRECOL_CSV_SNIFFER_H_
#define AGGRECOL_CSV_SNIFFER_H_

#include <string_view>

#include "csv/dialect.h"

namespace aggrecol::csv {

/// Result of dialect detection: the winning dialect and its score.
struct SniffResult {
  Dialect dialect;
  double score = 0.0;
};

/// Detects the file dialect of `text`.
///
/// The paper assumes dialects "have been correctly detected" by prior work
/// (multi-hypothesis parsing, Sec. 2.1); this sniffer implements that
/// substrate. It scores each candidate (delimiter, quote) pair by parsing the
/// text and combining (a) row-width consistency — verbose CSV exports pad
/// every row to the table width — and (b) the average number of fields per
/// row, preferring dialects that actually split the content. Ties fall back
/// to the conventional comma/double-quote dialect.
SniffResult SniffDialect(std::string_view text);

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_SNIFFER_H_
