#ifndef AGGRECOL_CSV_SNIFFER_H_
#define AGGRECOL_CSV_SNIFFER_H_

#include <string_view>

#include "csv/dialect.h"

namespace aggrecol::csv {

/// Result of dialect detection: the winning dialect and its score(s).
struct SniffResult {
  Dialect dialect;

  /// Combined consistency measure of the winning candidate. For the
  /// consistency sniffer this is `pattern_score * type_score` in [0, 1];
  /// for the reference sniffer it keeps the legacy magnitude (consistency
  /// share scaled by 1000 plus mean width).
  double score = 0.0;

  /// Row-pattern regularity of the winning parse: sum over distinct row
  /// widths w of (share of rows with width w)^2 * (w - 1) / w. 1 row of
  /// evidence per candidate; 0 when no candidate splits the content.
  double pattern_score = 0.0;

  /// Type plausibility of the winning parse: mean over cells of 1.0 for
  /// cells that lex as empty, a number under the elected number format, or a
  /// date/time, and a small epsilon for free text (labels are expected, but
  /// a dialect that shreds numbers into text fragments must lose).
  double type_score = 0.0;

  /// Most frequent row width of the winning parse (ties prefer the wider
  /// width); 0 when nothing split. The sniffer already pays for this while
  /// scoring, and the parser uses it as a buffer reserve hint
  /// (ParseHints::expected_columns) — measure once, allocate once.
  int modal_row_width = 0;
};

/// Detects the file dialect of `text` with a consistency measure in the
/// spirit of van den Burg et al. ("Wrangling Messy CSV Files"): every
/// candidate dialect (delimiter x quote x escape) parses a bounded prefix,
/// and candidates are scored by row-pattern regularity (column-count
/// agreement) times type-pattern plausibility (fraction of cells that lex as
/// number/date/empty under the per-candidate elected number format). The
/// paper assumes dialects "have been correctly detected" by prior work
/// (multi-hypothesis parsing, Sec. 2.1); this sniffer implements that
/// substrate. Ties fall back to the conventional comma/double-quote dialect.
SniffResult SniffDialect(std::string_view text);

/// The pre-consistency heuristic, retained as a differential reference the
/// same way DetectAdjacentCommutativeNaive anchors the stage-1 kernels: it
/// scores each (delimiter, quote) candidate by row-width agreement and mean
/// field count only, with no type model, no escape candidates, and no prefix
/// bound. tests/robustness_corpus_test.cc and bench/robustness_corpus.cc
/// score both sniffers on the messy corpus; tests/csv_sniffer_test.cc pins
/// where the two may differ.
SniffResult SniffDialectReference(std::string_view text);

}  // namespace aggrecol::csv

#endif  // AGGRECOL_CSV_SNIFFER_H_
