#include "cli/arg_parser.h"

#include <cstdlib>

#include "numfmt/parse_double.h"
#include "util/string_util.h"

namespace aggrecol::cli {

ArgParser ArgParser::Parse(const std::vector<std::string>& args) {
  ArgParser parsed;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (token.rfind("--", 0) != 0) {
      parsed.positionals_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const size_t equals = body.find('=');
    if (equals != std::string::npos) {
      parsed.options_[body.substr(0, equals)] = body.substr(equals + 1);
      continue;
    }
    // `--key value` unless the next token is another option or missing.
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      parsed.options_[body] = args[i + 1];
      ++i;
    } else {
      parsed.options_[body] = "";
    }
  }
  return parsed;
}

bool ArgParser::Has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::optional<std::string> ArgParser::GetString(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

double ArgParser::GetDouble(const std::string& name, double fallback) const {
  const auto value = GetString(name);
  if (!value.has_value()) return fallback;
  return numfmt::ParseDouble(*value).value_or(fallback);
}

int ArgParser::GetInt(const std::string& name, int fallback) const {
  const auto value = GetString(name);
  if (!value.has_value()) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  return end == value->c_str() + value->size() ? static_cast<int>(parsed) : fallback;
}

std::vector<std::string> ArgParser::GetList(const std::string& name) const {
  const auto value = GetString(name);
  if (!value.has_value()) return {};
  std::vector<std::string> parts = util::Split(*value, ',');
  std::erase_if(parts, [](const std::string& part) { return part.empty(); });
  return parts;
}

std::vector<std::string> ArgParser::UnknownOptions(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : options_) {
    bool found = false;
    for (const auto& candidate : known) {
      if (candidate == name) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace aggrecol::cli
