#ifndef AGGRECOL_CLI_ARG_PARSER_H_
#define AGGRECOL_CLI_ARG_PARSER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace aggrecol::cli {

/// Parsed command-line arguments: positionals plus `--key=value`,
/// `--key value`, and bare `--switch` options. A bare `--key` followed by
/// another option (or the end of the line) is a boolean switch.
class ArgParser {
 public:
  /// Parses `args` (excluding argv[0]). Never fails: the grammar accepts any
  /// token sequence.
  static ArgParser Parse(const std::vector<std::string>& args);

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// True when the option was given at all (with or without a value).
  bool Has(const std::string& name) const;

  /// Value of `--name`, or std::nullopt when absent or a bare switch.
  std::optional<std::string> GetString(const std::string& name) const;

  /// Typed accessors with defaults; malformed values return the default.
  double GetDouble(const std::string& name, double fallback) const;
  int GetInt(const std::string& name, int fallback) const;

  /// Splits a comma-separated option value; empty when absent.
  std::vector<std::string> GetList(const std::string& name) const;

  /// Options that were provided but are not in `known`; used by commands to
  /// reject typos instead of silently ignoring them.
  std::vector<std::string> UnknownOptions(const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;  // switch => empty value
};

}  // namespace aggrecol::cli

#endif  // AGGRECOL_CLI_ARG_PARSER_H_
