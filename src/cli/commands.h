#ifndef AGGRECOL_CLI_COMMANDS_H_
#define AGGRECOL_CLI_COMMANDS_H_

#include <ostream>
#include <string>
#include <vector>

#include "cli/arg_parser.h"
#include "core/aggrecol.h"

namespace aggrecol::cli {

/// Entry point of the `aggrecol` command-line tool: dispatches on the first
/// positional (detect | evaluate | sniff | generate | benchmark | batch |
/// help) and returns the process exit code. Output goes to `out`,
/// diagnostics to `err`.
int RunCli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

/// The CLI surface, exposed so tests can check docs/CLI.md against the real
/// command table instead of a hand-maintained copy (tests/docs_test.cc).
const std::vector<std::string>& CommandNames();

/// Option names (without the leading `--`) the given command accepts; empty
/// for commands that take no options (sniff, help).
std::vector<std::string> KnownOptionsFor(const std::string& command);

/// The `aggrecol help` text.
const char* UsageText();

/// Builds an AggreColConfig from the shared detection options:
///   --error-level=<e> or --error-level=sum:0.01,division:0.03
///   --coverage=<cov> --window=<w> --functions=sum,average,...
///   --stages=i|ic|ics --axis=rows|columns|both --no-empty-as-zero
/// Returns false and writes a message to `err` on invalid values.
bool ConfigFromArgs(const ArgParser& args, core::AggreColConfig* config,
                    std::ostream& err);

/// Individual subcommands, exposed for tests.
int RunDetect(const ArgParser& args, std::ostream& out, std::ostream& err);
int RunEvaluate(const ArgParser& args, std::ostream& out, std::ostream& err);
int RunSniff(const ArgParser& args, std::ostream& out, std::ostream& err);
int RunGenerate(const ArgParser& args, std::ostream& out, std::ostream& err);
int RunBenchmark(const ArgParser& args, std::ostream& out, std::ostream& err);
int RunBatch(const ArgParser& args, std::ostream& out, std::ostream& err);

}  // namespace aggrecol::cli

#endif  // AGGRECOL_CLI_COMMANDS_H_
