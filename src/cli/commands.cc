#include "cli/commands.h"

#include <fstream>
#include <set>
#include <thread>

#include "eval/batch_runner.h"

#include "core/formula_export.h"
#include "csv/parser.h"
#include "csv/sniffer.h"
#include "csv/writer.h"
#include "datagen/corpus.h"
#include "datagen/messy_generator.h"
#include "eval/annotations.h"
#include "eval/dataset_io.h"
#include "eval/file_level.h"
#include "eval/metrics.h"
#include "eval/obs_summary.h"
#include "numfmt/numeric_grid.h"
#include "numfmt/parse_double.h"
#include "obs/metrics.h"
#include "obs/sinks.h"
#include "util/file_io.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace aggrecol::cli {
namespace {

constexpr const char* kUsage = R"(aggrecol — aggregation detection in CSV files (AggreCol, EDBT 2022)

usage:
  aggrecol detect <file.csv> [options]      detect and print aggregations
  aggrecol evaluate <file.csv> <truth>      score detections vs an annotation file
  aggrecol sniff <file.csv>                 report dialect and number format
  aggrecol generate [options]               write a synthetic annotated corpus
  aggrecol benchmark <dir> [options]        evaluate a whole corpus directory
  aggrecol batch <dir> [options]            stream a corpus through the thread pool
  aggrecol help                             show this message

detection options (detect, evaluate):
  --error-level=E | --error-level=sum:0.01,division:0.03,...
  --coverage=C          line aggregation coverage threshold (default 0.7)
  --window=W            sliding window size (default 10)
  --functions=LIST      sum,difference,average,division,relative-change
  --stages=i|ic|ics     run only stage I, I+C, or all (default ics)
  --axis=rows|columns|both
  --split-tables        detect per blank-row-separated region
  --no-empty-as-zero    do not interpret empty cells as zero
  --output=text|annotations|grid|formulas   (detect only; default text)

generate options:
  --out=DIR             output directory (required)
  --count=N             number of files (default 10)
  --seed=S              corpus seed (default 42)
  --profile=validation|unseen
  --messy               write the adversarial messy corpus instead (raw bytes
                        with dialect/encoding quirks; --count/--profile ignored)
  --per-category=N      messy files per category (default 8; with --messy)

batch options (plus all detection options):
  --threads=N           pool worker threads (default: hardware concurrency)
  --in-flight=K         max files detected concurrently (default 4)
  --timeout=SECONDS     per-file deadline; expired files report timed_out
  --quiet               summary only, no per-file table
  --metrics-json=PATH   write pipeline metrics as JSON (PATH '-' = stdout)
  --trace               print the per-corpus observability summary
)";

const std::vector<std::string> kDetectionOptions = {
    "error-level", "coverage",         "window", "functions", "stages",
    "axis",        "no-empty-as-zero", "output", "split-tables"};

const std::vector<std::string> kGenerateOptions = {
    "out", "count", "seed", "profile", "messy", "per-category"};

std::vector<std::string> BatchOptionNames() {
  std::vector<std::string> known = kDetectionOptions;
  known.insert(known.end(), {"threads", "in-flight", "timeout", "quiet",
                             "metrics-json", "trace"});
  return known;
}

bool RejectUnknown(const ArgParser& args, const std::vector<std::string>& known,
                   std::ostream& err) {
  const auto unknown = args.UnknownOptions(known);
  if (unknown.empty()) return true;
  for (const auto& name : unknown) err << "unknown option: --" << name << "\n";
  return false;
}

// Loads and parses a CSV file with a sniffed dialect. The mapping moves
// into the grid's arena, so the cells are zero-copy slices of the file.
std::optional<csv::Grid> LoadGrid(const std::string& path, std::ostream& err) {
  auto file = csv::MappedFile::Open(path);
  if (!file.has_value()) {
    err << "cannot read '" << path << "'\n";
    return std::nullopt;
  }
  const auto sniffed = csv::SniffDialect(file->view());
  return csv::ParseGrid(std::move(*file), sniffed.dialect,
                        csv::ParseHints{sniffed.modal_row_width});
}

}  // namespace

const std::vector<std::string>& CommandNames() {
  static const std::vector<std::string> names = {
      "detect", "evaluate", "sniff", "generate", "benchmark", "batch", "help"};
  return names;
}

std::vector<std::string> KnownOptionsFor(const std::string& command) {
  if (command == "detect" || command == "evaluate" || command == "benchmark") {
    return kDetectionOptions;
  }
  if (command == "generate") return kGenerateOptions;
  if (command == "batch") return BatchOptionNames();
  return {};  // sniff, help
}

const char* UsageText() { return kUsage; }

bool ConfigFromArgs(const ArgParser& args, core::AggreColConfig* config,
                    std::ostream& err) {
  if (const auto spec = args.GetString("error-level"); spec.has_value()) {
    if (spec->find(':') == std::string::npos) {
      const auto level = numfmt::ParseDouble(*spec);
      if (!level.has_value() || *level < 0) {
        err << "invalid --error-level '" << *spec << "'\n";
        return false;
      }
      config->error_levels.fill(*level);
    } else {
      for (const auto& entry : util::Split(*spec, ',')) {
        const auto parts = util::Split(entry, ':');
        if (parts.size() != 2) {
          err << "invalid --error-level entry '" << entry << "'\n";
          return false;
        }
        const auto function = core::FunctionFromName(parts[0]);
        if (!function.has_value()) {
          err << "unknown function '" << parts[0] << "'\n";
          return false;
        }
        const auto level = numfmt::ParseDouble(parts[1]);
        if (!level.has_value() || *level < 0) {
          err << "invalid --error-level entry '" << entry << "'\n";
          return false;
        }
        config->error_level(*function) = *level;
      }
    }
  }
  config->coverage = args.GetDouble("coverage", config->coverage);
  config->window_size = args.GetInt("window", config->window_size);

  if (args.Has("functions")) {
    config->functions.clear();
    for (const auto& name : args.GetList("functions")) {
      const auto function = core::FunctionFromName(name);
      if (!function.has_value()) {
        err << "unknown function '" << name << "'\n";
        return false;
      }
      config->functions.push_back(*function);
    }
    if (config->functions.empty()) {
      err << "--functions lists no functions\n";
      return false;
    }
  }

  if (const auto stages = args.GetString("stages"); stages.has_value()) {
    if (*stages == "i") {
      config->run_collective = false;
      config->run_supplemental = false;
    } else if (*stages == "ic") {
      config->run_supplemental = false;
    } else if (*stages != "ics") {
      err << "invalid --stages '" << *stages << "' (use i, ic, or ics)\n";
      return false;
    }
  }

  if (const auto axis = args.GetString("axis"); axis.has_value()) {
    if (*axis == "rows") {
      config->detect_columns = false;
    } else if (*axis == "columns") {
      config->detect_rows = false;
    } else if (*axis != "both") {
      err << "invalid --axis '" << *axis << "' (use rows, columns, or both)\n";
      return false;
    }
  }

  if (args.Has("no-empty-as-zero")) config->normalize.treat_empty_as_zero = false;
  if (args.Has("split-tables")) config->split_tables = true;
  return true;
}

int RunDetect(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().size() != 2) {
    err << "usage: aggrecol detect <file.csv> [options]\n";
    return 2;
  }
  if (!RejectUnknown(args, kDetectionOptions, err)) return 2;
  core::AggreColConfig config;
  if (!ConfigFromArgs(args, &config, err)) return 2;

  const auto grid = LoadGrid(args.positionals()[1], err);
  if (!grid.has_value()) return 1;

  const auto result = core::AggreCol(config).Detect(*grid);
  const std::string output = args.GetString("output").value_or("text");
  if (output == "annotations") {
    out << eval::SerializeAnnotations(result.aggregations);
  } else if (output == "grid") {
    // Render the table with every detected aggregate cell bracketed.
    std::set<std::pair<int, int>> aggregate_cells;
    for (const auto& aggregation : result.aggregations) {
      const int row = aggregation.axis == core::Axis::kRow ? aggregation.line
                                                           : aggregation.aggregate;
      const int col = aggregation.axis == core::Axis::kRow ? aggregation.aggregate
                                                           : aggregation.line;
      aggregate_cells.insert({row, col});
    }
    util::TablePrinter printer;
    for (int i = 0; i < grid->rows(); ++i) {
      std::vector<std::string> row;
      row.reserve(grid->columns());
      for (int j = 0; j < grid->columns(); ++j) {
        row.push_back(aggregate_cells.count({i, j}) > 0
                          ? "[" + std::string(grid->at(i, j)) + "]"
                          : std::string(grid->at(i, j)));
      }
      printer.AddRow(std::move(row));
    }
    printer.Print(out);
    out << result.aggregations.size() << " aggregation(s); [cell] = aggregate\n";
  } else if (output == "formulas") {
    // Reconstructed spreadsheet formulas — input for formula-smell tools.
    for (const auto& formula :
         core::ExportFormulas(core::CanonicalizeAll(result.aggregations))) {
      out << core::CellName(formula.row, formula.column) << ": " << formula.formula
          << "\n";
    }
  } else if (output == "text") {
    out << "file: " << args.positionals()[1] << "\n";
    out << "number format: " << numfmt::ToString(result.format) << "\n";
    out << "aggregations: " << result.aggregations.size() << "\n";
    for (const auto& aggregation : result.aggregations) {
      out << "  " << ToString(aggregation) << "\n";
    }
  } else {
    err << "invalid --output '" << output
        << "' (use text, annotations, grid, or formulas)\n";
    return 2;
  }
  return 0;
}

int RunEvaluate(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().size() != 3) {
    err << "usage: aggrecol evaluate <file.csv> <truth.annotations> [options]\n";
    return 2;
  }
  if (!RejectUnknown(args, kDetectionOptions, err)) return 2;
  core::AggreColConfig config;
  if (!ConfigFromArgs(args, &config, err)) return 2;

  const auto grid = LoadGrid(args.positionals()[1], err);
  if (!grid.has_value()) return 1;
  const auto truth_text = util::ReadFile(args.positionals()[2]);
  if (!truth_text.has_value()) {
    err << "cannot read '" << args.positionals()[2] << "'\n";
    return 1;
  }
  const auto truth = eval::ParseAnnotations(*truth_text);
  if (!truth.has_value()) {
    err << "malformed annotation file '" << args.positionals()[2] << "'\n";
    return 1;
  }

  const auto result = core::AggreCol(config).Detect(*grid);
  util::TablePrinter printer;
  printer.SetHeader({"function", "precision", "recall", "F1", "correct", "wrong",
                     "missed"});
  auto add_row = [&printer, &result, &truth](const std::string& label,
                                             eval::FunctionFilter filter) {
    const auto scores = eval::Score(result.aggregations, *truth, filter);
    if (filter.has_value() && scores.correct + scores.missed == 0 &&
        scores.incorrect == 0) {
      return;  // function absent from both sides
    }
    printer.AddRow({label, util::FormatDouble(scores.precision, 3),
                    util::FormatDouble(scores.recall, 3),
                    util::FormatDouble(scores.F1(), 3),
                    std::to_string(scores.correct), std::to_string(scores.incorrect),
                    std::to_string(scores.missed)});
  };
  add_row("sum (incl. difference)", core::AggregationFunction::kSum);
  add_row("average", core::AggregationFunction::kAverage);
  add_row("division", core::AggregationFunction::kDivision);
  add_row("relative change", core::AggregationFunction::kRelativeChange);
  add_row("overall", std::nullopt);
  printer.Print(out);
  return 0;
}

int RunSniff(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().size() != 2) {
    err << "usage: aggrecol sniff <file.csv>\n";
    return 2;
  }
  auto file = csv::MappedFile::Open(args.positionals()[1]);
  if (!file.has_value()) {
    err << "cannot read '" << args.positionals()[1] << "'\n";
    return 1;
  }
  const auto sniffed = csv::SniffDialect(file->view());
  const auto grid = csv::ParseGrid(std::move(*file), sniffed.dialect,
                                   csv::ParseHints{sniffed.modal_row_width});
  const auto format = numfmt::ElectFormat(grid);
  const auto numeric = numfmt::NumericGrid::FromGrid(grid, format);
  int numeric_cells = 0;
  for (int i = 0; i < numeric.rows(); ++i) numeric_cells += numeric.NumericCountInRow(i);

  out << "dialect:       " << ToString(sniffed.dialect) << "\n";
  out << "number format: " << numfmt::ToString(format) << "\n";
  out << "shape:         " << grid.rows() << " rows x " << grid.columns()
      << " columns\n";
  out << "numeric cells: " << numeric_cells << " of " << grid.CountNonEmpty()
      << " non-empty\n";
  return 0;
}

int RunGenerate(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (!RejectUnknown(args, kGenerateOptions, err)) return 2;
  const auto out_dir = args.GetString("out");
  if (!out_dir.has_value()) {
    err << "usage: aggrecol generate --out=DIR [--count=N] [--seed=S] "
           "[--profile=validation|unseen] [--messy [--per-category=N]]\n";
    return 2;
  }
  if (args.Has("messy")) {
    // The adversarial corpus is written as raw bytes: the files carry their
    // dialect and encoding quirks on disk, so `aggrecol benchmark` exercises
    // the same sniff-parse-detect path the robustness battery scores.
    datagen::MessyCorpusSpec spec;
    spec.seed = static_cast<uint64_t>(args.GetInt("seed", 6021));
    spec.files_per_category =
        args.GetInt("per-category", spec.files_per_category);
    const auto files = datagen::GenerateMessyCorpus(spec);
    for (const auto& file : files) {
      std::string stem = file.annotated.name;
      if (stem.size() > 4 && stem.substr(stem.size() - 4) == ".csv") {
        stem.resize(stem.size() - 4);
      }
      if (!util::WriteFile(*out_dir + "/" + stem + ".csv", file.text) ||
          !util::WriteFile(
              *out_dir + "/" + stem + ".annotations",
              eval::SerializeAnnotations(file.annotated.annotations))) {
        err << "cannot write into '" << *out_dir << "'\n";
        return 1;
      }
    }
    out << "wrote " << files.size() << " messy file pairs (.csv + .annotations) to "
        << *out_dir << "\n";
    return 0;
  }
  datagen::CorpusSpec spec = datagen::ValidationCorpus();
  if (args.GetString("profile").value_or("validation") == "unseen") {
    spec = datagen::UnseenCorpus();
  }
  spec.name = "generated";
  spec.file_count = args.GetInt("count", 10);
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  const auto files = datagen::GenerateCorpus(spec);
  for (size_t i = 0; i < files.size(); ++i) {
    if (!eval::SaveAnnotatedFile(*out_dir, "file_" + std::to_string(i), files[i])) {
      err << "cannot write into '" << *out_dir << "'\n";
      return 1;
    }
  }
  out << "wrote " << files.size() << " file pairs (.csv + .annotations) to "
      << *out_dir << "\n";
  return 0;
}

int RunBenchmark(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().size() != 2) {
    err << "usage: aggrecol benchmark <corpus-dir> [options]\n";
    return 2;
  }
  if (!RejectUnknown(args, kDetectionOptions, err)) return 2;
  core::AggreColConfig config;
  if (!ConfigFromArgs(args, &config, err)) return 2;

  const auto files = eval::LoadCorpusDirectory(args.positionals()[1]);
  if (!files.has_value()) {
    err << "cannot load corpus from '" << args.positionals()[1] << "'\n";
    return 1;
  }
  if (files->empty()) {
    err << "no .csv files in '" << args.positionals()[1] << "'\n";
    return 1;
  }

  core::AggreCol detector(config);
  std::vector<eval::Scores> per_file;
  per_file.reserve(files->size());
  for (const auto& file : *files) {
    const auto result = detector.Detect(file.grid);
    per_file.push_back(eval::Score(result.aggregations, file.annotations));
  }
  const auto total = eval::Accumulate(per_file);
  const auto histograms = eval::BuildFileLevel(per_file);

  out << "corpus: " << args.positionals()[1] << " (" << files->size()
      << " files)\n";
  util::TablePrinter printer;
  printer.SetHeader({"metric", "value"});
  printer.AddRow({"precision", util::FormatDouble(total.precision, 3)});
  printer.AddRow({"recall", util::FormatDouble(total.recall, 3)});
  printer.AddRow({"F1", util::FormatDouble(total.F1(), 3)});
  printer.AddRow({"files with precision > 0.95",
                  util::FormatDouble(100.0 * histograms.precision.Fraction(4), 1) + "%"});
  printer.AddRow({"files with recall > 0.95",
                  util::FormatDouble(100.0 * histograms.recall.Fraction(4), 1) + "%"});
  printer.Print(out);
  return 0;
}

int RunBatch(const ArgParser& args, std::ostream& out, std::ostream& err) {
  if (args.positionals().size() != 2) {
    err << "usage: aggrecol batch <corpus-dir> [options]\n";
    return 2;
  }
  if (!RejectUnknown(args, BatchOptionNames(), err)) return 2;

  eval::BatchOptions options;
  if (!ConfigFromArgs(args, &options.config, err)) return 2;
  const int default_threads =
      std::max(1u, std::thread::hardware_concurrency());
  options.threads = args.GetInt("threads", default_threads);
  options.max_in_flight = args.GetInt("in-flight", options.max_in_flight);
  options.file_timeout_seconds = args.GetDouble("timeout", 0.0);
  if (options.threads < 1 || options.max_in_flight < 1 ||
      options.file_timeout_seconds < 0) {
    err << "invalid --threads/--in-flight/--timeout value\n";
    return 2;
  }

  // Observability: enabled before the corpus loads so the csv.* counters
  // cover the corpus parse as well as the detection runs. ScopedMetrics
  // resets the registry, making the snapshot below cover exactly this batch.
  const std::optional<std::string> metrics_json = args.GetString("metrics-json");
  const bool trace = args.Has("trace");
  const bool want_metrics = metrics_json.has_value() || trace;
  if (want_metrics && !obs::CompiledIn()) {
    err << "warning: built with AGGRECOL_OBS=OFF; metrics will be empty\n";
  }
  std::optional<obs::ScopedMetrics> scoped_metrics;
  if (want_metrics) scoped_metrics.emplace();

  const auto files = eval::LoadCorpusDirectory(args.positionals()[1]);
  if (!files.has_value()) {
    err << "cannot load corpus from '" << args.positionals()[1] << "'\n";
    return 1;
  }
  if (files->empty()) {
    err << "no .csv files in '" << args.positionals()[1] << "'\n";
    return 1;
  }

  eval::BatchRunner runner(options);
  const auto report = runner.Run(*files);

  if (!args.Has("quiet")) {
    util::TablePrinter per_file;
    per_file.SetHeader({"file", "outcome", "aggregations", "seconds"});
    for (const auto& file : report.files) {
      per_file.AddRow({file.name, eval::ToString(file.outcome),
                       file.outcome == eval::FileOutcome::kOk
                           ? std::to_string(file.result.aggregations.size())
                           : "-",
                       util::FormatDouble(file.seconds, 3)});
    }
    per_file.Print(out);
    out << "\n";
  }

  out << "corpus: " << args.positionals()[1] << " (" << files->size()
      << " files; " << options.threads << " threads, window "
      << options.max_in_flight << ")\n";
  util::TablePrinter summary;
  summary.SetHeader({"metric", "value"});
  summary.AddRow({"ok", std::to_string(report.ok)});
  summary.AddRow({"timed_out", std::to_string(report.timed_out)});
  summary.AddRow({"failed", std::to_string(report.failed)});
  // Decided files only: timed_out is a scheduling outcome, so it must not
  // drag the rate down (see eval::SuccessRate).
  summary.AddRow({"success rate", util::FormatDouble(eval::SuccessRate(report), 3)});
  summary.AddRow({"aggregations", std::to_string(report.total_aggregations)});
  summary.AddRow({"wall seconds", util::FormatDouble(report.seconds_wall, 3)});
  summary.AddRow(
      {"stage seconds (individual)", util::FormatDouble(report.seconds_individual, 3)});
  summary.AddRow(
      {"stage seconds (collective)", util::FormatDouble(report.seconds_collective, 3)});
  summary.AddRow({"stage seconds (supplemental)",
                  util::FormatDouble(report.seconds_supplemental, 3)});
  summary.AddRow({"precision", util::FormatDouble(report.scores.precision, 3)});
  summary.AddRow({"recall", util::FormatDouble(report.scores.recall, 3)});
  summary.AddRow({"F1", util::FormatDouble(report.scores.F1(), 3)});
  summary.Print(out);

  if (want_metrics) {
    const obs::MetricsSnapshot snapshot = obs::Registry::Instance().Snapshot();
    if (trace) {
      out << "\n";
      eval::PrintObservabilitySummary(snapshot, out);
    }
    if (metrics_json.has_value()) {
      if (*metrics_json == "-") {
        obs::WriteMetricsJson(snapshot, out);
      } else {
        std::ofstream file(*metrics_json);
        if (!file) {
          err << "cannot write '" << *metrics_json << "'\n";
          return 1;
        }
        obs::WriteMetricsJson(snapshot, file);
      }
    }
  }
  return report.failed == 0 ? 0 : 1;
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  const ArgParser parsed = ArgParser::Parse(args);
  if (parsed.positionals().empty()) {
    out << kUsage;
    return 2;
  }
  const std::string& command = parsed.positionals()[0];
  if (command == "detect") return RunDetect(parsed, out, err);
  if (command == "evaluate") return RunEvaluate(parsed, out, err);
  if (command == "sniff") return RunSniff(parsed, out, err);
  if (command == "generate") return RunGenerate(parsed, out, err);
  if (command == "benchmark") return RunBenchmark(parsed, out, err);
  if (command == "batch") return RunBatch(parsed, out, err);
  if (command == "help") {
    out << kUsage;
    return 0;
  }
  err << "unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace aggrecol::cli
