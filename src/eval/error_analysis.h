#ifndef AGGRECOL_EVAL_ERROR_ANALYSIS_H_
#define AGGRECOL_EVAL_ERROR_ANALYSIS_H_

#include <array>
#include <string>
#include <vector>

#include "core/aggrecol.h"
#include "core/aggregation.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol::eval {

/// Causes of missed true aggregations, mirroring the paper's analysis of
/// detection errors (Sec. 4.5.2).
enum class FalseNegativeCause {
  /// The observed error level exceeds the configured tolerance for the
  /// function (rounding beyond tolerance — "the fixed error level might be
  /// too small for small numbers").
  kErrorLevel,
  /// A pairwise operand lies beyond the sliding window ("the selection of a
  /// fixed window size cannot cover the whole ground truth").
  kWindowSize,
  /// The far end of a commutative range is zero-valued, so the greedy
  /// adjacency search stops early ("ranges whose last cells are '0'-valued
  /// could be missed").
  kZeroTail,
  /// Numeric cells that are not part of the range sit inside its span — an
  /// interrupt shape whose blockers were not detected as aggregates, so the
  /// supplemental stage cannot remove them.
  kBlockedRange,
  /// Anything else (pruning interactions, coverage shortfalls, ...).
  kOther,
};

/// Causes of spurious detections (Sec. 4.5.1).
enum class FalsePositiveCause {
  /// Zero-valued aggregate over zero-valued cells ("most mistakes involved
  /// many '0' valued cells").
  kZeroCells,
  /// The inverse direction of a true division (A = B/C reported as
  /// C = B/A).
  kInverseDivision,
  /// Same aggregate and function as a true aggregation but a different
  /// range — an alternative decomposition (e.g. members substituted for
  /// intermediate totals).
  kAlternativeDecomposition,
  /// Arithmetic coincidence with sufficient coverage.
  kCoincidence,
};

inline constexpr size_t kFalseNegativeCauses = 5;
inline constexpr size_t kFalsePositiveCauses = 4;

std::string ToString(FalseNegativeCause cause);
std::string ToString(FalsePositiveCause cause);

/// Aggregated cause counts for one file or a whole corpus.
struct ErrorBreakdown {
  std::array<int, kFalseNegativeCauses> false_negatives{};
  std::array<int, kFalsePositiveCauses> false_positives{};

  int TotalFalseNegatives() const;
  int TotalFalsePositives() const;
  void Add(const ErrorBreakdown& other);
};

/// Classifies every mismatch between `predicted` and `truth` on `numeric`
/// into the taxonomies above. Both sides are canonicalized first; `config`
/// provides the error levels and window size the detector ran with.
ErrorBreakdown AnalyzeErrors(const numfmt::NumericGrid& numeric,
                             const std::vector<core::Aggregation>& predicted,
                             const std::vector<core::Aggregation>& truth,
                             const core::AggreColConfig& config);

}  // namespace aggrecol::eval

#endif  // AGGRECOL_EVAL_ERROR_ANALYSIS_H_
