#include "eval/obs_summary.h"

#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/table_printer.h"

namespace aggrecol::eval {
namespace {

std::string FormatCount(uint64_t value) { return std::to_string(value); }

std::string FormatSeconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", seconds);
  return buffer;
}

std::string FormatShare(uint64_t part, uint64_t whole) {
  if (whole == 0) return "-";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%",
                100.0 * static_cast<double>(part) / static_cast<double>(whole));
  return buffer;
}

}  // namespace

void PrintObservabilitySummary(const obs::MetricsSnapshot& snapshot,
                               std::ostream& os) {
  if (snapshot.counters.empty() && snapshot.gauges.empty() &&
      snapshot.histograms.empty()) {
    os << "observability summary: no metrics were recorded";
    if (!obs::CompiledIn()) os << " (built with AGGRECOL_OBS=OFF)";
    os << "\n";
    return;
  }

  // Stage funnel: how many candidates entered the prune, survived stage 1,
  // survived the collective prune, and came back from stage 3. The stage-1
  // row uses prune.input because the per-round candidate counters
  // (individual.candidates.*) double-count across cumulative rounds.
  {
    const uint64_t generated = snapshot.counter("prune.input.candidates");
    const uint64_t stage1 = snapshot.counter("stage1.accepted");
    const uint64_t stage2 = snapshot.counter("stage2.accepted");
    const uint64_t stage3 = snapshot.counter("stage3.recovered");
    util::TablePrinter funnel;
    funnel.SetHeader({"stage", "candidates", "of generated"});
    funnel.AddRow({"generated (pre-prune)", FormatCount(generated), "100.0%"});
    funnel.AddRow({"stage 1 accepted", FormatCount(stage1),
                   FormatShare(stage1, generated)});
    funnel.AddRow({"stage 2 accepted", FormatCount(stage2),
                   FormatShare(stage2, generated)});
    funnel.AddRow({"stage 3 recovered", FormatCount(stage3),
                   FormatShare(stage3, generated)});
    os << "detection funnel\n";
    funnel.Print(os);
    os << "\n";
  }

  // Per-rule prune accounting: candidates dropped by each individual-stage
  // rule (R1-R4) and each collective-stage reason.
  {
    struct Rule {
      const char* label;
      const char* counter;
    };
    const std::vector<Rule> rules = {
        {"R1 coverage threshold", "prune.r1_coverage.candidates"},
        {"R2 same-aggregate dedup", "prune.r2_same_aggregate.candidates"},
        {"R3 same-range dedup", "prune.r3_same_range.candidates"},
        {"R4 conflict: directional", "prune.r4_conflict.directional"},
        {"R4 conflict: complete inclusion",
         "prune.r4_conflict.complete_inclusion"},
        {"R4 conflict: mutual inclusion", "prune.r4_conflict.mutual_inclusion"},
        {"stage 2: complete inclusion", "stage2.pruned.complete_inclusion"},
        {"stage 2: mutual inclusion", "stage2.pruned.mutual_inclusion"},
        {"stage 2: same-aggregate overlap",
         "stage2.pruned.same_aggregate_overlap"},
        {"stage 2: circular vs division", "stage2.pruned.division_circular"},
    };
    util::TablePrinter pruning;
    pruning.SetHeader({"prune rule", "dropped"});
    for (const auto& rule : rules) {
      pruning.AddRow({rule.label, FormatCount(snapshot.counter(rule.counter))});
    }
    os << "prune accounting (candidates for R1-R3, groups for R4/stage 2)\n";
    pruning.Print(os);
    os << "\n";
  }

  // Span latencies: every histogram named span.<name>, with count, total,
  // and mean seconds.
  util::TablePrinter spans;
  spans.SetHeader({"span", "count", "total s", "mean s"});
  bool any_span = false;
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name.rfind(obs::ScopedSpan::kSpanPrefix, 0) != 0) continue;
    any_span = true;
    const double mean =
        histogram.count > 0
            ? histogram.sum / static_cast<double>(histogram.count)
            : 0.0;
    spans.AddRow({histogram.name.substr(obs::ScopedSpan::kSpanPrefix.size()),
                  FormatCount(histogram.count), FormatSeconds(histogram.sum),
                  FormatSeconds(mean)});
  }
  if (any_span) {
    os << "span latencies\n";
    spans.Print(os);
  }
}

}  // namespace aggrecol::eval
