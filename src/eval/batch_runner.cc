#include "eval/batch_runner.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace aggrecol::eval {

const char* ToString(FileOutcome outcome) {
  switch (outcome) {
    case FileOutcome::kOk:
      return "ok";
    case FileOutcome::kTimedOut:
      return "timed_out";
    case FileOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

BatchRunner::BatchRunner(BatchOptions options) : options_(std::move(options)) {
  if (options_.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
}

BatchRunner::~BatchRunner() = default;

BatchFileReport BatchRunner::ProcessOne(const AnnotatedFile& file,
                                        std::atomic<int>* in_flight,
                                        std::atomic<int>* max_in_flight) {
  const int now_running = in_flight->fetch_add(1, std::memory_order_relaxed) + 1;
  int seen = max_in_flight->load(std::memory_order_relaxed);
  while (seen < now_running &&
         !max_in_flight->compare_exchange_weak(seen, now_running,
                                               std::memory_order_relaxed)) {
  }
  obs::GaugeMax("batch.in_flight.max", now_running);

  BatchFileReport report;
  report.name = file.name;
  util::Stopwatch stopwatch;

  core::AggreColConfig config = options_.config;
  config.pool = pool_.get();
  config.threads = 1;  // never let a file spin up a private pool
  if (options_.file_timeout_seconds > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.file_timeout_seconds));
    config.cancel = config.cancel.WithDeadline(deadline);
  }

  try {
    const core::AggreCol detector(config);
    report.result = detector.Detect(file.grid);
    report.scores = Score(report.result.aggregations, file.annotations);
    report.outcome = FileOutcome::kOk;
  } catch (const util::CancelledError&) {
    report.outcome = FileOutcome::kTimedOut;
  } catch (const std::exception& e) {
    report.outcome = FileOutcome::kFailed;
    report.error = e.what();
  }
  report.seconds = stopwatch.ElapsedSeconds();
  if (obs::Registry::enabled()) {
    obs::Observe("batch.file.seconds", report.seconds);
    if (options_.file_timeout_seconds > 0.0 &&
        report.outcome != FileOutcome::kTimedOut) {
      // Slack = deadline headroom the file left unused; near-zero slack means
      // the per-file timeout is about to start biting.
      obs::Observe("batch.deadline.slack_seconds",
                   std::max(0.0, options_.file_timeout_seconds - report.seconds));
    }
  }

  in_flight->fetch_sub(1, std::memory_order_relaxed);
  return report;
}

BatchReport BatchRunner::Run(const std::vector<AnnotatedFile>& files) {
  obs::ScopedSpan span("batch.run");
  if (obs::Registry::enabled()) {
    obs::Count("batch.files.submitted", files.size());
    obs::GaugeSet("batch.threads", options_.threads);
    obs::GaugeSet("batch.window", std::max(1, options_.max_in_flight));
  }

  BatchReport report;
  report.files.resize(files.size());
  util::Stopwatch stopwatch;

  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};

  if (pool_ == nullptr) {
    for (size_t i = 0; i < files.size(); ++i) {
      report.files[i] = ProcessOne(files[i], &in_flight, &max_in_flight);
    }
  } else {
    // Sliding window: keep at most max_in_flight file tasks outstanding,
    // retiring the oldest before admitting the next. The caller thread only
    // coordinates; detection runs on the pool (file tasks spawn their inner
    // per-function/per-row tasks on the same pool and help execute them
    // while waiting, so the window also bounds peak memory).
    const size_t window =
        static_cast<size_t>(std::max(1, options_.max_in_flight));
    std::deque<std::pair<size_t, util::Future<BatchFileReport>>> outstanding;
    size_t next = 0;
    while (next < files.size() || !outstanding.empty()) {
      while (next < files.size() && outstanding.size() < window) {
        const size_t index = next++;
        const AnnotatedFile* file = &files[index];
        outstanding.emplace_back(
            index, pool_->Submit([this, file, &in_flight, &max_in_flight] {
              return ProcessOne(*file, &in_flight, &max_in_flight);
            }));
      }
      auto [index, future] = std::move(outstanding.front());
      outstanding.pop_front();
      report.files[index] = future.Get();
    }
  }

  report.seconds_wall = stopwatch.ElapsedSeconds();
  report.max_in_flight_observed = max_in_flight.load(std::memory_order_relaxed);

  std::vector<Scores> ok_scores;
  for (const auto& file : report.files) {
    switch (file.outcome) {
      case FileOutcome::kOk:
        ++report.ok;
        report.seconds_individual += file.result.seconds_individual;
        report.seconds_collective += file.result.seconds_collective;
        report.seconds_supplemental += file.result.seconds_supplemental;
        report.total_aggregations += file.result.aggregations.size();
        ok_scores.push_back(file.scores);
        break;
      case FileOutcome::kTimedOut:
        ++report.timed_out;
        break;
      case FileOutcome::kFailed:
        ++report.failed;
        break;
    }
  }
  report.scores = Accumulate(ok_scores);
  if (obs::Registry::enabled()) {
    obs::Count("batch.files.ok", report.ok);
    obs::Count("batch.files.timed_out", report.timed_out);
    obs::Count("batch.files.failed", report.failed);
  }
  return report;
}

double SuccessRate(const BatchReport& report) {
  // Timed-out files are excluded from the denominator: a deadline trip says
  // the file was expensive, not that detection was wrong, and counting it as
  // a failure makes the same corpus score differently under different
  // --timeout settings. Vacuously 1.0 when nothing completed either way,
  // matching the Scores convention.
  const int decided = report.ok + report.failed;
  if (decided == 0) return 1.0;
  return static_cast<double>(report.ok) / decided;
}

}  // namespace aggrecol::eval
