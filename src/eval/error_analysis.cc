#include "eval/error_analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace aggrecol::eval {
namespace {

using core::Aggregation;
using core::AggregationFunction;
using core::Axis;

// Value of the cell addressed by (line, index) under the aggregation's axis.
double CellValue(const numfmt::NumericGrid& numeric, const Aggregation& aggregation,
                 int index) {
  return aggregation.axis == Axis::kRow ? numeric.value(aggregation.line, index)
                                        : numeric.value(index, aggregation.line);
}

bool CellRangeUsable(const numfmt::NumericGrid& numeric, const Aggregation& aggregation,
                     int index) {
  return aggregation.axis == Axis::kRow
             ? numeric.IsRangeUsable(aggregation.line, index)
             : numeric.IsRangeUsable(index, aggregation.line);
}

bool CellNumeric(const numfmt::NumericGrid& numeric, const Aggregation& aggregation,
                 int index) {
  return aggregation.axis == Axis::kRow ? numeric.IsNumeric(aggregation.line, index)
                                        : numeric.IsNumeric(index, aggregation.line);
}

int LineLength(const numfmt::NumericGrid& numeric, const Aggregation& aggregation) {
  return aggregation.axis == Axis::kRow ? numeric.columns() : numeric.rows();
}

// Observed error level of a (canonical) aggregation on the grid.
double ObservedError(const numfmt::NumericGrid& numeric, const Aggregation& aggregation) {
  std::vector<double> values;
  values.reserve(aggregation.range.size());
  for (int index : aggregation.range) {
    values.push_back(CellValue(numeric, aggregation, index));
  }
  const auto calculated = core::Apply(aggregation.function, values);
  if (!calculated.has_value()) return std::numeric_limits<double>::infinity();
  return core::ErrorLevel(CellValue(numeric, aggregation, aggregation.aggregate),
                          *calculated);
}

// Distance of the farthest operand from the aggregate, counted in
// range-usable cells (the metric the sliding window uses).
int WindowDistance(const numfmt::NumericGrid& numeric, const Aggregation& aggregation) {
  int max_distance = 0;
  for (int operand : aggregation.range) {
    const int step = operand > aggregation.aggregate ? 1 : -1;
    int distance = 0;
    for (int index = aggregation.aggregate + step;; index += step) {
      if (index < 0 || index >= LineLength(numeric, aggregation)) break;
      if (CellRangeUsable(numeric, aggregation, index)) ++distance;
      if (index == operand) break;
    }
    max_distance = std::max(max_distance, distance);
  }
  return max_distance;
}

FalseNegativeCause ClassifyFalseNegative(const numfmt::NumericGrid& numeric,
                                         const Aggregation& missed,
                                         const core::AggreColConfig& config) {
  const double observed = ObservedError(numeric, missed);
  if (!core::WithinErrorLevel(observed, config.error_level(missed.function))) {
    return FalseNegativeCause::kErrorLevel;
  }
  if (core::TraitsOf(missed.function).pairwise &&
      WindowDistance(numeric, missed) > config.window_size) {
    return FalseNegativeCause::kWindowSize;
  }
  if (core::TraitsOf(missed.function).commutative && !missed.range.empty()) {
    // Zero value at the range end farthest from the aggregate: the greedy
    // adjacency list stops before reaching it.
    const auto [min_it, max_it] =
        std::minmax_element(missed.range.begin(), missed.range.end());
    const int far_end = *max_it > missed.aggregate ? *max_it : *min_it;
    if (CellValue(numeric, missed, far_end) == 0.0) {
      return FalseNegativeCause::kZeroTail;
    }
  }
  // Numeric cells inside the range span that are neither range elements nor
  // the aggregate block the adjacency scan.
  if (!missed.range.empty()) {
    const auto [min_it, max_it] =
        std::minmax_element(missed.range.begin(), missed.range.end());
    const int lo = std::min(*min_it, missed.aggregate);
    const int hi = std::max(*max_it, missed.aggregate);
    for (int index = lo; index <= hi; ++index) {
      if (index == missed.aggregate) continue;
      if (std::find(missed.range.begin(), missed.range.end(), index) !=
          missed.range.end()) {
        continue;
      }
      if (CellNumeric(numeric, missed, index)) {
        return FalseNegativeCause::kBlockedRange;
      }
    }
  }
  return FalseNegativeCause::kOther;
}

FalsePositiveCause ClassifyFalsePositive(const numfmt::NumericGrid& numeric,
                                         const Aggregation& spurious,
                                         const std::vector<Aggregation>& truth) {
  // Zero-cell artifact: zero aggregate derived from zero operands.
  const double aggregate_value =
      CellValue(numeric, spurious, spurious.aggregate);
  if (aggregate_value == 0.0) {
    bool leading_zero = true;
    if (spurious.function == AggregationFunction::kDivision ||
        spurious.function == AggregationFunction::kRelativeChange) {
      leading_zero = CellValue(numeric, spurious, spurious.range[0]) == 0.0;
    } else {
      for (int index : spurious.range) {
        if (CellValue(numeric, spurious, index) != 0.0) {
          leading_zero = false;
          break;
        }
      }
    }
    if (leading_zero) return FalsePositiveCause::kZeroCells;
  }

  for (const auto& real : truth) {
    if (real.axis != spurious.axis || real.line != spurious.line) continue;
    if (spurious.function == AggregationFunction::kDivision &&
        real.function == AggregationFunction::kDivision) {
      const bool mutual =
          std::find(real.range.begin(), real.range.end(), spurious.aggregate) !=
              real.range.end() &&
          std::find(spurious.range.begin(), spurious.range.end(), real.aggregate) !=
              spurious.range.end();
      if (mutual) return FalsePositiveCause::kInverseDivision;
    }
    if (real.function == spurious.function &&
        real.aggregate == spurious.aggregate && real.range != spurious.range) {
      return FalsePositiveCause::kAlternativeDecomposition;
    }
  }
  return FalsePositiveCause::kCoincidence;
}

}  // namespace

std::string ToString(FalseNegativeCause cause) {
  switch (cause) {
    case FalseNegativeCause::kErrorLevel:
      return "error beyond tolerance";
    case FalseNegativeCause::kWindowSize:
      return "operand beyond window";
    case FalseNegativeCause::kZeroTail:
      return "zero-valued range tail";
    case FalseNegativeCause::kBlockedRange:
      return "blocked (interrupt) range";
    case FalseNegativeCause::kOther:
      return "other";
  }
  return "?";
}

std::string ToString(FalsePositiveCause cause) {
  switch (cause) {
    case FalsePositiveCause::kZeroCells:
      return "zero-valued cells";
    case FalsePositiveCause::kInverseDivision:
      return "inverse division";
    case FalsePositiveCause::kAlternativeDecomposition:
      return "alternative decomposition";
    case FalsePositiveCause::kCoincidence:
      return "arithmetic coincidence";
  }
  return "?";
}

int ErrorBreakdown::TotalFalseNegatives() const {
  int total = 0;
  for (int count : false_negatives) total += count;
  return total;
}

int ErrorBreakdown::TotalFalsePositives() const {
  int total = 0;
  for (int count : false_positives) total += count;
  return total;
}

void ErrorBreakdown::Add(const ErrorBreakdown& other) {
  for (size_t i = 0; i < false_negatives.size(); ++i) {
    false_negatives[i] += other.false_negatives[i];
  }
  for (size_t i = 0; i < false_positives.size(); ++i) {
    false_positives[i] += other.false_positives[i];
  }
}

ErrorBreakdown AnalyzeErrors(const numfmt::NumericGrid& numeric,
                             const std::vector<core::Aggregation>& predicted,
                             const std::vector<core::Aggregation>& truth,
                             const core::AggreColConfig& config) {
  const auto p = core::CanonicalizeAll(predicted);
  const auto t = core::CanonicalizeAll(truth);

  ErrorBreakdown breakdown;
  for (const auto& real : t) {
    if (std::binary_search(p.begin(), p.end(), real, core::AggregationLess)) continue;
    const auto cause = ClassifyFalseNegative(numeric, real, config);
    ++breakdown.false_negatives[static_cast<size_t>(cause)];
  }
  for (const auto& candidate : p) {
    if (std::binary_search(t.begin(), t.end(), candidate, core::AggregationLess)) {
      continue;
    }
    const auto cause = ClassifyFalsePositive(numeric, candidate, t);
    ++breakdown.false_positives[static_cast<size_t>(cause)];
  }
  return breakdown;
}

}  // namespace aggrecol::eval
