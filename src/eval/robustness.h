#ifndef AGGRECOL_EVAL_ROBUSTNESS_H_
#define AGGRECOL_EVAL_ROBUSTNESS_H_

#include <string>
#include <vector>

#include "core/aggrecol.h"
#include "core/aggregation.h"
#include "csv/dialect.h"
#include "csv/grid.h"
#include "eval/metrics.h"

namespace aggrecol::eval {

/// One robustness test case: raw file bytes plus the ground truth a correct
/// sniff-parse-detect run should recover. Produced by
/// datagen::ToRobustnessCases (eval cannot depend on datagen, so the scoring
/// plumbing takes this neutral shape).
struct RobustnessCase {
  std::string name;
  std::string category;
  std::string text;               // raw bytes as they would sit on disk
  csv::Dialect expected_dialect;  // ground-truth writing dialect
  csv::Grid expected_grid;        // ground-truth parse under that dialect
  std::vector<core::Aggregation> truth;
};

/// Which dialect sniffer the robustness run elects dialects with.
enum class SnifferKind {
  kConsistency,  // csv::SniffDialect — the pattern x type consistency sniffer
  kReference,    // csv::SniffDialectReference — the retained legacy heuristic
};

struct RobustnessOptions {
  SnifferKind sniffer = SnifferKind::kConsistency;

  /// Detection configuration; split_tables defaults on because the corpus
  /// contains stacked-table files (the clean-corpus default stays off).
  core::AggreColConfig config = [] {
    core::AggreColConfig config;
    config.split_tables = true;
    return config;
  }();
};

/// Per-category outcome of a robustness run. The category score averages
/// three [0, 1] components so each defence layer is visible on its own:
/// dialect accuracy (sniffer), parse fidelity (sniffer + parser), and
/// detection F1 (whole pipeline) — see docs/ROBUSTNESS.md.
struct CategoryRobustness {
  std::string category;
  int files = 0;
  int dialect_correct = 0;  // sniffed dialect equals the expected dialect
  int parse_exact = 0;      // sniffed parse reproduces the expected grid
  Scores detection;         // pooled over the category's files

  double DialectAccuracy() const;
  double ParseFidelity() const;
  double Score() const;
};

struct RobustnessReport {
  /// One entry per category, in first-appearance order of `cases`.
  std::vector<CategoryRobustness> categories;

  /// Unweighted mean of the per-category scores — the headline robustness
  /// number gated in CI (BENCH_robustness.json).
  double AggregateScore() const;
};

/// Runs sniff -> parse -> detect on every case and scores the result against
/// the ground truth, pooled per category.
RobustnessReport ScoreRobustness(const std::vector<RobustnessCase>& cases,
                                 const RobustnessOptions& options);

}  // namespace aggrecol::eval

#endif  // AGGRECOL_EVAL_ROBUSTNESS_H_
