#ifndef AGGRECOL_EVAL_ANNOTATIONS_H_
#define AGGRECOL_EVAL_ANNOTATIONS_H_

#include <optional>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "core/composite_detector.h"
#include "csv/grid.h"
#include "eval/cell_role.h"
#include "numfmt/number_format.h"

namespace aggrecol::eval {

/// A verbose CSV file together with its aggregation ground truth and
/// (optionally) per-cell role labels — the unit of both our synthetic
/// corpora and externally annotated datasets (Sec. 4.1).
struct AnnotatedFile {
  std::string name;
  csv::Grid grid;
  std::vector<core::Aggregation> annotations;

  /// Per-cell roles (same shape as `grid`); empty when unlabeled. Used by the
  /// cell-classification experiment (Table 5).
  std::vector<std::vector<CellRole>> roles;

  /// Composite sum-then-divide ground truth (only present in corpora that
  /// enable the Sec. 6 extension).
  std::vector<core::CompositeAggregation> composites;

  /// Number format the file was serialized with (known for synthetic files).
  numfmt::NumberFormat format = numfmt::NumberFormat::kCommaDot;
};

/// Serializes `annotations` to the line-based annotation format:
/// one line per aggregation, `axis,line,aggregate,function,i1;i2;...,error`.
std::string SerializeAnnotations(const std::vector<core::Aggregation>& annotations);

/// Parses the annotation format produced by SerializeAnnotations. Lines
/// starting with `composite,` are skipped (see ParseComposites). Returns
/// std::nullopt on malformed input.
std::optional<std::vector<core::Aggregation>> ParseAnnotations(const std::string& text);

/// Serializes composite aggregations, one per line:
/// `composite,axis,line,aggregate,denominator,n1;n2;...,error`.
std::string SerializeComposites(
    const std::vector<core::CompositeAggregation>& composites);

/// Parses the `composite,` lines of an annotation file (other lines are
/// skipped). Returns std::nullopt on malformed composite lines.
std::optional<std::vector<core::CompositeAggregation>> ParseComposites(
    const std::string& text);

}  // namespace aggrecol::eval

#endif  // AGGRECOL_EVAL_ANNOTATIONS_H_
