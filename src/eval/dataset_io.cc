#include "eval/dataset_io.h"

#include <algorithm>
#include <filesystem>

#include "csv/parser.h"
#include "csv/sniffer.h"
#include "csv/writer.h"
#include "numfmt/number_format.h"
#include "util/file_io.h"

namespace aggrecol::eval {

bool SaveAnnotatedFile(const std::string& directory, const std::string& stem,
                       const AnnotatedFile& file) {
  const std::string base = directory + "/" + stem;
  const csv::Dialect dialect{',', '"'};
  return util::WriteFile(base + ".csv", csv::WriteGrid(file.grid, dialect)) &&
         util::WriteFile(base + ".annotations",
                         SerializeAnnotations(file.annotations) +
                             SerializeComposites(file.composites));
}

std::optional<AnnotatedFile> LoadAnnotatedFile(const std::string& csv_path,
                                               const std::string& annotations_path) {
  auto mapped = csv::MappedFile::Open(csv_path);
  if (!mapped.has_value()) return std::nullopt;

  AnnotatedFile file;
  file.name = csv_path;
  const auto sniffed = csv::SniffDialect(mapped->view());
  file.grid = csv::ParseGrid(std::move(*mapped), sniffed.dialect,
                             csv::ParseHints{sniffed.modal_row_width});
  file.format = numfmt::ElectFormat(file.grid);

  if (const auto sidecar = util::ReadFile(annotations_path); sidecar.has_value()) {
    auto annotations = ParseAnnotations(*sidecar);
    auto composites = ParseComposites(*sidecar);
    if (!annotations.has_value() || !composites.has_value()) {
      return std::nullopt;  // malformed sidecar
    }
    file.annotations = std::move(*annotations);
    file.composites = std::move(*composites);
  }
  return file;
}

std::optional<std::vector<AnnotatedFile>> LoadCorpusDirectory(
    const std::string& directory) {
  std::error_code error;
  std::vector<std::filesystem::path> csv_paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory, error)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      csv_paths.push_back(entry.path());
    }
  }
  if (error) return std::nullopt;
  std::sort(csv_paths.begin(), csv_paths.end());

  std::vector<AnnotatedFile> files;
  files.reserve(csv_paths.size());
  for (const auto& csv_path : csv_paths) {
    std::filesystem::path sidecar = csv_path;
    sidecar.replace_extension(".annotations");
    auto file = LoadAnnotatedFile(csv_path.string(), sidecar.string());
    if (!file.has_value()) return std::nullopt;
    files.push_back(std::move(*file));
  }
  return files;
}

}  // namespace aggrecol::eval
