#include "eval/file_level.h"

namespace aggrecol::eval {

int FileLevelBin(double score) {
  if (score <= 0.05) return 0;
  if (score <= 0.35) return 1;
  if (score <= 0.65) return 2;
  if (score <= 0.95) return 3;
  return 4;
}

std::string FileLevelBinLabel(int bin) {
  switch (bin) {
    case 0:
      return "[0, 0.05]";
    case 1:
      return "(0.05, 0.35]";
    case 2:
      return "(0.35, 0.65]";
    case 3:
      return "(0.65, 0.95]";
    case 4:
      return "(0.95, 1]";
    default:
      return "?";
  }
}

void FileLevelHistogram::Add(double score) {
  ++counts[FileLevelBin(score)];
  ++total;
}

double FileLevelHistogram::Fraction(int bin) const {
  if (total == 0) return 0.0;
  return static_cast<double>(counts[bin]) / total;
}

FileLevelResult BuildFileLevel(const std::vector<Scores>& per_file) {
  FileLevelResult result;
  for (const auto& scores : per_file) {
    result.precision.Add(scores.precision);
    result.recall.Add(scores.recall);
    result.f1.Add(scores.F1());
  }
  return result;
}

}  // namespace aggrecol::eval
