#ifndef AGGRECOL_EVAL_METRICS_H_
#define AGGRECOL_EVAL_METRICS_H_

#include <optional>
#include <vector>

#include "core/aggregation.h"

namespace aggrecol::eval {

/// Precision/recall/F1 of a result set against a ground truth (Sec. 4.3.1).
/// A detected aggregation is correct when aggregate, range, and function all
/// match a true aggregation; difference is merged into sum before matching
/// (Sec. 4.3.2). Undefined precision (no predictions) and undefined recall
/// (no true aggregations) are set to 1, as in the paper.
struct Scores {
  int correct = 0;
  int incorrect = 0;
  int missed = 0;
  double precision = 1.0;
  double recall = 1.0;

  double F1() const {
    if (precision + recall == 0.0) return 0.0;
    return 2.0 * precision * recall / (precision + recall);
  }
};

/// Which functions a scoring run considers. Sum and difference form one
/// merged class (kSumDifference); std::nullopt means "all functions".
using FunctionFilter = std::optional<core::AggregationFunction>;

/// Scores `predicted` against `truth`. Both sides are canonicalized
/// (difference -> sum, sorted commutative ranges) and deduplicated first.
/// With `filter` set, only aggregations of that (canonical) function count —
/// pass kSum to evaluate the merged sum/difference class.
Scores Score(const std::vector<core::Aggregation>& predicted,
             const std::vector<core::Aggregation>& truth,
             FunctionFilter filter = std::nullopt);

/// Accumulates per-file or per-run score counts into corpus-level scores
/// (the aggregation-level evaluation of Sec. 4.3.2 pools all files).
Scores Accumulate(const std::vector<Scores>& parts);

}  // namespace aggrecol::eval

#endif  // AGGRECOL_EVAL_METRICS_H_
