#include "eval/annotations.h"

#include <sstream>

#include "numfmt/parse_double.h"
#include "util/string_util.h"

namespace aggrecol::eval {

std::string SerializeAnnotations(const std::vector<core::Aggregation>& annotations) {
  std::ostringstream oss;
  for (const auto& aggregation : annotations) {
    oss << ToString(aggregation.axis) << "," << aggregation.line << ","
        << aggregation.aggregate << "," << ToString(aggregation.function) << ",";
    for (size_t i = 0; i < aggregation.range.size(); ++i) {
      if (i > 0) oss << ";";
      oss << aggregation.range[i];
    }
    oss << "," << aggregation.error << "\n";
  }
  return oss.str();
}

std::optional<std::vector<core::Aggregation>> ParseAnnotations(const std::string& text) {
  std::vector<core::Aggregation> out;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) {
    const std::string_view stripped = util::StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const std::vector<std::string> fields = util::Split(stripped, ',');
    if (!fields.empty() && fields[0] == "composite") continue;  // ParseComposites
    if (fields.size() != 6) return std::nullopt;

    core::Aggregation aggregation;
    if (fields[0] == "row") {
      aggregation.axis = core::Axis::kRow;
    } else if (fields[0] == "column") {
      aggregation.axis = core::Axis::kColumn;
    } else {
      return std::nullopt;
    }
    try {
      aggregation.line = std::stoi(fields[1]);
      aggregation.aggregate = std::stoi(fields[2]);
      for (const auto& part : util::Split(fields[4], ';')) {
        aggregation.range.push_back(std::stoi(part));
      }
    } catch (...) {
      return std::nullopt;
    }
    const auto error = numfmt::ParseDouble(fields[5]);
    if (!error.has_value()) return std::nullopt;
    aggregation.error = *error;
    const auto function = core::FunctionFromName(fields[3]);
    if (!function.has_value()) return std::nullopt;
    aggregation.function = *function;
    out.push_back(std::move(aggregation));
  }
  return out;
}

std::string SerializeComposites(
    const std::vector<core::CompositeAggregation>& composites) {
  std::ostringstream oss;
  for (const auto& composite : composites) {
    oss << "composite," << ToString(composite.axis) << "," << composite.line << ","
        << composite.aggregate << "," << composite.denominator << ",";
    for (size_t i = 0; i < composite.numerator.size(); ++i) {
      if (i > 0) oss << ";";
      oss << composite.numerator[i];
    }
    oss << "," << composite.error << "\n";
  }
  return oss.str();
}

std::optional<std::vector<core::CompositeAggregation>> ParseComposites(
    const std::string& text) {
  std::vector<core::CompositeAggregation> out;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) {
    const std::string_view stripped = util::StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const std::vector<std::string> fields = util::Split(stripped, ',');
    if (fields.empty() || fields[0] != "composite") continue;
    if (fields.size() != 7) return std::nullopt;

    core::CompositeAggregation composite;
    if (fields[1] == "row") {
      composite.axis = core::Axis::kRow;
    } else if (fields[1] == "column") {
      composite.axis = core::Axis::kColumn;
    } else {
      return std::nullopt;
    }
    try {
      composite.line = std::stoi(fields[2]);
      composite.aggregate = std::stoi(fields[3]);
      composite.denominator = std::stoi(fields[4]);
      for (const auto& part : util::Split(fields[5], ';')) {
        composite.numerator.push_back(std::stoi(part));
      }
    } catch (...) {
      return std::nullopt;
    }
    const auto error = numfmt::ParseDouble(fields[6]);
    if (!error.has_value()) return std::nullopt;
    composite.error = *error;
    out.push_back(std::move(composite));
  }
  return out;
}

}  // namespace aggrecol::eval
