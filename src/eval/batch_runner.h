#ifndef AGGRECOL_EVAL_BATCH_RUNNER_H_
#define AGGRECOL_EVAL_BATCH_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/aggrecol.h"
#include "eval/annotations.h"
#include "eval/metrics.h"
#include "util/thread_pool.h"

namespace aggrecol::eval {

/// Per-file outcome of a batch run. A file never hangs the batch: a tripped
/// per-file deadline surfaces as kTimedOut, an exception as kFailed.
enum class FileOutcome { kOk, kTimedOut, kFailed };

const char* ToString(FileOutcome outcome);

struct BatchFileReport {
  std::string name;
  FileOutcome outcome = FileOutcome::kOk;

  /// Full detection result; only meaningful when outcome == kOk.
  core::DetectionResult result;

  /// Detections scored against the file's annotations (perfect-by-convention
  /// when the file carries no ground truth); only meaningful for kOk.
  Scores scores;

  /// Wall-clock seconds this file spent in detection (including a timed-out
  /// file's truncated run).
  double seconds = 0.0;

  /// Human-readable error for kFailed.
  std::string error;
};

/// Aggregated view of one batch run.
struct BatchReport {
  /// One entry per input file, in input order regardless of completion order.
  std::vector<BatchFileReport> files;

  int ok = 0;
  int timed_out = 0;
  int failed = 0;

  /// Wall-clock seconds of the whole batch.
  double seconds_wall = 0.0;

  /// Sums of the per-stage timings over completed files (CPU-seconds when
  /// running multi-threaded, so they can exceed seconds_wall).
  double seconds_individual = 0.0;
  double seconds_collective = 0.0;
  double seconds_supplemental = 0.0;

  size_t total_aggregations = 0;

  /// Corpus-level pooled scores over completed files.
  Scores scores;

  /// High-water mark of files being detected concurrently — bounded by
  /// BatchOptions::max_in_flight (asserted by tests/batch_runner_test.cc).
  int max_in_flight_observed = 0;
};

/// Fraction of *decided* files that completed: ok / (ok + failed). Timed-out
/// files are excluded from the denominator — a deadline trip is a scheduling
/// outcome, not a detection failure, so the rate stays comparable across
/// --timeout settings. 1.0 when no file was decided.
double SuccessRate(const BatchReport& report);

struct BatchOptions {
  /// Detection configuration applied to every file. The runner overrides the
  /// `pool`, `threads`, and (when a timeout is set) `cancel` fields: all
  /// parallelism goes through the runner's shared pool.
  core::AggreColConfig config;

  /// Worker threads of the shared pool; 1 = fully sequential on the calling
  /// thread (deadlines still enforced via the cancellation token).
  int threads = 1;

  /// Upper bound on files processed concurrently. The runner streams files
  /// through a sliding window of at most this many submitted-but-unfinished
  /// file tasks, so memory stays bounded on large corpora.
  int max_in_flight = 4;

  /// Per-file deadline in seconds; 0 = none. Measured from the moment the
  /// file's detection starts. Enforced cooperatively: the pipeline polls the
  /// token between rows/derived files/stages and unwinds, so an expensive
  /// file reports kTimedOut instead of stalling the batch.
  double file_timeout_seconds = 0.0;
};

/// Streams a corpus of files through a shared work-stealing pool. File-level
/// tasks and the per-file nested detection tasks share the same pool, so the
/// thread budget is global (no oversubscription however wide the corpus).
/// Results are deterministic: per-file outputs are bit-identical to a
/// sequential run for any thread count, and reports come back in input order.
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options);
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Runs detection over `files` and aggregates the outcome. Reusable: each
  /// call is an independent batch on the same pool.
  BatchReport Run(const std::vector<AnnotatedFile>& files);

  /// The shared pool (nullptr when options.threads <= 1).
  util::ThreadPool* pool() const { return pool_.get(); }

 private:
  BatchFileReport ProcessOne(const AnnotatedFile& file,
                             std::atomic<int>* in_flight,
                             std::atomic<int>* max_in_flight);

  BatchOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace aggrecol::eval

#endif  // AGGRECOL_EVAL_BATCH_RUNNER_H_
