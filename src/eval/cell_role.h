#ifndef AGGRECOL_EVAL_CELL_ROLE_H_
#define AGGRECOL_EVAL_CELL_ROLE_H_

#include <array>
#include <string>

namespace aggrecol::eval {

/// Semantic role of a cell in a verbose CSV file — the cell types used by
/// line/cell classification work (Strudel and Sec. 4.6's Table 5).
enum class CellRole {
  kEmpty,
  kMetadata,     // titles, source lines, ...
  kHeader,       // row or column headers
  kGroupHeader,  // headers that group several data rows/columns
  kData,
  kAggregation,  // aggregate cells
  kNotes,        // footnotes
};

/// All roles, in declaration order.
inline constexpr std::array<CellRole, 7> kAllCellRoles = {
    CellRole::kEmpty,     CellRole::kMetadata,    CellRole::kHeader,
    CellRole::kGroupHeader, CellRole::kData,      CellRole::kAggregation,
    CellRole::kNotes};

/// Dense index of `role` for per-role arrays.
constexpr size_t IndexOf(CellRole role) { return static_cast<size_t>(role); }

/// Short name, e.g. "data", "aggregation".
inline std::string ToString(CellRole role) {
  switch (role) {
    case CellRole::kEmpty:
      return "empty";
    case CellRole::kMetadata:
      return "metadata";
    case CellRole::kHeader:
      return "header";
    case CellRole::kGroupHeader:
      return "group";
    case CellRole::kData:
      return "data";
    case CellRole::kAggregation:
      return "aggregation";
    case CellRole::kNotes:
      return "notes";
  }
  return "unknown";
}

}  // namespace aggrecol::eval

#endif  // AGGRECOL_EVAL_CELL_ROLE_H_
