#ifndef AGGRECOL_EVAL_DATASET_IO_H_
#define AGGRECOL_EVAL_DATASET_IO_H_

#include <optional>
#include <string>
#include <vector>

#include "eval/annotations.h"

namespace aggrecol::eval {

/// Writes `file` as a `<stem>.csv` / `<stem>.annotations` pair inside
/// `directory` (the on-disk corpus layout produced by `aggrecol generate`).
/// Returns false on I/O failure.
bool SaveAnnotatedFile(const std::string& directory, const std::string& stem,
                       const AnnotatedFile& file);

/// Loads one annotated file from a `.csv` path and its `.annotations`
/// sidecar. The CSV dialect is sniffed. A missing sidecar yields an empty
/// ground truth (detection-only use); a malformed sidecar yields nullopt.
std::optional<AnnotatedFile> LoadAnnotatedFile(const std::string& csv_path,
                                               const std::string& annotations_path);

/// Loads every `<stem>.csv` in `directory` (non-recursive), pairing each with
/// `<stem>.annotations` when present. Files are ordered by name. Returns
/// nullopt when the directory cannot be read or any sidecar is malformed.
std::optional<std::vector<AnnotatedFile>> LoadCorpusDirectory(
    const std::string& directory);

}  // namespace aggrecol::eval

#endif  // AGGRECOL_EVAL_DATASET_IO_H_
