#ifndef AGGRECOL_EVAL_FILE_LEVEL_H_
#define AGGRECOL_EVAL_FILE_LEVEL_H_

#include <array>
#include <string>
#include <vector>

#include "eval/metrics.h"

namespace aggrecol::eval {

/// The five display bins of the file-level figures (Figs. 9-11): the paper
/// divides [0, 1] into twenty 0.05-wide bins and groups the sparse middle
/// into three 0.3-wide groups.
inline constexpr int kFileLevelBins = 5;

/// Bin index of `score`: 0 for [0, 0.05], 1 for (0.05, 0.35],
/// 2 for (0.35, 0.65], 3 for (0.65, 0.95], 4 for (0.95, 1].
int FileLevelBin(double score);

/// Human-readable label of bin `bin`, e.g. "(0.95, 1]".
std::string FileLevelBinLabel(int bin);

/// Histogram of a per-file score across a corpus.
struct FileLevelHistogram {
  std::array<int, kFileLevelBins> counts{};
  int total = 0;

  void Add(double score);

  /// Fraction of files in bin `bin`.
  double Fraction(int bin) const;
};

/// Per-file scores of one corpus run, for one function filter.
struct FileLevelResult {
  FileLevelHistogram precision;
  FileLevelHistogram recall;
  FileLevelHistogram f1;
};

/// Builds file-level histograms from per-file Scores.
FileLevelResult BuildFileLevel(const std::vector<Scores>& per_file);

}  // namespace aggrecol::eval

#endif  // AGGRECOL_EVAL_FILE_LEVEL_H_
