#include "eval/robustness.h"

#include <map>

#include "csv/parser.h"
#include "csv/sniffer.h"

namespace aggrecol::eval {

double CategoryRobustness::DialectAccuracy() const {
  if (files == 0) return 0.0;
  return static_cast<double>(dialect_correct) / files;
}

double CategoryRobustness::ParseFidelity() const {
  if (files == 0) return 0.0;
  return static_cast<double>(parse_exact) / files;
}

double CategoryRobustness::Score() const {
  return (DialectAccuracy() + ParseFidelity() + detection.F1()) / 3.0;
}

double RobustnessReport::AggregateScore() const {
  if (categories.empty()) return 0.0;
  double total = 0.0;
  for (const auto& category : categories) total += category.Score();
  return total / static_cast<double>(categories.size());
}

RobustnessReport ScoreRobustness(const std::vector<RobustnessCase>& cases,
                                 const RobustnessOptions& options) {
  RobustnessReport report;
  std::map<std::string, size_t> category_index;
  std::map<std::string, std::vector<Scores>> per_category_scores;
  const core::AggreCol detector(options.config);

  for (const auto& test_case : cases) {
    const csv::SniffResult sniffed =
        options.sniffer == SnifferKind::kConsistency
            ? csv::SniffDialect(test_case.text)
            : csv::SniffDialectReference(test_case.text);
    const csv::Grid grid =
        csv::ParseGrid(test_case.text, sniffed.dialect,
                       csv::ParseHints{sniffed.modal_row_width});

    auto it = category_index.find(test_case.category);
    if (it == category_index.end()) {
      it = category_index.emplace(test_case.category, report.categories.size())
               .first;
      report.categories.push_back({});
      report.categories.back().category = test_case.category;
    }
    CategoryRobustness& entry = report.categories[it->second];
    ++entry.files;
    if (sniffed.dialect == test_case.expected_dialect) ++entry.dialect_correct;
    if (grid == test_case.expected_grid) ++entry.parse_exact;

    // The detector runs on whatever the elected dialect produced: a mis-sniff
    // degrades the detection component exactly the way it would degrade a
    // production run on an untrusted upload.
    const auto result = detector.Detect(grid);
    per_category_scores[test_case.category].push_back(
        Score(result.aggregations, test_case.truth));
  }

  for (auto& entry : report.categories) {
    entry.detection = Accumulate(per_category_scores[entry.category]);
  }
  return report;
}

}  // namespace aggrecol::eval
