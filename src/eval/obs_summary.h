#ifndef AGGRECOL_EVAL_OBS_SUMMARY_H_
#define AGGRECOL_EVAL_OBS_SUMMARY_H_

#include <ostream>

#include "obs/metrics.h"

namespace aggrecol::eval {

/// Renders a per-corpus observability summary from a metrics snapshot: the
/// stage funnel (candidates entering/surviving each pipeline stage), the
/// per-rule prune accounting (R1-R4 plus the collective-stage reasons), and
/// the span latency table. This is the human-readable corpus report behind
/// `aggrecol batch --trace`; the raw snapshot is available via
/// `--metrics-json`. Prints nothing but a notice when the snapshot is empty
/// (e.g. a build with AGGRECOL_OBS=OFF).
void PrintObservabilitySummary(const obs::MetricsSnapshot& snapshot,
                               std::ostream& os);

}  // namespace aggrecol::eval

#endif  // AGGRECOL_EVAL_OBS_SUMMARY_H_
