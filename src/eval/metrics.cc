#include "eval/metrics.h"

#include <algorithm>

namespace aggrecol::eval {
namespace {

// Canonicalizes and *deduplicates* one side of the comparison.
// Deduplication is load-bearing for both sides: duplicate canonical
// predictions (a sum and the difference that folds into it, or the same
// aggregation surfacing from several stages) must count as one prediction,
// and duplicate canonical truth entries must not inflate the miss count.
// CanonicalizeAll's sort + unique provides exactly that set semantics.
std::vector<core::Aggregation> Prepare(const std::vector<core::Aggregation>& in,
                                       FunctionFilter filter) {
  std::vector<core::Aggregation> canonical = core::CanonicalizeAll(in);
  if (filter.has_value()) {
    std::erase_if(canonical, [&filter](const core::Aggregation& aggregation) {
      return aggregation.function != *filter;
    });
  }
  return canonical;
}

}  // namespace

Scores Score(const std::vector<core::Aggregation>& predicted,
             const std::vector<core::Aggregation>& truth, FunctionFilter filter) {
  const std::vector<core::Aggregation> p = Prepare(predicted, filter);
  const std::vector<core::Aggregation> t = Prepare(truth, filter);

  // Prepare() returns the canonical sets sorted by AggregationLess, so
  // membership is a binary search even for huge baseline result sets.
  Scores scores;
  for (const auto& prediction : p) {
    if (std::binary_search(t.begin(), t.end(), prediction, core::AggregationLess)) {
      ++scores.correct;
    } else {
      ++scores.incorrect;
    }
  }
  // Each correct prediction is a distinct element of the deduplicated truth
  // set, so t.size() >= correct always holds; the clamp guards the invariant
  // against any future change that lets duplicates back through Prepare().
  scores.missed = std::max(0, static_cast<int>(t.size()) - scores.correct);

  const int predicted_count = scores.correct + scores.incorrect;
  const int truth_count = scores.correct + scores.missed;
  scores.precision =
      predicted_count == 0 ? 1.0 : static_cast<double>(scores.correct) / predicted_count;
  scores.recall =
      truth_count == 0 ? 1.0 : static_cast<double>(scores.correct) / truth_count;
  return scores;
}

Scores Accumulate(const std::vector<Scores>& parts) {
  Scores total;
  for (const auto& part : parts) {
    total.correct += part.correct;
    total.incorrect += part.incorrect;
    total.missed += part.missed;
  }
  const int predicted_count = total.correct + total.incorrect;
  const int truth_count = total.correct + total.missed;
  total.precision =
      predicted_count == 0 ? 1.0 : static_cast<double>(total.correct) / predicted_count;
  total.recall =
      truth_count == 0 ? 1.0 : static_cast<double>(total.correct) / truth_count;
  return total;
}

}  // namespace aggrecol::eval
