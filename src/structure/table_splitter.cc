#include "structure/table_splitter.h"

namespace aggrecol::structure {

std::vector<TableRegion> SplitTables(const csv::Grid& grid) {
  std::vector<TableRegion> regions;
  int region_start = -1;
  for (int row = 0; row <= grid.rows(); ++row) {
    bool blank = true;
    if (row < grid.rows()) {
      for (int col = 0; col < grid.columns(); ++col) {
        if (!grid.IsEmpty(row, col)) {
          blank = false;
          break;
        }
      }
    }
    if (!blank && region_start < 0) {
      region_start = row;
    } else if (blank && region_start >= 0) {
      regions.push_back({region_start, row - region_start});
      region_start = -1;
    }
  }
  return regions;
}

}  // namespace aggrecol::structure
