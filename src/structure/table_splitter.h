#ifndef AGGRECOL_STRUCTURE_TABLE_SPLITTER_H_
#define AGGRECOL_STRUCTURE_TABLE_SPLITTER_H_

#include <vector>

#include "csv/grid.h"

namespace aggrecol::structure {

/// A contiguous block of non-blank rows — a candidate table region of a
/// verbose CSV file (titles and footnote blocks form regions of their own,
/// which simply yield no detections).
struct TableRegion {
  int first_row = 0;
  int row_count = 0;

  friend bool operator==(const TableRegion&, const TableRegion&) = default;
};

/// Splits a verbose CSV file into blank-row-separated regions. Verbose files
/// often stack several tables (Sec. 2.1 allows any configuration); treating
/// the whole file as one table dilutes the per-pattern coverage scores when
/// the stacked tables have different layouts — splitting restores them.
/// A row is blank when every cell is empty after whitespace stripping.
std::vector<TableRegion> SplitTables(const csv::Grid& grid);

}  // namespace aggrecol::structure

#endif  // AGGRECOL_STRUCTURE_TABLE_SPLITTER_H_
