// The `aggrecol` command-line tool. See `aggrecol help` or src/cli/.
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return aggrecol::cli::RunCli(args, std::cout, std::cerr);
}
