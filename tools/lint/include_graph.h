#ifndef AGGRECOL_TOOLS_LINT_INCLUDE_GRAPH_H_
#define AGGRECOL_TOOLS_LINT_INCLUDE_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "tools/lint/source_lexer.h"

namespace aggrecol::lint {

/// One `#include "..."` directive found in a file.
struct IncludeEdge {
  std::string target;  // repo-relative resolved path, e.g. "src/csv/grid.h"
  int line = 1;        // line of the directive
};

/// Resolves a quoted include path against this project's -I roots (src/ and
/// the repo root) to a repo-relative path. Returns "" for external headers
/// (gtest, system libraries).
std::string ResolveInclude(const std::string& include_text);

/// Extracts every `#include "..."` directive from a lexed file, resolved via
/// ResolveInclude. External includes are dropped.
std::vector<IncludeEdge> ExtractIncludes(const std::vector<Token>& tokens);

/// The project's include graph: repo-relative file path -> files it directly
/// includes. Built from every scanned file so the layering rule (L9) can
/// report transitive violations with the offending chain, not just direct
/// edges.
class IncludeGraph {
 public:
  void AddFile(const std::string& relpath,
               const std::vector<IncludeEdge>& includes);

  /// Shortest include chain (BFS) from `from` to any known file whose path
  /// starts with one of `forbidden_prefixes`. The returned chain starts with
  /// `from` and ends at the forbidden file; empty when unreachable.
  std::vector<std::string> ChainToAny(
      const std::string& from,
      const std::vector<std::string>& forbidden_prefixes) const;

  bool empty() const { return edges_.empty(); }

 private:
  std::map<std::string, std::vector<std::string>> edges_;
};

}  // namespace aggrecol::lint

#endif  // AGGRECOL_TOOLS_LINT_INCLUDE_GRAPH_H_
