#include "tools/lint/symbols.h"

#include <set>

namespace aggrecol::lint {
namespace {

bool IsPunct(const Token& token, std::string_view text) {
  return token.kind == TokenKind::kPunct && token.text == text;
}

bool IsIdent(const Token& token, std::string_view text) {
  return token.kind == TokenKind::kIdentifier && token.text == text;
}

// Keywords that precede '(' without naming a function.
bool IsControlKeyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",     "while",    "switch",        "catch",
      "return",   "sizeof",  "alignof",  "alignas",       "decltype",
      "noexcept", "defined", "__attribute__", "static_assert", "throw"};
  return kKeywords.count(text) > 0;
}

// Qualifier tokens that may sit between a function's ')' and its body '{'.
bool IsTrailingQualifier(const Token& token) {
  if (token.kind == TokenKind::kIdentifier) {
    static const std::set<std::string> kQualifiers = {
        "const", "noexcept", "override", "final", "mutable", "volatile"};
    return kQualifiers.count(token.text) > 0;
  }
  return IsPunct(token, "&") || IsPunct(token, "&&");
}

size_t MatchParen(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], "(")) ++depth;
    if (IsPunct(tokens[i], ")")) {
      if (--depth == 0) return i;
    }
  }
  return tokens.size();
}

constexpr size_t kNone = static_cast<size_t>(-1);

class Indexer {
 public:
  explicit Indexer(const std::vector<Token>& tokens) : t_(tokens) {}

  SymbolIndex Run() {
    ParseRegion(0, t_.size(), "");
    return std::move(out_);
  }

 private:
  // Skips a preprocessor directive: every token on the directive's line,
  // following backslash line continuations.
  size_t SkipDirective(size_t i) {
    int line = t_[i].line;
    while (i < t_.size() && t_[i].line == line) {
      if (IsPunct(t_[i], "\\") &&
          (i + 1 >= t_.size() || t_[i + 1].line == line + 1)) {
        line = line + 1;
      }
      ++i;
    }
    return i;
  }

  // Skips a balanced template argument list starting at '<'. `>>` closes two.
  size_t SkipAngles(size_t i) {
    int depth = 0;
    for (; i < t_.size(); ++i) {
      if (IsPunct(t_[i], "<")) ++depth;
      if (IsPunct(t_[i], ">")) --depth;
      if (IsPunct(t_[i], ">>")) depth -= 2;
      if (depth <= 0) return i + 1;
    }
    return i;
  }

  // From the ')' closing a parameter list, walks trailing qualifiers
  // (including noexcept(...)), a trailing return type, and a constructor
  // initializer list. Returns the index of the body '{' or of a pure
  // declaration's ';', or kNone when neither pattern follows.
  size_t FindBodyOrSemicolon(size_t close) {
    size_t j = close + 1;
    while (j < t_.size() && IsTrailingQualifier(t_[j])) {
      const bool was_noexcept = IsIdent(t_[j], "noexcept");
      ++j;
      if (was_noexcept && j < t_.size() && IsPunct(t_[j], "(")) {
        j = MatchParen(t_, j) + 1;
      }
    }
    if (j < t_.size() && IsPunct(t_[j], "->")) {
      ++j;  // trailing return type: idents, ::, <...>, &, *
      while (j < t_.size() &&
             (t_[j].kind == TokenKind::kIdentifier || IsPunct(t_[j], "::") ||
              IsPunct(t_[j], "&") || IsPunct(t_[j], "*"))) {
        ++j;
        if (j < t_.size() && IsPunct(t_[j], "<")) j = SkipAngles(j);
      }
    }
    if (j < t_.size() && IsPunct(t_[j], ":")) {
      // Constructor initializer list: ident followed by (...) or {...},
      // comma-separated, then the body '{'.
      ++j;
      while (j < t_.size() && t_[j].kind == TokenKind::kIdentifier) {
        ++j;
        if (j < t_.size() && IsPunct(t_[j], "<")) j = SkipAngles(j);
        if (j < t_.size() && IsPunct(t_[j], "(")) {
          j = MatchParen(t_, j) + 1;
        } else if (j < t_.size() && IsPunct(t_[j], "{")) {
          j = MatchBrace(t_, j) + 1;
        } else {
          break;
        }
        if (j < t_.size() && IsPunct(t_[j], ",")) {
          ++j;
          continue;
        }
        break;
      }
    }
    if (j < t_.size() && (IsPunct(t_[j], "{") || IsPunct(t_[j], ";"))) {
      return j;
    }
    return kNone;
  }

  // The name tokens directly before the parameter-list '(': an identifier,
  // optionally '~'-prefixed or 'Class::'-qualified, or 'operator' + punct.
  // Returns false when the '(' does not belong to a function declarator.
  bool NameBefore(size_t open, std::string* name, std::string* qualifier,
                  size_t* name_begin) {
    if (open == 0) return false;
    const Token& prev = t_[open - 1];
    size_t begin = open - 1;
    if (prev.kind == TokenKind::kIdentifier) {
      if (IsControlKeyword(prev.text)) return false;
      *name = prev.text;
      if (begin > 0 && IsPunct(t_[begin - 1], "~")) {
        *name = "~" + *name;
        --begin;
      }
    } else if (prev.kind == TokenKind::kPunct && open >= 2 &&
               IsIdent(t_[open - 2], "operator")) {
      *name = "operator" + prev.text;
      begin = open - 2;
    } else {
      return false;
    }
    if (begin >= 2 && IsPunct(t_[begin - 1], "::") &&
        t_[begin - 2].kind == TokenKind::kIdentifier) {
      *qualifier = t_[begin - 2].text;
      begin -= 2;
    }
    *name_begin = begin;
    return true;
  }

  // Best-effort leading declaration tokens for the declarator starting at
  // `name_begin`: walks back over type-ish tokens, stopping at statement
  // punctuation or `stop`.
  std::string LeadingType(size_t name_begin, size_t stop) {
    size_t b = name_begin;
    while (b > stop) {
      const Token& token = t_[b - 1];
      const bool type_ish =
          token.kind == TokenKind::kIdentifier || IsPunct(token, "::") ||
          IsPunct(token, "<") || IsPunct(token, ">") || IsPunct(token, ">>") ||
          IsPunct(token, "&") || IsPunct(token, "*") || IsPunct(token, ",");
      if (!type_ish) break;
      --b;
    }
    std::string joined;
    for (size_t k = b; k < name_begin; ++k) {
      if (!joined.empty()) joined += ' ';
      joined += t_[k].text;
    }
    return joined;
  }

  void RecordFunction(const std::string& cls, const std::string& name,
                      const std::string& qualifier, size_t name_begin,
                      size_t stmt_begin, size_t body_open) {
    FunctionDef fn;
    fn.name = name;
    const std::string scope = !qualifier.empty() ? qualifier : cls;
    fn.qualified = scope.empty() ? name : scope + "::" + name;
    fn.line = t_[name_begin].line;
    fn.return_type = LeadingType(name_begin, stmt_begin);
    fn.body_begin = body_open;
    fn.body_end = MatchBrace(t_, body_open) + 1;
    out_.functions.push_back(std::move(fn));
  }

  void RecordVariable(size_t begin, size_t semi, size_t assign,
                      size_t init_brace, const std::string& cls) {
    if (semi <= begin) return;
    size_t name_end = semi;
    if (assign != kNone && assign < name_end) name_end = assign;
    if (init_brace != kNone && init_brace < name_end) name_end = init_brace;
    // `name[N]` arrays: the name sits before the '['.
    size_t k = name_end;
    while (k > begin && (IsPunct(t_[k - 1], "]") || IsPunct(t_[k - 1], "[") ||
                         t_[k - 1].kind == TokenKind::kNumber)) {
      --k;
    }
    if (k == begin || t_[k - 1].kind != TokenKind::kIdentifier) return;
    const size_t name_index = k - 1;
    const std::string type = LeadingType(name_index, begin);
    if (type.empty()) return;  // expression statement, not a declaration
    bool literal = true;
    size_t init_start = semi;
    if (assign != kNone && assign < semi) {
      init_start = assign + 1;
    } else if (init_brace != kNone && init_brace < semi) {
      init_start = init_brace;
    }
    for (size_t p = init_start; p < semi; ++p) {
      if (t_[p].kind == TokenKind::kIdentifier) literal = false;
    }
    if (!cls.empty()) {
      if (current_class_ == kNone) return;
      MemberVar member;
      member.type = type;
      member.name = t_[name_index].text;
      member.line = t_[name_index].line;
      member.constexpr_literal =
          type.find("constexpr") != std::string::npos && literal;
      out_.classes[current_class_].members.push_back(std::move(member));
    } else {
      GlobalVar var;
      var.type = type;
      var.name = t_[name_index].text;
      var.line = t_[name_index].line;
      var.literal_init = literal;
      out_.globals.push_back(std::move(var));
    }
  }

  // One region-level statement starting at `i` that is not a namespace,
  // class, enum, using, or directive. Returns the index to resume at.
  size_t ParseStatement(size_t i, size_t end, const std::string& cls) {
    const size_t stmt_begin = i;
    size_t first_paren = kNone;
    size_t assign = kNone;
    size_t init_brace = kNone;
    size_t j = i;
    while (j < end) {
      const Token& token = t_[j];
      if (IsPunct(token, ";")) break;
      if (IsPunct(token, "(")) {
        const bool control = j > 0 &&
                             t_[j - 1].kind == TokenKind::kIdentifier &&
                             IsControlKeyword(t_[j - 1].text);
        if (first_paren == kNone && assign == kNone && !control) {
          first_paren = j;
        }
        j = MatchParen(t_, j) + 1;
        continue;
      }
      if (IsPunct(token, "=") && assign == kNone) assign = j;
      if (IsPunct(token, "{")) {
        // Either a function body or a brace initializer. Decide by replaying
        // the declarator: a parameter list ')' followed (possibly through
        // qualifiers / a ctor initializer list) by a '{' is a definition.
        if (first_paren != kNone && assign == kNone) {
          std::string name;
          std::string qualifier;
          size_t name_begin = 0;
          if (NameBefore(first_paren, &name, &qualifier, &name_begin)) {
            const size_t close = MatchParen(t_, first_paren);
            const size_t body = FindBodyOrSemicolon(close);
            if (body != kNone && IsPunct(t_[body], "{")) {
              RecordFunction(cls, name, qualifier, name_begin, stmt_begin,
                             body);
              return MatchBrace(t_, body) + 1;
            }
            if (body != kNone) return body + 1;  // declaration ';'
          }
        }
        if (init_brace == kNone) init_brace = j;
        j = MatchBrace(t_, j) + 1;
        continue;
      }
      ++j;
    }
    // Statement ended at ';' (or region end). A variable declaration has no
    // parameter list before the initializer.
    if (j < end &&
        (first_paren == kNone || (assign != kNone && first_paren > assign))) {
      RecordVariable(stmt_begin, j, assign, init_brace, cls);
    }
    return j < end ? j + 1 : end;
  }

  // `cls` is taken by value: the recursive call below passes a name that
  // lives inside out_.classes, and nested classes reallocate that vector.
  void ParseRegion(size_t begin, size_t end, std::string cls) {
    size_t i = begin;
    while (i < end) {
      const Token& token = t_[i];
      if (IsPunct(token, "#")) {
        i = SkipDirective(i);
        continue;
      }
      if (IsPunct(token, ";") || IsPunct(token, ":") || IsPunct(token, "}")) {
        ++i;
        continue;
      }
      if (token.kind == TokenKind::kIdentifier) {
        if (token.text == "public" || token.text == "private" ||
            token.text == "protected") {
          ++i;
          continue;
        }
        if (token.text == "namespace") {
          size_t j = i + 1;
          while (j < end && !IsPunct(t_[j], "{") && !IsPunct(t_[j], ";") &&
                 !IsPunct(t_[j], "=")) {
            ++j;
          }
          if (j < end && IsPunct(t_[j], "{")) {
            const size_t close = MatchBrace(t_, j);
            ParseRegion(j + 1, close, "");
            i = close + 1;
          } else {
            while (j < end && !IsPunct(t_[j], ";")) ++j;
            i = j + 1;
          }
          continue;
        }
        if (token.text == "enum") {
          size_t j = i + 1;
          while (j < end && !IsPunct(t_[j], "{") && !IsPunct(t_[j], ";")) ++j;
          if (j < end && IsPunct(t_[j], "{")) j = MatchBrace(t_, j);
          while (j < end && !IsPunct(t_[j], ";")) ++j;
          i = j + 1;
          continue;
        }
        if (token.text == "using" || token.text == "typedef" ||
            token.text == "friend" || token.text == "extern") {
          size_t j = i;
          while (j < end && !IsPunct(t_[j], ";")) {
            if (IsPunct(t_[j], "{")) j = MatchBrace(t_, j);
            ++j;
          }
          i = j + 1;
          continue;
        }
        if (token.text == "template") {
          ++i;
          if (i < end && IsPunct(t_[i], "<")) i = SkipAngles(i);
          continue;
        }
        if (token.text == "class" || token.text == "struct" ||
            token.text == "union") {
          size_t j = i + 1;
          std::string name;
          while (j < end && !IsPunct(t_[j], "{") && !IsPunct(t_[j], ";")) {
            if (name.empty() && t_[j].kind == TokenKind::kIdentifier &&
                t_[j].text != "final" && t_[j].text != "alignas") {
              name = t_[j].text;
            }
            if (IsPunct(t_[j], "(")) j = MatchParen(t_, j);
            ++j;
          }
          if (j >= end || IsPunct(t_[j], ";")) {
            i = j + 1;  // forward declaration
            continue;
          }
          const size_t close = MatchBrace(t_, j);
          ClassDef def;
          def.name = name.empty() ? "<anonymous>" : name;
          def.line = token.line;
          def.end_line = close < t_.size() ? t_[close].line : token.line;
          def.body_begin = j;
          def.body_end = close + 1;
          out_.classes.push_back(std::move(def));
          const size_t saved = current_class_;
          const size_t this_class = out_.classes.size() - 1;
          current_class_ = this_class;
          ParseRegion(j + 1, close, out_.classes[this_class].name);
          current_class_ = saved;
          i = close + 1;
          continue;
        }
      }
      if (IsPunct(token, "{")) {  // stray block (e.g. extern "C" { ... })
        const size_t close = MatchBrace(t_, i);
        ParseRegion(i + 1, close, cls);
        i = close + 1;
        continue;
      }
      i = ParseStatement(i, end, cls);
    }
  }

  const std::vector<Token>& t_;
  SymbolIndex out_;
  size_t current_class_ = kNone;
};

}  // namespace

size_t MatchBrace(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind == TokenKind::kPunct && tokens[i].text == "{") ++depth;
    if (tokens[i].kind == TokenKind::kPunct && tokens[i].text == "}") {
      if (--depth == 0) return i;
    }
  }
  return tokens.size();
}

const ClassDef* SymbolIndex::EnclosingClass(size_t token_index) const {
  const ClassDef* best = nullptr;
  for (const ClassDef& def : classes) {
    if (def.body_begin <= token_index && token_index < def.body_end) {
      if (best == nullptr || def.body_begin > best->body_begin) best = &def;
    }
  }
  return best;
}

SymbolIndex BuildSymbolIndex(const std::vector<Token>& tokens) {
  return Indexer(tokens).Run();
}

}  // namespace aggrecol::lint
