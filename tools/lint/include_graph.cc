#include "tools/lint/include_graph.h"

#include <deque>
#include <set>

namespace aggrecol::lint {
namespace {

// First-segment dispatch mirroring tools/tests' include style: src
// subdirectories are included without the "src/" prefix, everything under
// tools/tests/bench is included repo-relative.
const std::set<std::string>& SrcSegments() {
  static const std::set<std::string> kSegments = {
      "baselines", "cellclass", "cli",       "core", "csv", "datagen",
      "eval",      "numfmt",    "obs",       "structure", "util"};
  return kSegments;
}

}  // namespace

std::string ResolveInclude(const std::string& include_text) {
  const size_t slash = include_text.find('/');
  if (slash == std::string::npos) return "";  // external or flat header
  const std::string segment = include_text.substr(0, slash);
  if (SrcSegments().count(segment) > 0) return "src/" + include_text;
  if (segment == "tools" || segment == "tests" || segment == "bench") {
    return include_text;
  }
  return "";
}

std::vector<IncludeEdge> ExtractIncludes(const std::vector<Token>& tokens) {
  std::vector<IncludeEdge> edges;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct || tokens[i].text != "#") continue;
    if (tokens[i + 1].kind != TokenKind::kIdentifier ||
        tokens[i + 1].text != "include") {
      continue;
    }
    if (tokens[i + 2].kind != TokenKind::kString) continue;  // <...> system
    const std::string resolved = ResolveInclude(tokens[i + 2].text);
    if (resolved.empty()) continue;
    edges.push_back(IncludeEdge{resolved, tokens[i].line});
  }
  return edges;
}

void IncludeGraph::AddFile(const std::string& relpath,
                           const std::vector<IncludeEdge>& includes) {
  std::vector<std::string>& out = edges_[relpath];
  for (const IncludeEdge& edge : includes) out.push_back(edge.target);
}

std::vector<std::string> IncludeGraph::ChainToAny(
    const std::string& from,
    const std::vector<std::string>& forbidden_prefixes) const {
  const auto forbidden = [&forbidden_prefixes](const std::string& path) {
    for (const std::string& prefix : forbidden_prefixes) {
      if (path.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  // BFS recording each node's predecessor; the start node itself is never a
  // violation (a file trivially "reaches" itself).
  std::map<std::string, std::string> parent;
  std::deque<std::string> queue;
  parent[from] = "";
  queue.push_back(from);
  while (!queue.empty()) {
    const std::string current = queue.front();
    queue.pop_front();
    const auto it = edges_.find(current);
    if (it == edges_.end()) continue;
    for (const std::string& next : it->second) {
      if (parent.count(next) > 0) continue;
      parent[next] = current;
      if (forbidden(next)) {
        std::vector<std::string> chain;
        for (std::string node = next; !node.empty(); node = parent[node]) {
          chain.push_back(node);
        }
        return {chain.rbegin(), chain.rend()};
      }
      queue.push_back(next);
    }
  }
  return {};
}

}  // namespace aggrecol::lint
