#ifndef AGGRECOL_TOOLS_LINT_LINTER_H_
#define AGGRECOL_TOOLS_LINT_LINTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/include_graph.h"

namespace aggrecol::lint {

/// One violation (or malformed suppression / unreadable input) found while
/// linting.
struct Diagnostic {
  std::string path;     // repo-relative, forward slashes
  int line = 0;         // 1-based; 0 for whole-file problems (rule "io")
  std::string rule;     // "L1".."L9", "suppression", or "io"
  std::string message;  // human-readable explanation

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// A compiled rule, for --list-rules and the docs drift check.
struct RuleInfo {
  std::string id;       // "L1".."L9"
  std::string name;     // short kebab-case name
  std::string summary;  // one-line description
  std::string paths;    // human-readable enforced-path description
};

/// The compiled rule registry, in id order. docs/STATIC_ANALYSIS.md is
/// drift-checked against this list by tests/docs_test.cc.
const std::vector<RuleInfo>& Rules();

struct Options {
  /// Contents of docs/OBSERVABILITY.md; the catalog rule L5 checks obs
  /// metric-name literals against. When empty, L5 is skipped.
  std::string obs_catalog;

  /// Whole-project include graph for the layering rule L9. When null, L9
  /// still checks the file's direct includes but cannot report transitive
  /// chains. LintTree builds and wires this automatically.
  const IncludeGraph* include_graph = nullptr;
};

/// Lints one translation unit. `relpath` is the repo-relative path with
/// forward slashes — rule scoping ("src/core/", "src/numfmt/", ...) keys off
/// it. Diagnostics suppressed by a well-formed
/// `// aggrecol-lint: allow(<rule>): <reason>` are dropped; malformed
/// directives (missing reason) are reported as rule "suppression".
std::vector<Diagnostic> LintSource(std::string_view relpath,
                                   std::string_view content,
                                   const Options& options = {});

/// Walks `root`'s src/, tests/, bench/, and tools/ trees (every .cc/.h file,
/// sorted order), builds the include graph, and lints each file; loads
/// docs/OBSERVABILITY.md from `root` as the L5 catalog. Unreadable files and
/// missing roots are reported as rule "io" diagnostics, never skipped
/// silently. `scanned`, when non-null, receives the repo-relative paths
/// visited.
std::vector<Diagnostic> LintTree(const std::string& root,
                                 std::vector<std::string>* scanned = nullptr);

}  // namespace aggrecol::lint

#endif  // AGGRECOL_TOOLS_LINT_LINTER_H_
