#include "tools/lint/linter.h"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "tools/lint/source_lexer.h"
#include "tools/lint/symbols.h"

namespace aggrecol::lint {
namespace {

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Rule scoping. Paths are repo-relative with forward slashes.
// ---------------------------------------------------------------------------

// L1: the sanctioned wrapper is the only place allowed to host a fallback.
bool InScopeL1(std::string_view path) {
  return path != "src/numfmt/parse_double.h";
}

// L2: float comparisons are policed where Def. 5 tolerance matters.
bool InScopeL2(std::string_view path) {
  return StartsWith(path, "src/core/") && path != "src/core/approx.h";
}

// L3: code paths whose output feeds detection results must be deterministic.
bool InScopeL3(std::string_view path) {
  for (std::string_view prefix :
       {"src/core/", "src/eval/", "src/numfmt/", "src/csv/", "src/structure/",
        "src/cellclass/", "src/baselines/"}) {
    if (StartsWith(path, prefix)) return true;
  }
  return false;
}

// L4: production and bench code parallelize via util::ThreadPool only.
bool InScopeL4(std::string_view path) {
  if (path == "src/util/thread_pool.h" || path == "src/util/thread_pool.cc") {
    return false;
  }
  return StartsWith(path, "src/") || StartsWith(path, "bench/");
}

// L5: instrumented pipeline code lives under src/.
bool InScopeL5(std::string_view path) { return StartsWith(path, "src/"); }

// L6: csv::MappedFile is the single sanctioned owner of memory mappings.
bool InScopeL6(std::string_view path) {
  return path != "src/csv/mapped_file.h" && path != "src/csv/mapped_file.cc";
}

// L7: the zero-copy pipeline, where cells are views into a grid's arena.
// Same result-bearing set as L3 — everything that touches Grid cells.
bool InScopeL7(std::string_view path) { return InScopeL3(path); }

// ---------------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------------

bool IsPunct(const Token& token, std::string_view text) {
  return token.kind == TokenKind::kPunct && token.text == text;
}

bool IsIdent(const Token& token, std::string_view text) {
  return token.kind == TokenKind::kIdentifier && token.text == text;
}

// True for number tokens spelled as floating-point (a '.' or a decimal
// exponent; hex literals excluded).
bool IsFloatLiteral(const Token& token) {
  if (token.kind != TokenKind::kNumber) return false;
  const std::string& text = token.text;
  if (text.size() > 1 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    return false;
  }
  return Contains(text, ".") || Contains(text, "e") || Contains(text, "E");
}

// True when a float literal spells exactly zero ("0.0", "0.", ".0", "0.0f").
bool IsZeroLiteral(const Token& token) {
  std::string digits;
  for (const char c : token.text) {
    if (c == 'f' || c == 'F' || c == 'l' || c == 'L' || c == '\'') continue;
    digits += c;
  }
  double value = 1.0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  return ec == std::errc() && ptr == digits.data() + digits.size() &&
         value == 0.0;
}

// Operand-window boundary for the L2 scan: punctuation that ends the operand
// expression of a comparison. Additive operators are deliberately not
// boundaries so `a + 0.5 == b` still sees the literal.
bool IsWindowBoundary(const Token& token) {
  if (token.kind != TokenKind::kPunct) return false;
  static const std::set<std::string> kBoundaries = {
      "(", ")", "[", "]", "{", "}", ";", ",",  "?",  ":",  "=",
      "<", ">", "<=", ">=", "&&", "||", "!", "<<", ">>", "=="};
  return kBoundaries.count(token.text) > 0;
}

// Identifier substrings that mark a value as a derived floating-point score.
bool IsFloatSuggestiveIdent(const Token& token) {
  if (token.kind != TokenKind::kIdentifier) return false;
  for (std::string_view needle :
       {"error", "ratio", "sufficiency", "coverage", "epsilon"}) {
    if (Contains(token.text, needle)) return true;
  }
  return false;
}

struct FileContext {
  std::string_view path;
  const std::vector<Token>& tokens;
  const Options& options;
  std::vector<Diagnostic>* out;

  void Report(std::string rule, int line, std::string message) const {
    out->push_back(Diagnostic{std::string(path), line, std::move(rule),
                              std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// L1 — locale-dependent numeric parsing.
// ---------------------------------------------------------------------------

void CheckL1(const FileContext& context) {
  if (!InScopeL1(context.path)) return;
  static const std::set<std::string> kParsers = {
      "atof", "strtod", "strtof", "strtold", "stod", "stof", "stold"};
  const auto& tokens = context.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        kParsers.count(tokens[i].text) == 0) {
      continue;
    }
    if (i + 1 >= tokens.size() || !IsPunct(tokens[i + 1], "(")) continue;
    if (i > 0 && (IsPunct(tokens[i - 1], ".") || IsPunct(tokens[i - 1], "->"))) {
      continue;  // member function of some unrelated class
    }
    context.Report("L1", tokens[i].line,
                   "locale-dependent parser `" + tokens[i].text +
                       "` — route through numfmt::ParseDouble "
                       "(src/numfmt/parse_double.h)");
  }
}

// ---------------------------------------------------------------------------
// L2 — raw floating-point ==/!= in src/core/.
// ---------------------------------------------------------------------------

void CheckL2(const FileContext& context) {
  if (!InScopeL2(context.path)) return;
  const auto& tokens = context.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsPunct(tokens[i], "==") && !IsPunct(tokens[i], "!=")) continue;

    // Collect the operand windows on both sides, bounded by expression
    // punctuation and a small radius.
    std::vector<const Token*> window;
    for (size_t left = i, steps = 0; left > 0 && steps < 8; ++steps) {
      --left;
      if (IsWindowBoundary(tokens[left])) break;
      window.push_back(&tokens[left]);
    }
    const size_t left_size = window.size();
    for (size_t right = i + 1, steps = 0;
         right < tokens.size() && steps < 8; ++right, ++steps) {
      if (IsWindowBoundary(tokens[right])) break;
      window.push_back(&tokens[right]);
    }

    bool nonzero_float = false;
    bool zero_float = false;
    for (const Token* token : window) {
      if (!IsFloatLiteral(*token)) continue;
      if (IsZeroLiteral(*token)) {
        zero_float = true;
      } else {
        nonzero_float = true;
      }
    }
    bool suggestive_left = false;
    bool suggestive_right = false;
    for (size_t w = 0; w < window.size(); ++w) {
      if (!IsFloatSuggestiveIdent(*window[w])) continue;
      (w < left_size ? suggestive_left : suggestive_right) = true;
    }

    if (nonzero_float || (!zero_float && suggestive_left && suggestive_right)) {
      context.Report("L2", tokens[i].line,
                     "raw floating-point `" + tokens[i].text +
                         "` — use core::ApproxEq (src/core/approx.h); exact "
                         "comparisons against 0.0 are the only whitelisted "
                         "form");
    }
  }
}

// ---------------------------------------------------------------------------
// L3 — nondeterminism primitives in result-bearing code paths.
// ---------------------------------------------------------------------------

void CheckL3(const FileContext& context) {
  if (!InScopeL3(context.path)) return;
  static const std::set<std::string> kPrimitives = {
      "rand", "srand", "random_device", "system_clock"};
  const auto& tokens = context.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    const bool member_access =
        i > 0 && (IsPunct(tokens[i - 1], ".") || IsPunct(tokens[i - 1], "->"));
    if (kPrimitives.count(tokens[i].text) > 0 && !member_access) {
      context.Report("L3", tokens[i].line,
                     "nondeterminism primitive `" + tokens[i].text +
                         "` in a result-bearing code path — seed an mt19937 "
                         "explicitly and use steady_clock for timing");
      continue;
    }
    if (IsIdent(tokens[i], "time") && !member_access && i + 1 < tokens.size() &&
        IsPunct(tokens[i + 1], "(")) {
      context.Report("L3", tokens[i].line,
                     "wall-clock `time()` in a result-bearing code path — "
                     "results must not depend on the current time");
    }
  }
}

// ---------------------------------------------------------------------------
// L4 — raw threading primitives bypassing util::ThreadPool.
// ---------------------------------------------------------------------------

void CheckL4(const FileContext& context) {
  if (!InScopeL4(context.path)) return;
  const auto& tokens = context.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (IsIdent(tokens[i], "pthread_create")) {
      context.Report("L4", tokens[i].line,
                     "raw pthread_create — submit work to util::ThreadPool");
      continue;
    }
    // std::thread / std::jthread / std::async; static member access like
    // std::thread::hardware_concurrency() is fine.
    if (!IsIdent(tokens[i], "std") || i + 2 >= tokens.size() ||
        !IsPunct(tokens[i + 1], "::")) {
      continue;
    }
    const Token& name = tokens[i + 2];
    const bool static_member =
        i + 3 < tokens.size() && IsPunct(tokens[i + 3], "::");
    if ((IsIdent(name, "thread") && !static_member) ||
        IsIdent(name, "jthread") || IsIdent(name, "async")) {
      context.Report("L4", name.line,
                     "raw std::" + name.text +
                         " — parallelism goes through util::ThreadPool so "
                         "merges stay deterministic and cancellable");
    }
  }
}

// ---------------------------------------------------------------------------
// L5 — obs metric-name literals must match the documented catalog.
// ---------------------------------------------------------------------------

void CheckL5(const FileContext& context) {
  if (!InScopeL5(context.path) || context.options.obs_catalog.empty()) return;
  static const std::set<std::string> kEmitters = {
      "Count", "GaugeSet", "GaugeMax", "Observe", "ScopedSpan"};
  const std::string& catalog = context.options.obs_catalog;
  const auto& tokens = context.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!IsIdent(tokens[i], "obs") || !IsPunct(tokens[i + 1], "::") ||
        tokens[i + 2].kind != TokenKind::kIdentifier ||
        kEmitters.count(tokens[i + 2].text) == 0) {
      continue;
    }
    size_t cursor = i + 3;
    // `obs::ScopedSpan span("...")` declares a variable before the paren.
    if (cursor < tokens.size() &&
        tokens[cursor].kind == TokenKind::kIdentifier) {
      ++cursor;
    }
    if (cursor >= tokens.size() || !IsPunct(tokens[cursor], "(")) continue;
    ++cursor;
    if (cursor >= tokens.size() || tokens[cursor].kind != TokenKind::kString) {
      continue;  // dynamically built name; not statically checkable
    }
    const Token& literal = tokens[cursor];
    const bool concatenated =
        cursor + 1 < tokens.size() && IsPunct(tokens[cursor + 1], "+");
    if (concatenated) {
      // A stem like "numfmt.elect." — the dynamic tail must be documented as
      // a <placeholder> entry sharing the stem.
      if (!Contains(catalog, literal.text + "<")) {
        context.Report("L5", literal.line,
                       "obs name stem \"" + literal.text +
                           "\" has no <placeholder> entry in "
                           "docs/OBSERVABILITY.md");
      }
      continue;
    }
    if (!Contains(catalog, literal.text)) {
      context.Report("L5", literal.line,
                     "obs name \"" + literal.text +
                         "\" is not in the docs/OBSERVABILITY.md catalog");
    }
  }
}

// ---------------------------------------------------------------------------
// L6 — raw memory-mapping calls outside csv::MappedFile.
// ---------------------------------------------------------------------------

void CheckL6(const FileContext& context) {
  if (!InScopeL6(context.path)) return;
  static const std::set<std::string> kMappers = {
      "mmap",           "mmap64",
      "munmap",         "MapViewOfFile",
      "UnmapViewOfFile", "CreateFileMapping",
      "CreateFileMappingA", "CreateFileMappingW"};
  const auto& tokens = context.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        kMappers.count(tokens[i].text) == 0) {
      continue;
    }
    if (i > 0 && (IsPunct(tokens[i - 1], ".") || IsPunct(tokens[i - 1], "->"))) {
      continue;  // member of some unrelated class
    }
    context.Report("L6", tokens[i].line,
                   "raw memory-mapping call `" + tokens[i].text +
                       "` — all mappings go through csv::MappedFile "
                       "(src/csv/mapped_file.h) so view lifetimes stay tied "
                       "to one owner");
  }
}

// ---------------------------------------------------------------------------
// L7 — view escapes out of the owning grid/arena's lifetime.
//
// Built on the symbol pass: per-class member checks, namespace-scope checks,
// and a per-function dataflow pass that tracks which locals own their bytes
// and which views borrow from them.
// ---------------------------------------------------------------------------

// Declaration type strings are space-joined tokens ("std :: vector < std ::
// string_view >"), so substring matching works on whole identifiers.
bool IsViewType(const std::string& type) {
  return Contains(type, "string_view") || Contains(type, "span") ||
         Contains(type, "AxisView");
}

// By-value local types that own the bytes a view may point into. References
// and pointers are excluded: their referent outlives the function by the
// caller's contract.
bool IsOwnerValueType(const std::string& type) {
  if (Contains(type, "&") || Contains(type, "*")) return false;
  if (Contains(type, "string_view")) return false;
  return Contains(type, "Grid") || Contains(type, "MappedFile") ||
         Contains(type, "CellArena") || Contains(type, "string");
}

// Member types that may legitimately anchor an owns(<member>) contract.
bool IsOwnerMemberType(const std::string& type) {
  if (Contains(type, "shared_ptr") || Contains(type, "unique_ptr")) {
    return true;
  }
  if (Contains(type, "string_view")) return false;
  return Contains(type, "string") || Contains(type, "MappedFile") ||
         Contains(type, "CellArena") || Contains(type, "vector < char >");
}

// Keywords that terminate the backward type walk of a local declaration.
bool IsStatementKeyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "return", "if",     "else",  "while",  "for",      "switch",
      "case",   "break",  "continue", "goto", "do",      "new",
      "delete", "throw",  "using", "typedef", "sizeof",  "co_return"};
  return kKeywords.count(text) > 0;
}

struct LocalVar {
  std::string name;
  std::string type;
  size_t decl_index = 0;  // token index of the name
  bool owner = false;
  bool view = false;
  bool is_static = false;
};

// Collects local variable declarations inside one function body: an
// identifier whose next token starts a declarator tail ('=', ';', '{', '(',
// or the ':' of a range-for) and whose leading tokens form a type.
std::vector<LocalVar> CollectLocals(const std::vector<Token>& tokens,
                                    size_t begin, size_t end) {
  std::vector<LocalVar> locals;
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    if (i + 1 >= end) break;
    const Token& next = tokens[i + 1];
    if (!IsPunct(next, "=") && !IsPunct(next, ";") && !IsPunct(next, "{") &&
        !IsPunct(next, "(") && !IsPunct(next, ":")) {
      continue;
    }
    if (IsPunct(next, ":") && i + 2 < end && IsPunct(tokens[i + 2], ":")) {
      continue;  // `::` split across contexts; not a range-for
    }
    // Walk back over type tokens. A declaration needs at least one, and the
    // token before the name must not be an access/scope operator.
    if (i > begin && (IsPunct(tokens[i - 1], ".") ||
                      IsPunct(tokens[i - 1], "->") ||
                      IsPunct(tokens[i - 1], "::"))) {
      continue;
    }
    size_t b = i;
    while (b > begin) {
      const Token& token = tokens[b - 1];
      if (token.kind == TokenKind::kIdentifier &&
          IsStatementKeyword(token.text)) {
        break;
      }
      const bool type_ish =
          token.kind == TokenKind::kIdentifier || IsPunct(token, "::") ||
          IsPunct(token, "<") || IsPunct(token, ">") || IsPunct(token, ">>") ||
          IsPunct(token, "&") || IsPunct(token, "*");
      if (!type_ish) break;
      --b;
    }
    if (b == i) continue;  // no leading type: an expression, not a declaration
    std::string type;
    for (size_t k = b; k < i; ++k) {
      if (!type.empty()) type += ' ';
      type += tokens[k].text;
    }
    if (type == "auto") continue;  // unknown referent; cannot classify
    if (StartsWith(type, "else") || type.back() == ':') continue;
    LocalVar var;
    var.name = tokens[i].text;
    var.type = type;
    var.decl_index = i;
    var.owner = IsOwnerValueType(type);
    var.view = IsViewType(type);
    var.is_static = Contains(type, "static");
    if (var.owner || var.view) locals.push_back(std::move(var));
  }
  return locals;
}

// The initializer/right-hand-side token range starting at `from`: up to the
// statement's ';', or — for range-for initializers — the loop head's ')'.
size_t ExpressionEnd(const std::vector<Token>& tokens, size_t from,
                     size_t end) {
  int depth = 0;
  for (size_t i = from; i < end; ++i) {
    if (IsPunct(tokens[i], "(")) ++depth;
    if (IsPunct(tokens[i], ")")) {
      if (depth == 0) return i;
      --depth;
    }
    if (IsPunct(tokens[i], ";") && depth == 0) return i;
  }
  return end;
}

// Owner methods that hand out views into the owner's storage. Used to decide
// whether an expression mentioning an owner actually produces a view.
bool IsViewProducer(const std::string& name) {
  static const std::set<std::string> kProducers = {
      "at",   "row",  "cell", "Take", "Intern", "substr",
      "data", "view", "text", "bytes", "contents"};
  return kProducers.count(name) > 0;
}

// What an expression dataflow-derives from: scans [from, to) for identifiers
// that are tracked owners or tainted views.
struct Derivation {
  std::string owner;        // first owner local the expression references
  bool via_view = false;    // through a tainted view local
  bool produces_view = false;  // owner reference goes through a view producer
};

Derivation DeriveFrom(const std::vector<Token>& tokens, size_t from, size_t to,
                      const std::vector<LocalVar>& locals,
                      const std::map<std::string, std::string>& taint) {
  Derivation derived;
  bool view_ctor = false;  // `std::string_view(...)` / `span(...)` in range
  for (size_t i = from; i < to; ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    if (tokens[i].text == "string_view" || tokens[i].text == "span") {
      view_ctor = true;
    }
    const auto tainted = taint.find(tokens[i].text);
    if (tainted != taint.end()) {
      if (derived.owner.empty()) derived.owner = tainted->second;
      derived.via_view = true;
      derived.produces_view = true;
      continue;
    }
    for (const LocalVar& local : locals) {
      if (!local.owner || local.name != tokens[i].text) continue;
      if (derived.owner.empty()) derived.owner = local.name;
      // `grid.at(...)`, `arena.Intern(...)`: the call yields a view into the
      // owner. A bare mention (e.g. `grid.rows()`) does not.
      if (i + 3 < to &&
          (IsPunct(tokens[i + 1], ".") || IsPunct(tokens[i + 1], "->")) &&
          tokens[i + 2].kind == TokenKind::kIdentifier &&
          IsViewProducer(tokens[i + 2].text) && IsPunct(tokens[i + 3], "(")) {
        derived.produces_view = true;
      }
    }
  }
  // A view constructed straight from the owner — `string_view(s)` — produces
  // a borrow even without going through a producer method.
  if (!derived.owner.empty() && view_ctor) derived.produces_view = true;
  return derived;
}

// True when [from, to) constructs an allocating std::string temporary
// (`std::string(...)` / `std::string{...}`).
bool HasStringTemporary(const std::vector<Token>& tokens, size_t from,
                        size_t to) {
  for (size_t i = from; i + 1 < to; ++i) {
    if (!IsIdent(tokens[i], "string")) continue;
    if (i >= 2 && !IsPunct(tokens[i - 1], "::")) continue;
    if (IsPunct(tokens[i + 1], "(") || IsPunct(tokens[i + 1], "{")) {
      return true;
    }
  }
  return false;
}

struct L7Symbols {
  const SymbolIndex& symbols;
  const std::vector<OwnsAnnotation>& owns;
};

// Does `def` (a class) carry a valid owns() contract? Returns the annotation
// or nullptr; invalid annotations are reported by the caller.
const OwnsAnnotation* ClassOwns(const ClassDef& def,
                                const std::vector<OwnsAnnotation>& owns) {
  for (const OwnsAnnotation& annotation : owns) {
    if (annotation.line >= def.line && annotation.line <= def.end_line) {
      return &annotation;
    }
  }
  return nullptr;
}

// Is `fn` sanctioned for view sharing — inside a class with an owns()
// contract, a method of such a class, or carrying a function-level owns()?
bool FunctionSanctioned(const FunctionDef& fn, const L7Symbols& context,
                        const std::vector<Token>& tokens) {
  const ClassDef* enclosing = context.symbols.EnclosingClass(fn.body_begin);
  if (enclosing != nullptr &&
      ClassOwns(*enclosing, context.owns) != nullptr) {
    return true;
  }
  const size_t scope_pos = fn.qualified.find("::");
  if (scope_pos != std::string::npos) {
    const std::string cls = fn.qualified.substr(0, scope_pos);
    for (const ClassDef& def : context.symbols.classes) {
      if (def.name == cls && ClassOwns(def, context.owns) != nullptr) {
        return true;
      }
    }
  }
  const int body_end_line = fn.body_end > 0 && fn.body_end <= tokens.size()
                                ? tokens[fn.body_end - 1].line
                                : fn.line;
  for (const OwnsAnnotation& annotation : context.owns) {
    if (annotation.line >= fn.line && annotation.line <= body_end_line) {
      return true;
    }
  }
  return false;
}

void CheckL7(const FileContext& context, const LexResult& lexed,
             const SymbolIndex& symbols) {
  if (!InScopeL7(context.path)) return;
  const auto& tokens = context.tokens;
  const L7Symbols l7{symbols, lexed.owns};

  // (a) Class members of view type need an owns() contract naming an owning
  // member, unless they are constexpr literals.
  for (const ClassDef& def : symbols.classes) {
    const OwnsAnnotation* owns = ClassOwns(def, lexed.owns);
    if (owns != nullptr) {
      bool anchored = false;
      for (const MemberVar& member : def.members) {
        if (member.name == owns->member && IsOwnerMemberType(member.type)) {
          anchored = true;
        }
      }
      if (!anchored) {
        context.Report("L7", owns->line,
                       "owns(" + owns->member + ") names no owning member of " +
                           def.name +
                           " — the contract must point at the shared_ptr/"
                           "arena/string member that keeps the views alive");
      }
    }
    for (const MemberVar& member : def.members) {
      if (!IsViewType(member.type) || member.constexpr_literal) continue;
      if (owns != nullptr) continue;  // sanctioned borrower
      context.Report(
          "L7", member.line,
          "view-typed member `" + member.name + "` of " + def.name +
              " can dangle when the backing buffer dies — either hold the "
              "owner (shared arena) and declare `// aggrecol-lint: "
              "owns(<member>)`, or suppress with a lifetime argument");
    }
  }

  // (b) Namespace-scope views must be constexpr/literal: a global view into
  // runtime-allocated data outlives every owner.
  for (const GlobalVar& var : symbols.globals) {
    if (!IsViewType(var.type)) continue;
    if (var.literal_init || Contains(var.type, "constexpr")) continue;
    context.Report("L7", var.line,
                   "namespace-scope view `" + var.name +
                       "` is initialized from non-literal data — it will "
                       "outlive whatever owns those bytes");
  }

  // (c)+(d) Per-function dataflow: track owner locals and view provenance,
  // then flag returns and member stores that let a borrowed view outlive its
  // owner.
  for (const FunctionDef& fn : symbols.functions) {
    if (fn.body_end <= fn.body_begin || fn.body_end > tokens.size()) continue;
    const size_t begin = fn.body_begin + 1;
    const size_t end = fn.body_end - 1;
    const std::vector<LocalVar> locals = CollectLocals(tokens, begin, end);
    bool has_owner = false;
    for (const LocalVar& local : locals) has_owner |= local.owner;
    const bool returns_view = IsViewType(fn.return_type);
    if (!has_owner && !returns_view) continue;

    // Taint pass: view locals initialized or assigned from owner locals (or
    // from already-tainted views) borrow those owners' storage.
    std::map<std::string, std::string> taint;
    for (const LocalVar& local : locals) {
      if (!local.view) continue;
      const size_t to = ExpressionEnd(tokens, local.decl_index + 1, end);
      const Derivation derived =
          DeriveFrom(tokens, local.decl_index + 1, to, locals, taint);
      if (!derived.owner.empty()) taint[local.name] = derived.owner;
      if (local.is_static && !derived.owner.empty()) {
        context.Report("L7", tokens[local.decl_index].line,
                       "static view `" + local.name +
                           "` borrows from function-local owner `" +
                           derived.owner +
                           "` — it dangles on every call after the first");
      }
    }
    // Assignments after declaration: `view = owner.at(...)`.
    for (size_t i = begin; i < end; ++i) {
      if (tokens[i].kind != TokenKind::kIdentifier || i + 1 >= end ||
          !IsPunct(tokens[i + 1], "=")) {
        continue;
      }
      bool is_view_local = false;
      for (const LocalVar& local : locals) {
        if (local.view && local.name == tokens[i].text) is_view_local = true;
      }
      if (!is_view_local) continue;
      const size_t to = ExpressionEnd(tokens, i + 2, end);
      const Derivation derived = DeriveFrom(tokens, i + 2, to, locals, taint);
      if (!derived.owner.empty()) taint[tokens[i].text] = derived.owner;
    }

    const bool sanctioned = FunctionSanctioned(fn, l7, tokens);

    // Return escapes: a view-returning function must not return borrows of
    // function-local owners (including std::string temporaries).
    if (returns_view) {
      for (size_t i = begin; i < end; ++i) {
        if (!IsIdent(tokens[i], "return")) continue;
        const size_t to = ExpressionEnd(tokens, i + 1, end);
        const Derivation derived =
            DeriveFrom(tokens, i + 1, to, locals, taint);
        if (!derived.owner.empty() && !sanctioned) {
          context.Report("L7", tokens[i].line,
                         "returns a view borrowing function-local owner `" +
                             derived.owner + "` from `" + fn.qualified +
                             "` — the view dangles when the owner is "
                             "destroyed at return");
        }
        if (HasStringTemporary(tokens, i + 1, to)) {
          context.Report("L7", tokens[i].line,
                         "returns a view into a std::string temporary from `" +
                             fn.qualified +
                             "` — the temporary dies before the caller can "
                             "look at the view");
        }
        i = to;
      }
    }

    // Member-store escapes: `member_ = <view borrowing a local owner>` or
    // `member_.push_back(<...>)` publishes a borrow beyond the call.
    if (has_owner && !sanctioned) {
      static const std::set<std::string> kAppenders = {
          "push_back", "emplace_back", "insert", "assign", "emplace"};
      for (size_t i = begin; i < end; ++i) {
        const Token& token = tokens[i];
        if (token.kind != TokenKind::kIdentifier || token.text.size() < 2 ||
            token.text.back() != '_') {
          continue;
        }
        // Only bare members (or this->) count: `local.field_ = ...` stores
        // into a local object that dies with the frame.
        if (i > begin && (IsPunct(tokens[i - 1], ".") ||
                          IsPunct(tokens[i - 1], "->"))) {
          const bool via_this = i >= 2 && IsIdent(tokens[i - 2], "this");
          if (!via_this) continue;
        }
        size_t cursor = i + 1;
        if (cursor < end && IsPunct(tokens[cursor], "[")) {
          int depth = 0;
          while (cursor < end) {
            if (IsPunct(tokens[cursor], "[")) ++depth;
            if (IsPunct(tokens[cursor], "]") && --depth == 0) break;
            ++cursor;
          }
          ++cursor;
        }
        size_t rhs_begin = 0;
        size_t rhs_end = 0;
        if (cursor < end && IsPunct(tokens[cursor], "=")) {
          rhs_begin = cursor + 1;
          rhs_end = ExpressionEnd(tokens, rhs_begin, end);
        } else if (cursor + 2 < end && IsPunct(tokens[cursor], ".") &&
                   tokens[cursor + 1].kind == TokenKind::kIdentifier &&
                   kAppenders.count(tokens[cursor + 1].text) > 0 &&
                   IsPunct(tokens[cursor + 2], "(")) {
          rhs_begin = cursor + 3;
          rhs_end = ExpressionEnd(tokens, rhs_begin, end);
        } else {
          continue;
        }
        const Derivation derived =
            DeriveFrom(tokens, rhs_begin, rhs_end, locals, taint);
        if (derived.owner.empty() || !derived.produces_view) continue;
        context.Report(
            "L7", token.line,
            "stores a view borrowing function-local owner `" + derived.owner +
                "` into member `" + token.text + "` in `" + fn.qualified +
                "` — the member outlives the owner; share the arena and "
                "declare `// aggrecol-lint: owns(<member>)` if intended");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L8 — allocation in designated hot-path functions.
//
// The zero-copy and O(1)-screen claims in docs/INGEST.md and
// docs/PERFORMANCE.md hold only if the scanner tiers, the parser inner loop,
// LineIndex screening, number-format matching, and the stage-1 kernels never
// allocate per cell. This registry pins those functions by (file, name); a
// registered name that disappears is itself a violation, so renames cannot
// silently drop coverage.
// ---------------------------------------------------------------------------

struct HotPathEntry {
  std::string_view file;
  std::vector<std::string_view> functions;
};

const std::vector<HotPathEntry>& HotPaths() {
  static const std::vector<HotPathEntry> kHotPaths = {
      {"src/csv/scanner.cc",
       {"ScanScalar", "ScanSwar", "ScanSse2", "ScanAvx2", "ScanStructural"}},
      {"src/csv/parser.cc", {"ParseStructural"}},
      {"src/core/line_index.cc", {"Build", "CompensatedSum", "BuildSpanBounds"}},
      {"src/core/adjacency_strategy.cc", {"SearchDirectionIndexed"}},
      {"src/core/window_strategy.cc", {"TestWindows", "RejectWholeWindow"}},
      {"src/core/extension.cc", {"ExtendRowWithIndex"}},
      {"src/numfmt/number_format.cc",
       {"ParseShape", "ParseNumber", "MatchesFormat"}},
      {"src/numfmt/numeric_grid.cc", {"InterpretCell", "FromGrid"}},
  };
  return kHotPaths;
}

void CheckL8(const FileContext& context, const SymbolIndex& symbols) {
  const HotPathEntry* entry = nullptr;
  for (const HotPathEntry& candidate : HotPaths()) {
    if (candidate.file == context.path) entry = &candidate;
  }
  if (entry == nullptr) return;
  const auto& tokens = context.tokens;

  static const std::set<std::string> kAllocIdents = {
      "to_string", "ostringstream", "stringstream", "strstream"};
  static const std::set<std::string> kAllocHelpers = {
      "Split", "Join", "ToLower", "ReplaceAll", "FormatDouble"};

  for (const std::string_view name : entry->functions) {
    bool found = false;
    for (const FunctionDef& fn : symbols.functions) {
      if (fn.name != name) continue;
      found = true;
      if (fn.body_end <= fn.body_begin || fn.body_end > tokens.size()) {
        continue;
      }
      for (size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
        const Token& token = tokens[i];
        if (token.kind != TokenKind::kIdentifier) continue;
        const bool member_access =
            IsPunct(tokens[i - 1], ".") || IsPunct(tokens[i - 1], "->");
        if (token.text == "new" && !member_access) {
          context.Report("L8", token.line,
                         "heap allocation (`new`) in hot path `" +
                             fn.qualified + "` — this function is on the "
                             "zero-alloc registry (docs/INGEST.md)");
          continue;
        }
        if (IsIdent(token, "string") && i > 0 && IsPunct(tokens[i - 1], "::") &&
            i + 1 < fn.body_end &&
            (tokens[i + 1].kind == TokenKind::kIdentifier ||
             IsPunct(tokens[i + 1], "(") || IsPunct(tokens[i + 1], "{"))) {
          context.Report("L8", token.line,
                         "std::string construction in hot path `" +
                             fn.qualified +
                             "` — keep the per-cell path allocation-free "
                             "(string_view + stack buffers)");
          continue;
        }
        if (kAllocIdents.count(token.text) > 0 && !member_access) {
          context.Report("L8", token.line,
                         "allocating call `" + token.text + "` in hot path `" +
                             fn.qualified + "`");
          continue;
        }
        if (kAllocHelpers.count(token.text) > 0 && i + 1 < fn.body_end &&
            IsPunct(tokens[i + 1], "(")) {
          context.Report("L8", token.line,
                         "allocating helper `util::" + token.text +
                             "` in hot path `" + fn.qualified +
                             "` — these build std::string/vector results per "
                             "call");
        }
      }
    }
    if (!found) {
      context.Report(
          "L8", 1,
          "hot-path registry lists `" + std::string(name) + "` but " +
              std::string(context.path) +
              " no longer defines it — renamed? update the kHotPaths "
              "registry in tools/lint/linter.cc so coverage is not lost");
    }
  }
}

// ---------------------------------------------------------------------------
// L9 — layering: the include graph must keep compute layers below sinks.
// ---------------------------------------------------------------------------

struct LayerRule {
  std::string_view subject_prefix;
  std::vector<std::string> forbidden;
  std::string_view rationale;
};

const std::vector<LayerRule>& LayerRules() {
  static const std::vector<LayerRule> kRules = {
      {"src/core/",
       {"src/cli/", "src/eval/", "src/obs/sinks"},
       "core detects; it must not know about CLI, evaluation, or metric "
       "sinks"},
      {"src/numfmt/",
       {"src/cli/", "src/eval/", "src/obs/sinks"},
       "numfmt normalizes; it must not know about CLI, evaluation, or "
       "metric sinks"},
      {"src/csv/",
       {"src/core/"},
       "the csv layer sits below core — grids flow up, never detection "
       "logic down"},
  };
  return kRules;
}

void CheckL9(const FileContext& context,
             const std::vector<IncludeEdge>& includes) {
  const LayerRule* rule = nullptr;
  for (const LayerRule& candidate : LayerRules()) {
    if (StartsWith(context.path, candidate.subject_prefix)) rule = &candidate;
  }
  if (rule == nullptr) return;

  const auto forbidden = [rule](const std::string& target) {
    for (const std::string& prefix : rule->forbidden) {
      if (StartsWith(target, prefix)) return true;
    }
    return false;
  };

  // Direct edges: line-accurate.
  for (const IncludeEdge& edge : includes) {
    if (!forbidden(edge.target)) continue;
    context.Report("L9", edge.line,
                   "layering violation: " + std::string(context.path) +
                       " includes " + edge.target + " — " +
                       std::string(rule->rationale));
  }

  // Transitive reachability through the whole-project graph. Direct edges
  // were already reported above; a chain of length 2 is a direct edge.
  if (context.options.include_graph == nullptr) return;
  const std::vector<std::string> chain =
      context.options.include_graph->ChainToAny(std::string(context.path),
                                                rule->forbidden);
  if (chain.size() <= 2) return;
  int line = 1;
  for (const IncludeEdge& edge : includes) {
    if (edge.target == chain[1]) line = edge.line;
  }
  std::string rendered;
  for (const std::string& node : chain) {
    if (!rendered.empty()) rendered += " -> ";
    rendered += node;
  }
  context.Report("L9", line,
                 "transitive layering violation: " + rendered + " — " +
                     std::string(rule->rationale));
}

// ---------------------------------------------------------------------------
// Suppression filtering.
// ---------------------------------------------------------------------------

bool KnownRule(const std::string& id) {
  for (const RuleInfo& rule : Rules()) {
    if (rule.id == id) return true;
  }
  return false;
}

// The set of lines a suppression covers: its own line, plus — for a comment
// with no code before it on its line — the line of the next code token.
std::set<int> CoveredLines(const Suppression& suppression,
                           const std::vector<Token>& tokens) {
  std::set<int> lines = {suppression.line};
  if (suppression.own_line) {
    for (const Token& token : tokens) {
      if (token.line > suppression.line) {
        lines.insert(token.line);
        break;
      }
    }
  }
  return lines;
}

// Shared core of LintSource and LintTree: all nine rules plus suppression
// validation over an already-lexed file. LintTree lexes each file once for
// the include graph and reuses that LexResult here.
std::vector<Diagnostic> LintLexed(std::string_view relpath,
                                  const LexResult& lexed,
                                  const Options& options) {
  const SymbolIndex symbols = BuildSymbolIndex(lexed.tokens);
  const std::vector<IncludeEdge> includes = ExtractIncludes(lexed.tokens);
  std::vector<Diagnostic> raw;
  const FileContext context{relpath, lexed.tokens, options, &raw};
  CheckL1(context);
  CheckL2(context);
  CheckL3(context);
  CheckL4(context);
  CheckL5(context);
  CheckL6(context);
  CheckL7(context, lexed, symbols);
  CheckL8(context, symbols);
  CheckL9(context, includes);

  std::vector<Diagnostic> out;
  for (const Suppression& suppression : lexed.suppressions) {
    if (!KnownRule(suppression.rule)) {
      out.push_back(Diagnostic{
          std::string(relpath), suppression.line, "suppression",
          "allow(" + suppression.rule + ") names no compiled rule"});
    } else if (!suppression.has_reason) {
      out.push_back(Diagnostic{
          std::string(relpath), suppression.line, "suppression",
          "allow(" + suppression.rule +
              ") needs a reason: `// aggrecol-lint: allow(" + suppression.rule +
              "): <why this is sound>`"});
    }
  }
  for (Diagnostic& diagnostic : raw) {
    bool suppressed = false;
    for (const Suppression& suppression : lexed.suppressions) {
      if (suppression.rule != diagnostic.rule || !suppression.has_reason) {
        continue;
      }
      if (CoveredLines(suppression, lexed.tokens).count(diagnostic.line) > 0) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(diagnostic));
  }
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  return out;
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"L1", "locale-parse",
       "no std::stod/stof/atof/strtod outside numfmt::ParseDouble — "
       "locale-dependent parsing misreads Table 4 normalized numbers",
       "everywhere except src/numfmt/parse_double.h"},
      {"L2", "float-compare",
       "no raw ==/!= between floating-point expressions in src/core/ — "
       "route through core::ApproxEq; exact-zero guards are whitelisted",
       "src/core/ except approx.h"},
      {"L3", "nondeterminism",
       "no rand/std::random_device/time()/system_clock in code paths that "
       "feed detection results",
       "src/{core,eval,numfmt,csv,structure,cellclass,baselines}/"},
      {"L4", "raw-thread",
       "no std::thread/std::async bypassing util::ThreadPool in src/ or "
       "bench/",
       "src/ and bench/ except util/thread_pool.*"},
      {"L5", "obs-catalog",
       "obs counter/gauge/span name literals must appear in the "
       "docs/OBSERVABILITY.md catalog",
       "src/"},
      {"L6", "mmap-owner",
       "no mmap/munmap/MapViewOfFile outside src/csv/mapped_file.* — "
       "csv::MappedFile is the single owner of mapping lifetimes",
       "everywhere except src/csv/mapped_file.*"},
      {"L7", "view-escape",
       "no string_view/Grid-cell views stored into members, statics, or "
       "returns that outlive the owning grid/arena; sanctioned sharing "
       "carries an `owns(<member>)` contract",
       "src/{core,eval,numfmt,csv,structure,cellclass,baselines}/"},
      {"L8", "hot-path-alloc",
       "no std::string construction, `new`, or allocating helpers inside "
       "the registered hot-path functions (scanner tiers, parser inner "
       "loop, LineIndex screening, stage-1 kernels)",
       "registered functions in src/csv/, src/core/, src/numfmt/"},
      {"L9", "layering",
       "include-graph layering: core/ and numfmt/ must not reach cli/, "
       "eval/, or obs sinks; csv/ must not reach core/ — directly or "
       "transitively",
       "src/core/, src/numfmt/, src/csv/"},
  };
  return kRules;
}

std::vector<Diagnostic> LintSource(std::string_view relpath,
                                   std::string_view content,
                                   const Options& options) {
  return LintLexed(relpath, Lex(content), options);
}

std::vector<Diagnostic> LintTree(const std::string& root,
                                 std::vector<std::string>* scanned) {
  namespace fs = std::filesystem;
  Options options;
  {
    std::ifstream catalog(fs::path(root) / "docs" / "OBSERVABILITY.md");
    if (catalog.is_open()) {
      std::ostringstream content;
      content << catalog.rdbuf();
      options.obs_catalog = content.str();
    }
  }

  std::vector<Diagnostic> out;
  std::vector<std::string> paths;
  std::error_code ec;
  for (const char* tree : {"src", "tests", "bench", "tools"}) {
    const fs::path base = fs::path(root) / tree;
    if (!fs::exists(base, ec)) {
      out.push_back(Diagnostic{
          tree, 0, "io",
          "input tree " + base.generic_string() +
              " does not exist — wrong --root, or a tree was deleted?"});
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string extension = entry.path().extension().string();
      if (extension != ".cc" && extension != ".h") continue;
      paths.push_back(
          fs::path(entry.path()).lexically_relative(root).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());

  // Phase 1: read and lex every file once, building the project include
  // graph so L9 can chase transitive chains; the LexResults are kept for
  // phase 2 so the tree is tokenized once per run. Unreadable files are
  // diagnostics, not skips: a file the linter cannot see is a file the
  // invariants do not cover.
  std::map<std::string, LexResult> lexed_files;
  IncludeGraph graph;
  for (const std::string& path : paths) {
    std::ifstream file(fs::path(root) / path);
    if (!file.is_open()) {
      out.push_back(Diagnostic{path, 0, "io",
                               "cannot open file for reading — permissions, "
                               "or a dangling symlink?"});
      continue;
    }
    std::ostringstream content;
    content << file.rdbuf();
    if (file.bad()) {
      out.push_back(
          Diagnostic{path, 0, "io", "read failed before end of file"});
      continue;
    }
    LexResult lexed = Lex(content.str());
    graph.AddFile(path, ExtractIncludes(lexed.tokens));
    lexed_files.emplace(path, std::move(lexed));
  }
  options.include_graph = &graph;

  // Phase 2: lint each readable file with the full graph available.
  for (const auto& [path, lexed] : lexed_files) {
    std::vector<Diagnostic> diagnostics = LintLexed(path, lexed, options);
    out.insert(out.end(), std::make_move_iterator(diagnostics.begin()),
               std::make_move_iterator(diagnostics.end()));
    if (scanned != nullptr) scanned->push_back(path);
  }
  return out;
}

}  // namespace aggrecol::lint
