#include "tools/lint/linter.h"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "tools/lint/source_lexer.h"

namespace aggrecol::lint {
namespace {

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Rule scoping. Paths are repo-relative with forward slashes.
// ---------------------------------------------------------------------------

// L1: the sanctioned wrapper is the only place allowed to host a fallback.
bool InScopeL1(std::string_view path) {
  return path != "src/numfmt/parse_double.h";
}

// L2: float comparisons are policed where Def. 5 tolerance matters.
bool InScopeL2(std::string_view path) {
  return StartsWith(path, "src/core/") && path != "src/core/approx.h";
}

// L3: code paths whose output feeds detection results must be deterministic.
bool InScopeL3(std::string_view path) {
  for (std::string_view prefix :
       {"src/core/", "src/eval/", "src/numfmt/", "src/csv/", "src/structure/",
        "src/cellclass/", "src/baselines/"}) {
    if (StartsWith(path, prefix)) return true;
  }
  return false;
}

// L4: production and bench code parallelize via util::ThreadPool only.
bool InScopeL4(std::string_view path) {
  if (path == "src/util/thread_pool.h" || path == "src/util/thread_pool.cc") {
    return false;
  }
  return StartsWith(path, "src/") || StartsWith(path, "bench/");
}

// L5: instrumented pipeline code lives under src/.
bool InScopeL5(std::string_view path) { return StartsWith(path, "src/"); }

// L6: csv::MappedFile is the single sanctioned owner of memory mappings.
bool InScopeL6(std::string_view path) {
  return path != "src/csv/mapped_file.h" && path != "src/csv/mapped_file.cc";
}

// ---------------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------------

bool IsPunct(const Token& token, std::string_view text) {
  return token.kind == TokenKind::kPunct && token.text == text;
}

bool IsIdent(const Token& token, std::string_view text) {
  return token.kind == TokenKind::kIdentifier && token.text == text;
}

// True for number tokens spelled as floating-point (a '.' or a decimal
// exponent; hex literals excluded).
bool IsFloatLiteral(const Token& token) {
  if (token.kind != TokenKind::kNumber) return false;
  const std::string& text = token.text;
  if (text.size() > 1 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    return false;
  }
  return Contains(text, ".") || Contains(text, "e") || Contains(text, "E");
}

// True when a float literal spells exactly zero ("0.0", "0.", ".0", "0.0f").
bool IsZeroLiteral(const Token& token) {
  std::string digits;
  for (const char c : token.text) {
    if (c == 'f' || c == 'F' || c == 'l' || c == 'L' || c == '\'') continue;
    digits += c;
  }
  double value = 1.0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  return ec == std::errc() && ptr == digits.data() + digits.size() &&
         value == 0.0;
}

// Operand-window boundary for the L2 scan: punctuation that ends the operand
// expression of a comparison. Additive operators are deliberately not
// boundaries so `a + 0.5 == b` still sees the literal.
bool IsWindowBoundary(const Token& token) {
  if (token.kind != TokenKind::kPunct) return false;
  static const std::set<std::string> kBoundaries = {
      "(", ")", "[", "]", "{", "}", ";", ",",  "?",  ":",  "=",
      "<", ">", "<=", ">=", "&&", "||", "!", "<<", ">>", "=="};
  return kBoundaries.count(token.text) > 0;
}

// Identifier substrings that mark a value as a derived floating-point score.
bool IsFloatSuggestiveIdent(const Token& token) {
  if (token.kind != TokenKind::kIdentifier) return false;
  for (std::string_view needle :
       {"error", "ratio", "sufficiency", "coverage", "epsilon"}) {
    if (Contains(token.text, needle)) return true;
  }
  return false;
}

struct FileContext {
  std::string_view path;
  const std::vector<Token>& tokens;
  const Options& options;
  std::vector<Diagnostic>* out;

  void Report(std::string rule, int line, std::string message) const {
    out->push_back(Diagnostic{std::string(path), line, std::move(rule),
                              std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// L1 — locale-dependent numeric parsing.
// ---------------------------------------------------------------------------

void CheckL1(const FileContext& context) {
  if (!InScopeL1(context.path)) return;
  static const std::set<std::string> kParsers = {
      "atof", "strtod", "strtof", "strtold", "stod", "stof", "stold"};
  const auto& tokens = context.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        kParsers.count(tokens[i].text) == 0) {
      continue;
    }
    if (i + 1 >= tokens.size() || !IsPunct(tokens[i + 1], "(")) continue;
    if (i > 0 && (IsPunct(tokens[i - 1], ".") || IsPunct(tokens[i - 1], "->"))) {
      continue;  // member function of some unrelated class
    }
    context.Report("L1", tokens[i].line,
                   "locale-dependent parser `" + tokens[i].text +
                       "` — route through numfmt::ParseDouble "
                       "(src/numfmt/parse_double.h)");
  }
}

// ---------------------------------------------------------------------------
// L2 — raw floating-point ==/!= in src/core/.
// ---------------------------------------------------------------------------

void CheckL2(const FileContext& context) {
  if (!InScopeL2(context.path)) return;
  const auto& tokens = context.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsPunct(tokens[i], "==") && !IsPunct(tokens[i], "!=")) continue;

    // Collect the operand windows on both sides, bounded by expression
    // punctuation and a small radius.
    std::vector<const Token*> window;
    for (size_t left = i, steps = 0; left > 0 && steps < 8; ++steps) {
      --left;
      if (IsWindowBoundary(tokens[left])) break;
      window.push_back(&tokens[left]);
    }
    const size_t left_size = window.size();
    for (size_t right = i + 1, steps = 0;
         right < tokens.size() && steps < 8; ++right, ++steps) {
      if (IsWindowBoundary(tokens[right])) break;
      window.push_back(&tokens[right]);
    }

    bool nonzero_float = false;
    bool zero_float = false;
    for (const Token* token : window) {
      if (!IsFloatLiteral(*token)) continue;
      if (IsZeroLiteral(*token)) {
        zero_float = true;
      } else {
        nonzero_float = true;
      }
    }
    bool suggestive_left = false;
    bool suggestive_right = false;
    for (size_t w = 0; w < window.size(); ++w) {
      if (!IsFloatSuggestiveIdent(*window[w])) continue;
      (w < left_size ? suggestive_left : suggestive_right) = true;
    }

    if (nonzero_float || (!zero_float && suggestive_left && suggestive_right)) {
      context.Report("L2", tokens[i].line,
                     "raw floating-point `" + tokens[i].text +
                         "` — use core::ApproxEq (src/core/approx.h); exact "
                         "comparisons against 0.0 are the only whitelisted "
                         "form");
    }
  }
}

// ---------------------------------------------------------------------------
// L3 — nondeterminism primitives in result-bearing code paths.
// ---------------------------------------------------------------------------

void CheckL3(const FileContext& context) {
  if (!InScopeL3(context.path)) return;
  static const std::set<std::string> kPrimitives = {
      "rand", "srand", "random_device", "system_clock"};
  const auto& tokens = context.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    const bool member_access =
        i > 0 && (IsPunct(tokens[i - 1], ".") || IsPunct(tokens[i - 1], "->"));
    if (kPrimitives.count(tokens[i].text) > 0 && !member_access) {
      context.Report("L3", tokens[i].line,
                     "nondeterminism primitive `" + tokens[i].text +
                         "` in a result-bearing code path — seed an mt19937 "
                         "explicitly and use steady_clock for timing");
      continue;
    }
    if (IsIdent(tokens[i], "time") && !member_access && i + 1 < tokens.size() &&
        IsPunct(tokens[i + 1], "(")) {
      context.Report("L3", tokens[i].line,
                     "wall-clock `time()` in a result-bearing code path — "
                     "results must not depend on the current time");
    }
  }
}

// ---------------------------------------------------------------------------
// L4 — raw threading primitives bypassing util::ThreadPool.
// ---------------------------------------------------------------------------

void CheckL4(const FileContext& context) {
  if (!InScopeL4(context.path)) return;
  const auto& tokens = context.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (IsIdent(tokens[i], "pthread_create")) {
      context.Report("L4", tokens[i].line,
                     "raw pthread_create — submit work to util::ThreadPool");
      continue;
    }
    // std::thread / std::jthread / std::async; static member access like
    // std::thread::hardware_concurrency() is fine.
    if (!IsIdent(tokens[i], "std") || i + 2 >= tokens.size() ||
        !IsPunct(tokens[i + 1], "::")) {
      continue;
    }
    const Token& name = tokens[i + 2];
    const bool static_member =
        i + 3 < tokens.size() && IsPunct(tokens[i + 3], "::");
    if ((IsIdent(name, "thread") && !static_member) ||
        IsIdent(name, "jthread") || IsIdent(name, "async")) {
      context.Report("L4", name.line,
                     "raw std::" + name.text +
                         " — parallelism goes through util::ThreadPool so "
                         "merges stay deterministic and cancellable");
    }
  }
}

// ---------------------------------------------------------------------------
// L5 — obs metric-name literals must match the documented catalog.
// ---------------------------------------------------------------------------

void CheckL5(const FileContext& context) {
  if (!InScopeL5(context.path) || context.options.obs_catalog.empty()) return;
  static const std::set<std::string> kEmitters = {
      "Count", "GaugeSet", "GaugeMax", "Observe", "ScopedSpan"};
  const std::string& catalog = context.options.obs_catalog;
  const auto& tokens = context.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!IsIdent(tokens[i], "obs") || !IsPunct(tokens[i + 1], "::") ||
        tokens[i + 2].kind != TokenKind::kIdentifier ||
        kEmitters.count(tokens[i + 2].text) == 0) {
      continue;
    }
    size_t cursor = i + 3;
    // `obs::ScopedSpan span("...")` declares a variable before the paren.
    if (cursor < tokens.size() &&
        tokens[cursor].kind == TokenKind::kIdentifier) {
      ++cursor;
    }
    if (cursor >= tokens.size() || !IsPunct(tokens[cursor], "(")) continue;
    ++cursor;
    if (cursor >= tokens.size() || tokens[cursor].kind != TokenKind::kString) {
      continue;  // dynamically built name; not statically checkable
    }
    const Token& literal = tokens[cursor];
    const bool concatenated =
        cursor + 1 < tokens.size() && IsPunct(tokens[cursor + 1], "+");
    if (concatenated) {
      // A stem like "numfmt.elect." — the dynamic tail must be documented as
      // a <placeholder> entry sharing the stem.
      if (!Contains(catalog, literal.text + "<")) {
        context.Report("L5", literal.line,
                       "obs name stem \"" + literal.text +
                           "\" has no <placeholder> entry in "
                           "docs/OBSERVABILITY.md");
      }
      continue;
    }
    if (!Contains(catalog, literal.text)) {
      context.Report("L5", literal.line,
                     "obs name \"" + literal.text +
                         "\" is not in the docs/OBSERVABILITY.md catalog");
    }
  }
}

// ---------------------------------------------------------------------------
// L6 — raw memory-mapping calls outside csv::MappedFile.
// ---------------------------------------------------------------------------

void CheckL6(const FileContext& context) {
  if (!InScopeL6(context.path)) return;
  static const std::set<std::string> kMappers = {
      "mmap",           "mmap64",
      "munmap",         "MapViewOfFile",
      "UnmapViewOfFile", "CreateFileMapping",
      "CreateFileMappingA", "CreateFileMappingW"};
  const auto& tokens = context.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        kMappers.count(tokens[i].text) == 0) {
      continue;
    }
    if (i > 0 && (IsPunct(tokens[i - 1], ".") || IsPunct(tokens[i - 1], "->"))) {
      continue;  // member of some unrelated class
    }
    context.Report("L6", tokens[i].line,
                   "raw memory-mapping call `" + tokens[i].text +
                       "` — all mappings go through csv::MappedFile "
                       "(src/csv/mapped_file.h) so view lifetimes stay tied "
                       "to one owner");
  }
}

// ---------------------------------------------------------------------------
// Suppression filtering.
// ---------------------------------------------------------------------------

bool KnownRule(const std::string& id) {
  for (const RuleInfo& rule : Rules()) {
    if (rule.id == id) return true;
  }
  return false;
}

// The set of lines a suppression covers: its own line, plus — for a comment
// with no code before it on its line — the line of the next code token.
std::set<int> CoveredLines(const Suppression& suppression,
                           const std::vector<Token>& tokens) {
  std::set<int> lines = {suppression.line};
  if (suppression.own_line) {
    for (const Token& token : tokens) {
      if (token.line > suppression.line) {
        lines.insert(token.line);
        break;
      }
    }
  }
  return lines;
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"L1", "locale-parse",
       "no std::stod/stof/atof/strtod outside numfmt::ParseDouble — "
       "locale-dependent parsing misreads Table 4 normalized numbers"},
      {"L2", "float-compare",
       "no raw ==/!= between floating-point expressions in src/core/ — "
       "route through core::ApproxEq; exact-zero guards are whitelisted"},
      {"L3", "nondeterminism",
       "no rand/std::random_device/time()/system_clock in code paths that "
       "feed detection results"},
      {"L4", "raw-thread",
       "no std::thread/std::async bypassing util::ThreadPool in src/ or "
       "bench/"},
      {"L5", "obs-catalog",
       "obs counter/gauge/span name literals must appear in the "
       "docs/OBSERVABILITY.md catalog"},
      {"L6", "mmap-owner",
       "no mmap/munmap/MapViewOfFile outside src/csv/mapped_file.* — "
       "csv::MappedFile is the single owner of mapping lifetimes"},
  };
  return kRules;
}

std::vector<Diagnostic> LintSource(std::string_view relpath,
                                   std::string_view content,
                                   const Options& options) {
  const LexResult lexed = Lex(content);
  std::vector<Diagnostic> raw;
  const FileContext context{relpath, lexed.tokens, options, &raw};
  CheckL1(context);
  CheckL2(context);
  CheckL3(context);
  CheckL4(context);
  CheckL5(context);
  CheckL6(context);

  std::vector<Diagnostic> out;
  for (const Suppression& suppression : lexed.suppressions) {
    if (!KnownRule(suppression.rule)) {
      out.push_back(Diagnostic{
          std::string(relpath), suppression.line, "suppression",
          "allow(" + suppression.rule + ") names no compiled rule"});
    } else if (!suppression.has_reason) {
      out.push_back(Diagnostic{
          std::string(relpath), suppression.line, "suppression",
          "allow(" + suppression.rule +
              ") needs a reason: `// aggrecol-lint: allow(" + suppression.rule +
              "): <why this is sound>`"});
    }
  }
  for (Diagnostic& diagnostic : raw) {
    bool suppressed = false;
    for (const Suppression& suppression : lexed.suppressions) {
      if (suppression.rule != diagnostic.rule || !suppression.has_reason) {
        continue;
      }
      if (CoveredLines(suppression, lexed.tokens).count(diagnostic.line) > 0) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(diagnostic));
  }
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  return out;
}

std::vector<Diagnostic> LintTree(const std::string& root,
                                 std::vector<std::string>* scanned) {
  namespace fs = std::filesystem;
  Options options;
  {
    std::ifstream catalog(fs::path(root) / "docs" / "OBSERVABILITY.md");
    if (catalog.is_open()) {
      std::ostringstream content;
      content << catalog.rdbuf();
      options.obs_catalog = content.str();
    }
  }

  std::vector<std::string> paths;
  for (const char* tree : {"src", "tests", "bench"}) {
    const fs::path base = fs::path(root) / tree;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string extension = entry.path().extension().string();
      if (extension != ".cc" && extension != ".h") continue;
      paths.push_back(
          fs::path(entry.path()).lexically_relative(root).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<Diagnostic> out;
  for (const std::string& path : paths) {
    std::ifstream file(fs::path(root) / path);
    if (!file.is_open()) continue;
    std::ostringstream content;
    content << file.rdbuf();
    std::vector<Diagnostic> diagnostics =
        LintSource(path, content.str(), options);
    out.insert(out.end(), std::make_move_iterator(diagnostics.begin()),
               std::make_move_iterator(diagnostics.end()));
    if (scanned != nullptr) scanned->push_back(path);
  }
  return out;
}

}  // namespace aggrecol::lint
