#include "tools/lint/source_lexer.h"

#include <cctype>

namespace aggrecol::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// String-literal prefixes whose next token may be a quote: "", u8, u, U, L,
// and their raw variants ending in R.
bool IsStringPrefix(std::string_view ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L" ||
         ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  LexResult Run() {
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexChar();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifierOrPrefixedString();
        continue;
      }
      LexPunct();
    }
    return std::move(result_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }

  void Emit(TokenKind kind, std::string text, int line) {
    result_.tokens.push_back(Token{kind, std::move(text), line});
    last_code_line_ = line;
  }

  void LexLineComment() {
    const int start_line = line_;
    const size_t start = pos_;
    while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
    HarvestSuppressions(source_.substr(start, pos_ - start), start_line);
  }

  void LexBlockComment() {
    const int start_line = line_;
    const size_t start = pos_;
    pos_ += 2;
    while (pos_ < source_.size()) {
      if (source_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (source_[pos_] == '\n') ++line_;
      ++pos_;
    }
    HarvestSuppressions(source_.substr(start, pos_ - start), start_line);
  }

  // Parses every `aggrecol-lint: allow(<rule>)[: reason]` and
  // `aggrecol-lint: owns(<member>)` inside `comment`.
  void HarvestSuppressions(std::string_view comment, int line) {
    const bool own_line = last_code_line_ != line;
    size_t cursor = comment.find("aggrecol-lint:");
    if (cursor == std::string_view::npos) return;
    HarvestOwns(comment, cursor, line);
    while ((cursor = comment.find("allow(", cursor)) != std::string_view::npos) {
      cursor += 6;
      const size_t close = comment.find(')', cursor);
      if (close == std::string_view::npos) return;
      Suppression suppression;
      suppression.line = line;
      suppression.rule = std::string(comment.substr(cursor, close - cursor));
      suppression.own_line = own_line;
      // Documentation that *describes* the directive grammar (e.g.
      // `allow(<rule>)` in this very file) is not a real suppression. Only
      // the documented `<placeholder>` form is dropped; any other implausible
      // id (a typo like `allow(L7 )` or `allow(L7,L8)`) is kept so the
      // linter reports it instead of silently ignoring the directive.
      if (suppression.rule.find('<') != std::string::npos ||
          suppression.rule.find('>') != std::string::npos) {
        cursor = close;
        continue;
      }
      // A mandatory reason: `: non-empty text` after the closing paren.
      size_t after = close + 1;
      while (after < comment.size() &&
             std::isspace(static_cast<unsigned char>(comment[after])) != 0) {
        ++after;
      }
      if (after < comment.size() && comment[after] == ':') {
        ++after;
        while (after < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[after])) != 0) {
          ++after;
        }
        suppression.has_reason =
            after < comment.size() && comment[after] != '*';  // "*/" only
      }
      result_.suppressions.push_back(std::move(suppression));
      cursor = close;
    }
  }

  // Parses every `owns(<member>)` contract annotation after an
  // `aggrecol-lint:` marker. Member names are identifiers (possibly with a
  // trailing underscore); anything else is documentation, not a contract.
  void HarvestOwns(std::string_view comment, size_t cursor, int line) {
    while ((cursor = comment.find("owns(", cursor)) != std::string_view::npos) {
      cursor += 5;
      const size_t close = comment.find(')', cursor);
      if (close == std::string_view::npos) return;
      const std::string member(comment.substr(cursor, close - cursor));
      cursor = close;
      if (member.empty()) continue;
      bool plausible = true;
      for (const char c : member) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
          plausible = false;
        }
      }
      if (!plausible) continue;
      result_.owns.push_back(OwnsAnnotation{line, member});
    }
  }

  void LexString() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == '\\' && pos_ + 1 < source_.size()) {
        text += c;
        text += source_[pos_ + 1];
        if (source_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        break;
      }
      if (c == '\n') ++line_;  // unterminated; keep line count honest
      text += c;
      ++pos_;
    }
    Emit(TokenKind::kString, std::move(text), start_line);
  }

  void LexRawString() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string delimiter;
    while (pos_ < source_.size() && source_[pos_] != '(') {
      delimiter += source_[pos_];
      ++pos_;
    }
    if (pos_ < source_.size()) ++pos_;  // '('
    const std::string closer = ")" + delimiter + "\"";
    std::string text;
    while (pos_ < source_.size()) {
      if (source_.compare(pos_, closer.size(), closer) == 0) {
        pos_ += closer.size();
        break;
      }
      if (source_[pos_] == '\n') ++line_;
      text += source_[pos_];
      ++pos_;
    }
    Emit(TokenKind::kString, std::move(text), start_line);
  }

  void LexChar() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == '\\' && pos_ + 1 < source_.size()) {
        text += c;
        text += source_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        ++pos_;
        break;
      }
      if (c == '\n') {
        ++line_;
        break;  // stray quote, not a literal — do not eat the file
      }
      text += c;
      ++pos_;
    }
    Emit(TokenKind::kChar, std::move(text), start_line);
  }

  void LexNumber() {
    // pp-number per [lex.ppnumber], with two practical narrowings: a digit
    // separator `'` continues the number only when followed by an identifier
    // character (so `f(1'000'000); g('x')` never swallows the char literal),
    // and exponent signs attach only to the marker the literal's base uses
    // (e/E for decimal, p/P for hex floats — so `0xFE+count` stays three
    // tokens instead of the standard's pathological one).
    const int start_line = line_;
    std::string text;
    const bool hex = source_[pos_] == '0' &&
                     (Peek(1) == 'x' || Peek(1) == 'X');
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == '\'') {
        if (!IsIdentBody(Peek(1))) break;  // a following char literal
        text += c;
        ++pos_;
        continue;
      }
      if (IsIdentBody(c) || c == '.') {
        text += c;
        ++pos_;
        const bool exponent = hex ? (c == 'p' || c == 'P')
                                  : (c == 'e' || c == 'E');
        if (exponent && (Peek(0) == '+' || Peek(0) == '-')) {
          text += source_[pos_];
          ++pos_;
        }
        continue;
      }
      break;
    }
    Emit(TokenKind::kNumber, std::move(text), start_line);
  }

  void LexIdentifierOrPrefixedString() {
    const int start_line = line_;
    std::string text;
    while (pos_ < source_.size() && IsIdentBody(source_[pos_])) {
      text += source_[pos_];
      ++pos_;
    }
    if (pos_ < source_.size() && source_[pos_] == '"' && IsStringPrefix(text)) {
      if (text.back() == 'R') {
        LexRawString();
      } else {
        LexString();
      }
      return;
    }
    Emit(TokenKind::kIdentifier, std::move(text), start_line);
  }

  void LexPunct() {
    const int start_line = line_;
    static constexpr std::string_view kTwoChar[] = {
        "==", "!=", "::", "<=", ">=", "&&", "||", "->", "<<", ">>",
        "++", "--", "+=", "-=", "*=", "/=", "|=", "&=", "^=", "%="};
    for (std::string_view two : kTwoChar) {
      if (source_.compare(pos_, 2, two) == 0) {
        pos_ += 2;
        Emit(TokenKind::kPunct, std::string(two), start_line);
        return;
      }
    }
    Emit(TokenKind::kPunct, std::string(1, source_[pos_]), start_line);
    ++pos_;
  }

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int last_code_line_ = 0;
  LexResult result_;
};

}  // namespace

LexResult Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace aggrecol::lint
