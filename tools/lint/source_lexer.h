#ifndef AGGRECOL_TOOLS_LINT_SOURCE_LEXER_H_
#define AGGRECOL_TOOLS_LINT_SOURCE_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace aggrecol::lint {

/// Token kinds produced by Lex(). Comments and whitespace are consumed (and
/// mined for suppression directives); string and character literals survive
/// as single tokens so rules can inspect literal text (L5) without ever
/// mistaking it for code (L1-L4).
enum class TokenKind {
  kIdentifier,  // identifiers and keywords
  kNumber,      // pp-numbers: 1, 0.5, 1e-9, 0x1F, 1'000'000
  kString,      // "..." / R"(...)" — text holds the contents, quotes stripped
  kChar,        // 'c'
  kPunct,       // operators and punctuation; multi-char ==, !=, :: kept whole
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 1;  // 1-based line of the token's first character
};

/// A `aggrecol-lint: allow(<rule>): <reason>` directive found in a comment.
struct Suppression {
  int line = 1;        // line the directive's comment starts on
  std::string rule;    // the rule id inside allow(...)
  bool has_reason = false;  // non-empty reason text after the closing paren
  bool own_line = false;    // comment had no code before it on its line
};

/// A `aggrecol-lint: owns(<member>)` contract annotation found in a comment:
/// the class declares that views stored in nearby members borrow from the
/// named owning member (a shared arena), sanctioning them for rule L7.
struct OwnsAnnotation {
  int line = 1;         // line the annotation's comment starts on
  std::string member;   // the owner member name inside owns(...)
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<OwnsAnnotation> owns;
};

/// Tokenizes C++ source. Handles //, /* */, string/char literals with
/// escapes, raw strings R"delim(...)delim", digit separators, and line
/// counting. Never throws; unterminated constructs consume to end of input.
LexResult Lex(std::string_view source);

}  // namespace aggrecol::lint

#endif  // AGGRECOL_TOOLS_LINT_SOURCE_LEXER_H_
