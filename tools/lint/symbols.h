#ifndef AGGRECOL_TOOLS_LINT_SYMBOLS_H_
#define AGGRECOL_TOOLS_LINT_SYMBOLS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/lint/source_lexer.h"

namespace aggrecol::lint {

/// A function (or method) definition with a body, located by the symbol pass.
struct FunctionDef {
  std::string name;       // unqualified: "Build"
  std::string qualified;  // "LineIndex::Build" for methods, else == name
  std::string return_type;  // leading declaration tokens, space-joined
  int line = 0;             // line of the name token
  size_t body_begin = 0;    // token index of the opening '{'
  size_t body_end = 0;      // token index one past the matching '}'
};

/// A member *variable* declaration inside a class/struct (method declarations
/// are excluded; they surface as FunctionDefs or are skipped).
struct MemberVar {
  std::string type;  // declaration tokens before the name, space-joined
  std::string name;
  int line = 0;
  bool constexpr_literal = false;  // constexpr member initialized from literals
};

/// A class or struct definition and its direct member variables.
struct ClassDef {
  std::string name;
  int line = 0;      // line of the class/struct keyword
  int end_line = 0;  // line of the closing brace
  size_t body_begin = 0;  // token index of the opening '{'
  size_t body_end = 0;    // token index one past the matching '}'
  std::vector<MemberVar> members;
};

/// A namespace-scope (or static class-scope) variable declaration.
struct GlobalVar {
  std::string type;
  std::string name;
  int line = 0;
  bool literal_init = true;  // initializer is string/char/number literals only
};

/// The per-file symbol table built by the declaration/scope pass: every
/// function body with its token range, every class with its member variables,
/// and namespace-scope variable declarations. Built once per file and shared
/// by the symbol-aware rules (L7 view-escape, L8 hot-path-alloc).
struct SymbolIndex {
  std::vector<FunctionDef> functions;
  std::vector<ClassDef> classes;
  std::vector<GlobalVar> globals;

  /// The innermost class whose body token range contains `token_index`, or
  /// nullptr.
  const ClassDef* EnclosingClass(size_t token_index) const;
};

/// Walks the token stream tracking namespace/class/function scopes and
/// declarations. Purely heuristic — no preprocessor, no templates beyond
/// angle-bracket matching — but exact on this codebase's style, and it never
/// throws on arbitrary input.
SymbolIndex BuildSymbolIndex(const std::vector<Token>& tokens);

/// Returns the index of the '}' matching the '{' at `open` (or tokens.size()
/// when unbalanced). Exposed for the dataflow pass.
size_t MatchBrace(const std::vector<Token>& tokens, size_t open);

}  // namespace aggrecol::lint

#endif  // AGGRECOL_TOOLS_LINT_SYMBOLS_H_
