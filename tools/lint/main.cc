// aggrecol-lint: the project-invariant static analysis pass. Walks src/,
// tests/, bench/, and tools/ and enforces the rules documented in
// docs/STATIC_ANALYSIS.md (L1 locale-parse, L2 float-compare, L3
// nondeterminism, L4 raw-thread, L5 obs-catalog, L6 mmap-owner, L7
// view-escape, L8 hot-path-alloc, L9 layering). Exit status 1 when any
// violation (or unreadable input) is found, so CI can gate on it.
#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/linter.h"

namespace {

// JSON string escaping for --format=json: quotes, backslashes, and control
// characters.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using aggrecol::lint::Diagnostic;
  using aggrecol::lint::LintTree;
  using aggrecol::lint::RuleInfo;
  using aggrecol::lint::Rules;

  std::string root = ".";
  std::string format = "text";
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::fprintf(stderr, "aggrecol-lint: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: aggrecol-lint [--root=DIR] [--format=text|json] "
          "[--list-rules]\n\n"
          "Lints DIR's src/, tests/, bench/, and tools/ trees against the\n"
          "project invariants in docs/STATIC_ANALYSIS.md. Suppress a finding\n"
          "with\n"
          "  // aggrecol-lint: allow(<rule>): <reason>\n"
          "and sanction intentional view sharing (rule L7) with\n"
          "  // aggrecol-lint: owns(<member>)\n");
      return 0;
    } else {
      std::fprintf(stderr, "aggrecol-lint: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  if (list_rules) {
    for (const RuleInfo& rule : Rules()) {
      std::printf("%s  %-16s %-55s %s\n", rule.id.c_str(), rule.name.c_str(),
                  rule.paths.c_str(), rule.summary.c_str());
    }
    return 0;
  }

  std::vector<std::string> scanned;
  const std::vector<Diagnostic> diagnostics = LintTree(root, &scanned);

  if (format == "json") {
    std::printf("{\n  \"files_scanned\": %zu,\n  \"diagnostics\": [",
                scanned.size());
    for (size_t i = 0; i < diagnostics.size(); ++i) {
      const Diagnostic& d = diagnostics[i];
      std::printf(
          "%s\n    {\"path\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
          "\"message\": \"%s\"}",
          i == 0 ? "" : ",", JsonEscape(d.path).c_str(), d.line,
          JsonEscape(d.rule).c_str(), JsonEscape(d.message).c_str());
    }
    std::printf("%s]\n}\n", diagnostics.empty() ? "" : "\n  ");
    return diagnostics.empty() ? 0 : 1;
  }

  for (const Diagnostic& diagnostic : diagnostics) {
    std::printf("%s:%d: [%s] %s\n", diagnostic.path.c_str(), diagnostic.line,
                diagnostic.rule.c_str(), diagnostic.message.c_str());
  }
  if (diagnostics.empty()) {
    std::printf("aggrecol-lint: %zu files clean\n", scanned.size());
    return 0;
  }
  std::printf("aggrecol-lint: %zu violation(s) in %zu files scanned\n",
              diagnostics.size(), scanned.size());
  return 1;
}
