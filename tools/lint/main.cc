// aggrecol-lint: the project-invariant static analysis pass. Walks src/,
// tests/, and bench/ and enforces the rules documented in
// docs/STATIC_ANALYSIS.md (L1 locale-parse, L2 float-compare, L3
// nondeterminism, L4 raw-thread, L5 obs-catalog). Exit status 1 when any
// violation is found, so CI can gate on it.
#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/linter.h"

int main(int argc, char** argv) {
  using aggrecol::lint::Diagnostic;
  using aggrecol::lint::LintTree;
  using aggrecol::lint::RuleInfo;
  using aggrecol::lint::Rules;

  std::string root = ".";
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: aggrecol-lint [--root=DIR] [--list-rules]\n\n"
          "Lints DIR's src/, tests/, and bench/ trees against the project\n"
          "invariants in docs/STATIC_ANALYSIS.md. Suppress a finding with\n"
          "  // aggrecol-lint: allow(<rule>): <reason>\n");
      return 0;
    } else {
      std::fprintf(stderr, "aggrecol-lint: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  if (list_rules) {
    for (const RuleInfo& rule : Rules()) {
      std::printf("%s  %-16s %s\n", rule.id.c_str(), rule.name.c_str(),
                  rule.summary.c_str());
    }
    return 0;
  }

  std::vector<std::string> scanned;
  const std::vector<Diagnostic> diagnostics = LintTree(root, &scanned);
  for (const Diagnostic& diagnostic : diagnostics) {
    std::printf("%s:%d: [%s] %s\n", diagnostic.path.c_str(), diagnostic.line,
                diagnostic.rule.c_str(), diagnostic.message.c_str());
  }
  if (diagnostics.empty()) {
    std::printf("aggrecol-lint: %zu files clean\n", scanned.size());
    return 0;
  }
  std::printf("aggrecol-lint: %zu violation(s) in %zu files scanned\n",
              diagnostics.size(), scanned.size());
  return 1;
}
