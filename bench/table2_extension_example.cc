// Reproduces Table 2: the row-wise sum aggregations detected on the Figure 5
// example table after the extension step, grouped by column pattern, with
// their compliant rows (e = 0).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>

#include "core/adjacency_strategy.h"
#include "core/extension.h"
#include "numfmt/numeric_grid.h"
#include "tests/test_support.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;
  using core::AggregationFunction;

  const auto numeric = numfmt::NumericGrid::FromGrid(
      testing::Figure5Grid(), numfmt::NumberFormat::kCommaDot);
  const std::vector<bool> active(numeric.columns(), true);

  std::vector<core::Aggregation> detected;
  for (int row = 0; row < numeric.rows(); ++row) {
    const auto found = core::DetectAdjacentCommutative(numeric, active, row,
                                                       AggregationFunction::kSum, 0.0);
    detected.insert(detected.end(), found.begin(), found.end());
  }
  const auto extended = core::ExtendAggregations(numeric, active, detected, 0.0);

  std::map<core::Pattern, std::vector<int>> by_pattern;
  for (const auto& aggregation : extended) {
    by_pattern[core::PatternOf(aggregation)].push_back(aggregation.line);
  }

  std::printf(
      "Table 2: detected row-wise sum aggregations after extension on the\n"
      "Figure 5 table, grouped by column pattern (e = 0).\n\n");
  util::TablePrinter printer;
  printer.SetHeader({"Column pattern", "Compliant rows"});
  for (auto& [pattern, rows] : by_pattern) {
    std::sort(rows.begin(), rows.end());
    std::ostringstream row_list;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) row_list << ", ";
      row_list << rows[i];
    }
    printer.AddRow({ToString(pattern), row_list.str()});
  }
  printer.Print(std::cout);
  return 0;
}
