// Ablation of the pruning machinery (DESIGN.md design-choice index): each
// stage-1 rule is disabled in isolation and the corpus-level precision /
// recall / F1 are compared against the full configuration, quantifying what
// every heuristic of Sec. 3.1 contributes. The stage-level ablation (I/C/S)
// lives in bench/fig8_stages.
#include <cstdio>
#include <functional>
#include <iostream>

#include "bench/bench_util.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  // A corpus slice keeps the 7 full detection passes affordable.
  constexpr int kFileCount = 150;
  std::vector<eval::AnnotatedFile> files(
      bench::ValidationFiles().begin(),
      bench::ValidationFiles().begin() + kFileCount);

  struct Variant {
    const char* label;
    std::function<void(core::AggreColConfig*)> tweak;
  };
  const std::vector<Variant> variants = {
      {"all rules (paper configuration)", [](core::AggreColConfig*) {}},
      {"- coverage threshold",
       [](core::AggreColConfig* c) { c->pruning_rules.coverage_threshold = false; }},
      {"- same-aggregate dedup",
       [](core::AggreColConfig* c) { c->pruning_rules.same_aggregate_dedup = false; }},
      {"- same-range dedup",
       [](core::AggreColConfig* c) { c->pruning_rules.same_range_dedup = false; }},
      {"- directional disagreement",
       [](core::AggreColConfig* c) {
         c->pruning_rules.directional_disagreement = false;
       }},
      {"- complete inclusion",
       [](core::AggreColConfig* c) { c->pruning_rules.complete_inclusion = false; }},
      {"- mutual inclusion",
       [](core::AggreColConfig* c) { c->pruning_rules.mutual_inclusion = false; }},
  };

  std::printf(
      "Pruning-rule ablation over %d VALIDATION files (full pipeline, each\n"
      "stage-1 rule disabled in isolation):\n\n",
      kFileCount);
  util::TablePrinter printer;
  printer.SetHeader({"configuration", "precision", "recall", "F1"});
  for (const auto& variant : variants) {
    core::AggreColConfig config;
    variant.tweak(&config);
    const auto per_file = bench::ScoreCorpus(files, config);
    const auto total = eval::Accumulate(per_file);
    printer.AddRow({variant.label, bench::Num(total.precision),
                    bench::Num(total.recall), bench::Num(total.F1())});
  }
  printer.Print(std::cout);
  std::printf(
      "\nExpected shape: the coverage threshold carries most of the\n"
      "precision (it removes per-row coincidences); the dedup and inclusion\n"
      "rules each remove a smaller share of structured false positives, and\n"
      "disabling them never improves F1.\n");
  return 0;
}
