#ifndef AGGRECOL_BENCH_BENCH_UTIL_H_
#define AGGRECOL_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/aggrecol.h"
#include "datagen/corpus.h"
#include "eval/annotations.h"
#include "eval/batch_runner.h"
#include "eval/file_level.h"
#include "eval/metrics.h"
#include "util/string_util.h"

namespace aggrecol::bench {

/// Lazily generated singleton corpora shared by the experiment binaries.
inline const std::vector<eval::AnnotatedFile>& ValidationFiles() {
  static const auto* const kFiles = new std::vector<eval::AnnotatedFile>(
      datagen::GenerateCorpus(datagen::ValidationCorpus()));
  return *kFiles;
}

inline const std::vector<eval::AnnotatedFile>& UnseenFiles() {
  static const auto* const kFiles = new std::vector<eval::AnnotatedFile>(
      datagen::GenerateCorpus(datagen::UnseenCorpus()));
  return *kFiles;
}

/// Pool width the experiment binaries run with: every hardware thread,
/// clamped to something sane.
inline int DefaultBenchThreads() {
  return std::clamp(static_cast<int>(std::thread::hardware_concurrency()), 1, 8);
}

/// Runs one corpus pass through the batch engine and returns the full
/// per-file reports in input order (results are bit-identical to a
/// sequential loop for any thread count).
inline aggrecol::eval::BatchReport RunCorpus(
    const std::vector<eval::AnnotatedFile>& files,
    const core::AggreColConfig& config, int threads = DefaultBenchThreads()) {
  eval::BatchOptions options;
  options.config = config;
  options.threads = threads;
  options.max_in_flight = std::max(2, threads);
  return eval::BatchRunner(options).Run(files);
}

/// Runs a detector over a corpus and returns one Scores entry per file for
/// the given function filter (std::nullopt = all functions).
inline std::vector<eval::Scores> ScoreCorpus(
    const std::vector<eval::AnnotatedFile>& files, const core::AggreColConfig& config,
    eval::FunctionFilter filter = std::nullopt) {
  const auto report = RunCorpus(files, config);
  std::vector<eval::Scores> per_file;
  per_file.reserve(files.size());
  for (size_t f = 0; f < files.size(); ++f) {
    per_file.push_back(eval::Score(report.files[f].result.aggregations,
                                   files[f].annotations, filter));
  }
  return per_file;
}

/// The function classes reported by the paper's evaluation (difference is
/// merged into sum, Sec. 4.3.2).
struct FunctionClass {
  const char* label;
  core::AggregationFunction canonical;
};

inline const std::vector<FunctionClass>& EvaluatedClasses() {
  static const auto* const kClasses = new std::vector<FunctionClass>{
      {"sum (incl. difference)", core::AggregationFunction::kSum},
      {"average", core::AggregationFunction::kAverage},
      {"division", core::AggregationFunction::kDivision},
      {"relative change", core::AggregationFunction::kRelativeChange},
  };
  return *kClasses;
}

inline std::string Pct(double fraction) {
  return util::FormatDouble(100.0 * fraction, 1) + "%";
}

inline std::string Num(double value, int precision = 3) {
  return util::FormatDouble(value, precision);
}

/// Runs AggreCol over `files` and prints the file-level precision and recall
/// histograms per function class and overall — the shared body of the
/// Fig. 9 (VALIDATION) and Fig. 10 (UNSEEN) binaries.
void PrintFileLevelHistograms(const std::vector<eval::AnnotatedFile>& files,
                              const char* corpus_name);

}  // namespace aggrecol::bench

#endif  // AGGRECOL_BENCH_BENCH_UTIL_H_
