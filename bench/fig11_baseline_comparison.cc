// Reproduces Fig. 11 and the Sec. 4.4 comparison: file-level F1 of the eager
// exhaustive baseline vs AggreCol, per function, with a per-file time budget
// for the baseline. The paper uses a 5-minute budget on a Mac Pro; we scale
// the budget down and the shape — baseline F1 mass below 0.05, AggreCol mass
// above 0.95, baseline unable to finish wide files — is preserved.
#include <cstdio>
#include <iostream>

#include "baselines/eager_baseline.h"
#include "bench/bench_util.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;
  using core::AggregationFunction;

  // A slice of the corpus keeps the (intentionally exponential) baseline
  // affordable; the budget is scaled from the paper's 300 s accordingly.
  constexpr int kFileCount = 60;
  constexpr double kBudgetSeconds = 0.5;
  std::vector<eval::AnnotatedFile> files(
      bench::ValidationFiles().begin(),
      bench::ValidationFiles().begin() + kFileCount);

  // AggreCol per-file results (one batch-engine pass, all functions).
  const auto aggrecol_report = bench::RunCorpus(files, core::AggreColConfig{});
  std::vector<core::DetectionResult> aggrecol_results;
  aggrecol_results.reserve(files.size());
  for (const auto& file_report : aggrecol_report.files) {
    aggrecol_results.push_back(file_report.result);
  }

  std::printf(
      "Fig. 11: file-level F1, eager baseline vs AggreCol\n"
      "(%d files, baseline budget %.1f s/file/function, same error levels).\n\n",
      kFileCount, kBudgetSeconds);

  core::AggreColConfig defaults;
  for (const auto& function_class : bench::EvaluatedClasses()) {
    std::vector<eval::Scores> baseline_scores;
    std::vector<eval::Scores> aggrecol_scores;
    int finished = 0;
    for (size_t f = 0; f < files.size(); ++f) {
      const auto numeric = numfmt::NumericGrid::FromGrid(files[f].grid);
      baselines::EagerBaselineConfig config;
      config.function = function_class.canonical;
      config.error_level = defaults.error_level(function_class.canonical);
      config.budget_seconds = kBudgetSeconds;
      const auto baseline = baselines::RunEagerBaseline(numeric, config);
      if (baseline.finished) ++finished;
      baseline_scores.push_back(eval::Score(baseline.aggregations,
                                            files[f].annotations,
                                            function_class.canonical));
      aggrecol_scores.push_back(eval::Score(aggrecol_results[f].aggregations,
                                            files[f].annotations,
                                            function_class.canonical));
    }
    const auto baseline_hist = eval::BuildFileLevel(baseline_scores);
    const auto aggrecol_hist = eval::BuildFileLevel(aggrecol_scores);

    std::printf("== %s ==  (baseline finished %d/%zu files in budget)\n",
                function_class.label, finished, files.size());
    util::TablePrinter printer;
    std::vector<std::string> header = {"approach"};
    for (int bin = 0; bin < eval::kFileLevelBins; ++bin) {
      header.push_back(eval::FileLevelBinLabel(bin));
    }
    printer.SetHeader(header);
    auto add = [&printer](const char* name, const eval::FileLevelHistogram& histogram) {
      std::vector<std::string> row = {name};
      for (int bin = 0; bin < eval::kFileLevelBins; ++bin) {
        row.push_back(bench::Pct(histogram.Fraction(bin)));
      }
      printer.AddRow(row);
    };
    add("eager baseline", baseline_hist.f1);
    add("AggreCol", aggrecol_hist.f1);
    printer.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Paper shape check: AggreCol puts most files in the (0.95, 1] F1 bin;\n"
      "the baseline's F1 mass sits in [0, 0.05] (precision collapse from\n"
      "enumerating every range permutation), and it cannot finish all files\n"
      "within the budget for the subset-enumeration functions.\n");
  return 0;
}
