// Reproduces the Sec. 1 / Sec. 4.4 keyword analysis: (a) the share of true
// aggregates whose row/column header carries a function keyword (the paper
// measures ~60% for sum), and (b) the precision of predicting aggregate cells
// from keywords alone (0.565 / 0.256 / 0.458 / 0.038 in the paper).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <set>
#include <utility>

#include "baselines/keyword_baseline.h"
#include "bench/bench_util.h"
#include "util/table_printer.h"

namespace {

using namespace aggrecol;

// (row, col) cell positions of the true aggregates of `function` in `file`,
// counting difference as sum.
std::set<std::pair<int, int>> TrueAggregateCells(const eval::AnnotatedFile& file,
                                                 core::AggregationFunction function) {
  std::set<std::pair<int, int>> cells;
  for (const auto& annotation : core::CanonicalizeAll(file.annotations)) {
    if (annotation.function != function) continue;
    const int row = annotation.axis == core::Axis::kRow ? annotation.line
                                                        : annotation.aggregate;
    const int col = annotation.axis == core::Axis::kRow ? annotation.aggregate
                                                        : annotation.line;
    cells.insert({row, col});
  }
  return cells;
}

}  // namespace

int main() {
  const auto& files = bench::ValidationFiles();

  std::printf(
      "Keyword-header analysis on %zu VALIDATION files (Sec. 4.4):\n"
      "coverage = share of true aggregate cells flagged by their headers'\n"
      "keywords; precision/recall of predicting aggregate cells from\n"
      "keywords alone.\n\n",
      files.size());

  util::TablePrinter printer;
  printer.SetHeader({"function", "keywords", "coverage", "precision", "recall"});
  for (const auto& function_class : bench::EvaluatedClasses()) {
    long long covered = 0;
    long long truths = 0;
    long long predicted = 0;
    long long correct = 0;
    for (const auto& file : files) {
      const auto numeric = numfmt::NumericGrid::FromGrid(file.grid);
      const auto prediction =
          baselines::RunKeywordBaseline(file.grid, numeric, function_class.canonical);
      const auto truth = TrueAggregateCells(file, function_class.canonical);
      truths += static_cast<long long>(truth.size());
      predicted += static_cast<long long>(prediction.aggregate_cells.size());
      std::set<std::pair<int, int>> flagged(prediction.aggregate_cells.begin(),
                                            prediction.aggregate_cells.end());
      for (const auto& cell : truth) {
        if (flagged.count(cell) > 0) {
          ++covered;
          ++correct;
        }
      }
    }
    const double coverage = truths > 0 ? static_cast<double>(covered) / truths : 0.0;
    const double precision =
        predicted > 0 ? static_cast<double>(correct) / predicted : 1.0;
    const double recall = truths > 0 ? static_cast<double>(correct) / truths : 1.0;
    std::string keyword_list;
    for (const auto& keyword :
         baselines::KeywordsFor(function_class.canonical)) {
      if (!keyword_list.empty()) keyword_list += ", ";
      keyword_list += keyword;
    }
    printer.AddRow({function_class.label, keyword_list, bench::Pct(coverage),
                    bench::Num(precision), bench::Num(recall)});
  }
  printer.Print(std::cout);

  std::printf(
      "\nPaper shape check: keywords cover only part of the true aggregates\n"
      "(~60%% for sum in the paper) and fire on many non-aggregate cells, so\n"
      "precision is poor — keyword dictionaries are not a reliable detector.\n");
  return 0;
}
