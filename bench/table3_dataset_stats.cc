// Reproduces Table 3 (dataset statistics), Fig. 2 (per-function file
// prevalence), and prints Table 1 (function specifications) for reference —
// all on the synthetic VALIDATION and UNSEEN corpora that substitute the
// paper's Troy+EUSES and SAUS/CIUS/UK samples (DESIGN.md).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "core/aggregation.h"
#include "util/table_printer.h"

namespace {

using namespace aggrecol;
using core::AggregationFunction;

struct CorpusStats {
  int files = 0;
  int files_without = 0;
  int files_one_type = 0;
  int files_two_types = 0;
  int files_three_types = 0;
  int files_four_types = 0;
  int aggregations = 0;
  std::array<int, core::kAllFunctions.size()> per_function{};
  std::array<int, core::kAllFunctions.size()> files_with_function{};
  int with_error = 0;
  int min_per_file = 1 << 30;
  int max_per_file = 0;
};

CorpusStats Collect(const std::vector<eval::AnnotatedFile>& files) {
  CorpusStats stats;
  stats.files = static_cast<int>(files.size());
  for (const auto& file : files) {
    // Count in the merged (sum+difference) canonical classes, as Table 3 does.
    const auto canonical = core::CanonicalizeAll(file.annotations);
    if (canonical.empty()) {
      ++stats.files_without;
      continue;
    }
    std::set<AggregationFunction> types;
    for (const auto& aggregation : canonical) {
      ++stats.aggregations;
      ++stats.per_function[core::IndexOf(aggregation.function)];
      types.insert(aggregation.function);
      if (aggregation.error > 1e-9) ++stats.with_error;
    }
    for (AggregationFunction function : types) {
      ++stats.files_with_function[core::IndexOf(function)];
    }
    switch (types.size()) {
      case 1:
        ++stats.files_one_type;
        break;
      case 2:
        ++stats.files_two_types;
        break;
      case 3:
        ++stats.files_three_types;
        break;
      default:
        ++stats.files_four_types;
        break;
    }
    const int count = static_cast<int>(canonical.size());
    stats.min_per_file = std::min(stats.min_per_file, count);
    stats.max_per_file = std::max(stats.max_per_file, count);
  }
  return stats;
}

std::string I(int value) { return std::to_string(value); }

}  // namespace

int main() {
  std::printf("Table 1 (reference): supported aggregation functions\n\n");
  util::TablePrinter table1;
  table1.SetHeader({"Function", "# range elements", "Formula", "Cumulative"});
  table1.AddRow({"Sum", ">= 1", "A = sum(B_i)", "Yes"});
  table1.AddRow({"Difference", "= 2", "A = B - C", "Yes"});
  table1.AddRow({"Average", ">= 1", "A = sum(B_i)/n", "No"});
  table1.AddRow({"Division", "= 2", "A = B / C", "No"});
  table1.AddRow({"Relative change", "= 2", "A = (C - B)/B", "No"});
  table1.Print(std::cout);

  const auto validation = Collect(bench::ValidationFiles());
  const auto unseen = Collect(bench::UnseenFiles());

  std::printf("\nTable 3: statistics of the synthetic datasets\n\n");
  util::TablePrinter printer;
  printer.SetHeader({"Observations", "VALIDATION", "UNSEEN"});
  printer.AddRow({"Number of files", I(validation.files), I(unseen.files)});
  printer.AddRow({"  No aggregations", I(validation.files_without),
                  I(unseen.files_without)});
  printer.AddRow({"  Aggregations of one type", I(validation.files_one_type),
                  I(unseen.files_one_type)});
  printer.AddRow({"  Aggregations of two types", I(validation.files_two_types),
                  I(unseen.files_two_types)});
  printer.AddRow({"  Aggregations of three types", I(validation.files_three_types),
                  I(unseen.files_three_types)});
  printer.AddRow({"  Aggregations of all types", I(validation.files_four_types),
                  I(unseen.files_four_types)});
  printer.AddSeparator();
  printer.AddRow({"Number of aggregations", I(validation.aggregations),
                  I(unseen.aggregations)});
  printer.AddRow(
      {"  Sum (incl. difference)",
       I(validation.per_function[core::IndexOf(AggregationFunction::kSum)]),
       I(unseen.per_function[core::IndexOf(AggregationFunction::kSum)])});
  printer.AddRow(
      {"  Average",
       I(validation.per_function[core::IndexOf(AggregationFunction::kAverage)]),
       I(unseen.per_function[core::IndexOf(AggregationFunction::kAverage)])});
  printer.AddRow(
      {"  Division",
       I(validation.per_function[core::IndexOf(AggregationFunction::kDivision)]),
       I(unseen.per_function[core::IndexOf(AggregationFunction::kDivision)])});
  printer.AddRow(
      {"  Relative change",
       I(validation.per_function[core::IndexOf(AggregationFunction::kRelativeChange)]),
       I(unseen.per_function[core::IndexOf(AggregationFunction::kRelativeChange)])});
  printer.AddSeparator();
  printer.AddRow({"  error = 0", I(validation.aggregations - validation.with_error),
                  I(unseen.aggregations - unseen.with_error)});
  printer.AddRow({"  error > 0", I(validation.with_error), I(unseen.with_error)});
  printer.AddSeparator();
  printer.AddRow({"Min. per-file aggregation count", I(validation.min_per_file),
                  I(unseen.min_per_file)});
  printer.AddRow({"Max. per-file aggregation count", I(validation.max_per_file),
                  I(unseen.max_per_file)});
  printer.Print(std::cout);

  std::printf(
      "\nFig. 2: percentage of aggregation-carrying VALIDATION files that\n"
      "contain each aggregation function\n\n");
  util::TablePrinter fig2;
  fig2.SetHeader({"Function", "Files", "Share"});
  const int with_aggregations = validation.files - validation.files_without;
  const std::vector<std::pair<const char*, AggregationFunction>> classes = {
      {"Sum (incl. difference)", AggregationFunction::kSum},
      {"Division", AggregationFunction::kDivision},
      {"Average", AggregationFunction::kAverage},
      {"Relative change", AggregationFunction::kRelativeChange},
  };
  for (const auto& [label, function] : classes) {
    const int count = validation.files_with_function[core::IndexOf(function)];
    fig2.AddRow({label, I(count),
                 bench::Pct(static_cast<double>(count) / with_aggregations)});
  }
  fig2.Print(std::cout);

  std::printf(
      "\nPaper shape check: sum dominates (~70%% of aggregations), ~20%% of\n"
      "files carry more than one type, and roughly 29%% of aggregations have\n"
      "a nonzero error level.\n");
  return 0;
}
