// Measures the cost of the observability layer (docs/OBSERVABILITY.md):
// the disabled fast path (one relaxed load + branch per helper call), the
// enabled sharded-counter path, and the end-to-end pipeline with metrics on
// vs off. The acceptance bar for the layer is that the disabled path is
// indistinguishable from an uninstrumented build.
#include <benchmark/benchmark.h>

#include "core/aggrecol.h"
#include "datagen/file_generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using aggrecol::obs::Registry;

void BM_CountDisabled(benchmark::State& state) {
  Registry::set_enabled(false);
  for (auto _ : state) {
    aggrecol::obs::Count("bench.counter");
  }
}
BENCHMARK(BM_CountDisabled);

void BM_CountEnabled(benchmark::State& state) {
  Registry::Instance().Reset();
  Registry::set_enabled(true);
  for (auto _ : state) {
    aggrecol::obs::Count("bench.counter");
  }
  Registry::set_enabled(false);
}
BENCHMARK(BM_CountEnabled);

void BM_CountEnabledContended(benchmark::State& state) {
  if (state.thread_index() == 0) {
    Registry::Instance().Reset();
    Registry::set_enabled(true);
  }
  for (auto _ : state) {
    aggrecol::obs::Count("bench.contended");
  }
  if (state.thread_index() == 0) Registry::set_enabled(false);
}
BENCHMARK(BM_CountEnabledContended)->Threads(8);

void BM_ObserveEnabled(benchmark::State& state) {
  Registry::Instance().Reset();
  Registry::set_enabled(true);
  double value = 0.0;
  for (auto _ : state) {
    aggrecol::obs::Observe("bench.histogram", value);
    value += 1e-6;
  }
  Registry::set_enabled(false);
}
BENCHMARK(BM_ObserveEnabled);

void BM_SpanDisabled(benchmark::State& state) {
  Registry::set_enabled(false);
  for (auto _ : state) {
    aggrecol::obs::ScopedSpan span("bench.span");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  Registry::Instance().Reset();
  Registry::set_enabled(true);
  for (auto _ : state) {
    aggrecol::obs::ScopedSpan span("bench.span");
    benchmark::DoNotOptimize(&span);
  }
  Registry::set_enabled(false);
}
BENCHMARK(BM_SpanEnabled);

// End-to-end: the whole pipeline on one generated file, metrics off vs on.
// The off/on delta is the real-world instrumentation overhead.
const aggrecol::eval::AnnotatedFile& BenchFile() {
  static const auto* const kFile = [] {
    aggrecol::datagen::GeneratorProfile profile;
    profile.p_no_aggregation = 0.0;
    return new aggrecol::eval::AnnotatedFile(
        aggrecol::datagen::GenerateFile(profile, 4711, "bench.csv"));
  }();
  return *kFile;
}

void BM_DetectMetricsOff(benchmark::State& state) {
  Registry::set_enabled(false);
  const aggrecol::core::AggreCol detector{aggrecol::core::AggreColConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(BenchFile().grid));
  }
}
BENCHMARK(BM_DetectMetricsOff);

void BM_DetectMetricsOn(benchmark::State& state) {
  Registry::Instance().Reset();
  Registry::set_enabled(true);
  const aggrecol::core::AggreCol detector{aggrecol::core::AggreColConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(BenchFile().grid));
  }
  Registry::set_enabled(false);
}
BENCHMARK(BM_DetectMetricsOn);

}  // namespace

BENCHMARK_MAIN();
