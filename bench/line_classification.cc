// Line-level sibling of the Table 5 experiment: line (row) classification is
// the other structure-detection task the paper discusses (Sec. 5.1), with
// "aggregation" among the line types. This harness compares the per-line-type
// F1 of a random-forest line classifier whose aggregate-line feature comes
// from the adjacency-only detector vs from AggreCol.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "cellclass/line_classifier.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  constexpr int kFileCount = 120;
  constexpr int kFolds = 3;
  std::vector<eval::AnnotatedFile> files(
      bench::ValidationFiles().begin(),
      bench::ValidationFiles().begin() + kFileCount);

  cellclass::ForestConfig forest;
  forest.tree_count = 16;
  forest.max_depth = 12;

  const auto original = cellclass::RunLineExperiment(
      files, cellclass::AggregateFeatureSource::kAdjacentOnly, kFolds, forest);
  const auto aggrecol_result = cellclass::RunLineExperiment(
      files, cellclass::AggregateFeatureSource::kAggreCol, kFolds, forest);

  std::printf(
      "Line-type F1 with the aggregate-line feature from the adjacency-only\n"
      "detector vs AggreCol; %d files, %d-fold cross-validation.\n\n",
      kFileCount, kFolds);
  util::TablePrinter printer;
  printer.SetHeader({"Line type", "adjacency-only F1", "AggreCol F1"});
  for (eval::CellRole role : eval::kAllCellRoles) {
    const auto& o = original.per_role[eval::IndexOf(role)];
    const auto& a = aggrecol_result.per_role[eval::IndexOf(role)];
    if (o.true_positives + o.false_negatives == 0 &&
        a.true_positives + a.false_negatives == 0) {
      continue;  // type absent from the corpus lines
    }
    printer.AddRow({ToString(role), bench::Num(o.F1()), bench::Num(a.F1())});
  }
  printer.Print(std::cout);
  std::printf("\noverall accuracy: %s vs %s over %d lines\n",
              bench::Num(original.accuracy).c_str(),
              bench::Num(aggrecol_result.accuracy).c_str(), original.lines);
  std::printf(
      "\nExpected shape: the aggregation line type improves most with the\n"
      "three-stage detector, mirroring the Table 5 cell-level effect.\n");
  return 0;
}
