// Messy-CSV robustness battery: runs the adversarial corpus
// (datagen::GenerateMessyCorpus) through the full sniff-parse-detect
// pipeline twice — once with the consistency sniffer, once with the retained
// reference sniffer — and reports per-category robustness scores.
//
// Prints a human-readable table; `--json [PATH]` additionally writes the
// machine-readable BENCH_robustness.json consumed by
// bench/check_regression.py (default path: BENCH_robustness.json in the
// current directory). The corpus is fully deterministic, so the scores are
// machine-independent and the CI gate compares them directly.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "datagen/messy_generator.h"
#include "eval/robustness.h"

namespace aggrecol {
namespace {

eval::RobustnessReport Run(const std::vector<eval::RobustnessCase>& cases,
                           eval::SnifferKind sniffer) {
  eval::RobustnessOptions options;
  options.sniffer = sniffer;
  return eval::ScoreRobustness(cases, options);
}

void PrintTable(const eval::RobustnessReport& consistency,
                const eval::RobustnessReport& reference) {
  std::printf("%-24s %7s %8s %7s %7s | %7s\n", "category", "dialect", "parse",
              "F1", "score", "ref");
  for (size_t i = 0; i < consistency.categories.size(); ++i) {
    const auto& entry = consistency.categories[i];
    std::printf("%-24s %7.3f %8.3f %7.3f %7.3f | %7.3f\n",
                entry.category.c_str(), entry.DialectAccuracy(),
                entry.ParseFidelity(), entry.detection.F1(), entry.Score(),
                reference.categories[i].Score());
  }
  std::printf("%-24s %7s %8s %7s %7.3f | %7.3f\n", "aggregate", "", "", "",
              consistency.AggregateScore(), reference.AggregateScore());
}

void WriteJson(const char* path, const datagen::MessyCorpusSpec& spec,
               const eval::RobustnessReport& consistency,
               const eval::RobustnessReport& reference) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"robustness_corpus\",\n");
  std::fprintf(out, "  \"spec\": {\"files_per_category\": %d, \"seed\": %llu},\n",
               spec.files_per_category,
               static_cast<unsigned long long>(spec.seed));
  for (size_t i = 0; i < consistency.categories.size(); ++i) {
    const auto& entry = consistency.categories[i];
    std::fprintf(out,
                 "  \"%s\": {\"files\": %d, \"dialect_accuracy\": %.4f, "
                 "\"parse_fidelity\": %.4f, \"f1\": %.4f, \"score\": %.4f, "
                 "\"reference_score\": %.4f},\n",
                 entry.category.c_str(), entry.files, entry.DialectAccuracy(),
                 entry.ParseFidelity(), entry.detection.F1(), entry.Score(),
                 reference.categories[i].Score());
  }
  std::fprintf(out,
               "  \"aggregate\": {\"score\": %.4f, \"reference_score\": %.4f}\n",
               consistency.AggregateScore(), reference.AggregateScore());
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace aggrecol

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc) ? argv[++i] : "BENCH_robustness.json";
    } else {
      std::fprintf(stderr, "usage: %s [--json [PATH]]\n", argv[0]);
      return 2;
    }
  }

  const aggrecol::datagen::MessyCorpusSpec spec;
  const auto cases = aggrecol::datagen::ToRobustnessCases(
      aggrecol::datagen::GenerateMessyCorpus(spec));
  const auto consistency =
      aggrecol::Run(cases, aggrecol::eval::SnifferKind::kConsistency);
  const auto reference =
      aggrecol::Run(cases, aggrecol::eval::SnifferKind::kReference);

  aggrecol::PrintTable(consistency, reference);
  if (json_path != nullptr) {
    aggrecol::WriteJson(json_path, spec, consistency, reference);
  }
  return 0;
}
