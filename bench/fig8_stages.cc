// Reproduces Fig. 8: precision, recall, and F1 per aggregation function at
// the three stages of AggreCol — individual (I), + collective (C), and
// + supplemental (S) — with the per-function optimal error levels and
// cov = 0.7 on the VALIDATION corpus.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  const auto& files = bench::ValidationFiles();

  // One detection pass; the per-stage snapshots give all three columns.
  core::AggreCol detector{core::AggreColConfig{}};
  struct StageScores {
    std::vector<eval::Scores> i, c, s;
  };
  std::vector<StageScores> per_class(bench::EvaluatedClasses().size());

  for (const auto& file : files) {
    const auto result = detector.Detect(file.grid);
    for (size_t k = 0; k < bench::EvaluatedClasses().size(); ++k) {
      const auto filter = bench::EvaluatedClasses()[k].canonical;
      per_class[k].i.push_back(
          eval::Score(result.individual_stage, file.annotations, filter));
      per_class[k].c.push_back(
          eval::Score(result.collective_stage, file.annotations, filter));
      per_class[k].s.push_back(
          eval::Score(result.aggregations, file.annotations, filter));
    }
  }

  std::printf(
      "Fig. 8: precision/recall/F1 per function after each stage\n"
      "(I = individual, C = + collective, S = + supplemental),\n"
      "%zu VALIDATION files.\n\n",
      files.size());
  for (size_t k = 0; k < bench::EvaluatedClasses().size(); ++k) {
    const auto total_i = eval::Accumulate(per_class[k].i);
    const auto total_c = eval::Accumulate(per_class[k].c);
    const auto total_s = eval::Accumulate(per_class[k].s);
    util::TablePrinter printer;
    printer.SetHeader({"stage", "precision", "recall", "F1"});
    printer.AddRow({"I", bench::Num(total_i.precision), bench::Num(total_i.recall),
                    bench::Num(total_i.F1())});
    printer.AddRow({"C", bench::Num(total_c.precision), bench::Num(total_c.recall),
                    bench::Num(total_c.F1())});
    printer.AddRow({"S", bench::Num(total_s.precision), bench::Num(total_s.recall),
                    bench::Num(total_s.F1())});
    std::printf("== %s ==\n", bench::EvaluatedClasses()[k].label);
    printer.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Paper shape check: C raises precision with little or no recall loss;\n"
      "S raises recall (interrupt aggregations); S has the best F1 overall.\n");
  return 0;
}
