// Reproduces the Sec. 4.4 runtime analysis: per-stage wall-clock share of
// AggreCol (the paper reports Phase 3 at ~85% of the workflow), per-file
// runtime distribution, and the eager baseline's inability to finish wide
// files within a budget.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "baselines/eager_baseline.h"
#include "bench/bench_util.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  const auto& files = bench::ValidationFiles();

  core::AggreCol detector;
  double seconds_individual = 0.0;
  double seconds_collective = 0.0;
  double seconds_supplemental = 0.0;
  std::vector<double> per_file_seconds;
  per_file_seconds.reserve(files.size());
  util::Stopwatch stopwatch;
  for (const auto& file : files) {
    util::Stopwatch file_watch;
    const auto result = detector.Detect(file.grid);
    per_file_seconds.push_back(file_watch.ElapsedSeconds());
    seconds_individual += result.seconds_individual;
    seconds_collective += result.seconds_collective;
    seconds_supplemental += result.seconds_supplemental;
  }
  const double total_seconds = stopwatch.ElapsedSeconds();
  const double stage_total =
      seconds_individual + seconds_collective + seconds_supplemental;

  std::sort(per_file_seconds.begin(), per_file_seconds.end());
  auto quantile = [&per_file_seconds](double q) {
    const size_t index = static_cast<size_t>(q * (per_file_seconds.size() - 1));
    return per_file_seconds[index];
  };

  std::printf("AggreCol runtime over %zu VALIDATION files: %.2f s total\n\n",
              files.size(), total_seconds);
  util::TablePrinter stages;
  stages.SetHeader({"stage", "seconds", "share"});
  stages.AddRow({"individual (phase 1)", bench::Num(seconds_individual, 2),
                 bench::Pct(seconds_individual / stage_total)});
  stages.AddRow({"collective (phase 2)", bench::Num(seconds_collective, 2),
                 bench::Pct(seconds_collective / stage_total)});
  stages.AddRow({"supplemental (phase 3)", bench::Num(seconds_supplemental, 2),
                 bench::Pct(seconds_supplemental / stage_total)});
  stages.Print(std::cout);
  std::printf(
      "\nper-file seconds: median %.4f, p90 %.4f, max %.4f\n"
      "(paper: Phase 3 costs ~85%% of the workflow; the longest file takes\n"
      "the bulk of the time)\n\n",
      quantile(0.5), quantile(0.9), per_file_seconds.back());

  // Eager baseline on the widest files with a small budget.
  std::vector<const eval::AnnotatedFile*> widest;
  for (const auto& file : files) widest.push_back(&file);
  std::sort(widest.begin(), widest.end(),
            [](const eval::AnnotatedFile* a, const eval::AnnotatedFile* b) {
              return a->grid.columns() > b->grid.columns();
            });
  widest.resize(std::min<size_t>(widest.size(), 15));

  constexpr double kBudgetSeconds = 0.5;
  int finished = 0;
  for (const auto* file : widest) {
    const auto numeric = numfmt::NumericGrid::FromGrid(file->grid);
    baselines::EagerBaselineConfig config;
    config.function = core::AggregationFunction::kSum;
    config.error_level = 0.01;
    config.budget_seconds = kBudgetSeconds;
    const auto result = baselines::RunEagerBaseline(numeric, config);
    if (result.finished) ++finished;
  }
  std::printf(
      "Eager sum baseline on the 15 widest files with a %.1f s budget:\n"
      "finished %d/15 (paper: the O(n * 2^(n-1)) enumeration cannot finish\n"
      "many files even in 20 minutes, while AggreCol handles all of them).\n",
      kBudgetSeconds, finished);
  return 0;
}
