#!/usr/bin/env bash
# Builds a Release tree and runs the Stage-1 kernel benchmark.
#
#   bench/run_benches.sh            # human-readable tables only
#   bench/run_benches.sh --json     # also writes BENCH_stage1.json at repo root
#
# The JSON artifact is consumed by bench/check_regression.py (the CI ratio
# gate) and committed as the reference baseline. Timings are wall-clock and
# machine-dependent; only the kernel-vs-naive speedup RATIOS are comparable
# across machines, which is what the gate checks.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${ROOT}/build-bench"
JSON=""

for arg in "$@"; do
  case "${arg}" in
    --json) JSON="${ROOT}/BENCH_stage1.json" ;;
    --json=*) JSON="${arg#--json=}" ;;
    *)
      echo "usage: $0 [--json[=PATH]]" >&2
      exit 2
      ;;
  esac
done

cmake -B "${BUILD}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD}" --target stage1_kernels -j "$(nproc)" >/dev/null

if [[ -n "${JSON}" ]]; then
  "${BUILD}/bench/stage1_kernels" --json "${JSON}"
else
  "${BUILD}/bench/stage1_kernels"
fi
