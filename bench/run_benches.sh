#!/usr/bin/env bash
# Builds a Release tree and runs the benchmark suite: the Stage-1 kernel
# benchmark, the messy-CSV robustness battery, and the parse-throughput
# comparison of the zero-copy ingest against the reference parser.
#
#   bench/run_benches.sh            # human-readable tables only
#   bench/run_benches.sh --json     # also writes BENCH_stage1.json,
#                                   # BENCH_robustness.json, and
#                                   # BENCH_parse.json at repo root
#   bench/run_benches.sh --json=DIR # same, into DIR (CI keeps fresh
#                                   # results apart from the baselines)
#
# The JSON artifacts are consumed by bench/check_regression.py (the CI
# gate) and committed as reference baselines. Stage-1 timings are
# wall-clock and machine-dependent; only the kernel-vs-naive speedup
# RATIOS are comparable across machines. The robustness scores come from
# a fully deterministic corpus and compare directly.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${ROOT}/build-bench"
OUT=""

for arg in "$@"; do
  case "${arg}" in
    --json) OUT="${ROOT}" ;;
    --json=*) OUT="${arg#--json=}" ;;
    *)
      echo "usage: $0 [--json[=DIR]]" >&2
      exit 2
      ;;
  esac
done

cmake -B "${BUILD}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD}" --target stage1_kernels robustness_corpus \
  parse_throughput -j "$(nproc)" >/dev/null

if [[ -n "${OUT}" ]]; then
  mkdir -p "${OUT}"
  "${BUILD}/bench/stage1_kernels" --json "${OUT}/BENCH_stage1.json"
  "${BUILD}/bench/robustness_corpus" --json "${OUT}/BENCH_robustness.json"
  "${BUILD}/bench/parse_throughput" --json "${OUT}/BENCH_parse.json"
else
  "${BUILD}/bench/stage1_kernels"
  "${BUILD}/bench/robustness_corpus"
  "${BUILD}/bench/parse_throughput"
fi
