#!/usr/bin/env python3
"""Ratio-based regression gate for the committed benchmark baselines.

Two kinds of gated quantities, distinguished by the key each section
carries:

* ``speedup`` (BENCH_stage1.json) — kernel-vs-naive ratios. Both variants
  run on the same machine in the same process, so the ratio is
  hardware-independent: a materially lower ratio means the kernel itself
  regressed, not that CI got a slower runner.
* ``score`` (BENCH_robustness.json) — robustness scores on the
  deterministic messy corpus. The corpus and the pipeline are both
  seeded, so the scores are machine-independent and gate directly.

Usage:
    bench/check_regression.py CURRENT.json [BASELINE.json]

Exits 0 when every gated value is within TOLERANCE of the baseline (or
when the baseline file is missing — first landing), 1 on regression.
"""

import json
import os
import sys

TOLERANCE = 1.10  # current value may be up to 10% below baseline

GATED_KEYS = ("speedup", "score")


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    current_path = sys.argv[1]
    baseline_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_stage1.json"

    if not os.path.exists(baseline_path):
        print(f"no baseline at {baseline_path}; skipping gate (first landing)")
        return 0

    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    failed = False
    for section, entry in baseline.items():
        if not isinstance(entry, dict):
            continue
        for key in GATED_KEYS:
            if key not in entry:
                continue
            base = entry[key]
            cur = current.get(section, {}).get(key)
            if cur is None:
                print(f"FAIL {section}: {key} missing from current results")
                failed = True
                continue
            floor = base / TOLERANCE
            verdict = "ok" if cur >= floor else "FAIL"
            print(
                f"{verdict} {section}: {key} {cur:.3f} vs baseline "
                f"{base:.3f} (floor {floor:.3f})"
            )
            failed = failed or cur < floor
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
