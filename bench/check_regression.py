#!/usr/bin/env python3
"""Ratio-based regression gate for the Stage-1 kernel benchmark.

Compares the kernel-vs-naive speedup ratios in a freshly generated
BENCH_stage1.json against the committed baseline. Speedup ratios are
hardware-independent (both variants run on the same machine in the same
process), so a materially lower ratio means the kernel itself regressed,
not that CI got a slower runner.

Usage:
    bench/check_regression.py CURRENT.json [BASELINE.json]

Exits 0 when every section's speedup is within TOLERANCE of the baseline
(or when the baseline file is missing — first landing), 1 on regression.
"""

import json
import os
import sys

TOLERANCE = 1.10  # current speedup may be up to 10% below baseline


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    current_path = sys.argv[1]
    baseline_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_stage1.json"

    if not os.path.exists(baseline_path):
        print(f"no baseline at {baseline_path}; skipping gate (first landing)")
        return 0

    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    failed = False
    for section, entry in baseline.items():
        if not isinstance(entry, dict) or "speedup" not in entry:
            continue
        base = entry["speedup"]
        cur = current.get(section, {}).get("speedup")
        if cur is None:
            print(f"FAIL {section}: missing from current results")
            failed = True
            continue
        floor = base / TOLERANCE
        verdict = "ok" if cur >= floor else "FAIL"
        print(
            f"{verdict} {section}: speedup {cur:.2f}x vs baseline "
            f"{base:.2f}x (floor {floor:.2f}x)"
        )
        failed = failed or cur < floor
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
