// Reproduces Table 5 (Sec. 4.6): per-cell-type F1 of a Strudel-style cell
// classifier whose binary is-aggregate feature comes either from the original
// adjacency-only detector (Strudel^O) or from AggreCol (Strudel^A).
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "cellclass/strudel_experiment.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  // A corpus slice keeps the cross-validated forest training affordable.
  constexpr int kFileCount = 120;
  constexpr int kFolds = 3;
  std::vector<eval::AnnotatedFile> files(
      bench::ValidationFiles().begin(),
      bench::ValidationFiles().begin() + kFileCount);

  cellclass::ForestConfig forest;
  forest.tree_count = 16;
  forest.max_depth = 12;

  std::printf(
      "Table 5: per-type F1 of the cell classifier with the is-aggregate\n"
      "feature from the adjacency-only detector (Strudel^O) vs AggreCol\n"
      "(Strudel^A); %d files, %d-fold cross-validation.\n\n",
      kFileCount, kFolds);

  const auto original = cellclass::RunStrudelExperiment(
      files, cellclass::AggregateFeatureSource::kAdjacentOnly, kFolds, forest);
  const auto aggrecol_result = cellclass::RunStrudelExperiment(
      files, cellclass::AggregateFeatureSource::kAggreCol, kFolds, forest);

  util::TablePrinter printer;
  printer.SetHeader({"Cell type", "Strudel^O F1", "Strudel^A F1"});
  for (eval::CellRole role : eval::kAllCellRoles) {
    if (role == eval::CellRole::kEmpty) continue;
    printer.AddRow({ToString(role),
                    bench::Num(original.per_role[eval::IndexOf(role)].F1()),
                    bench::Num(aggrecol_result.per_role[eval::IndexOf(role)].F1())});
  }
  printer.Print(std::cout);
  std::printf("\noverall accuracy: Strudel^O %s, Strudel^A %s over %d cells\n",
              bench::Num(original.accuracy).c_str(),
              bench::Num(aggrecol_result.accuracy).c_str(), original.cells);
  std::printf(
      "\nPaper shape check: the aggregation-type F1 rises substantially with\n"
      "AggreCol's feature, and most other types improve slightly as fewer\n"
      "cells are misclassified as aggregation.\n");
  return 0;
}
