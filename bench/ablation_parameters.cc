// Parameter ablations the paper's Sec. 4.3.2 fixes by choice: the line
// aggregation coverage cov (chosen as 0.7 for the best average F1) and the
// sliding-window size (fixed at 10 "to cover the majority of the difference,
// division and relative change aggregations"). This harness regenerates the
// evidence behind both choices.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  constexpr int kFileCount = 150;
  std::vector<eval::AnnotatedFile> files(
      bench::ValidationFiles().begin(),
      bench::ValidationFiles().begin() + kFileCount);

  std::printf(
      "Coverage-threshold sweep (full pipeline, %d VALIDATION files):\n\n",
      kFileCount);
  util::TablePrinter coverage_table;
  coverage_table.SetHeader({"cov", "precision", "recall", "F1"});
  for (double cov : {0.3, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    core::AggreColConfig config;
    config.coverage = cov;
    const auto total = eval::Accumulate(bench::ScoreCorpus(files, config));
    coverage_table.AddRow({bench::Num(cov, 1), bench::Num(total.precision),
                           bench::Num(total.recall), bench::Num(total.F1())});
  }
  coverage_table.Print(std::cout);
  std::printf(
      "(paper: the average F1 across functions peaks around cov = 0.7)\n\n");

  std::printf("Window-size sweep (pairwise functions only):\n\n");
  util::TablePrinter window_table;
  window_table.SetHeader({"window", "precision", "recall", "F1"});
  for (int window : {2, 4, 6, 10, 14}) {
    core::AggreColConfig config;
    config.window_size = window;
    config.functions = {core::AggregationFunction::kDivision,
                        core::AggregationFunction::kRelativeChange,
                        core::AggregationFunction::kDifference};
    core::AggreCol detector(config);
    std::vector<eval::Scores> per_file;
    for (const auto& file : files) {
      const auto result = detector.Detect(file.grid);
      // Score only the pairwise classes: filter division + relative change
      // (difference folds into sum and would be diluted by undetected sums).
      const auto division = eval::Score(result.aggregations, file.annotations,
                                        core::AggregationFunction::kDivision);
      const auto relchange =
          eval::Score(result.aggregations, file.annotations,
                      core::AggregationFunction::kRelativeChange);
      per_file.push_back(division);
      per_file.push_back(relchange);
    }
    const auto total = eval::Accumulate(per_file);
    window_table.AddRow({std::to_string(window), bench::Num(total.precision),
                         bench::Num(total.recall), bench::Num(total.F1())});
  }
  window_table.Print(std::cout);
  std::printf(
      "(paper: a window of 10 covers the majority of the pairwise ranges;\n"
      "smaller windows miss operands placed farther from their aggregate —\n"
      "the Sec. 4.5.2 fixed-window false-negative mode)\n");
  return 0;
}
