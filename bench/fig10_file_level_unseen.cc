// Reproduces Fig. 10: file-level precision and recall histograms of AggreCol
// on the UNSEEN corpus (held out while designing the approach; higher
// prevalence of zero-valued cells).
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  aggrecol::bench::PrintFileLevelHistograms(aggrecol::bench::UnseenFiles(), "UNSEEN");
  std::printf(
      "Paper shape check (Fig. 10): results resemble VALIDATION (the approach\n"
      "generalizes); the top precision bin is thinner than on VALIDATION\n"
      "because zero-valued cells are prevalent in this corpus.\n");
  return 0;
}
