// Component micro-benchmarks (google-benchmark): CSV parsing, dialect
// sniffing, number-format election, numeric normalization, the individual
// detection strategies, and the full three-stage pipeline per table size.
#include <benchmark/benchmark.h>

#include "baselines/adjacent_only_detector.h"
#include "core/aggrecol.h"
#include "core/individual_detector.h"
#include "csv/parser.h"
#include "csv/sniffer.h"
#include "csv/writer.h"
#include "datagen/file_generator.h"
#include "numfmt/numeric_grid.h"

namespace {

using namespace aggrecol;

// A deterministic mid-size file for component benchmarks.
const eval::AnnotatedFile& BenchFile() {
  static const auto* const kFile = [] {
    datagen::GeneratorProfile profile;
    profile.min_data_rows = 30;
    profile.max_data_rows = 30;
    profile.p_big_file = 0.0;
    return new eval::AnnotatedFile(datagen::GenerateFile(profile, 4242, "bench.csv"));
  }();
  return *kFile;
}

const std::string& BenchCsvText() {
  static const auto* const kText =
      new std::string(csv::WriteGrid(BenchFile().grid, csv::Dialect{',', '"'}));
  return *kText;
}

void BM_CsvParse(benchmark::State& state) {
  const csv::Dialect dialect{',', '"'};
  for (auto _ : state) {
    benchmark::DoNotOptimize(csv::ParseGrid(BenchCsvText(), dialect));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(BenchCsvText().size()));
}
BENCHMARK(BM_CsvParse);

void BM_DialectSniff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(csv::SniffDialect(BenchCsvText()));
  }
}
BENCHMARK(BM_DialectSniff);

void BM_FormatElection(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(numfmt::ElectFormat(BenchFile().grid));
  }
}
BENCHMARK(BM_FormatElection);

void BM_NumericNormalization(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(numfmt::NumericGrid::FromGrid(BenchFile().grid));
  }
}
BENCHMARK(BM_NumericNormalization);

void BM_IndividualSumDetector(benchmark::State& state) {
  const auto numeric = numfmt::NumericGrid::FromGrid(BenchFile().grid);
  core::IndividualConfig config;
  config.error_level = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::DetectIndividualRowwise(numeric, core::AggregationFunction::kSum, config));
  }
}
BENCHMARK(BM_IndividualSumDetector);

void BM_IndividualDivisionDetector(benchmark::State& state) {
  const auto numeric = numfmt::NumericGrid::FromGrid(BenchFile().grid);
  core::IndividualConfig config;
  config.error_level = 0.03;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::DetectIndividualRowwise(
        numeric, core::AggregationFunction::kDivision, config));
  }
}
BENCHMARK(BM_IndividualDivisionDetector);

void BM_AdjacentOnlyBaseline(benchmark::State& state) {
  const auto numeric = numfmt::NumericGrid::FromGrid(BenchFile().grid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::DetectAdjacentOnly(numeric, 0.01));
  }
}
BENCHMARK(BM_AdjacentOnlyBaseline);

void BM_FullPipeline(benchmark::State& state) {
  datagen::GeneratorProfile profile;
  profile.min_data_rows = static_cast<int>(state.range(0));
  profile.max_data_rows = static_cast<int>(state.range(0));
  profile.p_big_file = 0.0;
  const auto file = datagen::GenerateFile(profile, 99, "pipeline.csv");
  const auto numeric = numfmt::NumericGrid::FromGrid(file.grid);
  core::AggreCol detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(numeric));
  }
  state.SetLabel(std::to_string(file.grid.rows()) + "x" +
                 std::to_string(file.grid.columns()) + " cells");
}
BENCHMARK(BM_FullPipeline)->Arg(10)->Arg(40)->Arg(160);

}  // namespace

BENCHMARK_MAIN();
