// Stage-1 hot-path kernel benchmark: the transpose-free column-axis view and
// the prefix-sum adjacency scan against the retained naive references.
//
//   column_axis          — the full column-axis stage-1 scan (all five
//                          functions) per VALIDATION file:
//                          NumericGrid::Transposed() deep copy + naive scans
//                          vs zero-copy AxisView::Columns() + kernels.
//   wide_adjacency       — sum/average candidate generation on synthetic wide
//                          files (many columns per row), the regime the
//                          prefix-sum screen targets.
//   window_ratio_columns — division/relative-change column-axis window scans
//                          on synthetic homogeneous-column files with planted
//                          exact ratios: the whole-window batch screen's
//                          target regime.
//   extension_screen     — stage-1/3 pattern extension over synthetic grids
//                          with several planted patterns: ExtendAggregations'
//                          shared-LineIndex screens vs the naive walk.
//   stage2_collective    — the stage-2 collective conflict walk over
//                          synthetic candidate sets: sorted-range group
//                          predicates vs the linear-scan reference.
//
// Prints a human-readable table; `--json [PATH]` additionally writes the
// machine-readable BENCH_stage1.json consumed by bench/check_regression.py
// (default path: BENCH_stage1.json in the current directory). Both scans are
// bit-identical by construction (tests/stage1_kernel_test.cc), so candidate
// counts must agree between the naive and kernel variants; the benchmark
// aborts if they do not.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/adjacency_strategy.h"
#include "core/collective_detector.h"
#include "core/extension.h"
#include "core/window_strategy.h"
#include "csv/grid.h"
#include "numfmt/axis_view.h"
#include "numfmt/numeric_grid.h"
#include "util/stopwatch.h"

namespace aggrecol {
namespace {

using core::AggregationFunction;

struct VariantStats {
  std::vector<double> per_file_us;
  double total_seconds = 0.0;
  long long candidates = 0;

  void Record(double seconds, size_t found) {
    per_file_us.push_back(seconds * 1e6);
    total_seconds += seconds;
    candidates += static_cast<long long>(found);
  }

  double Percentile(double p) const {
    std::vector<double> sorted = per_file_us;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.empty()) return 0.0;
    // Linear interpolation on the fractional rank p * (N - 1). The previous
    // floor-truncated nearest-rank index min(N-1, floor(p*N)) hit N-1 for
    // p = 0.95 whenever N < 20, silently reporting p95 == max on every small
    // corpus (including the 24-file synthetic suites below).
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double fraction = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * fraction;
  }

  double CandidatesPerSecond() const {
    return total_seconds > 0.0 ? static_cast<double>(candidates) / total_seconds : 0.0;
  }
};

struct Comparison {
  const char* name;
  int files = 0;
  VariantStats naive;
  VariantStats kernel;

  double Speedup() const {
    return kernel.total_seconds > 0.0 ? naive.total_seconds / kernel.total_seconds
                                      : 0.0;
  }
};

// Best-of-3 timing: runs `fn` three times and returns the fastest wall time.
// The synthetic comparisons below are small (milliseconds per variant), where
// one scheduler hiccup can move a single-shot ratio by tens of percent — and
// their speedups are gated at 10% by bench/check_regression.py.
template <typename Fn>
double MinSeconds(Fn&& fn) {
  util::Stopwatch stopwatch;
  double best = 0.0;
  for (int repetition = 0; repetition < 3; ++repetition) {
    stopwatch.Reset();
    fn();
    const double seconds = stopwatch.ElapsedSeconds();
    if (repetition == 0 || seconds < best) best = seconds;
  }
  return best;
}

// One full stage-1 scan of `view`: every function over every line. Returns
// the number of candidates. `use_kernel` selects the implementation.
size_t ScanAllFunctions(const numfmt::AxisView& view, bool use_kernel) {
  const std::vector<bool> active(static_cast<size_t>(view.columns()), true);
  size_t found = 0;
  for (AggregationFunction function : core::kAllFunctions) {
    const bool commutative = core::TraitsOf(function).commutative;
    for (int line = 0; line < view.rows(); ++line) {
      if (commutative) {
        found += (use_kernel
                      ? core::DetectAdjacentCommutative(view, active, line,
                                                        function, 0.0)
                      : core::DetectAdjacentCommutativeNaive(view, active, line,
                                                             function, 0.0))
                     .size();
      } else {
        found += (use_kernel
                      ? core::DetectWindowPairwise(view, active, line, function,
                                                   0.0, 10)
                      : core::DetectWindowPairwiseNaive(view, active, line,
                                                        function, 0.0, 10))
                     .size();
      }
    }
  }
  return found;
}

// Column-axis comparison over the VALIDATION corpus: the naive variant pays
// the transposed deep copy (what the pipeline used to materialize) plus the
// naive scans; the kernel variant runs the zero-copy view and the stage-1
// kernels.
Comparison BenchColumnAxis() {
  Comparison comparison;
  comparison.name = "column_axis";
  util::Stopwatch stopwatch;
  for (const auto& file : bench::ValidationFiles()) {
    const auto grid = numfmt::NumericGrid::FromGrid(file.grid, file.format);
    ++comparison.files;

    stopwatch.Reset();
    const numfmt::NumericGrid transposed = grid.Transposed();
    const size_t naive_found = ScanAllFunctions(transposed, /*use_kernel=*/false);
    comparison.naive.Record(stopwatch.ElapsedSeconds(), naive_found);

    stopwatch.Reset();
    const size_t kernel_found =
        ScanAllFunctions(numfmt::AxisView::Columns(grid), /*use_kernel=*/true);
    comparison.kernel.Record(stopwatch.ElapsedSeconds(), kernel_found);

    if (naive_found != kernel_found) {
      std::fprintf(stderr, "FATAL: candidate mismatch on %s: naive=%zu kernel=%zu\n",
                   file.name.c_str(), naive_found, kernel_found);
      std::exit(1);
    }
  }
  return comparison;
}

// Wide-file sum/average comparison: synthetic grids with hundreds of columns
// per row and planted sums, scanned row-wise with the commutative detectors
// only — the candidate-generation path the prefix-sum kernel accelerates.
Comparison BenchWideAdjacency() {
  constexpr int kFiles = 24;
  constexpr int kRows = 32;
  constexpr int kColumns = 256;

  Comparison comparison;
  comparison.name = "wide_adjacency";
  std::mt19937 rng(0x5747E1);
  util::Stopwatch stopwatch;
  for (int f = 0; f < kFiles; ++f) {
    csv::Grid raw(kRows, kColumns);
    for (int i = 0; i < kRows; ++i) {
      long long sum = 0;
      for (int j = 1; j < kColumns; ++j) {
        const int value = 1 + static_cast<int>(rng() % 99);
        raw.set(i, j, std::to_string(value));
        if (j <= 8) sum += value;
      }
      raw.set(i, 0, std::to_string(sum));  // planted: col 0 = sum(cols 1..8)
    }
    const auto grid =
        numfmt::NumericGrid::FromGrid(raw, numfmt::NumberFormat::kCommaDot);
    const numfmt::AxisView view = numfmt::AxisView::Rows(grid);
    const std::vector<bool> active(static_cast<size_t>(view.columns()), true);
    ++comparison.files;

    const AggregationFunction commutative[] = {AggregationFunction::kSum,
                                               AggregationFunction::kAverage};
    stopwatch.Reset();
    size_t naive_found = 0;
    for (AggregationFunction function : commutative) {
      for (int line = 0; line < view.rows(); ++line) {
        naive_found += core::DetectAdjacentCommutativeNaive(view, active, line,
                                                            function, 0.0)
                           .size();
      }
    }
    comparison.naive.Record(stopwatch.ElapsedSeconds(), naive_found);

    stopwatch.Reset();
    size_t kernel_found = 0;
    for (AggregationFunction function : commutative) {
      for (int line = 0; line < view.rows(); ++line) {
        kernel_found +=
            core::DetectAdjacentCommutative(view, active, line, function, 0.0)
                .size();
      }
    }
    comparison.kernel.Record(stopwatch.ElapsedSeconds(), kernel_found);

    if (naive_found != kernel_found) {
      std::fprintf(stderr,
                   "FATAL: candidate mismatch on wide file %d: naive=%zu kernel=%zu\n",
                   f, naive_found, kernel_found);
      std::exit(1);
    }
  }
  return comparison;
}

// Division/relative-change window scans on the column axis: synthetic files
// whose columns are homogeneous large values (1000..1099) with one exact
// division (1056/1024 = 1.03125) and one exact relative change (1/32)
// planted per column. Almost every window around a large aggregate is a
// certain miss the batch screen rejects in O(1); the planted ratio cells keep
// both variants honest about finding real candidates.
Comparison BenchWindowRatioColumns() {
  constexpr int kFiles = 24;
  constexpr int kRows = 128;
  constexpr int kColumns = 48;
  const core::AggregationFunction kFunctions[] = {
      AggregationFunction::kDivision, AggregationFunction::kRelativeChange};

  Comparison comparison;
  comparison.name = "window_ratio_columns";
  std::mt19937 rng(0xD1151011);
  for (int f = 0; f < kFiles; ++f) {
    csv::Grid raw(kRows, kColumns);
    for (int j = 0; j < kColumns; ++j) {
      for (int i = 0; i < kRows; ++i) {
        raw.set(i, j, std::to_string(1000 + static_cast<int>(rng() % 100)));
      }
      raw.set(10, j, "1.03125");  // = 1056 / 1024, exact in binary
      raw.set(11, j, "1056");
      raw.set(12, j, "1024");
      raw.set(20, j, "0.03125");  // = (1056 - 1024) / 1024, exact in binary
      raw.set(21, j, "1024");
      raw.set(22, j, "1056");
    }
    const auto grid =
        numfmt::NumericGrid::FromGrid(raw, numfmt::NumberFormat::kCommaDot);
    ++comparison.files;

    const std::vector<bool> active(static_cast<size_t>(kRows), true);

    size_t naive_found = 0;
    const double naive_seconds = MinSeconds([&] {
      const numfmt::NumericGrid transposed = grid.Transposed();
      naive_found = 0;
      for (AggregationFunction function : kFunctions) {
        for (int line = 0; line < transposed.rows(); ++line) {
          naive_found += core::DetectWindowPairwiseNaive(transposed, active, line,
                                                         function, 0.0, 10)
                             .size();
        }
      }
    });
    comparison.naive.Record(naive_seconds, naive_found);

    size_t kernel_found = 0;
    const double kernel_seconds = MinSeconds([&] {
      const numfmt::AxisView view = numfmt::AxisView::Columns(grid);
      kernel_found = 0;
      for (AggregationFunction function : kFunctions) {
        for (int line = 0; line < view.rows(); ++line) {
          kernel_found +=
              core::DetectWindowPairwise(view, active, line, function, 0.0, 10)
                  .size();
        }
      }
    });
    comparison.kernel.Record(kernel_seconds, kernel_found);

    if (naive_found != kernel_found) {
      std::fprintf(stderr,
                   "FATAL: candidate mismatch on ratio file %d: naive=%zu kernel=%zu\n",
                   f, naive_found, kernel_found);
      std::exit(1);
    }
  }
  return comparison;
}

// Stage-1/3 pattern extension: running-total grids — ten nested sum patterns
// of increasing length over a shared value block, plus pairwise triples —
// valid only in the first few rows, the realistic extension regime where
// most probed rows are misses. The screened ExtendAggregations compacts each
// row once into a LineIndex shared by all thirteen patterns and rejects miss
// rows in O(1) per pattern; the naive walk re-gathers and re-sums every
// pattern's range cells (730+ per row) from the raw view.
Comparison BenchExtensionScreen() {
  constexpr int kFiles = 16;
  constexpr int kRows = 96;
  constexpr int kColumns = 160;
  constexpr int kPlantedRows = 8;  // rows 0..7 match; the rest are misses
  constexpr int kSumPatterns = 10;
  // Sum pattern i aggregates cols [0, 10 + 14*i): nested ranges 10..136 long.
  auto sum_length = [](int i) { return 10 + 14 * i; };

  Comparison comparison;
  comparison.name = "extension_screen";
  std::mt19937 rng(0xE87E4D);
  for (int f = 0; f < kFiles; ++f) {
    csv::Grid raw(kRows, kColumns);
    for (int i = 0; i < kRows; ++i) {
      const bool planted = i < kPlantedRows;
      long long running = 0;
      std::vector<long long> prefix(141, 0);
      for (int j = 0; j < 140; ++j) {
        const int value = 1 + static_cast<int>(rng() % 99);
        raw.set(i, j, std::to_string(value));
        running += value;
        prefix[static_cast<size_t>(j) + 1] = running;
      }
      for (int s = 0; s < kSumPatterns; ++s) {
        const long long sum = prefix[static_cast<size_t>(sum_length(s))];
        raw.set(i, 140 + s,
                std::to_string(planted ? sum : sum + 7 +
                                                   static_cast<int>(rng() % 999)));
      }
      const int a = 1 + static_cast<int>(rng() % 999);
      const int b = 1 + static_cast<int>(rng() % 999);
      raw.set(i, 151, std::to_string(a));
      raw.set(i, 152, std::to_string(b));
      raw.set(i, 150, std::to_string(planted ? a - b : a - b + 5));
      raw.set(i, 153, planted ? "1.03125" : "7.5");  // col 153 = col 154 / col 155
      raw.set(i, 154, "1056");
      raw.set(i, 155, "1024");
      raw.set(i, 156, planted ? "0.03125" : "9.25");  // (158 - 157) / 157
      raw.set(i, 157, "1024");
      raw.set(i, 158, "1056");
      raw.set(i, 159, std::to_string(1 + static_cast<int>(rng() % 999)));
    }
    const auto grid =
        numfmt::NumericGrid::FromGrid(raw, numfmt::NumberFormat::kCommaDot);
    const numfmt::AxisView view = numfmt::AxisView::Rows(grid);
    const std::vector<bool> active(static_cast<size_t>(view.columns()), true);
    ++comparison.files;

    // Seeds: each planted pattern detected in rows 0 and 1 only; extension
    // must recover the remaining planted rows and reject the rest.
    std::vector<core::Aggregation> detected;
    auto seed = [&detected](int aggregate, std::vector<int> range,
                            AggregationFunction function) {
      for (int row : {0, 1}) {
        core::Aggregation aggregation;
        aggregation.axis = core::Axis::kRow;
        aggregation.line = row;
        aggregation.aggregate = aggregate;
        aggregation.range = range;
        aggregation.function = function;
        detected.push_back(std::move(aggregation));
      }
    };
    for (int s = 0; s < kSumPatterns; ++s) {
      std::vector<int> range;
      for (int j = 0; j < sum_length(s); ++j) range.push_back(j);
      seed(140 + s, std::move(range), AggregationFunction::kSum);
    }
    seed(150, {151, 152}, AggregationFunction::kDifference);
    seed(153, {154, 155}, AggregationFunction::kDivision);
    seed(156, {157, 158}, AggregationFunction::kRelativeChange);

    std::vector<core::Aggregation> naive_out;
    const double naive_seconds = MinSeconds(
        [&] { naive_out = core::ExtendAggregationsNaive(view, active, detected, 0.0); });
    comparison.naive.Record(naive_seconds, naive_out.size());

    std::vector<core::Aggregation> kernel_out;
    const double kernel_seconds = MinSeconds(
        [&] { kernel_out = core::ExtendAggregations(view, active, detected, 0.0); });
    comparison.kernel.Record(kernel_seconds, kernel_out.size());

    if (naive_out != kernel_out) {
      std::fprintf(stderr, "FATAL: extension mismatch on file %d\n", f);
      std::exit(1);
    }
  }
  return comparison;
}

// Stage-2 collective conflict walk over synthetic candidate sets modeling
// the column axis of a long file (the "columns" here are the 20000 lines of
// the transposed view). Pattern groups sit in disjoint blocks — four
// aggregates sharing one 200-element range per block — so no conflicts fire,
// the accepted list grows to every non-division group, and the O(groups^2)
// walk's predicate cost is what's measured: per-comparison linear finds over
// the 200-element ranges (naive) vs sorted-range binary searches (kernel).
Comparison BenchStage2Collective() {
  constexpr int kIterations = 20;
  constexpr int kRows = 64;
  constexpr int kColumns = 20000;
  constexpr int kBlock = 250;        // per block: 4 aggregates + 200 range cols
  constexpr int kRangeLength = 200;
  constexpr int kBlocks = kColumns / kBlock;  // 80 blocks, 320 groups

  Comparison comparison;
  comparison.name = "stage2_collective";
  std::mt19937 rng(0x57A6E2);

  csv::Grid raw(kRows, kColumns);
  for (int i = 0; i < kRows; ++i) {
    for (int j = 0; j < kColumns; ++j) {
      raw.set(i, j, std::to_string(1 + static_cast<int>(rng() % 999)));
    }
  }
  const auto grid =
      numfmt::NumericGrid::FromGrid(raw, numfmt::NumberFormat::kCommaDot);
  const numfmt::AxisView view = numfmt::AxisView::Rows(grid);

  for (int iteration = 0; iteration < kIterations; ++iteration) {
    std::vector<core::Aggregation> candidates;
    for (int block = 0; block < kBlocks; ++block) {
      const int base = block * kBlock;
      std::vector<int> range;
      for (int j = base + 4; j < base + 4 + kRangeLength; ++j) range.push_back(j);
      for (int g = 0; g < 4; ++g) {
        const AggregationFunction function =
            core::kAllFunctions[static_cast<size_t>(block * 4 + g) %
                                core::kAllFunctions.size()];
        const int members = 1 + static_cast<int>(rng() % 2);
        for (int m = 0; m < members; ++m) {
          core::Aggregation aggregation;
          aggregation.axis = core::Axis::kRow;
          aggregation.line = static_cast<int>(rng() % kRows);
          aggregation.aggregate = base + g;
          aggregation.range = range;
          aggregation.function = function;
          candidates.push_back(std::move(aggregation));
        }
      }
    }
    ++comparison.files;

    std::vector<core::Aggregation> naive_out;
    const double naive_seconds =
        MinSeconds([&] { naive_out = core::CollectivePruneNaive(view, candidates); });
    comparison.naive.Record(naive_seconds, naive_out.size());

    std::vector<core::Aggregation> kernel_out;
    const double kernel_seconds =
        MinSeconds([&] { kernel_out = core::CollectivePrune(view, candidates); });
    comparison.kernel.Record(kernel_seconds, kernel_out.size());

    if (naive_out != kernel_out) {
      std::fprintf(stderr, "FATAL: stage-2 mismatch on iteration %d\n", iteration);
      std::exit(1);
    }
  }
  return comparison;
}

void PrintComparison(const Comparison& comparison) {
  std::printf("%s (%d files)\n", comparison.name, comparison.files);
  std::printf("  %-8s %10s %10s %14s %16s\n", "variant", "p50 us", "p95 us",
              "total ms", "candidates/s");
  auto row = [](const char* label, const VariantStats& stats) {
    std::printf("  %-8s %10.1f %10.1f %14.2f %16.0f\n", label,
                stats.Percentile(0.50), stats.Percentile(0.95),
                stats.total_seconds * 1e3, stats.CandidatesPerSecond());
  };
  row("naive", comparison.naive);
  row("kernel", comparison.kernel);
  std::printf("  speedup: %.2fx (candidates: %lld, identical by construction)\n\n",
              comparison.Speedup(), comparison.kernel.candidates);
}

void WriteVariantJson(std::FILE* out, const char* label, const VariantStats& stats) {
  std::fprintf(out,
               "    \"%s\": {\"p50_us\": %.3f, \"p95_us\": %.3f, "
               "\"total_ms\": %.3f, \"candidates\": %lld, "
               "\"candidates_per_sec\": %.1f}",
               label, stats.Percentile(0.50), stats.Percentile(0.95),
               stats.total_seconds * 1e3, stats.candidates,
               stats.CandidatesPerSecond());
}

void WriteJson(const std::string& path, const std::vector<Comparison>& comparisons) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"bench\": \"stage1_kernels\",\n");
  for (size_t c = 0; c < comparisons.size(); ++c) {
    const Comparison& comparison = comparisons[c];
    std::fprintf(out, "  \"%s\": {\n    \"files\": %d,\n", comparison.name,
                 comparison.files);
    WriteVariantJson(out, "naive", comparison.naive);
    std::fprintf(out, ",\n");
    WriteVariantJson(out, "kernel", comparison.kernel);
    std::fprintf(out, ",\n    \"speedup\": %.3f\n  }%s\n", comparison.Speedup(),
                 c + 1 < comparisons.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace aggrecol

int main(int argc, char** argv) {
  using namespace aggrecol;

  std::string json_path;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--json") {
      json_path = a + 1 < argc ? argv[a + 1] : "BENCH_stage1.json";
      ++a;
    }
  }

  std::printf(
      "Stage-1 kernels: transpose-free AxisView + prefix-sum adjacency scan\n"
      "vs the retained naive references (error level 0, window 10).\n\n");

  const std::vector<Comparison> comparisons = {
      BenchColumnAxis(), BenchWideAdjacency(), BenchWindowRatioColumns(),
      BenchExtensionScreen(), BenchStage2Collective()};
  for (const auto& comparison : comparisons) PrintComparison(comparison);
  if (!json_path.empty()) WriteJson(json_path, comparisons);
  return 0;
}
