// Stage-1 hot-path kernel benchmark: the transpose-free column-axis view and
// the prefix-sum adjacency scan against the retained naive references.
//
//   column_axis     — the full column-axis stage-1 scan (all five functions)
//                     per VALIDATION file: NumericGrid::Transposed() deep copy
//                     + naive scans vs zero-copy AxisView::Columns() + kernels.
//   wide_adjacency  — sum/average candidate generation on synthetic wide
//                     files (many columns per row), the regime the prefix-sum
//                     screen targets.
//
// Prints a human-readable table; `--json [PATH]` additionally writes the
// machine-readable BENCH_stage1.json consumed by bench/check_regression.py
// (default path: BENCH_stage1.json in the current directory). Both scans are
// bit-identical by construction (tests/stage1_kernel_test.cc), so candidate
// counts must agree between the naive and kernel variants; the benchmark
// aborts if they do not.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/adjacency_strategy.h"
#include "core/window_strategy.h"
#include "csv/grid.h"
#include "numfmt/axis_view.h"
#include "numfmt/numeric_grid.h"
#include "util/stopwatch.h"

namespace aggrecol {
namespace {

using core::AggregationFunction;

struct VariantStats {
  std::vector<double> per_file_us;
  double total_seconds = 0.0;
  long long candidates = 0;

  void Record(double seconds, size_t found) {
    per_file_us.push_back(seconds * 1e6);
    total_seconds += seconds;
    candidates += static_cast<long long>(found);
  }

  double Percentile(double p) const {
    std::vector<double> sorted = per_file_us;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.empty()) return 0.0;
    const size_t index = std::min(
        sorted.size() - 1, static_cast<size_t>(p * static_cast<double>(sorted.size())));
    return sorted[index];
  }

  double CandidatesPerSecond() const {
    return total_seconds > 0.0 ? static_cast<double>(candidates) / total_seconds : 0.0;
  }
};

struct Comparison {
  const char* name;
  int files = 0;
  VariantStats naive;
  VariantStats kernel;

  double Speedup() const {
    return kernel.total_seconds > 0.0 ? naive.total_seconds / kernel.total_seconds
                                      : 0.0;
  }
};

// One full stage-1 scan of `view`: every function over every line. Returns
// the number of candidates. `use_kernel` selects the implementation.
size_t ScanAllFunctions(const numfmt::AxisView& view, bool use_kernel) {
  const std::vector<bool> active(static_cast<size_t>(view.columns()), true);
  size_t found = 0;
  for (AggregationFunction function : core::kAllFunctions) {
    const bool commutative = core::TraitsOf(function).commutative;
    for (int line = 0; line < view.rows(); ++line) {
      if (commutative) {
        found += (use_kernel
                      ? core::DetectAdjacentCommutative(view, active, line,
                                                        function, 0.0)
                      : core::DetectAdjacentCommutativeNaive(view, active, line,
                                                             function, 0.0))
                     .size();
      } else {
        found += (use_kernel
                      ? core::DetectWindowPairwise(view, active, line, function,
                                                   0.0, 10)
                      : core::DetectWindowPairwiseNaive(view, active, line,
                                                        function, 0.0, 10))
                     .size();
      }
    }
  }
  return found;
}

// Column-axis comparison over the VALIDATION corpus: the naive variant pays
// the transposed deep copy (what the pipeline used to materialize) plus the
// naive scans; the kernel variant runs the zero-copy view and the stage-1
// kernels.
Comparison BenchColumnAxis() {
  Comparison comparison;
  comparison.name = "column_axis";
  util::Stopwatch stopwatch;
  for (const auto& file : bench::ValidationFiles()) {
    const auto grid = numfmt::NumericGrid::FromGrid(file.grid, file.format);
    ++comparison.files;

    stopwatch.Reset();
    const numfmt::NumericGrid transposed = grid.Transposed();
    const size_t naive_found = ScanAllFunctions(transposed, /*use_kernel=*/false);
    comparison.naive.Record(stopwatch.ElapsedSeconds(), naive_found);

    stopwatch.Reset();
    const size_t kernel_found =
        ScanAllFunctions(numfmt::AxisView::Columns(grid), /*use_kernel=*/true);
    comparison.kernel.Record(stopwatch.ElapsedSeconds(), kernel_found);

    if (naive_found != kernel_found) {
      std::fprintf(stderr, "FATAL: candidate mismatch on %s: naive=%zu kernel=%zu\n",
                   file.name.c_str(), naive_found, kernel_found);
      std::exit(1);
    }
  }
  return comparison;
}

// Wide-file sum/average comparison: synthetic grids with hundreds of columns
// per row and planted sums, scanned row-wise with the commutative detectors
// only — the candidate-generation path the prefix-sum kernel accelerates.
Comparison BenchWideAdjacency() {
  constexpr int kFiles = 24;
  constexpr int kRows = 32;
  constexpr int kColumns = 256;

  Comparison comparison;
  comparison.name = "wide_adjacency";
  std::mt19937 rng(0x5747E1);
  util::Stopwatch stopwatch;
  for (int f = 0; f < kFiles; ++f) {
    csv::Grid raw(kRows, kColumns);
    for (int i = 0; i < kRows; ++i) {
      long long sum = 0;
      for (int j = 1; j < kColumns; ++j) {
        const int value = 1 + static_cast<int>(rng() % 99);
        raw.set(i, j, std::to_string(value));
        if (j <= 8) sum += value;
      }
      raw.set(i, 0, std::to_string(sum));  // planted: col 0 = sum(cols 1..8)
    }
    const auto grid =
        numfmt::NumericGrid::FromGrid(raw, numfmt::NumberFormat::kCommaDot);
    const numfmt::AxisView view = numfmt::AxisView::Rows(grid);
    const std::vector<bool> active(static_cast<size_t>(view.columns()), true);
    ++comparison.files;

    const AggregationFunction commutative[] = {AggregationFunction::kSum,
                                               AggregationFunction::kAverage};
    stopwatch.Reset();
    size_t naive_found = 0;
    for (AggregationFunction function : commutative) {
      for (int line = 0; line < view.rows(); ++line) {
        naive_found += core::DetectAdjacentCommutativeNaive(view, active, line,
                                                            function, 0.0)
                           .size();
      }
    }
    comparison.naive.Record(stopwatch.ElapsedSeconds(), naive_found);

    stopwatch.Reset();
    size_t kernel_found = 0;
    for (AggregationFunction function : commutative) {
      for (int line = 0; line < view.rows(); ++line) {
        kernel_found +=
            core::DetectAdjacentCommutative(view, active, line, function, 0.0)
                .size();
      }
    }
    comparison.kernel.Record(stopwatch.ElapsedSeconds(), kernel_found);

    if (naive_found != kernel_found) {
      std::fprintf(stderr,
                   "FATAL: candidate mismatch on wide file %d: naive=%zu kernel=%zu\n",
                   f, naive_found, kernel_found);
      std::exit(1);
    }
  }
  return comparison;
}

void PrintComparison(const Comparison& comparison) {
  std::printf("%s (%d files)\n", comparison.name, comparison.files);
  std::printf("  %-8s %10s %10s %14s %16s\n", "variant", "p50 us", "p95 us",
              "total ms", "candidates/s");
  auto row = [](const char* label, const VariantStats& stats) {
    std::printf("  %-8s %10.1f %10.1f %14.2f %16.0f\n", label,
                stats.Percentile(0.50), stats.Percentile(0.95),
                stats.total_seconds * 1e3, stats.CandidatesPerSecond());
  };
  row("naive", comparison.naive);
  row("kernel", comparison.kernel);
  std::printf("  speedup: %.2fx (candidates: %lld, identical by construction)\n\n",
              comparison.Speedup(), comparison.kernel.candidates);
}

void WriteVariantJson(std::FILE* out, const char* label, const VariantStats& stats) {
  std::fprintf(out,
               "    \"%s\": {\"p50_us\": %.3f, \"p95_us\": %.3f, "
               "\"total_ms\": %.3f, \"candidates\": %lld, "
               "\"candidates_per_sec\": %.1f}",
               label, stats.Percentile(0.50), stats.Percentile(0.95),
               stats.total_seconds * 1e3, stats.candidates,
               stats.CandidatesPerSecond());
}

void WriteJson(const std::string& path, const std::vector<Comparison>& comparisons) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"bench\": \"stage1_kernels\",\n");
  for (size_t c = 0; c < comparisons.size(); ++c) {
    const Comparison& comparison = comparisons[c];
    std::fprintf(out, "  \"%s\": {\n    \"files\": %d,\n", comparison.name,
                 comparison.files);
    WriteVariantJson(out, "naive", comparison.naive);
    std::fprintf(out, ",\n");
    WriteVariantJson(out, "kernel", comparison.kernel);
    std::fprintf(out, ",\n    \"speedup\": %.3f\n  }%s\n", comparison.Speedup(),
                 c + 1 < comparisons.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace aggrecol

int main(int argc, char** argv) {
  using namespace aggrecol;

  std::string json_path;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--json") {
      json_path = a + 1 < argc ? argv[a + 1] : "BENCH_stage1.json";
      ++a;
    }
  }

  std::printf(
      "Stage-1 kernels: transpose-free AxisView + prefix-sum adjacency scan\n"
      "vs the retained naive references (error level 0, window 10).\n\n");

  const std::vector<Comparison> comparisons = {BenchColumnAxis(),
                                               BenchWideAdjacency()};
  for (const auto& comparison : comparisons) PrintComparison(comparison);
  if (!json_path.empty()) WriteJson(json_path, comparisons);
  return 0;
}
