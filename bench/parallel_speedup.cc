// Parallel-detection ablation: the paper notes that the individual detectors
// "process each aggregation candidate independently [and] can be easily
// implemented in parallel to improve efficiency" (Sec. 4.4). This harness
// measures the wall-clock speedup of the threaded pipeline on the slowest
// (largest) files and verifies the results are identical.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  // Parallelism only pays on large files (small ones are microseconds after
  // pruning), so measure on files at the scale of the paper's largest tables
  // (601 rows / 97 columns).
  datagen::GeneratorProfile profile;
  profile.p_no_aggregation = 0.0;
  profile.p_big_file = 1.0;
  profile.big_file_rows = 600;
  profile.p_tiny_file = 0.0;
  std::vector<eval::AnnotatedFile> owned;
  for (int i = 0; i < 6; ++i) {
    owned.push_back(datagen::GenerateFile(profile, 9000 + i,
                                          "big" + std::to_string(i) + ".csv"));
  }
  std::vector<const eval::AnnotatedFile*> files;
  for (const auto& file : owned) files.push_back(&file);

  util::TablePrinter printer;
  printer.SetHeader({"threads", "seconds", "speedup"});
  double baseline_seconds = 0.0;
  std::vector<size_t> baseline_counts;
  for (int threads : {1, 2, 4, 8}) {
    core::AggreColConfig config;
    config.threads = threads;
    core::AggreCol detector(config);
    util::Stopwatch stopwatch;
    std::vector<size_t> counts;
    for (const auto* file : files) {
      counts.push_back(detector.Detect(file->grid).aggregations.size());
    }
    const double seconds = stopwatch.ElapsedSeconds();
    if (threads == 1) {
      baseline_seconds = seconds;
      baseline_counts = counts;
    } else if (counts != baseline_counts) {
      std::printf("ERROR: threaded run diverged from sequential results\n");
      return 1;
    }
    printer.AddRow({std::to_string(threads), bench::Num(seconds, 2),
                    bench::Num(baseline_seconds / seconds, 2) + "x"});
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("Parallel pipeline on 6 generated files of 600 rows (the scale\n"
              "of the paper's largest tables); per-function x per-axis\n"
              "individual detectors, per-row scans, and the supplemental\n"
              "stage's derived files run concurrently; results are verified\n"
              "identical for every thread count. Hardware concurrency: %u.\n\n",
              cores);
  printer.Print(std::cout);
  if (cores <= 1) {
    std::printf(
        "\nThis machine exposes a single hardware thread, so wall-clock\n"
        "speedup is impossible here; the run demonstrates result equality\n"
        "and bounds the threading overhead. On multi-core hardware the\n"
        "independent (axis x function), per-row, and per-derived-file units\n"
        "scale as the paper's Sec. 4.4 remark suggests.\n");
  }
  return 0;
}
