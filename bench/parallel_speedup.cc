// Parallel-detection ablation: the paper notes that the individual detectors
// "process each aggregation candidate independently [and] can be easily
// implemented in parallel to improve efficiency" (Sec. 4.4). This harness
// drives the shared work-stealing pool through the batch corpus engine on the
// slowest (largest) files, measures the wall-clock speedup per thread count,
// and verifies the results are bit-identical to the sequential run.
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "eval/batch_runner.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  // Parallelism only pays on large files (small ones are microseconds after
  // pruning), so measure on files at the scale of the paper's largest tables
  // (601 rows / 97 columns).
  datagen::GeneratorProfile profile;
  profile.p_no_aggregation = 0.0;
  profile.p_big_file = 1.0;
  profile.big_file_rows = 600;
  profile.p_tiny_file = 0.0;
  std::vector<eval::AnnotatedFile> files;
  for (int i = 0; i < 6; ++i) {
    files.push_back(datagen::GenerateFile(profile, 9000 + i,
                                          "big" + std::to_string(i) + ".csv"));
  }

  util::TablePrinter printer;
  printer.SetHeader({"threads", "seconds", "speedup"});
  double baseline_seconds = 0.0;
  std::vector<std::vector<core::Aggregation>> baseline_results;
  for (int threads : {1, 2, 4, 8}) {
    eval::BatchOptions options;
    options.threads = threads;
    options.max_in_flight = 2;  // file-level overlap on top of intra-file tasks
    eval::BatchRunner runner(options);
    const auto report = runner.Run(files);
    std::vector<std::vector<core::Aggregation>> results;
    for (const auto& file : report.files) {
      results.push_back(file.result.aggregations);
    }
    if (threads == 1) {
      baseline_seconds = report.seconds_wall;
      baseline_results = results;
    } else if (results != baseline_results) {
      std::printf("ERROR: threaded run diverged from sequential results\n");
      return 1;
    }
    printer.AddRow({std::to_string(threads), bench::Num(report.seconds_wall, 2),
                    bench::Num(baseline_seconds / report.seconds_wall, 2) + "x"});
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("Batch engine over 6 generated files of 600 rows (the scale of\n"
              "the paper's largest tables); files stream through a bounded\n"
              "window while the per-function x per-axis detectors, per-row\n"
              "scans, and the supplemental stage's derived files fan out on\n"
              "the shared work-stealing pool; results are verified\n"
              "bit-identical for every thread count. Hardware concurrency: %u.\n\n",
              cores);
  printer.Print(std::cout);
  if (cores <= 1) {
    std::printf(
        "\nThis machine exposes a single hardware thread, so wall-clock\n"
        "speedup is impossible here; the run demonstrates result equality\n"
        "and bounds the threading overhead. On multi-core hardware the\n"
        "independent (axis x function), per-row, and per-derived-file units\n"
        "scale as the paper's Sec. 4.4 remark suggests.\n");
  }
  return 0;
}
