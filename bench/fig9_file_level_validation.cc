// Reproduces Fig. 9: file-level precision and recall histograms of AggreCol
// on the VALIDATION corpus, per function class and overall.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  aggrecol::bench::PrintFileLevelHistograms(aggrecol::bench::ValidationFiles(),
                                            "VALIDATION");
  std::printf(
      "Paper shape check (Fig. 9): >90%% of files reach the (0.95, 1] bin for\n"
      "average, division and relative change; sum is the hardest function;\n"
      "failures concentrate in few files.\n");
  return 0;
}
