#include "bench/bench_util.h"

#include <iostream>

#include "util/table_printer.h"

namespace aggrecol::bench {

void PrintFileLevelHistograms(const std::vector<eval::AnnotatedFile>& files,
                              const char* corpus_name) {
  // One batch-engine pass over the corpus; per-class scores are recomputed
  // from the per-file detection results.
  const auto report = RunCorpus(files, core::AggreColConfig{});
  std::vector<std::vector<eval::Scores>> per_class(EvaluatedClasses().size());
  std::vector<eval::Scores> overall;
  for (size_t f = 0; f < files.size(); ++f) {
    const auto& result = report.files[f].result;
    for (size_t k = 0; k < EvaluatedClasses().size(); ++k) {
      per_class[k].push_back(eval::Score(result.aggregations, files[f].annotations,
                                         EvaluatedClasses()[k].canonical));
    }
    overall.push_back(eval::Score(result.aggregations, files[f].annotations));
  }

  enum class Metric { kPrecision, kRecall };
  auto print_metric = [&](const char* label, Metric metric) {
    util::TablePrinter printer;
    std::vector<std::string> header = {"function"};
    for (int bin = 0; bin < eval::kFileLevelBins; ++bin) {
      header.push_back(eval::FileLevelBinLabel(bin));
    }
    printer.SetHeader(header);
    auto add = [&](const std::string& name, const std::vector<eval::Scores>& scores) {
      const auto result = eval::BuildFileLevel(scores);
      const eval::FileLevelHistogram& histogram =
          metric == Metric::kPrecision ? result.precision : result.recall;
      std::vector<std::string> row = {name};
      for (int bin = 0; bin < eval::kFileLevelBins; ++bin) {
        row.push_back(Pct(histogram.Fraction(bin)));
      }
      printer.AddRow(row);
    };
    for (size_t k = 0; k < EvaluatedClasses().size(); ++k) {
      add(EvaluatedClasses()[k].label, per_class[k]);
    }
    add("overall", overall);
    std::printf("-- file-level %s --\n", label);
    printer.Print(std::cout);
    std::printf("\n");
  };

  std::printf("File-level results of AggreCol on %s (%zu files):\n\n", corpus_name,
              files.size());
  print_metric("precision", Metric::kPrecision);
  print_metric("recall", Metric::kRecall);
}

}  // namespace aggrecol::bench
