// Extension experiment (the paper's Sec. 6 future work): detection quality of
// composite sum-then-divide aggregations — "the percentage of population
// holding at least a university degree is the sum of bachelor, master, and
// doctor degrees divided by the total population" — on a corpus where half
// the aggregated files carry such a block and no intermediate sum column.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "core/composite_detector.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  datagen::CorpusSpec spec = datagen::ValidationCorpus();
  spec.name = "COMPOSITE";
  spec.file_count = 120;
  spec.seed = 0xC0117051ULL;
  spec.profile.p_composite = 0.5;
  const auto files = datagen::GenerateCorpus(spec);

  core::AggreColConfig config;
  config.detect_composites = true;
  core::AggreCol detector(config);

  long long correct = 0;
  long long incorrect = 0;
  long long missed = 0;
  std::vector<eval::Scores> core_scores;
  int files_with_composites = 0;
  for (const auto& file : files) {
    if (!file.composites.empty()) ++files_with_composites;
    const auto result = detector.Detect(file.grid);
    for (const auto& detected : result.composites) {
      if (std::find(file.composites.begin(), file.composites.end(), detected) !=
          file.composites.end()) {
        ++correct;
      } else {
        ++incorrect;
      }
    }
    for (const auto& truth : file.composites) {
      if (std::find(result.composites.begin(), result.composites.end(), truth) ==
          result.composites.end()) {
        ++missed;
      }
    }
    // The five core functions must be unaffected by the extension.
    core_scores.push_back(eval::Score(result.aggregations, file.annotations));
  }

  const double precision =
      correct + incorrect > 0 ? static_cast<double>(correct) / (correct + incorrect)
                              : 1.0;
  const double recall =
      correct + missed > 0 ? static_cast<double>(correct) / (correct + missed) : 1.0;
  const double f1 =
      precision + recall > 0 ? 2 * precision * recall / (precision + recall) : 0.0;
  const auto core_total = eval::Accumulate(core_scores);

  std::printf(
      "Composite (sum-then-divide) detection on %zu files, %d of which carry\n"
      "a composite block without an intermediate sum column:\n\n",
      files.size(), files_with_composites);
  util::TablePrinter printer;
  printer.SetHeader({"metric", "value"});
  printer.AddRow({"composite precision", bench::Num(precision)});
  printer.AddRow({"composite recall", bench::Num(recall)});
  printer.AddRow({"composite F1", bench::Num(f1)});
  printer.AddRow({"core 5-function F1 (same run)", bench::Num(core_total.F1())});
  printer.Print(std::cout);
  std::printf(
      "\nThe paper's core pipeline treats only single-function aggregations\n"
      "(Sec. 2.1) and misses all of these by design; the opt-in extension\n"
      "recovers them with the same pattern-coverage discipline while leaving\n"
      "the five core functions untouched.\n");
  return 0;
}
