// Reproduces the Sec. 4.5 analysis of detection errors: classifies every
// false negative and false positive of a full VALIDATION run into the
// paper's cause taxonomy (error level, window size, zero tails, blocked
// ranges; zero cells, inverse divisions, alternative decompositions,
// coincidences).
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "eval/error_analysis.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  const auto& files = bench::ValidationFiles();
  core::AggreColConfig config;
  core::AggreCol detector(config);

  eval::ErrorBreakdown total;
  for (const auto& file : files) {
    const auto numeric = numfmt::NumericGrid::FromGrid(file.grid);
    const auto result = detector.Detect(numeric);
    total.Add(
        eval::AnalyzeErrors(numeric, result.aggregations, file.annotations, config));
  }

  std::printf(
      "Detection error analysis over %zu VALIDATION files (Sec. 4.5):\n\n",
      files.size());
  util::TablePrinter fn_table;
  fn_table.SetHeader({"false-negative cause", "count", "share"});
  for (size_t c = 0; c < eval::kFalseNegativeCauses; ++c) {
    fn_table.AddRow(
        {ToString(static_cast<eval::FalseNegativeCause>(c)),
         std::to_string(total.false_negatives[c]),
         bench::Pct(total.TotalFalseNegatives() > 0
                        ? static_cast<double>(total.false_negatives[c]) /
                              total.TotalFalseNegatives()
                        : 0.0)});
  }
  fn_table.Print(std::cout);
  std::printf("total false negatives: %d\n\n", total.TotalFalseNegatives());

  util::TablePrinter fp_table;
  fp_table.SetHeader({"false-positive cause", "count", "share"});
  for (size_t c = 0; c < eval::kFalsePositiveCauses; ++c) {
    fp_table.AddRow(
        {ToString(static_cast<eval::FalsePositiveCause>(c)),
         std::to_string(total.false_positives[c]),
         bench::Pct(total.TotalFalsePositives() > 0
                        ? static_cast<double>(total.false_positives[c]) /
                              total.TotalFalsePositives()
                        : 0.0)});
  }
  fp_table.Print(std::cout);
  std::printf("total false positives: %d\n\n", total.TotalFalsePositives());

  std::printf(
      "Paper shape check (Sec. 4.5): the dominant FN cause is the fixed\n"
      "error level being too tight for coarsely rounded aggregates; zero\n"
      "tails and window limits contribute the rest. FPs are dominated by\n"
      "zero-valued cells, with division ambiguities behind most others.\n");
  return 0;
}
