// Reproduces Fig. 7: per-function recall and F1 under different error levels
// (line aggregation coverage fixed at 0.7), using the individual detectors of
// Sec. 3.1 as the paper does when selecting the per-function optima.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;
  using core::AggregationFunction;

  const auto& files = bench::ValidationFiles();
  const std::vector<double> error_levels = {0.0,  1e-6, 1e-4, 1e-3,
                                            0.01, 0.03, 0.05, 0.1};

  std::printf(
      "Fig. 7: per-function recall and F1 at aggregation level under\n"
      "different error levels (cov = 0.7, individual detectors only,\n"
      "%zu VALIDATION files).\n\n",
      files.size());

  for (const auto& function_class : bench::EvaluatedClasses()) {
    util::TablePrinter printer;
    printer.SetHeader({"error level", "precision", "recall", "F1"});
    double best_f1 = -1.0;
    double best_level = 0.0;
    for (double level : error_levels) {
      core::AggreColConfig config;
      config.error_levels.fill(level);
      config.run_collective = false;
      config.run_supplemental = false;
      config.functions = {function_class.canonical};
      if (function_class.canonical == AggregationFunction::kSum) {
        config.functions.push_back(AggregationFunction::kDifference);
      }
      const auto per_file =
          bench::ScoreCorpus(files, config, function_class.canonical);
      const auto total = eval::Accumulate(per_file);
      printer.AddRow({bench::Num(level, 6), bench::Num(total.precision),
                      bench::Num(total.recall), bench::Num(total.F1())});
      if (total.F1() > best_f1) {
        best_f1 = total.F1();
        best_level = level;
      }
    }
    std::printf("== %s ==\n", function_class.label);
    printer.Print(std::cout);
    std::printf("best F1 %s at error level %s\n\n", bench::Num(best_f1).c_str(),
                bench::Num(best_level, 6).c_str());
  }
  std::printf(
      "Paper shape check: F1 first rises with the error level (rounded\n"
      "aggregations become detectable) and falls once spurious matches\n"
      "dominate; optima differ per function.\n"
      "Note: at stage I the relative-change numbers are dominated by the\n"
      "circular ratio artifact (share = B/C implies relchange(share->B) ~= C)\n"
      "that the collective stage removes — see bench/fig8_stages for the\n"
      "post-pruning quality at the shipped default levels.\n");
  return 0;
}
