// Parse-throughput benchmark: the zero-copy structural ingest (MappedFile +
// SWAR/SIMD scanner + arena grid, csv/parser.h ParseGrid) against the
// retained reference state machine (ParseGridReference).
//
//   wide_numeric — many narrow numeric columns per row, the verbose-CSV
//                  regime the paper's corpus lives in and the shape where
//                  per-cell allocation dominates the old path.
//   quoted_mixed — quote-heavy text with embedded delimiters, doubled
//                  quotes, and CRLF endings: the worst case for the
//                  structural scanner (densest structural bytes).
//
// Both corpora are generated deterministically in memory, so byte counts
// are stable across machines and only wall-clock varies. For each variant
// the harness reports a cold pass (first touch of each file, allocator and
// cache unwarmed) and a warm rate (repeated parses); the gated quantity is
// the warm MB/s ratio, reported under the `speedup` key that
// bench/check_regression.py ratio-gates — both variants run in the same
// process on the same machine, so the ratio is hardware-independent.
// Grids from the two paths are compared for equality on every file; a
// mismatch aborts the benchmark (the differential contract of
// docs/INGEST.md, enforced here too).
//
// Prints a human-readable table; `--json [PATH]` additionally writes
// BENCH_parse.json (schema documented in docs/PERFORMANCE.md).
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "csv/parser.h"
#include "csv/scanner.h"
#include "util/stopwatch.h"

namespace aggrecol {
namespace {

constexpr int kWarmRepeats = 8;
// Best-of-N warm trials: the gated quantity is a ratio of min-times, which
// is far more stable under CI-runner load than a single-shot measurement
// (transient scheduler noise only ever makes a trial slower, never faster).
constexpr int kWarmTrials = 3;
const csv::Dialect kDialect{',', '"'};

std::vector<std::string> MakeWideNumericCorpus() {
  constexpr int kFiles = 16;
  constexpr int kRows = 512;
  constexpr int kColumns = 128;
  std::mt19937 rng(0x9A25E1);
  std::vector<std::string> corpus;
  for (int f = 0; f < kFiles; ++f) {
    std::string text;
    text.reserve(static_cast<size_t>(kRows) * kColumns * 5);
    for (int i = 0; i < kRows; ++i) {
      for (int j = 0; j < kColumns; ++j) {
        if (j > 0) text += ',';
        text += std::to_string(rng() % 100000);
      }
      text += '\n';
    }
    corpus.push_back(std::move(text));
  }
  return corpus;
}

std::vector<std::string> MakeQuotedMixedCorpus() {
  constexpr int kFiles = 16;
  constexpr int kRows = 768;
  constexpr int kColumns = 24;
  static constexpr const char* kWords[] = {"alpha", "beta, inc.", "say \"hi\"",
                                           "gamma", "delta\nline", "plain"};
  std::mt19937 rng(0xC0FFEE);
  std::vector<std::string> corpus;
  for (int f = 0; f < kFiles; ++f) {
    std::string text;
    for (int i = 0; i < kRows; ++i) {
      for (int j = 0; j < kColumns; ++j) {
        if (j > 0) text += ',';
        if (j % 3 == 0) {
          const std::string word = kWords[rng() % 6];
          text += '"';
          for (char c : word) {
            text += c;
            if (c == '"') text += '"';  // double embedded quotes
          }
          text += '"';
        } else {
          text += std::to_string(rng() % 1000);
        }
      }
      text += "\r\n";
    }
    corpus.push_back(std::move(text));
  }
  return corpus;
}

struct VariantStats {
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;  // total over kWarmRepeats passes
  long long rows = 0;         // rows parsed per single corpus pass

  double ColdMbPerSec(double bytes) const {
    return cold_seconds > 0.0 ? bytes / 1e6 / cold_seconds : 0.0;
  }
  double WarmMbPerSec(double bytes) const {
    return warm_seconds > 0.0 ? bytes * kWarmRepeats / 1e6 / warm_seconds : 0.0;
  }
  double WarmRowsPerSec() const {
    return warm_seconds > 0.0
               ? static_cast<double>(rows) * kWarmRepeats / warm_seconds
               : 0.0;
  }
};

struct Comparison {
  const char* name;
  int files = 0;
  double bytes = 0.0;
  VariantStats reference;
  VariantStats zero_copy;

  double Speedup() const {
    return reference.warm_seconds > 0.0 && zero_copy.warm_seconds > 0.0
               ? WarmRatio()
               : 0.0;
  }
  double WarmRatio() const {
    return zero_copy.WarmMbPerSec(bytes) / reference.WarmMbPerSec(bytes);
  }
};

template <typename ParseFn>
VariantStats Measure(const std::vector<std::string>& corpus, ParseFn parse) {
  VariantStats stats;
  util::Stopwatch stopwatch;

  stopwatch.Reset();
  for (const auto& text : corpus) {
    const csv::Grid grid = parse(text);
    stats.rows += grid.rows();
  }
  stats.cold_seconds = stopwatch.ElapsedSeconds();

  for (int trial = 0; trial < kWarmTrials; ++trial) {
    stopwatch.Reset();
    for (int repeat = 0; repeat < kWarmRepeats; ++repeat) {
      for (const auto& text : corpus) {
        const csv::Grid grid = parse(text);
        if (grid.rows() == 0) std::abort();  // keep the parse un-elided
      }
    }
    const double elapsed = stopwatch.ElapsedSeconds();
    if (trial == 0 || elapsed < stats.warm_seconds) {
      stats.warm_seconds = elapsed;
    }
  }
  return stats;
}

Comparison BenchCorpus(const char* name, const std::vector<std::string>& corpus) {
  Comparison comparison;
  comparison.name = name;
  comparison.files = static_cast<int>(corpus.size());
  for (const auto& text : corpus) {
    comparison.bytes += static_cast<double>(text.size());
    // Differential check before timing: both paths must agree exactly.
    if (!(csv::ParseGrid(text, kDialect) ==
          csv::ParseGridReference(text, kDialect))) {
      std::fprintf(stderr, "FATAL: zero-copy/reference divergence in %s\n", name);
      std::exit(1);
    }
  }
  comparison.reference = Measure(corpus, [](const std::string& text) {
    return csv::ParseGridReference(text, kDialect);
  });
  comparison.zero_copy = Measure(corpus, [](const std::string& text) {
    return csv::ParseGrid(text, kDialect);
  });
  return comparison;
}

void PrintComparison(const Comparison& comparison) {
  std::printf("%s (%d files, %.1f MB)\n", comparison.name, comparison.files,
              comparison.bytes / 1e6);
  std::printf("  %-10s %14s %14s %16s\n", "variant", "cold MB/s", "warm MB/s",
              "warm rows/s");
  auto row = [&](const char* label, const VariantStats& stats) {
    std::printf("  %-10s %14.1f %14.1f %16.0f\n", label,
                stats.ColdMbPerSec(comparison.bytes),
                stats.WarmMbPerSec(comparison.bytes), stats.WarmRowsPerSec());
  };
  row("reference", comparison.reference);
  row("zero_copy", comparison.zero_copy);
  std::printf("  speedup: %.2fx (warm MB/s ratio, grids identical)\n\n",
              comparison.Speedup());
}

void WriteVariantJson(std::FILE* out, const char* label, const Comparison& c,
                      const VariantStats& stats) {
  std::fprintf(out,
               "    \"%s\": {\"cold_mb_per_s\": %.1f, \"warm_mb_per_s\": %.1f, "
               "\"warm_rows_per_s\": %.0f}",
               label, stats.ColdMbPerSec(c.bytes), stats.WarmMbPerSec(c.bytes),
               stats.WarmRowsPerSec());
}

void WriteJson(const std::string& path, const std::vector<Comparison>& comparisons) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"bench\": \"parse_throughput\",\n");
  std::fprintf(out, "  \"scan_tier\": \"%.*s\",\n",
               static_cast<int>(csv::ToString(csv::ActiveScanTier()).size()),
               csv::ToString(csv::ActiveScanTier()).data());
  for (size_t c = 0; c < comparisons.size(); ++c) {
    const Comparison& comparison = comparisons[c];
    std::fprintf(out, "  \"%s\": {\n    \"files\": %d,\n    \"bytes\": %.0f,\n",
                 comparison.name, comparison.files, comparison.bytes);
    WriteVariantJson(out, "reference", comparison, comparison.reference);
    std::fprintf(out, ",\n");
    WriteVariantJson(out, "zero_copy", comparison, comparison.zero_copy);
    std::fprintf(out, ",\n    \"speedup\": %.3f\n  }%s\n", comparison.Speedup(),
                 c + 1 < comparisons.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace aggrecol

int main(int argc, char** argv) {
  using namespace aggrecol;

  std::string json_path;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--json") {
      json_path = a + 1 < argc ? argv[a + 1] : "BENCH_parse.json";
      ++a;
    }
  }

  std::printf(
      "Parse throughput: zero-copy structural ingest (scan tier %.*s) vs the\n"
      "retained reference state machine, deterministic in-memory corpora.\n\n",
      static_cast<int>(csv::ToString(csv::ActiveScanTier()).size()),
      csv::ToString(csv::ActiveScanTier()).data());

  const std::vector<Comparison> comparisons = {
      BenchCorpus("wide_numeric", MakeWideNumericCorpus()),
      BenchCorpus("quoted_mixed", MakeQuotedMixedCorpus()),
  };
  for (const auto& comparison : comparisons) PrintComparison(comparison);
  if (!json_path.empty()) WriteJson(json_path, comparisons);
  return 0;
}
