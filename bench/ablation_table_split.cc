// Structure-detection extension ablation: verbose files stacking tables with
// *different* layouts dilute whole-file pattern coverage (a false-negative
// mode the paper's whole-file processing inherits); splitting on blank rows
// and detecting per region restores recall. The corpus forces a second,
// differently-laid-out table into every file.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  datagen::CorpusSpec spec = datagen::ValidationCorpus();
  spec.name = "MULTITABLE";
  spec.file_count = 80;
  spec.seed = 0x3B17AB1EULL;
  spec.profile.p_no_aggregation = 0.0;
  spec.profile.p_second_table = 1.0;
  spec.profile.second_table_new_plan = true;
  spec.profile.p_big_file = 0.0;
  const auto files = datagen::GenerateCorpus(spec);

  core::AggreColConfig whole;
  core::AggreColConfig split = whole;
  split.split_tables = true;

  const auto whole_total = eval::Accumulate(bench::ScoreCorpus(files, whole));
  const auto split_total = eval::Accumulate(bench::ScoreCorpus(files, split));

  std::printf(
      "Whole-file vs per-region detection on %zu files that each stack two\n"
      "tables with different layouts:\n\n",
      files.size());
  util::TablePrinter printer;
  printer.SetHeader({"mode", "precision", "recall", "F1"});
  printer.AddRow({"whole file (paper)", bench::Num(whole_total.precision),
                  bench::Num(whole_total.recall), bench::Num(whole_total.F1())});
  printer.AddRow({"split tables (extension)", bench::Num(split_total.precision),
                  bench::Num(split_total.recall), bench::Num(split_total.F1())});
  printer.Print(std::cout);
  std::printf(
      "\nExpected shape: whole-file coverage scores are halved when the two\n"
      "tables disagree on layout, losing patterns on both sides; per-region\n"
      "detection restores them (the structure-detection direction the paper\n"
      "points to in Sec. 5.1).\n");
  return 0;
}
