// Reproduces Table 4: the five valid number formats, their occurrence in the
// corpus (the generator mirrors the Troy distribution), and additionally
// measures how often the per-file format election recovers a format that
// parses every cell to the written value (Sec. 4.2).
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "numfmt/number_format.h"
#include "util/table_printer.h"

int main() {
  using namespace aggrecol;

  const auto& files = bench::ValidationFiles();
  std::array<int, numfmt::kAllNumberFormats.size()> written{};
  std::array<int, numfmt::kAllNumberFormats.size()> elected_counts{};
  int value_agreements = 0;
  int decimal_agreements = 0;

  for (const auto& file : files) {
    ++written[static_cast<size_t>(file.format)];
    const auto elected = numfmt::ElectFormat(file.grid);
    ++elected_counts[static_cast<size_t>(elected)];
    if (numfmt::DecimalSeparator(elected) == numfmt::DecimalSeparator(file.format)) {
      ++decimal_agreements;
    }
    bool all_match = true;
    for (int i = 0; i < file.grid.rows() && all_match; ++i) {
      for (int j = 0; j < file.grid.columns(); ++j) {
        const auto as_written = numfmt::ParseNumber(file.grid.at(i, j), file.format);
        if (!as_written.has_value()) continue;
        const auto as_elected = numfmt::ParseNumber(file.grid.at(i, j), elected);
        if (!as_elected.has_value() || *as_elected != *as_written) {
          all_match = false;
          break;
        }
      }
    }
    if (all_match) ++value_agreements;
  }

  std::printf(
      "Table 4: number formats, their Troy priors, their occurrence in the\n"
      "synthetic VALIDATION corpus, and how often election recovers them.\n\n");
  util::TablePrinter printer;
  printer.SetHeader({"Digit group sep.", "Decimal sep.", "Example", "Troy prior",
                     "Written", "Elected"});
  const char* const kGroupNames[] = {"Space", "Space", "Comma", "None", "None"};
  const char* const kDecimalNames[] = {"Comma", "Dot", "Dot", "Comma", "Dot"};
  const char* const kExamples[] = {"12 345,67", "12 345.67", "12,345.67", "12345,67",
                                   "12345.67"};
  for (size_t f = 0; f < numfmt::kAllNumberFormats.size(); ++f) {
    printer.AddRow({kGroupNames[f], kDecimalNames[f], kExamples[f],
                    bench::Pct(numfmt::OccurrencePrior(numfmt::kAllNumberFormats[f])),
                    std::to_string(written[f]), std::to_string(elected_counts[f])});
  }
  printer.Print(std::cout);

  std::printf(
      "\nElection quality over %zu files:\n"
      "  decimal separator recovered:          %s\n"
      "  every numeric cell parses identically: %s\n"
      "(No-group formats are subsumed by the grouped ones for group-free\n"
      "content, so electing a different format with the same decimal\n"
      "separator is value-preserving.)\n",
      files.size(), bench::Pct(static_cast<double>(decimal_agreements) / files.size()).c_str(),
      bench::Pct(static_cast<double>(value_agreements) / files.size()).c_str());
  return 0;
}
