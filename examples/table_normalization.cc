// Table normalization (paper Sec. 1 / 5.1): detected aggregations identify
// the derived rows and columns of a verbose table so they can be stripped
// before loading the base data into a database — the aggregates are
// recomputable, so dropping them removes redundancy (and the risk of
// inconsistent totals).
#include <cstdio>

#include "core/aggrecol.h"
#include "core/table_normalizer.h"
#include "csv/parser.h"
#include "csv/sniffer.h"
#include "csv/writer.h"

int main() {
  using namespace aggrecol;

  const std::string csv_text =
      "Region,Q1,Q2,Q3,Q4,Total\n"
      "North,120,135,150,140,545\n"
      "South,80,95,110,100,385\n"
      "West,60,70,65,75,270\n"
      "Total,260,300,325,315,1200\n";

  const auto sniffed = csv::SniffDialect(csv_text);
  const auto grid = csv::ParseGrid(csv_text, sniffed.dialect);

  core::AggreCol detector;
  const auto detection = detector.Detect(grid);
  const auto normalized = core::StripAggregates(grid, detection.aggregations);

  std::printf("original table:\n%s\n", csv_text.c_str());
  std::printf("detected %zu aggregations -> removed %zu column(s), %zu row(s)\n\n",
              detection.aggregations.size(), normalized.removed_columns.size(),
              normalized.removed_rows.size());
  std::printf("normalized (base data only):\n%s\n",
              csv::WriteGrid(normalized.grid, sniffed.dialect).c_str());
  std::printf(
      "The stripped 'Total' row and column are derivable from the base data;\n"
      "a database view or query can recompute them on demand.\n");
  return 0;
}
