// Enriching files with metadata (Sec. 1): verbose CSV cannot embed metadata,
// so the detected aggregations are exported as a sidecar annotation file that
// downstream tools (cell classifiers, formula-smell detectors, extraction
// pipelines) can consume. The sidecar round-trips through the library's
// annotation parser.
#include <cstdio>

#include "core/aggrecol.h"
#include "eval/annotations.h"

int main() {
  using namespace aggrecol;

  const std::string csv_text =
      "Year,Europe,Bulgaria,France,Germany,Africa,Kenya,Ethiopia,Kenya share\n"
      "2017,4944,378,1669,2897,22,8,14,0.364\n"
      "2018,5791,900,2583,2308,34,21,13,0.618\n"
      "2019,8266,364,4155,3747,33,14,19,0.424\n"
      "2020,7105,512,3400,3193,41,18,23,0.439\n";

  core::AggreCol detector;
  const auto result = detector.DetectText(csv_text);

  // Export the detections in the sidecar annotation format:
  // axis,line,aggregate,function,range,error per line.
  const std::string sidecar = eval::SerializeAnnotations(result.aggregations);
  std::printf("detected aggregation metadata (sidecar format):\n%s\n",
              sidecar.c_str());

  // Any tool using this library can load it back losslessly.
  const auto reloaded = eval::ParseAnnotations(sidecar);
  if (!reloaded.has_value() || reloaded->size() != result.aggregations.size()) {
    std::printf("sidecar round-trip FAILED\n");
    return 1;
  }
  std::printf("sidecar round-trip OK: %zu aggregations reloaded\n\n",
              reloaded->size());

  // Summarize per function, the way a catalog would index the file.
  for (core::AggregationFunction function : core::kAllFunctions) {
    int count = 0;
    for (const auto& aggregation : result.aggregations) {
      if (aggregation.function == function) ++count;
    }
    if (count > 0) {
      std::printf("  %-16s %d cell(s) aggregate other cells\n",
                  ToString(function).c_str(), count);
    }
  }
  std::printf(
      "\nDownstream uses (paper Sec. 1): feeding the binary is-aggregate\n"
      "feature of cell classifiers (see bench/table5_cell_classification),\n"
      "seeding formula-smell detectors, and normalizing tables by stripping\n"
      "derived columns before loading into a database.\n");
  return 0;
}
