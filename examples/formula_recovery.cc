// Formula recovery (paper Sec. 1, third use case): verbose CSV files exported
// from spreadsheets have lost their formulas; detected aggregations
// reconstruct them, giving formula-smell detectors the surrounding formulas
// they require — and letting a spreadsheet author re-import the sheet with
// live calculations instead of frozen values.
#include <cstdio>

#include "core/aggrecol.h"
#include "core/formula_export.h"

int main() {
  using namespace aggrecol;

  const std::string csv_text =
      "Quarter,Gross,Expense,Net,Margin\n"
      "Q1,1200,800,400,0.333333\n"
      "Q2,1500,900,600,0.400000\n"
      "Q3,1100,700,400,0.363636\n"
      "Q4,1700,1100,600,0.352941\n"
      "Year,5500,3500,2000,0.363636\n";

  core::AggreCol detector;
  const auto result = detector.DetectText(csv_text);

  std::printf("input (a spreadsheet export with formulas stripped):\n%s\n",
              csv_text.c_str());
  std::printf("recovered formulas:\n");
  for (const auto& formula :
       core::ExportFormulas(core::CanonicalizeAll(result.aggregations))) {
    std::printf("  %-4s %s\n", core::CellName(formula.row, formula.column).c_str(),
                formula.formula.c_str());
  }
  std::printf(
      "\nExpected: Net = Gross - Expense per quarter (surfacing as the\n"
      "equivalent sum Gross = Net + Expense), Margin = Net / Gross, and the\n"
      "Year row as the column-wise SUM of the quarters. A formula-smell\n"
      "detector can now check the sheet for inconsistencies (Sec. 5.2).\n");
  return 0;
}
