// Numeric error detection and cleaning (Sec. 1): use detected aggregations to
// find aggregate cells whose value deviates from what their range computes,
// and propose the recalculated value. This is how a data scientist would
// surface rounding damage or data-entry errors before loading the file.
#include <cstdio>
#include <vector>

#include "core/aggrecol.h"
#include "csv/parser.h"
#include "csv/sniffer.h"
#include "numfmt/numeric_grid.h"

int main() {
  using namespace aggrecol;

  // A budget table where two totals were rounded/typed sloppily.
  const std::string csv_text =
      "Department,Staff,Equipment,Travel,Total\n"
      "Sales,120.50,30.25,18.00,168.75\n"
      "Engineering,310.40,95.10,12.30,417.80\n"
      "Support,75.00,22.60,5.40,103.00\n"
      "Marketing,88.20,41.00,27.50,157.00\n"   // true total: 156.70
      "Research,150.75,60.25,9.00,220.10\n";   // true total: 220.00

  core::AggreColConfig config;
  // Tolerate up to 1% so sloppy totals are still matched to their ranges.
  config.error_levels.fill(0.01);
  core::AggreCol detector(config);
  const auto result = detector.DetectText(csv_text);

  const auto sniffed = csv::SniffDialect(csv_text);
  const auto grid = csv::ParseGrid(csv_text, sniffed.dialect);
  const auto numeric = numfmt::NumericGrid::FromGrid(grid);

  std::printf("input:\n%s\n", csv_text.c_str());
  std::printf("detected %zu aggregations; checking for numeric errors...\n\n",
              result.aggregations.size());

  int issues = 0;
  for (const auto& aggregation : result.aggregations) {
    if (aggregation.error <= core::kErrorSlack) continue;
    const bool row_wise = aggregation.axis == core::Axis::kRow;
    const int row = row_wise ? aggregation.line : aggregation.aggregate;
    const int col = row_wise ? aggregation.aggregate : aggregation.line;
    std::vector<double> values;
    for (int index : aggregation.range) {
      values.push_back(row_wise ? numeric.value(aggregation.line, index)
                                : numeric.value(index, aggregation.line));
    }
    const auto calculated = core::Apply(aggregation.function, values);
    if (!calculated.has_value()) continue;
    ++issues;
    std::printf(
        "  cell (%d,%d) '%s': observed %.2f but its %s range computes %.2f\n"
        "      (error level %.4f) -> suggested correction: %.2f\n",
        row, col, std::string(grid.at(row, col)).c_str(),
        numeric.value(row, col),
        ToString(aggregation.function).c_str(), *calculated, aggregation.error,
        *calculated);
  }
  if (issues == 0) {
    std::printf("  no numeric errors found.\n");
  } else {
    std::printf(
        "\n%d aggregate cell(s) deviate from their ranges — either rounding\n"
        "artifacts (the paper observes errors in ~29%% of real aggregations)\n"
        "or genuine data-entry mistakes worth fixing.\n",
        issues);
  }
  return 0;
}
