// Quickstart: detect aggregations in a CSV string with three lines of code.
//
//   aggrecol::core::AggreCol detector;
//   auto result = detector.DetectText(csv_text);   // sniff + parse + detect
//   for (auto& a : result.aggregations) ...
#include <cstdio>

#include "core/aggrecol.h"

int main() {
  const std::string csv_text =
      "Region,Q1,Q2,Q3,Q4,Total\n"
      "North,120,135,150,140,545\n"
      "South,80,95,110,100,385\n"
      "West,60,70,65,75,270\n"
      "Total,260,300,325,315,1200\n";

  aggrecol::core::AggreCol detector;  // default = the paper's configuration
  const auto result = detector.DetectText(csv_text);

  std::printf("input:\n%s\n", csv_text.c_str());
  std::printf("number format: %s\n",
              aggrecol::numfmt::ToString(result.format).c_str());
  std::printf("detected %zu aggregations:\n", result.aggregations.size());
  for (const auto& aggregation : result.aggregations) {
    std::printf("  %s\n", ToString(aggregation).c_str());
  }
  std::printf(
      "\nNotation: (row:i, r <- {j...}, f, e) means the cell in row i and\n"
      "column r is derived by applying f to the cells in columns {j...} of\n"
      "the same row, with observed error level e. Column-wise aggregations\n"
      "swap the roles of rows and columns.\n");
  return 0;
}
