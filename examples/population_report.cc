// A realistic scenario modeled on the paper's Figure 1: a Statistics-Finland
// style population report with a space/comma number format, a sum of age
// groups, and percentage (division) columns. The example renders the table
// with every detected aggregate cell marked.
#include <cstdio>
#include <set>
#include <utility>

#include "core/aggrecol.h"
#include "csv/parser.h"
#include "csv/sniffer.h"

int main() {
  using namespace aggrecol;

  // Population by age 1875-2009 (verbose CSV exported from a spreadsheet:
  // title, data, source lines; numbers use the space/comma format).
  const std::string csv_text =
      "Population by age 1875-2009;;;;;;;\n"
      "Year;Population;Age 0-14;Age 15-64;Age 65+;0-14 %;15-64 %;65+ %\n"
      "1875;1 912 647;659 267;1 178 113;75 267;0,345;0,616;0,039\n"
      "1900;2 655 900;930 900;1 583 300;141 700;0,350;0,596;0,053\n"
      "1925;3 322 100;1 031 700;2 090 000;200 400;0,311;0,629;0,060\n"
      "1950;4 029 803;1 208 799;2 554 354;266 650;0,300;0,634;0,066\n"
      "1975;4 720 492;1 030 544;3 181 376;508 572;0,218;0,674;0,108\n"
      "2000;5 181 115;936 333;3 467 584;777 198;0,181;0,669;0,150\n"
      "2009;5 351 427;888 323;3 552 663;910 441;0,166;0,664;0,170\n"
      ";;;;;;;\n"
      "Source: Population Structure 2009;;;;;;;\n";

  const auto sniffed = csv::SniffDialect(csv_text);
  std::printf("sniffed dialect: %s\n", ToString(sniffed.dialect).c_str());
  const auto grid = csv::ParseGrid(csv_text, sniffed.dialect);

  core::AggreCol detector;
  const auto result = detector.Detect(grid);
  std::printf("number format: %s\n\n", numfmt::ToString(result.format).c_str());

  // Mark aggregate cells in a rendered view.
  std::set<std::pair<int, int>> aggregate_cells;
  for (const auto& aggregation : result.aggregations) {
    const int row = aggregation.axis == core::Axis::kRow ? aggregation.line
                                                         : aggregation.aggregate;
    const int col = aggregation.axis == core::Axis::kRow ? aggregation.aggregate
                                                         : aggregation.line;
    aggregate_cells.insert({row, col});
  }
  for (int i = 0; i < grid.rows(); ++i) {
    for (int j = 0; j < grid.columns(); ++j) {
      const std::string cell(grid.at(i, j));
      if (cell.empty() && j > 0) continue;
      if (aggregate_cells.count({i, j}) > 0) {
        std::printf("[%s] ", cell.c_str());
      } else {
        std::printf("%s ", cell.c_str());
      }
    }
    std::printf("\n");
  }

  std::printf("\ndetected aggregations (%zu):\n", result.aggregations.size());
  for (const auto& aggregation : result.aggregations) {
    std::printf("  %s\n", ToString(aggregation).c_str());
  }
  std::printf(
      "\nExpected: the Population column is the sum of the three age groups\n"
      "(green in the paper's Figure 1), and each percentage column divides an\n"
      "age group by the total population (blue in Figure 1). Note that none\n"
      "of these aggregates carries a 'total'-style keyword header.\n");
  return 0;
}
