#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace aggrecol::util {
namespace {

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 7 * 6; });
  EXPECT_EQ(future.Get(), 42);
}

TEST(ThreadPool, ManySubmissionsAllRun) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<Future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { return ++counter; }));
  }
  for (auto& future : futures) future.Get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ClampsToOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  EXPECT_EQ(pool.Submit([] { return 1; }).Get(), 1);
}

TEST(ThreadPool, NestedSubmissionFromInsideTask) {
  ThreadPool pool(2);
  auto future = pool.Submit([&pool] {
    std::vector<Future<int>> inner;
    for (int i = 0; i < 8; ++i) {
      inner.push_back(pool.Submit([i] { return i * i; }));
    }
    int sum = 0;
    for (auto& f : inner) sum += f.Get();
    return sum;
  });
  EXPECT_EQ(future.Get(), 0 + 1 + 4 + 9 + 16 + 25 + 36 + 49);
}

TEST(ThreadPool, NestedWaitDoesNotDeadlockOnSingleWorker) {
  // The hard case: one worker submits subtasks and waits on them. The wait
  // must execute queued tasks instead of blocking forever.
  ThreadPool pool(1);
  auto future = pool.Submit([&pool] {
    auto a = pool.Submit([] { return 1; });
    auto b = pool.Submit([&pool] {
      // Two levels deep, still on the same single worker.
      return pool.Submit([] { return 2; }).Get();
    });
    return a.Get() + b.Get();
  });
  EXPECT_EQ(future.Get(), 3);
}

TEST(ThreadPool, CancellationObservedMidRun) {
  ThreadPool pool(2);
  CancellationSource source;
  std::atomic<bool> started{false};
  auto future = pool.Submit([token = source.token(), &started] {
    started = true;
    int spins = 0;
    while (!token.cancelled()) {
      ++spins;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return spins;
  });
  while (!started) std::this_thread::yield();
  source.RequestCancel();
  EXPECT_GE(future.Get(), 0);  // returned instead of spinning forever
  EXPECT_TRUE(source.cancel_requested());
}

TEST(ThreadPool, ThrowIfCancelledPropagatesThroughFuture) {
  ThreadPool pool(2);
  CancellationSource source;
  source.RequestCancel();
  auto future = pool.Submit([token = source.token()] {
    token.ThrowIfCancelled();
    return 1;
  });
  EXPECT_THROW(future.Get(), CancelledError);
}

TEST(ThreadPool, DeadlineTokenTrips) {
  const CancellationToken none;
  EXPECT_FALSE(none.cancelled());

  const auto expired =
      none.WithDeadline(std::chrono::steady_clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(expired.cancelled());
  EXPECT_THROW(expired.ThrowIfCancelled(), CancelledError);

  const auto future_deadline =
      none.WithDeadline(std::chrono::steady_clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(future_deadline.cancelled());

  // WithDeadline keeps the earlier deadline when chained.
  const auto rechained =
      expired.WithDeadline(std::chrono::steady_clock::now() + std::chrono::hours(1));
  EXPECT_TRUE(rechained.cancelled());
}

TEST(ThreadPool, ExceptionPropagationAndPoolSurvives) {
  ThreadPool pool(2);
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(
      {
        try {
          bad.Get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "boom");
          throw;
        }
      },
      std::runtime_error);
  // The pool keeps working after a task threw.
  EXPECT_EQ(pool.Submit([] { return 5; }).Get(), 5);
}

TEST(ThreadPool, StressThousandsOfTinyTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 5000;
  std::atomic<long> sum{0};
  std::vector<Future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([i, &sum] {
      sum += i;
      return i;
    }));
  }
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(futures[i].Get(), i);  // each future maps to its own task
  }
  EXPECT_EQ(sum.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ParallelMap, ResultsInIndexOrder) {
  ThreadPool pool(4);
  const auto results =
      ParallelMap(&pool, 257, [](size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(results.size(), 257u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 3);
  }
}

TEST(ParallelMap, InlineWithoutPool) {
  const auto results = ParallelMap(nullptr, 4, [](size_t i) { return i + 1; });
  EXPECT_EQ(results, (std::vector<size_t>{1, 2, 3, 4}));
}

TEST(ParallelMap, RethrowsSmallestFailingIndexAfterAllFinish) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  try {
    ParallelMap(&pool, 20, [&completed](size_t i) -> int {
      if (i == 4 || i == 11) throw std::out_of_range("idx " + std::to_string(i));
      ++completed;
      return static_cast<int>(i);
    });
    FAIL() << "expected an exception";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "idx 4");
  }
  // Every non-throwing iteration ran to completion before the rethrow, so
  // captured references were never used after the caller unwound.
  EXPECT_EQ(completed.load(), 18);
}

TEST(ParallelMap, NestedInsidePoolTask) {
  ThreadPool pool(2);
  auto future = pool.Submit([&pool] {
    const auto inner = ParallelMap(&pool, 16, [](size_t i) { return i * 2; });
    return std::accumulate(inner.begin(), inner.end(), size_t{0});
  });
  EXPECT_EQ(future.Get(), size_t{240});
}

}  // namespace
}  // namespace aggrecol::util
