#include "core/extension.h"

#include "core/adjacency_strategy.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::AllActive;
using aggrecol::testing::Contains;
using aggrecol::testing::MakeNumeric;

TEST(Extension, ValidatesPatternOnOtherRows) {
  // Row 0's greedy search stops at the coincidental short range {1, 2}
  // (4 = 1 + 3); row 1 detects the full pattern {1, 2, 3}; the extension step
  // validates the full pattern back on row 0 (the Figure 5 scenario).
  const auto grid = MakeNumeric({
      {"4", "1", "3", "0"},
      {"9", "2", "3", "4"},
  });
  const auto active = AllActive(grid);
  std::vector<Aggregation> detected;
  for (int row = 0; row < grid.rows(); ++row) {
    const auto found =
        DetectAdjacentCommutative(grid, active, row, AggregationFunction::kSum, 0.0);
    detected.insert(detected.end(), found.begin(), found.end());
  }
  EXPECT_TRUE(Contains(detected, Agg(0, 0, {1, 2}, AggregationFunction::kSum)));
  EXPECT_FALSE(Contains(detected, Agg(0, 0, {1, 2, 3}, AggregationFunction::kSum)));

  const auto extended = ExtendAggregations(grid, active, detected, 0.0);
  EXPECT_TRUE(Contains(extended, Agg(0, 0, {1, 2, 3}, AggregationFunction::kSum)));
  // The originals are preserved.
  EXPECT_TRUE(Contains(extended, Agg(1, 0, {1, 2, 3}, AggregationFunction::kSum)));
}

TEST(Extension, DoesNotValidateInvalidRows) {
  // Row 1 does not satisfy the pattern (10 != 2 + 3).
  const auto grid = MakeNumeric({
      {"5", "2", "3"},
      {"10", "2", "3"},
  });
  const auto active = AllActive(grid);
  const std::vector<Aggregation> detected = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum)};
  const auto extended = ExtendAggregations(grid, active, detected, 0.0);
  EXPECT_FALSE(Contains(extended, Agg(1, 0, {1, 2}, AggregationFunction::kSum)));
}

TEST(Extension, RequiresNumericAggregate) {
  const auto grid = MakeNumeric({
      {"5", "2", "3"},
      {"", "2", "3"},  // empty aggregate cell: no extension despite 0+... no
  });
  const auto active = AllActive(grid);
  const std::vector<Aggregation> detected = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum)};
  const auto extended = ExtendAggregations(grid, active, detected, 0.0);
  EXPECT_EQ(extended.size(), 1u);
}

TEST(Extension, RespectsErrorLevel) {
  const auto grid = MakeNumeric({
      {"5", "2", "3"},
      {"5.04", "2", "3"},  // error 0.79%
  });
  const auto active = AllActive(grid);
  const std::vector<Aggregation> detected = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum)};
  const auto strict = ExtendAggregations(grid, active, detected, 0.0);
  EXPECT_EQ(strict.size(), 1u);
  const auto tolerant = ExtendAggregations(grid, active, detected, 0.01);
  EXPECT_TRUE(Contains(tolerant, Agg(1, 0, {1, 2}, AggregationFunction::kSum)));
}

TEST(Extension, WorksForPairwiseFunctions) {
  const auto grid = MakeNumeric({
      {"0.5", "1", "2"},
      {"0.25", "1", "4"},
  });
  const auto active = AllActive(grid);
  const std::vector<Aggregation> detected = {
      Agg(0, 0, {1, 2}, AggregationFunction::kDivision)};
  const auto extended = ExtendAggregations(grid, active, detected, 0.0);
  EXPECT_TRUE(Contains(extended, Agg(1, 0, {1, 2}, AggregationFunction::kDivision)));
}

TEST(Extension, SkipsPatternsWithInactiveColumns) {
  const auto grid = MakeNumeric({
      {"5", "2", "3"},
      {"5", "2", "3"},
  });
  std::vector<bool> active = {true, true, false};
  const std::vector<Aggregation> detected = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum)};
  const auto extended = ExtendAggregations(grid, active, detected, 0.0);
  // Column 2 is inactive: the pattern cannot be validated anywhere else.
  EXPECT_EQ(extended.size(), 1u);
}

TEST(Extension, NoDuplicatesForAlreadyDetectedRows) {
  const auto grid = MakeNumeric({
      {"5", "2", "3"},
      {"7", "3", "4"},
  });
  const auto active = AllActive(grid);
  const std::vector<Aggregation> detected = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum),
      Agg(1, 0, {1, 2}, AggregationFunction::kSum)};
  const auto extended = ExtendAggregations(grid, active, detected, 0.0);
  EXPECT_EQ(extended.size(), 2u);
}

}  // namespace
}  // namespace aggrecol::core
