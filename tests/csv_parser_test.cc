#include "csv/parser.h"

#include <random>
#include <string>

#include "csv/grid.h"
#include "csv/writer.h"
#include "gtest/gtest.h"

namespace aggrecol::csv {
namespace {

const Dialect kComma{',', '"'};

TEST(ParseRows, SimpleRows) {
  const auto rows = ParseRows("a,b\nc,d\n", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseRows, NoTrailingNewline) {
  const auto rows = ParseRows("a,b\nc,d", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseRows, EmptyFields) {
  const auto rows = ParseRows(",a,\n,,\n", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", "", ""}));
}

TEST(ParseRows, QuotedFieldWithDelimiter) {
  const auto rows = ParseRows("\"1,234\",b\n", kComma);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"1,234", "b"}));
}

TEST(ParseRows, EscapedQuote) {
  const auto rows = ParseRows("\"say \"\"hi\"\"\",x\n", kComma);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(ParseRows, QuotedFieldWithNewline) {
  const auto rows = ParseRows("\"line1\nline2\",b\n", kComma);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(ParseRows, CrLfLineEndings) {
  const auto rows = ParseRows("a,b\r\nc,d\r\n", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseRows, BareCarriageReturnEndsRow) {
  const auto rows = ParseRows("a,b\rc,d", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(ParseRows, EmptyLineBecomesEmptyRow) {
  const auto rows = ParseRows("a\n\nb\n", kComma);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{""}));
}

TEST(ParseRows, EmptyInput) {
  EXPECT_TRUE(ParseRows("", kComma).empty());
}

TEST(ParseRows, MalformedQuoteKeptLossless) {
  // `"a"b` is malformed per RFC 4180; the parser keeps the stray content.
  const auto rows = ParseRows("\"a\"b,c\n", kComma);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "ab");
  EXPECT_EQ(rows[0][1], "c");
}

TEST(ParseRows, SemicolonDialect) {
  const Dialect semicolon{';', '"'};
  const auto rows = ParseRows("a;b,c\n", semicolon);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b,c"}));
}

TEST(ParseRows, SingleQuoteDialect) {
  const Dialect single{',', '\''};
  const auto rows = ParseRows("'a,b',c\n", single);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
}

TEST(ParseGrid, PadsRaggedRows) {
  const Grid grid = ParseGrid("a,b,c\nd\n", kComma);
  EXPECT_EQ(grid.rows(), 2);
  EXPECT_EQ(grid.columns(), 3);
  EXPECT_EQ(grid.at(1, 0), "d");
  EXPECT_EQ(grid.at(1, 2), "");
}

TEST(Grid, Transposed) {
  const Grid grid(std::vector<std::vector<std::string>>{{"a", "b"}, {"c", "d"}});
  const Grid transposed = grid.Transposed();
  EXPECT_EQ(transposed.at(0, 0), "a");
  EXPECT_EQ(transposed.at(0, 1), "c");
  EXPECT_EQ(transposed.at(1, 0), "b");
  EXPECT_EQ(transposed.Transposed(), grid);
}

TEST(Grid, WithColumns) {
  const Grid grid(std::vector<std::vector<std::string>>{{"a", "b", "c"},
                                                        {"d", "e", "f"}});
  const Grid projected = grid.WithColumns({2, 0});
  EXPECT_EQ(projected.columns(), 2);
  EXPECT_EQ(projected.at(0, 0), "c");
  EXPECT_EQ(projected.at(0, 1), "a");
  EXPECT_EQ(projected.at(1, 0), "f");
}

TEST(Grid, IsEmptyAndCounts) {
  const Grid grid(std::vector<std::vector<std::string>>{{" ", "x"}, {"", "y"}});
  EXPECT_TRUE(grid.IsEmpty(0, 0));
  EXPECT_FALSE(grid.IsEmpty(0, 1));
  EXPECT_EQ(grid.CountNonEmpty(), 2);
}

// ---------------------------------------------------------------------------
// Malformed-input properties: whatever bytes come in, the parser must not
// crash, and the parsed grid must survive a round trip through csv::Writer
// (parse -> write -> parse yields the same grid).

Grid RoundTrip(const Grid& grid, const Dialect& dialect) {
  return ParseGrid(WriteGrid(grid, dialect), dialect);
}

TEST(ParserProperty, UnterminatedQuoteDoesNotCrash) {
  for (const char* text : {
           "\"abc,def\nghi",           // quote never closed, embedded newline
           "a,\"",                     // quote opens at end of input
           "a,b\n\"unclosed",          // last row unterminated
           "\"\"\"",                   // escaped quote then EOF inside quotes
           "x,\"y\nz,w\n",             // quote swallows the rest of the file
       }) {
    const Grid grid = ParseGrid(text, kComma);
    EXPECT_EQ(RoundTrip(grid, kComma), grid) << "input: " << text;
  }
}

TEST(ParserProperty, CrLfLfMixes) {
  const Grid grid = ParseGrid("a,b\r\nc,d\ne,f\r\ng,h", kComma);
  EXPECT_EQ(grid.rows(), 4);
  EXPECT_EQ(grid.columns(), 2);
  EXPECT_EQ(grid.at(1, 1), "d");
  EXPECT_EQ(grid.at(3, 0), "g");
  EXPECT_EQ(RoundTrip(grid, kComma), grid);

  // CR inside a quoted field is content, not a row break; the round trip
  // must preserve it byte for byte.
  const Grid quoted = ParseGrid("\"a\r\nb\",c\r\nd,e\n", kComma);
  EXPECT_EQ(quoted.rows(), 2);
  EXPECT_EQ(quoted.at(0, 0), "a\r\nb");
  EXPECT_EQ(RoundTrip(quoted, kComma), quoted);
}

TEST(ParserProperty, DelimiterInsideQuotedFieldAtBufferBoundaries) {
  // Exercise field lengths around typical I/O buffer sizes so a chunked
  // parser could not hide an off-by-one at a boundary: the delimiter lands
  // exactly at/before/after each power-of-two edge.
  for (const size_t size : {1u, 2u, 15u, 16u, 17u, 255u, 256u, 257u, 4095u,
                            4096u, 4097u, 65536u}) {
    const std::string prefix(size, 'x');
    const std::string field = prefix + ",tail";
    const std::string text = "\"" + field + "\",next\nplain,row\n";
    const Grid grid = ParseGrid(text, kComma);
    ASSERT_EQ(grid.rows(), 2) << "size " << size;
    ASSERT_EQ(grid.columns(), 2) << "size " << size;
    EXPECT_EQ(grid.at(0, 0), field) << "size " << size;
    EXPECT_EQ(grid.at(0, 1), "next");
    EXPECT_EQ(RoundTrip(grid, kComma), grid) << "size " << size;
  }
}

TEST(ParserProperty, RandomMalformedSoupRoundTrips) {
  // Seeded fuzz over the characters that drive the state machine. The first
  // parse may interpret malformed input however it likes; the writer must
  // then serialize that grid so a re-parse reproduces it exactly.
  const char alphabet[] = {',', '"', '\n', '\r', 'a', '9', ';', '\'', ' ', '.'};
  std::mt19937 rng(20220707);
  std::uniform_int_distribution<size_t> pick(0, sizeof(alphabet) - 1);
  std::uniform_int_distribution<size_t> length(0, 60);
  for (const Dialect& dialect :
       {Dialect{',', '"'}, Dialect{';', '"'}, Dialect{',', '\''}}) {
    for (int iteration = 0; iteration < 300; ++iteration) {
      std::string text;
      const size_t n = length(rng);
      text.reserve(n);
      for (size_t i = 0; i < n; ++i) text.push_back(alphabet[pick(rng)]);
      const Grid grid = ParseGrid(text, dialect);
      EXPECT_EQ(RoundTrip(grid, dialect), grid)
          << "dialect '" << dialect.delimiter << "' input: [" << text << "]";
    }
  }
}

// ---------------------------------------------------------------------------
// Messy-file audit regressions: UTF-8 BOM, lone-CR endings, unterminated
// final quoted fields, and escape-character dialects.
// ---------------------------------------------------------------------------

TEST(Parser, StripsUtf8Bom) {
  const auto rows = ParseRows("\xEF\xBB\xBFJahr,Wert\n2001,5\n", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "Jahr");  // not "\xEF\xBB\xBFJahr"
}

TEST(Parser, StripBomIsExposedAndIdempotent) {
  EXPECT_EQ(StripBom("\xEF\xBB\xBF" "abc"), "abc");
  EXPECT_EQ(StripBom("abc"), "abc");
  EXPECT_EQ(StripBom(StripBom("\xEF\xBB\xBF" "abc")), "abc");
  // Only a *leading* BOM is metadata.
  EXPECT_EQ(StripBom("a\xEF\xBB\xBF"), "a\xEF\xBB\xBF");
}

TEST(Parser, BomBeforeQuotedFirstField) {
  const auto rows = ParseRows("\xEF\xBB\xBF\"a,b\",c\n", kComma);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][0], "a,b");
}

TEST(Parser, LoneCrTerminatesFinalRow) {
  // Classic-Mac file whose last line ends in '\r' with no trailing newline:
  // the final row must not be dropped or merged.
  const auto rows = ParseRows("a,b\rc,d\r", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "c");
  EXPECT_EQ(rows[1][1], "d");
}

TEST(Parser, LoneCrAfterClosingQuoteEndsRow) {
  const auto rows = ParseRows("\"a,1\",x\r\"b,2\",y\r", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a,1");
  EXPECT_EQ(rows[1][0], "b,2");
}

TEST(Parser, UnterminatedFinalQuotedFieldKeepsContent) {
  // Truncated uploads lose their closing quote, not their data.
  const auto rows = ParseRows("a,b\nc,\"trunc", kComma);
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[1].size(), 2u);
  EXPECT_EQ(rows[1][1], "trunc");
}

TEST(Parser, UnterminatedQuoteSwallowsNewlinesAsContent) {
  // Inside an (unterminated) quoted field a newline is field content; the
  // truncated field keeps it rather than fabricating extra rows.
  const auto rows = ParseRows("a,\"x\ny", kComma);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][1], "x\ny");
}

TEST(Parser, EscapeCharacterEscapesQuoteInsideQuotedField) {
  const Dialect escaped{',', '"', '\\'};
  const auto rows = ParseRows("\"he said \\\"hi\\\"\",x\n", escaped);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][0], "he said \"hi\"");
}

TEST(Parser, EscapeCharacterEscapesDelimiterInUnquotedField) {
  const Dialect escaped{',', '"', '\\'};
  const auto rows = ParseRows("a\\,b,c\n", escaped);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "c");
}

TEST(Parser, DanglingEscapeAtEndOfInputKeptLiterally) {
  const Dialect escaped{',', '"', '\\'};
  const auto rows = ParseRows("a,b\\", escaped);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], "b\\");
}

TEST(Parser, EscapeCollidingWithStructuralCharsMeansDoublingOnly) {
  // A dialect claiming the quote (or delimiter) as its escape character
  // still parses as RFC doubling — the collision guard must not let the
  // escape eat structural characters.
  const Dialect quote_collision{',', '"', '"'};
  const auto rows = ParseRows("\"say \"\"hi\"\"\",x\n", quote_collision);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");

  const Dialect delimiter_collision{',', '"', ','};
  const auto plain = ParseRows("a,b\n", delimiter_collision);
  ASSERT_EQ(plain.size(), 1u);
  ASSERT_EQ(plain[0].size(), 2u);
}

TEST(Parser, EscapeDialectRoundTripsThroughWriter) {
  const Dialect escaped{';', '"', '\\'};
  Grid grid(2, 2);
  grid.set(0, 0, "plain");
  grid.set(0, 1, "semi;colon");
  grid.set(1, 0, "back\\slash");
  grid.set(1, 1, "quo\"te and \\ mix");
  EXPECT_EQ(RoundTrip(grid, escaped), grid);
}

TEST(ParserProperty, RandomSoupRoundTripsUnderEscapeDialects) {
  // The malformed-soup property, extended over escape-bearing dialects.
  const char alphabet[] = {',', '"', '\n', '\r', '\\', 'a', '9', ';', ' '};
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<size_t> pick(0, sizeof(alphabet) - 1);
  std::uniform_int_distribution<size_t> length(0, 60);
  for (const Dialect& dialect :
       {Dialect{',', '"', '\\'}, Dialect{';', '"', '\\'}, Dialect{',', '\'', '\\'}}) {
    for (int iteration = 0; iteration < 300; ++iteration) {
      std::string text;
      const size_t n = length(rng);
      text.reserve(n);
      for (size_t i = 0; i < n; ++i) text.push_back(alphabet[pick(rng)]);
      const Grid grid = ParseGrid(text, dialect);
      EXPECT_EQ(RoundTrip(grid, dialect), grid)
          << "dialect '" << dialect.delimiter << "' input: [" << text << "]";
    }
  }
}

}  // namespace
}  // namespace aggrecol::csv
