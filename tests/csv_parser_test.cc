#include "csv/parser.h"

#include "csv/grid.h"
#include "gtest/gtest.h"

namespace aggrecol::csv {
namespace {

const Dialect kComma{',', '"'};

TEST(ParseRows, SimpleRows) {
  const auto rows = ParseRows("a,b\nc,d\n", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseRows, NoTrailingNewline) {
  const auto rows = ParseRows("a,b\nc,d", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseRows, EmptyFields) {
  const auto rows = ParseRows(",a,\n,,\n", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", "", ""}));
}

TEST(ParseRows, QuotedFieldWithDelimiter) {
  const auto rows = ParseRows("\"1,234\",b\n", kComma);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"1,234", "b"}));
}

TEST(ParseRows, EscapedQuote) {
  const auto rows = ParseRows("\"say \"\"hi\"\"\",x\n", kComma);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(ParseRows, QuotedFieldWithNewline) {
  const auto rows = ParseRows("\"line1\nline2\",b\n", kComma);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(ParseRows, CrLfLineEndings) {
  const auto rows = ParseRows("a,b\r\nc,d\r\n", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseRows, BareCarriageReturnEndsRow) {
  const auto rows = ParseRows("a,b\rc,d", kComma);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(ParseRows, EmptyLineBecomesEmptyRow) {
  const auto rows = ParseRows("a\n\nb\n", kComma);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{""}));
}

TEST(ParseRows, EmptyInput) {
  EXPECT_TRUE(ParseRows("", kComma).empty());
}

TEST(ParseRows, MalformedQuoteKeptLossless) {
  // `"a"b` is malformed per RFC 4180; the parser keeps the stray content.
  const auto rows = ParseRows("\"a\"b,c\n", kComma);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "ab");
  EXPECT_EQ(rows[0][1], "c");
}

TEST(ParseRows, SemicolonDialect) {
  const Dialect semicolon{';', '"'};
  const auto rows = ParseRows("a;b,c\n", semicolon);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b,c"}));
}

TEST(ParseRows, SingleQuoteDialect) {
  const Dialect single{',', '\''};
  const auto rows = ParseRows("'a,b',c\n", single);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
}

TEST(ParseGrid, PadsRaggedRows) {
  const Grid grid = ParseGrid("a,b,c\nd\n", kComma);
  EXPECT_EQ(grid.rows(), 2);
  EXPECT_EQ(grid.columns(), 3);
  EXPECT_EQ(grid.at(1, 0), "d");
  EXPECT_EQ(grid.at(1, 2), "");
}

TEST(Grid, Transposed) {
  const Grid grid(std::vector<std::vector<std::string>>{{"a", "b"}, {"c", "d"}});
  const Grid transposed = grid.Transposed();
  EXPECT_EQ(transposed.at(0, 0), "a");
  EXPECT_EQ(transposed.at(0, 1), "c");
  EXPECT_EQ(transposed.at(1, 0), "b");
  EXPECT_EQ(transposed.Transposed(), grid);
}

TEST(Grid, WithColumns) {
  const Grid grid(std::vector<std::vector<std::string>>{{"a", "b", "c"},
                                                        {"d", "e", "f"}});
  const Grid projected = grid.WithColumns({2, 0});
  EXPECT_EQ(projected.columns(), 2);
  EXPECT_EQ(projected.at(0, 0), "c");
  EXPECT_EQ(projected.at(0, 1), "a");
  EXPECT_EQ(projected.at(1, 0), "f");
}

TEST(Grid, IsEmptyAndCounts) {
  const Grid grid(std::vector<std::vector<std::string>>{{" ", "x"}, {"", "y"}});
  EXPECT_TRUE(grid.IsEmpty(0, 0));
  EXPECT_FALSE(grid.IsEmpty(0, 1));
  EXPECT_EQ(grid.CountNonEmpty(), 2);
}

}  // namespace
}  // namespace aggrecol::csv
