#include "csv/writer.h"

#include <random>

#include "csv/parser.h"
#include "gtest/gtest.h"

namespace aggrecol::csv {
namespace {

const Dialect kComma{',', '"'};

TEST(EscapeField, PlainFieldUnchanged) {
  EXPECT_EQ(EscapeField("abc", kComma), "abc");
  EXPECT_EQ(EscapeField("", kComma), "");
}

TEST(EscapeField, DelimiterTriggersQuoting) {
  EXPECT_EQ(EscapeField("a,b", kComma), "\"a,b\"");
}

TEST(EscapeField, QuoteIsDoubled) {
  EXPECT_EQ(EscapeField("say \"hi\"", kComma), "\"say \"\"hi\"\"\"");
}

TEST(EscapeField, NewlineTriggersQuoting) {
  EXPECT_EQ(EscapeField("a\nb", kComma), "\"a\nb\"");
  EXPECT_EQ(EscapeField("a\rb", kComma), "\"a\rb\"");
}

TEST(WriteGrid, SimpleOutput) {
  Grid grid(2, 2);
  grid.set(0, 0, "a");
  grid.set(0, 1, "b");
  grid.set(1, 0, "1,5");
  EXPECT_EQ(WriteGrid(grid, kComma), "a,b\n\"1,5\",\n");
}

TEST(WriteGrid, RoundTripsAwkwardContent) {
  Grid grid(3, 3);
  grid.set(0, 0, "plain");
  grid.set(0, 1, "with,comma");
  grid.set(0, 2, "with\"quote");
  grid.set(1, 0, "multi\nline");
  grid.set(1, 1, "");
  grid.set(1, 2, " leading space");
  grid.set(2, 0, "\"fully quoted\"");
  grid.set(2, 1, ",");
  grid.set(2, 2, "\r\n");
  EXPECT_EQ(ParseGrid(WriteGrid(grid, kComma), kComma), grid);
}

// Property: write-then-parse is the identity for random printable content,
// under every candidate dialect.
class WriterRoundTripProperty : public ::testing::TestWithParam<char> {};

TEST_P(WriterRoundTripProperty, RandomGrids) {
  const Dialect dialect{GetParam(), '"'};
  std::mt19937_64 rng(99);
  const std::string alphabet = "abc123,;\t|\"' \n.%-";
  for (int trial = 0; trial < 50; ++trial) {
    const int rows = 1 + static_cast<int>(rng() % 5);
    const int columns = 1 + static_cast<int>(rng() % 5);
    Grid grid(rows, columns);
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < columns; ++j) {
        std::string cell;
        const size_t length = rng() % 8;
        for (size_t k = 0; k < length; ++k) {
          cell.push_back(alphabet[rng() % alphabet.size()]);
        }
        grid.set(i, j, cell);
      }
    }
    ASSERT_EQ(ParseGrid(WriteGrid(grid, dialect), dialect), grid)
        << "dialect " << ToString(dialect) << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Delimiters, WriterRoundTripProperty,
                         ::testing::Values(',', ';', '\t', '|'));

TEST(Writer, LeadingBomCellIsQuotedToSurviveReparse) {
  // Fuzzer-found: a first cell beginning with the UTF-8 BOM, written bare,
  // is stripped as file metadata by the re-parse. The writer must quote it.
  Grid grid(1, 2);
  grid.set(0, 0, "\xEF\xBB\xBF" "label");
  grid.set(0, 1, "x");
  const Dialect dialect{',', '"'};
  const std::string text = WriteGrid(grid, dialect);
  EXPECT_EQ(text.front(), '"');
  EXPECT_EQ(ParseGrid(text, dialect), grid);
  // Only the file-leading cell needs the treatment; a BOM elsewhere is plain
  // cell content and round-trips bare.
  Grid inner(2, 1);
  inner.set(0, 0, "head");
  inner.set(1, 0, "\xEF\xBB\xBF" "body");
  EXPECT_EQ(ParseGrid(WriteGrid(inner, dialect), dialect), inner);
}

TEST(Writer, EscapeDialectSelfEscapesAndQuotes) {
  const Dialect escaped{',', '"', '\\'};
  EXPECT_EQ(EscapeField("a\\b", escaped), "\"a\\\\b\"");
  EXPECT_EQ(EscapeField("q\"x", escaped), "\"q\"\"x\"");
  EXPECT_EQ(EscapeField("plain", escaped), "plain");
}

}  // namespace
}  // namespace aggrecol::csv
