// Failure-injection and property tests: the pipeline must survive arbitrary
// input bytes, degenerate shapes, and extreme values, and must be symmetric
// under transposition.
#include <random>
#include <string>

#include "core/aggrecol.h"
#include "csv/parser.h"
#include "csv/sniffer.h"
#include "datagen/corpus.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol {
namespace {

using aggrecol::testing::MakeGrid;

TEST(Robustness, RandomBytesDoNotCrashDetectText) {
  std::mt19937_64 rng(2024);
  core::AggreCol detector;
  const std::string alphabet =
      "abcXYZ0123456789,;\t|\"'\n\r .%-+()total\x01\x7f\xc3\xa9";
  for (int trial = 0; trial < 60; ++trial) {
    std::string text;
    const size_t length = rng() % 400;
    for (size_t i = 0; i < length; ++i) {
      text.push_back(alphabet[rng() % alphabet.size()]);
    }
    const auto result = detector.DetectText(text);  // must not crash or hang
    (void)result;
  }
  SUCCEED();
}

TEST(Robustness, RandomNumericGridsTerminate) {
  std::mt19937_64 rng(7);
  core::AggreCol detector;
  for (int trial = 0; trial < 20; ++trial) {
    const int rows = 1 + static_cast<int>(rng() % 12);
    const int columns = 1 + static_cast<int>(rng() % 12);
    csv::Grid grid(rows, columns);
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < columns; ++j) {
        switch (rng() % 5) {
          case 0:
            grid.set(i, j, std::to_string(rng() % 10));
            break;
          case 1:
            grid.set(i, j, std::to_string(rng() % 10000));
            break;
          case 2:
            grid.set(i, j, "");
            break;
          case 3:
            grid.set(i, j, "x");
            break;
          default:
            grid.set(i, j, "text");
            break;
        }
      }
    }
    const auto result = detector.Detect(grid);
    (void)result;
  }
  SUCCEED();
}

TEST(Robustness, DegenerateShapes) {
  core::AggreCol detector;
  EXPECT_TRUE(detector.Detect(csv::Grid()).aggregations.empty());
  EXPECT_TRUE(detector.Detect(csv::Grid(1, 1)).aggregations.empty());
  EXPECT_TRUE(detector.DetectText("").aggregations.empty());
  EXPECT_TRUE(detector.DetectText("\n\n\n").aggregations.empty());
  // Single row / single column of numbers.
  EXPECT_TRUE(detector.DetectText("5\n").aggregations.empty());
  const auto row = detector.DetectText("2,3,5\n");  // one-line sum
  (void)row;  // any result is fine; must not crash
}

TEST(Robustness, ExtremeValues) {
  core::AggreCol detector;
  // 400-digit integers overflow double to infinity; the pipeline must not
  // produce NaN-driven matches or crash.
  const std::string huge(400, '9');
  const std::string csv = "a,b,c\n" + huge + "," + huge + "," + huge + "\n";
  const auto result = detector.DetectText(csv);
  for (const auto& aggregation : result.aggregations) {
    EXPECT_TRUE(std::isfinite(aggregation.error));
  }
  // Mixed signs and tiny magnitudes.
  const auto tiny = detector.DetectText("0.0001,-0.0001,0\n0.0002,-0.0002,0\n");
  (void)tiny;
}

TEST(Robustness, DetectionIsTransposeSymmetric) {
  // Column-wise results on a grid must equal row-wise results on its
  // transpose (with the axis tag swapped) — the driver's core symmetry.
  const auto files = datagen::GenerateSmallCorpus(6, 99);
  for (const auto& file : files) {
    core::AggreColConfig columns_only;
    columns_only.detect_rows = false;
    const auto by_columns = core::AggreCol(columns_only).Detect(file.grid);

    core::AggreColConfig rows_only;
    rows_only.detect_columns = false;
    const auto by_rows_on_transpose =
        core::AggreCol(rows_only).Detect(file.grid.Transposed());

    ASSERT_EQ(by_columns.aggregations.size(),
              by_rows_on_transpose.aggregations.size())
        << file.name;
    for (size_t i = 0; i < by_columns.aggregations.size(); ++i) {
      core::Aggregation expected = by_columns.aggregations[i];
      expected.axis = core::Axis::kRow;  // transposed view reports row-wise
      EXPECT_EQ(by_rows_on_transpose.aggregations[i], expected) << file.name;
    }
  }
}

TEST(Robustness, SnifferSurvivesBinaryInput) {
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  const auto result = csv::SniffDialect(binary);
  (void)csv::ParseGrid(binary, result.dialect);
  SUCCEED();
}

TEST(Robustness, VeryWideGridTerminatesQuickly) {
  // 3 x 120 numeric grid: the polynomial pipeline must finish fast even
  // though the eager baseline could not.
  std::vector<std::vector<std::string>> rows(3, std::vector<std::string>(120));
  std::mt19937_64 rng(5);
  for (auto& row : rows) {
    for (auto& cell : row) cell = std::to_string(100 + rng() % 900);
  }
  core::AggreCol detector;
  const auto result = detector.Detect(csv::Grid(rows));
  (void)result;
  SUCCEED();
}

}  // namespace
}  // namespace aggrecol
