#include "core/supplemental_detector.h"

#include "core/aggrecol.h"
#include "core/individual_detector.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::Contains;
using aggrecol::testing::MakeNumeric;

SupplementalConfig Config() {
  SupplementalConfig config;
  config.functions = {AggregationFunction::kSum, AggregationFunction::kAverage};
  config.error_levels.fill(0.0);
  config.coverage = 0.7;
  config.window_size = 10;
  return config;
}

// The Figure 3c interrupt layout: the average aggregate sits between the sum
// aggregate and the shared range, blocking the adjacency scan.
numfmt::NumericGrid InterruptGrid() {
  return MakeNumeric({
      // total | average | m1 | m2 | m3
      {"6", "2", "1", "2", "3"},
      {"12", "4", "3", "4", "5"},
      {"18", "6", "5", "6", "7"},
  });
}

TEST(Supplemental, RecoversInterruptSum) {
  const auto grid = InterruptGrid();
  IndividualConfig individual;
  individual.error_level = 0.0;
  // Stage 1 finds the averages but not the blocked sums.
  const auto averages =
      DetectIndividualRowwise(grid, AggregationFunction::kAverage, individual);
  ASSERT_TRUE(Contains(averages, Agg(0, 1, {2, 3, 4}, AggregationFunction::kAverage)));
  const auto sums = DetectIndividualRowwise(grid, AggregationFunction::kSum, individual);
  EXPECT_FALSE(Contains(sums, Agg(0, 0, {2, 3, 4}, AggregationFunction::kSum)));

  // Stage 3: removing the average aggregate column makes the sum adjacent.
  std::vector<Aggregation> detected = averages;
  detected.insert(detected.end(), sums.begin(), sums.end());
  const auto supplemental = DetectSupplementalRowwise(grid, Config(), detected);
  EXPECT_TRUE(
      Contains(supplemental, Agg(0, 0, {2, 3, 4}, AggregationFunction::kSum)));
  EXPECT_TRUE(
      Contains(supplemental, Agg(2, 0, {2, 3, 4}, AggregationFunction::kSum)));
}

TEST(Supplemental, ReturnsOnlyNewAggregations) {
  const auto grid = InterruptGrid();
  IndividualConfig individual;
  individual.error_level = 0.0;
  const auto averages =
      DetectIndividualRowwise(grid, AggregationFunction::kAverage, individual);
  const auto supplemental = DetectSupplementalRowwise(grid, Config(), averages);
  for (const auto& aggregation : supplemental) {
    EXPECT_FALSE(Contains(averages, aggregation));
  }
}

TEST(Supplemental, NothingDetectedNothingReturned) {
  const auto grid = MakeNumeric({
      {"1", "7", "19"},
      {"2", "8", "23"},
  });
  EXPECT_TRUE(DetectSupplementalRowwise(grid, Config(), {}).empty());
}

TEST(Supplemental, AlternativeDecompositionSuppressed) {
  // Grand = G1 + G2 with G1 = a+b, G2 = c+d already detected. Removing the
  // group totals exposes grand = a+b+c+d, which must not be reported: the
  // grand aggregate is already claimed by a same-function aggregation.
  const auto grid = MakeNumeric({
      {"10", "3", "1", "2", "7", "3", "4"},
      {"14", "5", "2", "3", "9", "4", "5"},
      {"22", "9", "4", "5", "13", "6", "7"},
  });
  IndividualConfig individual;
  individual.error_level = 0.0;
  const auto detected =
      DetectIndividualRowwise(grid, AggregationFunction::kSum, individual);
  ASSERT_TRUE(Contains(detected, Agg(0, 0, {1, 4}, AggregationFunction::kSum)));

  SupplementalConfig config = Config();
  config.functions = {AggregationFunction::kSum};
  const auto supplemental = DetectSupplementalRowwise(grid, config, detected);
  EXPECT_FALSE(
      Contains(supplemental, Agg(0, 0, {2, 3, 5, 6}, AggregationFunction::kSum)));
  EXPECT_FALSE(
      Contains(supplemental, Agg(0, 0, {1, 5, 6}, AggregationFunction::kSum)));
  EXPECT_FALSE(
      Contains(supplemental, Agg(0, 0, {2, 3, 4}, AggregationFunction::kSum)));
}

TEST(Supplemental, ConfigurationCapRespected) {
  // Many cumulative aggregates: the enumeration must stay bounded. This is a
  // smoke test that it terminates quickly with a tiny cap.
  const auto grid = MakeNumeric({
      {"3", "1", "2", "7", "3", "4", "11", "5", "6", "15", "7", "8"},
      {"5", "2", "3", "9", "4", "5", "13", "6", "7", "17", "8", "9"},
  });
  IndividualConfig individual;
  individual.error_level = 0.0;
  const auto detected =
      DetectIndividualRowwise(grid, AggregationFunction::kSum, individual);
  SupplementalConfig config = Config();
  config.functions = {AggregationFunction::kSum};
  config.max_configurations = 4;
  const auto supplemental = DetectSupplementalRowwise(grid, config, detected);
  SUCCEED();  // termination and no crash is the property under test
}

TEST(Supplemental, FullPipelineDetectsInterrupt) {
  // End-to-end check through AggreCol::Detect with the supplemental stage on
  // and off (the Fig. 8 recall-at-S effect).
  AggreColConfig with;
  with.error_levels.fill(0.0);
  with.detect_columns = false;
  with.functions = {AggregationFunction::kSum, AggregationFunction::kAverage};
  AggreColConfig without = with;
  without.run_supplemental = false;

  const auto grid = InterruptGrid();
  const auto full = AggreCol(with).Detect(grid);
  const auto partial = AggreCol(without).Detect(grid);
  EXPECT_TRUE(
      Contains(full.aggregations, Agg(1, 0, {2, 3, 4}, AggregationFunction::kSum)));
  EXPECT_FALSE(
      Contains(partial.aggregations, Agg(1, 0, {2, 3, 4}, AggregationFunction::kSum)));
}

}  // namespace
}  // namespace aggrecol::core
