#include "eval/metrics.h"

#include "eval/file_level.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::eval {
namespace {

using aggrecol::testing::Agg;
using core::AggregationFunction;
using core::Axis;

TEST(Score, PerfectMatch) {
  const std::vector<core::Aggregation> truth = {
      Agg(1, 0, {1, 2}, AggregationFunction::kSum)};
  const auto scores = Score(truth, truth);
  EXPECT_EQ(scores.correct, 1);
  EXPECT_EQ(scores.incorrect, 0);
  EXPECT_EQ(scores.missed, 0);
  EXPECT_DOUBLE_EQ(scores.precision, 1.0);
  EXPECT_DOUBLE_EQ(scores.recall, 1.0);
  EXPECT_DOUBLE_EQ(scores.F1(), 1.0);
}

TEST(Score, CountsCorrectIncorrectMissed) {
  const std::vector<core::Aggregation> truth = {
      Agg(1, 0, {1, 2}, AggregationFunction::kSum),
      Agg(2, 0, {1, 2}, AggregationFunction::kSum)};
  const std::vector<core::Aggregation> predicted = {
      Agg(1, 0, {1, 2}, AggregationFunction::kSum),
      Agg(9, 9, {1, 2}, AggregationFunction::kSum)};
  const auto scores = Score(predicted, truth);
  EXPECT_EQ(scores.correct, 1);
  EXPECT_EQ(scores.incorrect, 1);
  EXPECT_EQ(scores.missed, 1);
  EXPECT_DOUBLE_EQ(scores.precision, 0.5);
  EXPECT_DOUBLE_EQ(scores.recall, 0.5);
}

TEST(Score, MatchRequiresFunctionEquality) {
  const std::vector<core::Aggregation> truth = {
      Agg(1, 0, {1, 2}, AggregationFunction::kSum)};
  const std::vector<core::Aggregation> predicted = {
      Agg(1, 0, {1, 2}, AggregationFunction::kAverage)};
  const auto scores = Score(predicted, truth);
  EXPECT_EQ(scores.correct, 0);
}

TEST(Score, UndefinedScoresDefaultToOne) {
  // No predictions: precision undefined -> 1; no truth: recall undefined -> 1.
  const std::vector<core::Aggregation> truth = {
      Agg(1, 0, {1, 2}, AggregationFunction::kSum)};
  const auto no_predictions = Score({}, truth);
  EXPECT_DOUBLE_EQ(no_predictions.precision, 1.0);
  EXPECT_DOUBLE_EQ(no_predictions.recall, 0.0);
  const auto no_truth = Score(truth, {});
  EXPECT_DOUBLE_EQ(no_truth.recall, 1.0);
  EXPECT_DOUBLE_EQ(no_truth.precision, 0.0);
  const auto both_empty = Score({}, {});
  EXPECT_DOUBLE_EQ(both_empty.precision, 1.0);
  EXPECT_DOUBLE_EQ(both_empty.recall, 1.0);
}

TEST(Score, DifferenceMergedIntoSum) {
  // Prediction net = gross - expense; truth annotated as gross = net + expense.
  const std::vector<core::Aggregation> predicted = {
      Agg(1, 0, {1, 2}, AggregationFunction::kDifference)};
  const std::vector<core::Aggregation> truth = {
      Agg(1, 1, {0, 2}, AggregationFunction::kSum)};
  const auto scores = Score(predicted, truth);
  EXPECT_EQ(scores.correct, 1);
  EXPECT_EQ(scores.missed, 0);
}

TEST(Score, CommutativeRangeOrderIgnored) {
  const std::vector<core::Aggregation> predicted = {
      Agg(1, 0, {3, 1, 2}, AggregationFunction::kSum)};
  const std::vector<core::Aggregation> truth = {
      Agg(1, 0, {1, 2, 3}, AggregationFunction::kSum)};
  EXPECT_EQ(Score(predicted, truth).correct, 1);
}

TEST(Score, PairwiseRangeOrderSignificant) {
  const std::vector<core::Aggregation> predicted = {
      Agg(1, 0, {2, 1}, AggregationFunction::kDivision)};
  const std::vector<core::Aggregation> truth = {
      Agg(1, 0, {1, 2}, AggregationFunction::kDivision)};
  EXPECT_EQ(Score(predicted, truth).correct, 0);
}

TEST(Score, FunctionFilterSelectsClass) {
  const std::vector<core::Aggregation> truth = {
      Agg(1, 0, {1, 2}, AggregationFunction::kSum),
      Agg(1, 5, {3, 4}, AggregationFunction::kDivision)};
  const auto sum_only = Score(truth, truth, AggregationFunction::kSum);
  EXPECT_EQ(sum_only.correct, 1);
  const auto division_only = Score(truth, truth, AggregationFunction::kDivision);
  EXPECT_EQ(division_only.correct, 1);
}

TEST(Score, DuplicatePredictionsCollapse) {
  const std::vector<core::Aggregation> truth = {
      Agg(1, 0, {1, 2}, AggregationFunction::kSum)};
  const std::vector<core::Aggregation> predicted = {
      Agg(1, 0, {1, 2}, AggregationFunction::kSum),
      Agg(1, 0, {2, 1}, AggregationFunction::kSum)};
  const auto scores = Score(predicted, truth);
  EXPECT_EQ(scores.correct, 1);
  EXPECT_EQ(scores.incorrect, 0);
}

TEST(Score, CanonicalDuplicatePredictionsCountOnce) {
  // A sum, its reordered twin, and the difference that folds into the same
  // canonical form (aggregate 0 = 1 - 2 with the sum 1 = 0 + 2): three raw
  // predictions, one canonical prediction. Neither correct nor incorrect may
  // be double-counted, and missed must not go negative.
  const std::vector<core::Aggregation> truth = {
      Agg(1, 1, {0, 2}, AggregationFunction::kSum)};
  const std::vector<core::Aggregation> predicted = {
      Agg(1, 1, {0, 2}, AggregationFunction::kSum),
      Agg(1, 1, {2, 0}, AggregationFunction::kSum),
      Agg(1, 0, {1, 2}, AggregationFunction::kDifference)};
  const auto scores = Score(predicted, truth);
  EXPECT_EQ(scores.correct, 1);
  EXPECT_EQ(scores.incorrect, 0);
  EXPECT_EQ(scores.missed, 0);
  EXPECT_DOUBLE_EQ(scores.precision, 1.0);
  EXPECT_DOUBLE_EQ(scores.recall, 1.0);
}

TEST(Score, DuplicateTruthDoesNotInflateMissed) {
  // The same ground-truth aggregation annotated twice (e.g. once as sum,
  // once as the equivalent difference) is one truth entry after
  // canonicalization: matching it yields perfect recall, not a phantom miss.
  const std::vector<core::Aggregation> truth = {
      Agg(1, 1, {0, 2}, AggregationFunction::kSum),
      Agg(1, 0, {1, 2}, AggregationFunction::kDifference)};
  const std::vector<core::Aggregation> predicted = {
      Agg(1, 1, {0, 2}, AggregationFunction::kSum)};
  const auto scores = Score(predicted, truth);
  EXPECT_EQ(scores.correct, 1);
  EXPECT_EQ(scores.missed, 0);
  EXPECT_GE(scores.missed, 0);
  EXPECT_DOUBLE_EQ(scores.recall, 1.0);
}

TEST(Score, StackedTableTruthRequiresWholeFileCoordinates) {
  // Ground truth for a second stacked table is expressed in whole-file row
  // coordinates (here: the table starts at row 4). A prediction left in
  // region-local coordinates — the bug the split-tables remap in
  // core::AggreCol exists to prevent — must score as incorrect + missed,
  // while the correctly remapped prediction is credited.
  const std::vector<core::Aggregation> truth = {
      Agg(5, 3, {1, 2}, AggregationFunction::kSum),
      Agg(1, 7, {5, 6}, AggregationFunction::kSum, Axis::kColumn),
  };
  const std::vector<core::Aggregation> region_local = {
      Agg(1, 3, {1, 2}, AggregationFunction::kSum),
      Agg(1, 3, {1, 2}, AggregationFunction::kSum, Axis::kColumn),
  };
  const auto local_scores = Score(region_local, truth);
  EXPECT_EQ(local_scores.correct, 0);
  EXPECT_EQ(local_scores.incorrect, 2);
  EXPECT_EQ(local_scores.missed, 2);

  const std::vector<core::Aggregation> remapped = {
      Agg(5, 3, {1, 2}, AggregationFunction::kSum),
      Agg(1, 7, {5, 6}, AggregationFunction::kSum, Axis::kColumn),
  };
  const auto remapped_scores = Score(remapped, truth);
  EXPECT_EQ(remapped_scores.correct, 2);
  EXPECT_EQ(remapped_scores.missed, 0);
  EXPECT_DOUBLE_EQ(remapped_scores.F1(), 1.0);
}

TEST(Accumulate, PoolsCounts) {
  Scores a;
  a.correct = 8;
  a.incorrect = 2;
  a.missed = 0;
  Scores b;
  b.correct = 2;
  b.incorrect = 0;
  b.missed = 6;
  const auto total = Accumulate({a, b});
  EXPECT_EQ(total.correct, 10);
  EXPECT_DOUBLE_EQ(total.precision, 10.0 / 12.0);
  EXPECT_DOUBLE_EQ(total.recall, 10.0 / 16.0);
}

TEST(FileLevel, BinBoundaries) {
  EXPECT_EQ(FileLevelBin(0.0), 0);
  EXPECT_EQ(FileLevelBin(0.05), 0);
  EXPECT_EQ(FileLevelBin(0.051), 1);
  EXPECT_EQ(FileLevelBin(0.35), 1);
  EXPECT_EQ(FileLevelBin(0.5), 2);
  EXPECT_EQ(FileLevelBin(0.65), 2);
  EXPECT_EQ(FileLevelBin(0.95), 3);
  EXPECT_EQ(FileLevelBin(0.951), 4);
  EXPECT_EQ(FileLevelBin(1.0), 4);
}

TEST(FileLevel, HistogramFractions) {
  FileLevelHistogram histogram;
  histogram.Add(1.0);
  histogram.Add(0.97);
  histogram.Add(0.2);
  histogram.Add(0.0);
  EXPECT_EQ(histogram.total, 4);
  EXPECT_DOUBLE_EQ(histogram.Fraction(4), 0.5);
  EXPECT_DOUBLE_EQ(histogram.Fraction(1), 0.25);
  EXPECT_DOUBLE_EQ(histogram.Fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(histogram.Fraction(2), 0.0);
}

TEST(FileLevel, BuildFromScores) {
  Scores perfect;
  perfect.correct = 10;
  perfect.precision = 1.0;
  perfect.recall = 1.0;
  Scores poor;
  poor.correct = 0;
  poor.incorrect = 5;
  poor.missed = 5;
  poor.precision = 0.0;
  poor.recall = 0.0;
  const auto result = BuildFileLevel({perfect, poor});
  EXPECT_EQ(result.precision.counts[4], 1);
  EXPECT_EQ(result.precision.counts[0], 1);
  EXPECT_EQ(result.f1.counts[4], 1);
  EXPECT_EQ(result.f1.counts[0], 1);
}

TEST(FileLevel, LabelsAreHumanReadable) {
  EXPECT_EQ(FileLevelBinLabel(0), "[0, 0.05]");
  EXPECT_EQ(FileLevelBinLabel(4), "(0.95, 1]");
}

}  // namespace
}  // namespace aggrecol::eval
