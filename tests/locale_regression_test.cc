// Regression battery for the locale bug lint rule L1 exists to prevent:
// under a comma-decimal global locale (de_DE et al.), std::strtod/std::stod
// stop at the '.' radix point and silently truncate "12.5" to 12 — which
// breaks Table 4 number-format normalization and annotation parsing. The
// numfmt::ParseDouble wrapper (std::from_chars) is locale-independent.
//
// When no comma-decimal locale is installed (minimal containers), the
// locale-imbued cases skip; the locale-independent semantics of ParseDouble
// are asserted unconditionally.
#include <clocale>
#include <cstdlib>
#include <string>

#include "csv/grid.h"
#include "eval/annotations.h"
#include "gtest/gtest.h"
#include "numfmt/number_format.h"
#include "numfmt/parse_double.h"

namespace aggrecol {
namespace {

// ---------------------------------------------------------------------------
// ParseDouble semantics, any locale.
// ---------------------------------------------------------------------------

TEST(ParseDouble, ParsesCanonicalDecimals) {
  EXPECT_EQ(numfmt::ParseDouble("12.5"), 12.5);
  EXPECT_EQ(numfmt::ParseDouble("-0.25"), -0.25);
  EXPECT_EQ(numfmt::ParseDouble("+3.5"), 3.5);
  EXPECT_EQ(numfmt::ParseDouble("1e3"), 1000.0);
  EXPECT_EQ(numfmt::ParseDouble("2.5E-2"), 0.025);
  EXPECT_EQ(numfmt::ParseDouble("  42  "), 42.0);
  EXPECT_EQ(numfmt::ParseDouble("0"), 0.0);
}

TEST(ParseDouble, RejectsPartialAndEmptyInput) {
  EXPECT_FALSE(numfmt::ParseDouble("").has_value());
  EXPECT_FALSE(numfmt::ParseDouble("   ").has_value());
  EXPECT_FALSE(numfmt::ParseDouble("12abc").has_value());
  EXPECT_FALSE(numfmt::ParseDouble("1.2.3").has_value());
  EXPECT_FALSE(numfmt::ParseDouble("+-1").has_value());
  EXPECT_FALSE(numfmt::ParseDouble("abc").has_value());
}

// ---------------------------------------------------------------------------
// The locale-imbued regression proper.
// ---------------------------------------------------------------------------

// Switches LC_NUMERIC to a comma-decimal locale for the test's duration.
// Skips when none is installed.
class CommaDecimalLocaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* previous = std::setlocale(LC_NUMERIC, nullptr);
    saved_ = previous != nullptr ? previous : "C";
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR.utf8",
          "fr_FR", "es_ES.UTF-8", "it_IT.UTF-8", "pt_BR.UTF-8"}) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        imbued_ = name;
        break;
      }
    }
    if (imbued_ == nullptr) {
      GTEST_SKIP() << "no comma-decimal locale installed (locale-gen "
                      "de_DE.UTF-8 to enable this regression test)";
    }
    // Paranoia: the named locale must actually use ',' as the radix point,
    // or the regression below cannot reproduce.
    const lconv* conv = localeconv();
    if (conv == nullptr || conv->decimal_point == nullptr ||
        conv->decimal_point[0] != ',') {
      std::setlocale(LC_NUMERIC, saved_.c_str());
      GTEST_SKIP() << imbued_ << " does not use a comma radix point";
    }
  }

  void TearDown() override { std::setlocale(LC_NUMERIC, saved_.c_str()); }

  std::string saved_;
  const char* imbued_ = nullptr;
};

TEST_F(CommaDecimalLocaleTest, LegacyParserMisreadsCanonicalDecimals) {
  // The failure mode this file regresses: the locale-dependent parser stops
  // at '.' under a comma-decimal locale. If this assertion ever fails, the
  // libc changed behavior and the whole battery should be revisited.
  // aggrecol-lint: allow(L1): demonstrating the exact bug ParseDouble fixes
  const double misparsed = std::strtod("12.5", nullptr);
  EXPECT_EQ(misparsed, 12.0) << "expected the legacy parser to truncate";

  // The sanctioned wrapper is immune.
  EXPECT_EQ(numfmt::ParseDouble("12.5"), 12.5);
}

TEST_F(CommaDecimalLocaleTest, NumberFormatElectionAndParsingSurvive) {
  // A comma/dot file: election must still pick comma/dot and parse exact
  // values — with strtod in ParseNumber, "1,234.5" came back as 1234.0.
  csv::Grid grid({{"1,234.50", "2,000.25", "930.125"},
                  {"12,345.75", "4.50", "1,000.5"}});
  EXPECT_EQ(numfmt::ElectFormat(grid), numfmt::NumberFormat::kCommaDot);

  const auto parsed =
      numfmt::ParseNumber("1,234.50", numfmt::NumberFormat::kCommaDot);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, 1234.5);

  const auto fraction =
      numfmt::ParseNumber("930.125", numfmt::NumberFormat::kCommaDot);
  ASSERT_TRUE(fraction.has_value());
  EXPECT_EQ(*fraction, 930.125);
}

TEST_F(CommaDecimalLocaleTest, AnnotationErrorFieldsSurvive) {
  // Annotation error levels are canonical decimals; std::stod truncated
  // "0.25" to 0 under the imbued locale, silently loosening every
  // error-level comparison in evaluation.
  const auto annotations = eval::ParseAnnotations("row,2,1,sum,2;3;4,0.25\n");
  ASSERT_TRUE(annotations.has_value());
  ASSERT_EQ(annotations->size(), 1u);
  EXPECT_EQ((*annotations)[0].error, 0.25);

  const auto composites =
      eval::ParseComposites("composite,row,1,4,2,5;6,0.125\n");
  ASSERT_TRUE(composites.has_value());
  ASSERT_EQ(composites->size(), 1u);
  EXPECT_EQ((*composites)[0].error, 0.125);
}

TEST_F(CommaDecimalLocaleTest, FormatRoundTripSurvives) {
  // The datagen round-trip property under the imbued locale: format, then
  // parse back, bit-identical.
  for (const numfmt::NumberFormat format : numfmt::kAllNumberFormats) {
    const std::string text = numfmt::FormatNumber(9876.5, format, 1);
    const auto parsed = numfmt::ParseNumber(text, format);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, 9876.5) << text;
  }
}

}  // namespace
}  // namespace aggrecol
