// Deterministic fuzz harness for the CSV layer: a seeded xorshift byte
// mutator perturbs the checked-in seed corpus (tests/fuzz_seeds/) and feeds
// the result to the sniffer and parser under every candidate dialect shape.
//
// Three properties are checked on every mutant:
//   1. No crash, no hang: sniff + parse + write complete on arbitrary bytes
//      (this binary runs as a normal ctest, so the ASan/UBSan/TSan CI jobs
//      exercise exactly this path with sanitizers armed).
//   2. Write/parse idempotence: the first parse may interpret malformed
//      input however it likes, but serializing the resulting grid and
//      re-parsing it must reproduce the grid exactly — the same lossless
//      contract csv_parser_test pins on hand-written cases.
//   3. Zero-copy/reference agreement: the structural-scanner ParseGrid must
//      produce exactly the grid the retained reference state machine
//      (ParseGridReference) produces — the differential contract of
//      docs/INGEST.md, here under adversarial bytes instead of clean files.
//
// Everything is seeded; a failure prints the seed file, iteration, and the
// offending bytes, so any finding replays exactly.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "csv/parser.h"
#include "csv/sniffer.h"
#include "csv/writer.h"
#include "gtest/gtest.h"

#ifndef AGGRECOL_SOURCE_DIR
#error "AGGRECOL_SOURCE_DIR must point at the repository root"
#endif

namespace aggrecol::csv {
namespace {

/// xorshift64: tiny, fully deterministic, and independent of the standard
/// library's distribution implementations.
class Xorshift {
 public:
  explicit Xorshift(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  // Uniform-enough index in [0, bound); bound > 0.
  size_t Below(size_t bound) { return static_cast<size_t>(Next() % bound); }

 private:
  uint64_t state_;
};

std::vector<std::string> LoadSeedCorpus() {
  const std::filesystem::path dir =
      std::filesystem::path(AGGRECOL_SOURCE_DIR) / "tests" / "fuzz_seeds";
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".csv") paths.push_back(entry.path());
  }
  // directory_iterator order is unspecified; sort for deterministic seeds.
  std::sort(paths.begin(), paths.end());
  std::vector<std::string> corpus;
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    corpus.push_back(buffer.str());
  }
  return corpus;
}

/// One mutation step: flip, insert, delete, duplicate a span, or splice in a
/// structural character. Biased toward the characters that drive the parser
/// state machine so mutants hit interesting states, not just ASCII soup.
std::string Mutate(std::string text, Xorshift& rng) {
  static constexpr char kStructural[] = {',',  ';',  '\t', '|', '"', '\'',
                                         '\\', '\n', '\r', '%', '0', '('};
  const int kind = static_cast<int>(rng.Below(5));
  switch (kind) {
    case 0:  // flip a byte
      if (!text.empty()) {
        text[rng.Below(text.size())] = static_cast<char>(rng.Below(256));
      }
      break;
    case 1:  // insert a structural character
      text.insert(text.begin() + static_cast<long>(rng.Below(text.size() + 1)),
                  kStructural[rng.Below(sizeof(kStructural))]);
      break;
    case 2:  // delete a byte
      if (!text.empty()) {
        text.erase(text.begin() + static_cast<long>(rng.Below(text.size())));
      }
      break;
    case 3:  // duplicate a short span (creates repeated quotes/delimiters)
      if (!text.empty()) {
        const size_t start = rng.Below(text.size());
        const size_t len = std::min(text.size() - start, 1 + rng.Below(8));
        text.insert(rng.Below(text.size() + 1), text.substr(start, len));
      }
      break;
    default:  // truncate (models interrupted uploads)
      if (!text.empty()) text.resize(rng.Below(text.size() + 1));
      break;
  }
  return text;
}

/// The dialect shapes the pipeline actually runs: the sniffer's candidate
/// space plus the elected dialect of the mutant itself.
std::vector<Dialect> DialectsUnderTest(const std::string& text) {
  std::vector<Dialect> dialects = {
      Dialect{',', '"'},        Dialect{';', '"'},      Dialect{'\t', '"'},
      Dialect{'|', '\''},       Dialect{',', '"', '\\'}, Dialect{';', '\'', '\\'},
  };
  dialects.push_back(SniffDialect(text).dialect);  // must not crash
  return dialects;
}

TEST(FuzzCsv, SeedCorpusIsPresentAndParses) {
  const auto corpus = LoadSeedCorpus();
  ASSERT_GE(corpus.size(), 8u) << "fuzz seed corpus missing or truncated";
  for (const auto& seed : corpus) {
    ASSERT_FALSE(seed.empty());
    const auto sniffed = SniffDialect(seed);
    const Grid grid = ParseGrid(seed, sniffed.dialect);
    EXPECT_GT(grid.rows(), 0);
  }
}

TEST(FuzzCsv, MutantsNeverCrashAndAlwaysRoundTrip) {
  const auto corpus = LoadSeedCorpus();
  ASSERT_FALSE(corpus.empty());
  constexpr int kMutantsPerSeed = 120;
  constexpr int kStepsPerMutant = 4;

  for (size_t s = 0; s < corpus.size(); ++s) {
    Xorshift rng(0xA66ECC01ULL * (s + 1));
    for (int m = 0; m < kMutantsPerSeed; ++m) {
      std::string mutant = corpus[s];
      for (int step = 0; step < kStepsPerMutant; ++step) {
        mutant = Mutate(std::move(mutant), rng);
      }
      for (const Dialect& dialect : DialectsUnderTest(mutant)) {
        const Grid grid = ParseGrid(mutant, dialect);
        ASSERT_EQ(grid, ParseGridReference(mutant, dialect))
            << "zero-copy/reference divergence: seed " << s << " mutant " << m
            << " dialect '" << dialect.delimiter << "' quote '"
            << dialect.quote << "' escape '" << dialect.escape
            << "' input: [" << ::testing::PrintToString(mutant) << "]";
        const std::string written = WriteGrid(grid, dialect);
        const Grid reparsed = ParseGrid(written, dialect);
        ASSERT_EQ(reparsed, grid)
            << "seed " << s << " mutant " << m << " dialect '"
            << dialect.delimiter << "' quote '" << dialect.quote
            << "' escape '" << dialect.escape << "' input: ["
            << ::testing::PrintToString(mutant) << "]";
      }
    }
  }
}

TEST(FuzzCsv, PureNoiseNeverCrashes) {
  // No seed structure at all: raw byte noise through sniff + parse + write.
  Xorshift rng(0xDEADBEEFULL);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::string noise(rng.Below(512), '\0');
    for (char& c : noise) c = static_cast<char>(rng.Below(256));
    for (const Dialect& dialect : DialectsUnderTest(noise)) {
      const Grid grid = ParseGrid(noise, dialect);
      ASSERT_EQ(grid, ParseGridReference(noise, dialect))
          << "zero-copy/reference divergence at iteration " << iteration;
      const std::string written = WriteGrid(grid, dialect);
      ASSERT_EQ(ParseGrid(written, dialect), grid) << "iteration " << iteration;
    }
  }
}

}  // namespace
}  // namespace aggrecol::csv
