// Pins core::ApproxEq (lint rule L2's sanctioned comparator) at the
// tolerance boundary: absolute for magnitudes at or below one, relative
// above, exact semantics for zero, infinities, and NaN.
#include <cmath>
#include <limits>

#include "core/approx.h"
#include "gtest/gtest.h"

namespace aggrecol::core {
namespace {

TEST(ApproxEq, ExactEqualityAlwaysHolds) {
  EXPECT_TRUE(ApproxEq(0.0, 0.0));
  EXPECT_TRUE(ApproxEq(1.0, 1.0));
  EXPECT_TRUE(ApproxEq(-2.5, -2.5));
  EXPECT_TRUE(ApproxEq(std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity()));
}

TEST(ApproxEq, AbsoluteToleranceNearOne) {
  // scale = max(1, |a|, |b|) = 1: the boundary is eps itself.
  EXPECT_TRUE(ApproxEq(1.0, 1.0 + 0.5 * kApproxEps));
  EXPECT_TRUE(ApproxEq(0.0, 0.5 * kApproxEps));
  EXPECT_FALSE(ApproxEq(1.0, 1.0 + 4.0 * kApproxEps));
  EXPECT_FALSE(ApproxEq(0.0, 4.0 * kApproxEps));
}

TEST(ApproxEq, RelativeToleranceAtLargeMagnitude) {
  // At magnitude 1e6 the allowance scales to eps * 1e6.
  const double base = 1.0e6;
  EXPECT_TRUE(ApproxEq(base, base + 0.5 * kApproxEps * base));
  EXPECT_FALSE(ApproxEq(base, base + 4.0 * kApproxEps * base));
}

TEST(ApproxEq, TinyValuesUseTheAbsoluteFloor) {
  // Far below magnitude one, the absolute floor governs: two denormal-ish
  // scores within eps compare equal even though their relative gap is huge.
  EXPECT_TRUE(ApproxEq(1.0e-15, 3.0e-15));
  EXPECT_FALSE(ApproxEq(1.0e-15, 1.0e-11));
}

TEST(ApproxEq, ExplicitEpsilonOverrides) {
  EXPECT_TRUE(ApproxEq(1.0, 1.009, 0.01));
  EXPECT_FALSE(ApproxEq(1.0, 1.02, 0.01));
  // Exactly at the boundary: diff == eps * scale is inside (<=).
  EXPECT_TRUE(ApproxEq(0.0, 0.01, 0.01));
}

TEST(ApproxEq, FloatNoiseFromReassociationIsAbsorbed) {
  // The motivating case: a sufficiency ratio computed in two associativity
  // orders differs by ulps but must tie-break identically.
  const double a = (0.1 + 0.2) + 0.3;
  const double b = 0.1 + (0.2 + 0.3);
  EXPECT_NE(a == b, true);  // genuinely different doubles
  EXPECT_TRUE(ApproxEq(a, b));
}

TEST(ApproxEq, NanNeverComparesEqual) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ApproxEq(nan, nan));
  EXPECT_FALSE(ApproxEq(nan, 0.0));
  EXPECT_FALSE(ApproxEq(1.0, nan));
}

TEST(ApproxEq, DistinctScoresStayDistinct) {
  // Values the pruning tie-breaks actually compare: member-count ratios over
  // small groups. Adjacent distinct ratios are far apart relative to eps.
  EXPECT_FALSE(ApproxEq(2.0 / 3.0, 3.0 / 4.0));
  EXPECT_FALSE(ApproxEq(0.5, 0.6));
}

}  // namespace
}  // namespace aggrecol::core
