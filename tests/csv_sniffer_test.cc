#include "csv/sniffer.h"

#include <string>
#include <tuple>

#include "csv/parser.h"
#include "csv/writer.h"
#include "gtest/gtest.h"

namespace aggrecol::csv {
namespace {

TEST(Sniffer, CommaDetected) {
  const auto result = SniffDialect("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(result.dialect.delimiter, ',');
}

TEST(Sniffer, SemicolonDetected) {
  const auto result = SniffDialect("a;b;c\n1;2;3\n4;5;6\n");
  EXPECT_EQ(result.dialect.delimiter, ';');
}

TEST(Sniffer, TabDetected) {
  const auto result = SniffDialect("a\tb\tc\n1\t2\t3\n");
  EXPECT_EQ(result.dialect.delimiter, '\t');
}

TEST(Sniffer, PipeDetected) {
  const auto result = SniffDialect("a|b|c\n1|2|3\n");
  EXPECT_EQ(result.dialect.delimiter, '|');
}

TEST(Sniffer, SemicolonWithDecimalCommas) {
  // Decimal commas inside fields must not fool the sniffer: the semicolon
  // splits consistently, the comma does not.
  const auto result = SniffDialect("Jahr;Wert\n2001;12,5\n2002;13,0\n2003;9,25\n");
  EXPECT_EQ(result.dialect.delimiter, ';');
}

TEST(Sniffer, QuotedDelimitersFavorQuoteAwareDialect) {
  const std::string text = "name,value\n\"a,b\",1\n\"c,d\",2\n\"e,f\",3\n";
  const auto result = SniffDialect(text);
  EXPECT_EQ(result.dialect.delimiter, ',');
  EXPECT_EQ(result.dialect.quote, '"');
  // The winning dialect parses every row to width 2.
  const auto rows = ParseRows(text, result.dialect);
  for (const auto& row : rows) EXPECT_EQ(row.size(), 2u);
}

TEST(Sniffer, NoStructureFallsBackToComma) {
  const auto result = SniffDialect("just a plain sentence\nanother line\n");
  EXPECT_EQ(result.dialect.delimiter, ',');
  EXPECT_EQ(result.dialect.quote, '"');
}

TEST(Sniffer, EmptyInputFallsBack) {
  const auto result = SniffDialect("");
  EXPECT_EQ(result.dialect.delimiter, ',');
}

class SnifferRoundTrip : public ::testing::TestWithParam<std::tuple<char, char>> {};

TEST_P(SnifferRoundTrip, RecoversWritingDialect) {
  const auto [delimiter, quote] = GetParam();
  const Dialect dialect{delimiter, quote};
  Grid grid(4, 3);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      grid.set(i, j, "v" + std::to_string(i) + std::to_string(j));
    }
  }
  // Add a cell that needs quoting under this dialect.
  grid.set(1, 1, std::string("x") + delimiter + "y");
  const std::string text = WriteGrid(grid, dialect);
  const auto sniffed = SniffDialect(text);
  EXPECT_EQ(sniffed.dialect.delimiter, delimiter);
  EXPECT_EQ(ParseGrid(text, sniffed.dialect), grid);
}

INSTANTIATE_TEST_SUITE_P(AllDialects, SnifferRoundTrip,
                         ::testing::Combine(::testing::Values(',', ';', '\t', '|'),
                                            ::testing::Values('"')));

}  // namespace
}  // namespace aggrecol::csv
