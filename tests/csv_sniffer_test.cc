#include "csv/sniffer.h"

#include <string>
#include <tuple>

#include "csv/parser.h"
#include "csv/writer.h"
#include "datagen/file_generator.h"
#include "gtest/gtest.h"

namespace aggrecol::csv {
namespace {

TEST(Sniffer, CommaDetected) {
  const auto result = SniffDialect("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(result.dialect.delimiter, ',');
}

TEST(Sniffer, SemicolonDetected) {
  const auto result = SniffDialect("a;b;c\n1;2;3\n4;5;6\n");
  EXPECT_EQ(result.dialect.delimiter, ';');
}

TEST(Sniffer, TabDetected) {
  const auto result = SniffDialect("a\tb\tc\n1\t2\t3\n");
  EXPECT_EQ(result.dialect.delimiter, '\t');
}

TEST(Sniffer, PipeDetected) {
  const auto result = SniffDialect("a|b|c\n1|2|3\n");
  EXPECT_EQ(result.dialect.delimiter, '|');
}

TEST(Sniffer, SemicolonWithDecimalCommas) {
  // Decimal commas inside fields must not fool the sniffer: the semicolon
  // splits consistently, the comma does not.
  const auto result = SniffDialect("Jahr;Wert\n2001;12,5\n2002;13,0\n2003;9,25\n");
  EXPECT_EQ(result.dialect.delimiter, ';');
}

TEST(Sniffer, QuotedDelimitersFavorQuoteAwareDialect) {
  const std::string text = "name,value\n\"a,b\",1\n\"c,d\",2\n\"e,f\",3\n";
  const auto result = SniffDialect(text);
  EXPECT_EQ(result.dialect.delimiter, ',');
  EXPECT_EQ(result.dialect.quote, '"');
  // The winning dialect parses every row to width 2.
  const auto rows = ParseRows(text, result.dialect);
  for (const auto& row : rows) EXPECT_EQ(row.size(), 2u);
}

TEST(Sniffer, NoStructureFallsBackToComma) {
  const auto result = SniffDialect("just a plain sentence\nanother line\n");
  EXPECT_EQ(result.dialect.delimiter, ',');
  EXPECT_EQ(result.dialect.quote, '"');
}

TEST(Sniffer, EmptyInputFallsBack) {
  const auto result = SniffDialect("");
  EXPECT_EQ(result.dialect.delimiter, ',');
}

class SnifferRoundTrip : public ::testing::TestWithParam<std::tuple<char, char>> {};

TEST_P(SnifferRoundTrip, RecoversWritingDialect) {
  const auto [delimiter, quote] = GetParam();
  const Dialect dialect{delimiter, quote};
  Grid grid(4, 3);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      grid.set(i, j, "v" + std::to_string(i) + std::to_string(j));
    }
  }
  // Add a cell that needs quoting under this dialect.
  grid.set(1, 1, std::string("x") + delimiter + "y");
  const std::string text = WriteGrid(grid, dialect);
  const auto sniffed = SniffDialect(text);
  EXPECT_EQ(sniffed.dialect.delimiter, delimiter);
  EXPECT_EQ(ParseGrid(text, sniffed.dialect), grid);
}

INSTANTIATE_TEST_SUITE_P(AllDialects, SnifferRoundTrip,
                         ::testing::Combine(::testing::Values(',', ';', '\t', '|'),
                                            ::testing::Values('"')));

// ---------------------------------------------------------------------------
// Consistency-measure scoring
// ---------------------------------------------------------------------------

TEST(Sniffer, ScoreComponentsAreExposedAndMultiplicative) {
  const auto result = SniffDialect("a;b;c\n1;2;3\n4;5;6\n");
  EXPECT_GT(result.pattern_score, 0.0);
  EXPECT_LE(result.pattern_score, 1.0);
  EXPECT_GT(result.type_score, 0.0);
  EXPECT_LE(result.type_score, 1.0);
  EXPECT_DOUBLE_EQ(result.score, result.pattern_score * result.type_score);
}

TEST(Sniffer, TypeScoreBreaksRowWidthTies) {
  // Every row splits to width 3 under BOTH ',' and ';' — row-width
  // statistics cannot break the tie. Under ';' the numeric columns stay
  // lexable; under ',' every field is a shredded text fragment, so the type
  // model elects the true dialect.
  const std::string text =
      "Stadt, Region, Anm;2019;2020\n"
      "Berlin, Ost, est;12;34\n"
      "Hamburg, Nord, rev;56;78\n"
      "Bremen, West, est;90;12\n";
  const auto consistency = SniffDialect(text);
  EXPECT_EQ(consistency.dialect.delimiter, ';');
  // The retained reference scores only row-width agreement and resolves the
  // tie by candidate order — it elects ',' here. This pinned failure is the
  // reason the consistency sniffer exists; see docs/ROBUSTNESS.md.
  const auto reference = SniffDialectReference(text);
  EXPECT_EQ(reference.dialect.delimiter, ',');
}

TEST(Sniffer, RecognizesEveryTable4NumberFormat) {
  // The sniffer's lexical number matcher mirrors numfmt::MatchesFormat (the
  // csv module cannot link numfmt); this pins the mirror against the five
  // Table-4 formats, accounting parentheses, signs, and percentages.
  const std::string samples[] = {
      "Wert;Anteil\n12 345,67;1 234,5\n(2 345,0);99,1\n",    // space/comma
      "Wert;Anteil\n12 345.67;1 234.5\n-2 345.0;99.1\n",     // space/dot
      "Wert;Anteil\n12,345.67;1,234.5\n+2,345.0;99.1%\n",    // comma/dot
      "Wert;Anteil\n12345,67;1234,5\n(2345,0);99,1\n",       // none/comma
      "Wert;Anteil\n12345.67;1234.5\n-2345.0;99.1%\n",       // none/dot
  };
  for (const std::string& text : samples) {
    const auto result = SniffDialect(text);
    EXPECT_EQ(result.dialect.delimiter, ';') << text;
    // Header cells are text (epsilon-scored); every data cell must lex as a
    // number for the type score to clear this bar.
    EXPECT_GT(result.type_score, 0.6) << text;
  }
}

TEST(Sniffer, DatesAndTimesCountAsPlausibleCells) {
  const auto result =
      SniffDialect("Datum;Zeit;Wert\n1999-12-31;23:59;1\n2000-01-01;00:01;2\n");
  EXPECT_EQ(result.dialect.delimiter, ';');
  EXPECT_GT(result.type_score, 0.6);
}

TEST(Sniffer, EscapedQuoteDialectDetected) {
  // Backslash-escaped quotes: under the escape-aware candidate every row
  // parses to width 3; under RFC doubling the rows with escapes shred.
  const std::string text =
      "name,remark,value\n"
      "alpha,\"he said \\\"hi\\\", twice\",12\n"
      "beta,\"labelled \\\"B\\\", provisional\",34\n"
      "gamma,\"plain, comma\",56\n";
  const auto result = SniffDialect(text);
  EXPECT_EQ(result.dialect.delimiter, ',');
  EXPECT_EQ(result.dialect.quote, '"');
  EXPECT_EQ(result.dialect.escape, '\\');
  const auto rows = ParseRows(text, result.dialect);
  for (const auto& row : rows) EXPECT_EQ(row.size(), 3u);
  EXPECT_EQ(rows[1][1], "he said \"hi\", twice");
}

TEST(Sniffer, NoBackslashMeansNoEscapeCandidate) {
  // Escape-aware candidates parse identically to doubling-only ones when the
  // prefix carries no backslash; the sniffer must keep the plain dialect.
  const auto result = SniffDialect("a,b\n1,2\n3,4\n");
  EXPECT_EQ(result.dialect.escape, '\0');
}

TEST(Sniffer, BomDoesNotPerturbSniffing) {
  const auto result = SniffDialect("\xEF\xBB\xBFJahr;Wert\n2001;12,5\n2002;13,0\n");
  EXPECT_EQ(result.dialect.delimiter, ';');
}

TEST(Sniffer, ReferenceFallsBackLikeTheConsistencySniffer) {
  EXPECT_EQ(SniffDialectReference("").dialect.delimiter, ',');
  EXPECT_EQ(SniffDialectReference("plain sentence\n").dialect.delimiter, ',');
}

// ---------------------------------------------------------------------------
// Differential: on clean corpora the consistency sniffer and the retained
// reference must elect the same dialect (the new scorer may only *add*
// robustness on messy files, never change behavior on well-formed ones).
// ---------------------------------------------------------------------------

class SnifferDifferential
    : public ::testing::TestWithParam<std::tuple<uint64_t, char>> {};

TEST_P(SnifferDifferential, AgreesWithReferenceOnCleanGeneratedFiles) {
  const auto [seed, delimiter] = GetParam();
  const auto file =
      datagen::GenerateFile(datagen::GeneratorProfile{}, seed, "diff.csv");
  const Dialect written{delimiter, '"'};
  const std::string text = WriteGrid(file.grid, written);

  const auto consistency = SniffDialect(text);
  const auto reference = SniffDialectReference(text);
  EXPECT_EQ(consistency.dialect.delimiter, delimiter) << ToString(written);
  EXPECT_TRUE(consistency.dialect == reference.dialect)
      << "consistency " << ToString(consistency.dialect) << " vs reference "
      << ToString(reference.dialect);
  EXPECT_EQ(ParseGrid(text, consistency.dialect), file.grid);
}

INSTANTIATE_TEST_SUITE_P(
    CleanCorpus, SnifferDifferential,
    ::testing::Combine(::testing::Values(11u, 23u, 37u, 51u, 68u, 79u),
                       ::testing::Values(',', ';', '\t', '|')));

}  // namespace
}  // namespace aggrecol::csv
