// The aggrecol-lint battery: every rule L1-L6 must both fire on seeded
// violations and respect reasoned suppressions, and the repository itself
// must lint clean (the same gate CI runs via tools/aggrecol-lint).
// AGGRECOL_SOURCE_DIR is injected by tests/CMakeLists.txt.
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/linter.h"
#include "tools/lint/source_lexer.h"

namespace aggrecol::lint {
namespace {

std::vector<std::string> RulesFired(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> rules;
  rules.reserve(diagnostics.size());
  for (const Diagnostic& diagnostic : diagnostics) {
    rules.push_back(diagnostic.rule);
  }
  return rules;
}

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

TEST(SourceLexer, CommentsAndStringsAreNotCode) {
  const LexResult lexed = Lex(R"fix(
    // std::strtod in a comment
    /* std::stod in a block
       comment */
    const char* s = "std::atof(text)";
    int x = 1;  // trailing
  )fix");
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kIdentifier) {
      EXPECT_NE(token.text, "strtod");
      EXPECT_NE(token.text, "stod");
      EXPECT_NE(token.text, "atof");
    }
  }
}

TEST(SourceLexer, RawStringsAreSingleTokens) {
  const LexResult lexed = Lex(R"raw(auto s = R"(std::strtod " quote)";)raw");
  bool found = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kString) {
      EXPECT_EQ(token.text, "std::strtod \" quote");
      found = true;
    }
    EXPECT_FALSE(token.kind == TokenKind::kIdentifier &&
                 token.text == "strtod");
  }
  EXPECT_TRUE(found);
}

TEST(SourceLexer, LineNumbersAndMultiCharOperators) {
  const LexResult lexed = Lex("int a;\nbool b = x == y;\nbool c = x != y;\n");
  bool saw_eq = false;
  bool saw_ne = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind != TokenKind::kPunct) continue;
    if (token.text == "==") {
      EXPECT_EQ(token.line, 2);
      saw_eq = true;
    }
    if (token.text == "!=") {
      EXPECT_EQ(token.line, 3);
      saw_ne = true;
    }
  }
  EXPECT_TRUE(saw_eq);
  EXPECT_TRUE(saw_ne);
}

TEST(SourceLexer, DigitSeparatorsAreNotCharLiterals) {
  const LexResult lexed = Lex("int big = 1'000'000; char c = 'x';");
  ASSERT_GE(lexed.tokens.size(), 2u);
  bool saw_number = false;
  bool saw_char = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kNumber && token.text == "1'000'000") {
      saw_number = true;
    }
    if (token.kind == TokenKind::kChar && token.text == "x") saw_char = true;
  }
  EXPECT_TRUE(saw_number);
  EXPECT_TRUE(saw_char);
}

// ---------------------------------------------------------------------------
// L1 — locale-dependent parsing.
// ---------------------------------------------------------------------------

TEST(LintL1, FiresOnEveryLocaleDependentParser) {
  for (const char* parser : {"strtod", "strtof", "strtold", "atof", "stod",
                             "stof", "stold"}) {
    const std::string source =
        "double f(const char* s) { return std::" + std::string(parser) +
        "(s); }\n";
    const auto diagnostics = LintSource("src/eval/fixture.cc", source);
    ASSERT_EQ(diagnostics.size(), 1u) << parser;
    EXPECT_EQ(diagnostics[0].rule, "L1") << parser;
    EXPECT_EQ(diagnostics[0].line, 1);
  }
}

TEST(LintL1, AppliesToTestsAndBenchToo) {
  const std::string source = "double d = std::stod(text);\n";
  EXPECT_EQ(RulesFired(LintSource("tests/foo_test.cc", source)),
            std::vector<std::string>{"L1"});
  EXPECT_EQ(RulesFired(LintSource("bench/foo_bench.cc", source)),
            std::vector<std::string>{"L1"});
}

TEST(LintL1, SanctionedWrapperFileIsExempt) {
  const std::string source = "double d = std::strtod(text, nullptr);\n";
  EXPECT_TRUE(LintSource("src/numfmt/parse_double.h", source).empty());
}

TEST(LintL1, IntegerParsersAndMembersAreFine) {
  EXPECT_TRUE(LintSource("src/eval/fixture.cc",
                         "int i = std::stoi(s);\n"
                         "long l = std::strtol(s, &e, 10);\n"
                         "double d = object.stod(s);\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// L2 — raw float comparisons in src/core/.
// ---------------------------------------------------------------------------

TEST(LintL2, FiresOnNonzeroFloatLiteralComparison) {
  const auto diagnostics =
      LintSource("src/core/fixture.cc", "bool b = value == 1.5;\n");
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L2"});
}

TEST(LintL2, FiresOnFloatScoreIdentifierComparison) {
  const auto diagnostics = LintSource(
      "src/core/fixture.cc",
      "bool b = a.mean_error != b.mean_error;\n"
      "bool c = group.sufficiency == other.sufficiency;\n");
  EXPECT_EQ(RulesFired(diagnostics), (std::vector<std::string>{"L2", "L2"}));
}

TEST(LintL2, ZeroGuardsAreWhitelisted) {
  EXPECT_TRUE(LintSource("src/core/fixture.cc",
                         "bool a = denominator == 0.0;\n"
                         "bool b = value != 0.0;\n"
                         "bool c = observed == 0.;\n")
                  .empty());
}

TEST(LintL2, IntegerComparisonsAreFine) {
  EXPECT_TRUE(LintSource("src/core/fixture.cc",
                         "bool a = count == 3;\n"
                         "bool b = a.size() != b.size();\n"
                         "bool c = axis == Axis::kRow;\n")
                  .empty());
}

TEST(LintL2, OnlyCoreIsInScope) {
  const std::string source = "bool b = value == 1.5;\n";
  EXPECT_TRUE(LintSource("src/eval/fixture.cc", source).empty());
  EXPECT_TRUE(LintSource("tests/fixture.cc", source).empty());
}

// ---------------------------------------------------------------------------
// L3 — nondeterminism primitives.
// ---------------------------------------------------------------------------

TEST(LintL3, FiresOnEachPrimitive) {
  const struct {
    const char* source;
  } cases[] = {
      {"int x = rand();\n"},
      {"std::random_device device;\n"},
      {"auto now = std::chrono::system_clock::now();\n"},
      {"auto stamp = time(nullptr);\n"},
  };
  for (const auto& test_case : cases) {
    const auto diagnostics = LintSource("src/core/fixture.cc", test_case.source);
    EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L3"})
        << test_case.source;
  }
}

TEST(LintL3, SeededEnginesAndSteadyClockAreFine) {
  EXPECT_TRUE(LintSource("src/eval/fixture.cc",
                         "std::mt19937_64 rng(seed);\n"
                         "auto t0 = std::chrono::steady_clock::now();\n"
                         "double r = span.time();\n")
                  .empty());
}

TEST(LintL3, DatagenAndUtilAreOutOfScope) {
  // The generator draws from explicitly seeded engines; scheduling code may
  // read clocks. Neither feeds detection results nondeterministically.
  EXPECT_TRUE(
      LintSource("src/datagen/fixture.cc", "int x = rand();\n").empty());
  EXPECT_TRUE(LintSource("src/util/fixture.cc", "int x = rand();\n").empty());
}

// ---------------------------------------------------------------------------
// L4 — raw threading primitives.
// ---------------------------------------------------------------------------

TEST(LintL4, FiresOnRawThreadingPrimitives) {
  for (const char* source :
       {"std::thread worker(fn);\n", "auto f = std::async(fn);\n",
        "std::jthread worker(fn);\n", "pthread_create(&t, nullptr, fn, arg);\n"}) {
    const auto diagnostics = LintSource("src/eval/fixture.cc", source);
    EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L4"})
        << source;
  }
}

TEST(LintL4, StaticMembersAndPoolAreFine) {
  EXPECT_TRUE(
      LintSource("src/cli/fixture.cc",
                 "unsigned n = std::thread::hardware_concurrency();\n"
                 "util::ThreadPool pool(4);\n")
          .empty());
}

TEST(LintL4, ThreadPoolImplementationAndTestsAreExempt) {
  const std::string source = "std::thread worker(fn);\n";
  EXPECT_TRUE(LintSource("src/util/thread_pool.h", source).empty());
  EXPECT_TRUE(LintSource("src/util/thread_pool.cc", source).empty());
  // tests/ may spawn raw threads to hammer the pool and the obs shards.
  EXPECT_TRUE(LintSource("tests/obs_test.cc", source).empty());
}

// ---------------------------------------------------------------------------
// L5 — obs name literals against the documented catalog.
// ---------------------------------------------------------------------------

Options CatalogOptions() {
  Options options;
  options.obs_catalog =
      "| `csv.parse.grids` | counter |\n"
      "| `numfmt.elect.<format>` | counter |\n"
      "| `batch.window.max` | gauge |\n";
  return options;
}

TEST(LintL5, DocumentedNamesPass) {
  EXPECT_TRUE(LintSource("src/csv/fixture.cc",
                         "obs::Count(\"csv.parse.grids\");\n"
                         "obs::GaugeMax(\"batch.window.max\", size);\n",
                         CatalogOptions())
                  .empty());
}

TEST(LintL5, UndocumentedNameFires) {
  const auto diagnostics = LintSource(
      "src/csv/fixture.cc", "obs::Count(\"csv.parse.bogus\");\n",
      CatalogOptions());
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L5"});
}

TEST(LintL5, ConcatenatedStemNeedsPlaceholderEntry) {
  EXPECT_TRUE(LintSource("src/numfmt/fixture.cc",
                         "obs::Count(\"numfmt.elect.\" + winner);\n",
                         CatalogOptions())
                  .empty());
  const auto diagnostics =
      LintSource("src/numfmt/fixture.cc",
                 "obs::Count(\"numfmt.wrong.\" + winner);\n", CatalogOptions());
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L5"});
}

TEST(LintL5, DynamicNamesAndEmptyCatalogAreSkipped) {
  // Fully dynamic names cannot be checked statically; no catalog, no rule.
  EXPECT_TRUE(LintSource("src/core/fixture.cc",
                         "obs::Count(std::string(rule) + \".groups\");\n",
                         CatalogOptions())
                  .empty());
  EXPECT_TRUE(
      LintSource("src/csv/fixture.cc", "obs::Count(\"whatever.name\");\n")
          .empty());
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

TEST(LintSuppression, TrailingCommentWithReasonSuppresses) {
  EXPECT_TRUE(
      LintSource("src/eval/fixture.cc",
                 "double d = std::stod(s);  "
                 "// aggrecol-lint: allow(L1): exercising the legacy parser\n")
          .empty());
}

TEST(LintSuppression, PrecedingOwnLineCommentSuppressesNextLine) {
  EXPECT_TRUE(
      LintSource("src/eval/fixture.cc",
                 "// aggrecol-lint: allow(L1): exercising the legacy parser\n"
                 "double d = std::stod(s);\n")
          .empty());
}

TEST(LintSuppression, ReasonIsMandatory) {
  const auto diagnostics = LintSource(
      "src/eval/fixture.cc",
      "double d = std::stod(s);  // aggrecol-lint: allow(L1)\n");
  // The violation still fires AND the bare directive is itself reported.
  EXPECT_EQ(RulesFired(diagnostics),
            (std::vector<std::string>{"L1", "suppression"}));
}

TEST(LintSuppression, WrongRuleDoesNotMask) {
  const auto diagnostics = LintSource(
      "src/eval/fixture.cc",
      "double d = std::stod(s);  // aggrecol-lint: allow(L4): wrong rule\n");
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L1"});
}

TEST(LintSuppression, UnknownRuleIdIsReported) {
  const auto diagnostics = LintSource(
      "src/eval/fixture.cc",
      "int x = 1;  // aggrecol-lint: allow(L99): no such rule\n");
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"suppression"});
}

TEST(LintSuppression, SuppressionDoesNotLeakToOtherLines) {
  const auto diagnostics = LintSource(
      "src/eval/fixture.cc",
      "// aggrecol-lint: allow(L1): only covers the next line\n"
      "double a = std::stod(s);\n"
      "double b = std::stod(s);\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "L1");
  EXPECT_EQ(diagnostics[0].line, 3);
}

// ---------------------------------------------------------------------------
// L6 — memory mappings outside csv::MappedFile.
// ---------------------------------------------------------------------------

TEST(LintL6, RawMmapFires) {
  const auto diagnostics = LintSource(
      "src/core/fast_loader.cc",
      "void* base = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);\n");
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L6"});
}

TEST(LintL6, MunmapAndWindowsMappersFire) {
  const auto diagnostics = LintSource("src/eval/loader.cc",
                                      "munmap(base, size);\n"
                                      "void* v = MapViewOfFile(h, 0, 0, 0, 0);\n");
  EXPECT_EQ(RulesFired(diagnostics),
            (std::vector<std::string>{"L6", "L6"}));
}

TEST(LintL6, MappedFileImplementationExempt) {
  const auto diagnostics = LintSource(
      "src/csv/mapped_file.cc",
      "void* base = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);\n"
      "munmap(base, size);\n");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintL6, MemberNamedMmapExempt) {
  const auto diagnostics =
      LintSource("src/core/thing.cc", "holder.mmap(size);\n");
  EXPECT_TRUE(diagnostics.empty());
}

// ---------------------------------------------------------------------------
// Registry and the repository itself.
// ---------------------------------------------------------------------------

TEST(LintRegistry, SixRulesWithStableIds) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 6u);
  const std::vector<std::string> expected = {"L1", "L2", "L3",
                                             "L4", "L5", "L6"};
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].id, expected[i]);
    EXPECT_FALSE(rules[i].name.empty());
    EXPECT_FALSE(rules[i].summary.empty());
  }
}

TEST(LintRepository, RepositoryLintsClean) {
  std::vector<std::string> scanned;
  const auto diagnostics = LintTree(AGGRECOL_SOURCE_DIR, &scanned);
  for (const Diagnostic& diagnostic : diagnostics) {
    ADD_FAILURE() << diagnostic.path << ":" << diagnostic.line << " ["
                  << diagnostic.rule << "] " << diagnostic.message;
  }
  // Sanity: the walk actually visited the three trees.
  EXPECT_GT(scanned.size(), 100u);
  std::set<std::string> roots;
  for (const std::string& path : scanned) {
    roots.insert(path.substr(0, path.find('/')));
  }
  EXPECT_EQ(roots, (std::set<std::string>{"bench", "src", "tests"}));
}

}  // namespace
}  // namespace aggrecol::lint
