// The aggrecol-lint battery: every rule L1-L9 must both fire on seeded
// violations and respect reasoned suppressions, and the repository itself
// must lint clean (the same gate CI runs via tools/aggrecol-lint).
// AGGRECOL_SOURCE_DIR is injected by tests/CMakeLists.txt.
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/linter.h"
#include "tools/lint/source_lexer.h"

namespace aggrecol::lint {
namespace {

std::vector<std::string> RulesFired(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> rules;
  rules.reserve(diagnostics.size());
  for (const Diagnostic& diagnostic : diagnostics) {
    rules.push_back(diagnostic.rule);
  }
  return rules;
}

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

TEST(SourceLexer, CommentsAndStringsAreNotCode) {
  const LexResult lexed = Lex(R"fix(
    // std::strtod in a comment
    /* std::stod in a block
       comment */
    const char* s = "std::atof(text)";
    int x = 1;  // trailing
  )fix");
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kIdentifier) {
      EXPECT_NE(token.text, "strtod");
      EXPECT_NE(token.text, "stod");
      EXPECT_NE(token.text, "atof");
    }
  }
}

TEST(SourceLexer, RawStringsAreSingleTokens) {
  const LexResult lexed = Lex(R"raw(auto s = R"(std::strtod " quote)";)raw");
  bool found = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kString) {
      EXPECT_EQ(token.text, "std::strtod \" quote");
      found = true;
    }
    EXPECT_FALSE(token.kind == TokenKind::kIdentifier &&
                 token.text == "strtod");
  }
  EXPECT_TRUE(found);
}

TEST(SourceLexer, LineNumbersAndMultiCharOperators) {
  const LexResult lexed = Lex("int a;\nbool b = x == y;\nbool c = x != y;\n");
  bool saw_eq = false;
  bool saw_ne = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind != TokenKind::kPunct) continue;
    if (token.text == "==") {
      EXPECT_EQ(token.line, 2);
      saw_eq = true;
    }
    if (token.text == "!=") {
      EXPECT_EQ(token.line, 3);
      saw_ne = true;
    }
  }
  EXPECT_TRUE(saw_eq);
  EXPECT_TRUE(saw_ne);
}

TEST(SourceLexer, DigitSeparatorsAreNotCharLiterals) {
  const LexResult lexed = Lex("int big = 1'000'000; char c = 'x';");
  ASSERT_GE(lexed.tokens.size(), 2u);
  bool saw_number = false;
  bool saw_char = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kNumber && token.text == "1'000'000") {
      saw_number = true;
    }
    if (token.kind == TokenKind::kChar && token.text == "x") saw_char = true;
  }
  EXPECT_TRUE(saw_number);
  EXPECT_TRUE(saw_char);
}

std::vector<std::string> NumberTexts(const LexResult& lexed) {
  std::vector<std::string> numbers;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kNumber) numbers.push_back(token.text);
  }
  return numbers;
}

TEST(SourceLexer, SeparatedLiteralBeforeCharLiteralOnSameLine) {
  // Regression: the old lexer consumed the `'` unconditionally, so the
  // separator glued `1'000'000); g('x` into one pp-number.
  const LexResult lexed = Lex("f(1'000'000); g('x');");
  EXPECT_EQ(NumberTexts(lexed), std::vector<std::string>{"1'000'000"});
  bool saw_char = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kChar && token.text == "x") saw_char = true;
  }
  EXPECT_TRUE(saw_char);
}

TEST(SourceLexer, HexFloatExponentSignStaysAttached) {
  EXPECT_EQ(NumberTexts(Lex("double d = 0x1.8p+3;")),
            std::vector<std::string>{"0x1.8p+3"});
  EXPECT_EQ(NumberTexts(Lex("double e = 1e-9;")),
            std::vector<std::string>{"1e-9"});
}

TEST(SourceLexer, HexIntegerPlusIdentifierStaysThreeTokens) {
  // `e` inside 0xFE is a hex digit, not a decimal exponent marker: the `+`
  // must be an operator, not part of the literal.
  const LexResult lexed = Lex("int n = 0xFE+count;");
  EXPECT_EQ(NumberTexts(lexed), std::vector<std::string>{"0xFE"});
  bool saw_plus = false;
  bool saw_count = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kPunct && token.text == "+") saw_plus = true;
    if (token.kind == TokenKind::kIdentifier && token.text == "count") {
      saw_count = true;
    }
  }
  EXPECT_TRUE(saw_plus);
  EXPECT_TRUE(saw_count);
}

// ---------------------------------------------------------------------------
// L1 — locale-dependent parsing.
// ---------------------------------------------------------------------------

TEST(LintL1, FiresOnEveryLocaleDependentParser) {
  for (const char* parser : {"strtod", "strtof", "strtold", "atof", "stod",
                             "stof", "stold"}) {
    const std::string source =
        "double f(const char* s) { return std::" + std::string(parser) +
        "(s); }\n";
    const auto diagnostics = LintSource("src/eval/fixture.cc", source);
    ASSERT_EQ(diagnostics.size(), 1u) << parser;
    EXPECT_EQ(diagnostics[0].rule, "L1") << parser;
    EXPECT_EQ(diagnostics[0].line, 1);
  }
}

TEST(LintL1, AppliesToTestsAndBenchToo) {
  const std::string source = "double d = std::stod(text);\n";
  EXPECT_EQ(RulesFired(LintSource("tests/foo_test.cc", source)),
            std::vector<std::string>{"L1"});
  EXPECT_EQ(RulesFired(LintSource("bench/foo_bench.cc", source)),
            std::vector<std::string>{"L1"});
}

TEST(LintL1, SanctionedWrapperFileIsExempt) {
  const std::string source = "double d = std::strtod(text, nullptr);\n";
  EXPECT_TRUE(LintSource("src/numfmt/parse_double.h", source).empty());
}

TEST(LintL1, IntegerParsersAndMembersAreFine) {
  EXPECT_TRUE(LintSource("src/eval/fixture.cc",
                         "int i = std::stoi(s);\n"
                         "long l = std::strtol(s, &e, 10);\n"
                         "double d = object.stod(s);\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// L2 — raw float comparisons in src/core/.
// ---------------------------------------------------------------------------

TEST(LintL2, FiresOnNonzeroFloatLiteralComparison) {
  const auto diagnostics =
      LintSource("src/core/fixture.cc", "bool b = value == 1.5;\n");
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L2"});
}

TEST(LintL2, FiresOnFloatScoreIdentifierComparison) {
  const auto diagnostics = LintSource(
      "src/core/fixture.cc",
      "bool b = a.mean_error != b.mean_error;\n"
      "bool c = group.sufficiency == other.sufficiency;\n");
  EXPECT_EQ(RulesFired(diagnostics), (std::vector<std::string>{"L2", "L2"}));
}

TEST(LintL2, ZeroGuardsAreWhitelisted) {
  EXPECT_TRUE(LintSource("src/core/fixture.cc",
                         "bool a = denominator == 0.0;\n"
                         "bool b = value != 0.0;\n"
                         "bool c = observed == 0.;\n")
                  .empty());
}

TEST(LintL2, IntegerComparisonsAreFine) {
  EXPECT_TRUE(LintSource("src/core/fixture.cc",
                         "bool a = count == 3;\n"
                         "bool b = a.size() != b.size();\n"
                         "bool c = axis == Axis::kRow;\n")
                  .empty());
}

TEST(LintL2, OnlyCoreIsInScope) {
  const std::string source = "bool b = value == 1.5;\n";
  EXPECT_TRUE(LintSource("src/eval/fixture.cc", source).empty());
  EXPECT_TRUE(LintSource("tests/fixture.cc", source).empty());
}

// ---------------------------------------------------------------------------
// L3 — nondeterminism primitives.
// ---------------------------------------------------------------------------

TEST(LintL3, FiresOnEachPrimitive) {
  const struct {
    const char* source;
  } cases[] = {
      {"int x = rand();\n"},
      {"std::random_device device;\n"},
      {"auto now = std::chrono::system_clock::now();\n"},
      {"auto stamp = time(nullptr);\n"},
  };
  for (const auto& test_case : cases) {
    const auto diagnostics = LintSource("src/core/fixture.cc", test_case.source);
    EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L3"})
        << test_case.source;
  }
}

TEST(LintL3, SeededEnginesAndSteadyClockAreFine) {
  EXPECT_TRUE(LintSource("src/eval/fixture.cc",
                         "std::mt19937_64 rng(seed);\n"
                         "auto t0 = std::chrono::steady_clock::now();\n"
                         "double r = span.time();\n")
                  .empty());
}

TEST(LintL3, DatagenAndUtilAreOutOfScope) {
  // The generator draws from explicitly seeded engines; scheduling code may
  // read clocks. Neither feeds detection results nondeterministically.
  EXPECT_TRUE(
      LintSource("src/datagen/fixture.cc", "int x = rand();\n").empty());
  EXPECT_TRUE(LintSource("src/util/fixture.cc", "int x = rand();\n").empty());
}

// ---------------------------------------------------------------------------
// L4 — raw threading primitives.
// ---------------------------------------------------------------------------

TEST(LintL4, FiresOnRawThreadingPrimitives) {
  for (const char* source :
       {"std::thread worker(fn);\n", "auto f = std::async(fn);\n",
        "std::jthread worker(fn);\n", "pthread_create(&t, nullptr, fn, arg);\n"}) {
    const auto diagnostics = LintSource("src/eval/fixture.cc", source);
    EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L4"})
        << source;
  }
}

TEST(LintL4, StaticMembersAndPoolAreFine) {
  EXPECT_TRUE(
      LintSource("src/cli/fixture.cc",
                 "unsigned n = std::thread::hardware_concurrency();\n"
                 "util::ThreadPool pool(4);\n")
          .empty());
}

TEST(LintL4, ThreadPoolImplementationAndTestsAreExempt) {
  const std::string source = "std::thread worker(fn);\n";
  EXPECT_TRUE(LintSource("src/util/thread_pool.h", source).empty());
  EXPECT_TRUE(LintSource("src/util/thread_pool.cc", source).empty());
  // tests/ may spawn raw threads to hammer the pool and the obs shards.
  EXPECT_TRUE(LintSource("tests/obs_test.cc", source).empty());
}

// ---------------------------------------------------------------------------
// L5 — obs name literals against the documented catalog.
// ---------------------------------------------------------------------------

Options CatalogOptions() {
  Options options;
  options.obs_catalog =
      "| `csv.parse.grids` | counter |\n"
      "| `numfmt.elect.<format>` | counter |\n"
      "| `batch.window.max` | gauge |\n";
  return options;
}

TEST(LintL5, DocumentedNamesPass) {
  EXPECT_TRUE(LintSource("src/csv/fixture.cc",
                         "obs::Count(\"csv.parse.grids\");\n"
                         "obs::GaugeMax(\"batch.window.max\", size);\n",
                         CatalogOptions())
                  .empty());
}

TEST(LintL5, UndocumentedNameFires) {
  const auto diagnostics = LintSource(
      "src/csv/fixture.cc", "obs::Count(\"csv.parse.bogus\");\n",
      CatalogOptions());
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L5"});
}

TEST(LintL5, ConcatenatedStemNeedsPlaceholderEntry) {
  EXPECT_TRUE(LintSource("src/numfmt/fixture.cc",
                         "obs::Count(\"numfmt.elect.\" + winner);\n",
                         CatalogOptions())
                  .empty());
  const auto diagnostics =
      LintSource("src/numfmt/fixture.cc",
                 "obs::Count(\"numfmt.wrong.\" + winner);\n", CatalogOptions());
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L5"});
}

TEST(LintL5, DynamicNamesAndEmptyCatalogAreSkipped) {
  // Fully dynamic names cannot be checked statically; no catalog, no rule.
  EXPECT_TRUE(LintSource("src/core/fixture.cc",
                         "obs::Count(std::string(rule) + \".groups\");\n",
                         CatalogOptions())
                  .empty());
  EXPECT_TRUE(
      LintSource("src/csv/fixture.cc", "obs::Count(\"whatever.name\");\n")
          .empty());
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

TEST(LintSuppression, TrailingCommentWithReasonSuppresses) {
  EXPECT_TRUE(
      LintSource("src/eval/fixture.cc",
                 "double d = std::stod(s);  "
                 "// aggrecol-lint: allow(L1): exercising the legacy parser\n")
          .empty());
}

TEST(LintSuppression, PrecedingOwnLineCommentSuppressesNextLine) {
  EXPECT_TRUE(
      LintSource("src/eval/fixture.cc",
                 "// aggrecol-lint: allow(L1): exercising the legacy parser\n"
                 "double d = std::stod(s);\n")
          .empty());
}

TEST(LintSuppression, ReasonIsMandatory) {
  const auto diagnostics = LintSource(
      "src/eval/fixture.cc",
      "double d = std::stod(s);  // aggrecol-lint: allow(L1)\n");
  // The violation still fires AND the bare directive is itself reported.
  EXPECT_EQ(RulesFired(diagnostics),
            (std::vector<std::string>{"L1", "suppression"}));
}

TEST(LintSuppression, WrongRuleDoesNotMask) {
  const auto diagnostics = LintSource(
      "src/eval/fixture.cc",
      "double d = std::stod(s);  // aggrecol-lint: allow(L4): wrong rule\n");
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L1"});
}

TEST(LintSuppression, UnknownRuleIdIsReported) {
  const auto diagnostics = LintSource(
      "src/eval/fixture.cc",
      "int x = 1;  // aggrecol-lint: allow(L99): no such rule\n");
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"suppression"});
}

TEST(LintSuppression, TypodRuleIdIsReportedNotDropped) {
  // Regression: a malformed id (stray space, comma list) used to be silently
  // discarded by the plausible-rule filter, leaving the author to believe
  // the finding was suppressed. It must surface as a "suppression"
  // diagnostic, and the violation itself must still fire.
  const auto trailing_space = LintSource(
      "src/eval/fixture.cc",
      "double d = std::stod(s);  // aggrecol-lint: allow(L1 ): oops\n");
  EXPECT_EQ(RulesFired(trailing_space),
            (std::vector<std::string>{"L1", "suppression"}));
  const auto comma_list = LintSource(
      "src/eval/fixture.cc",
      "double d = std::stod(s);  // aggrecol-lint: allow(L1,L4): oops\n");
  EXPECT_EQ(RulesFired(comma_list),
            (std::vector<std::string>{"L1", "suppression"}));
}

TEST(LintSuppression, GrammarPlaceholderIsDocumentationNotADirective) {
  // The documented `<rule>` placeholder form describes the grammar (as in
  // tools/lint/main.cc's usage text) and is not harvested.
  EXPECT_TRUE(
      LintSource("src/eval/fixture.cc",
                 "// aggrecol-lint: allow(<rule>): <reason> — the grammar\n"
                 "int x = 1;\n")
          .empty());
}

TEST(LintSuppression, SuppressionDoesNotLeakToOtherLines) {
  const auto diagnostics = LintSource(
      "src/eval/fixture.cc",
      "// aggrecol-lint: allow(L1): only covers the next line\n"
      "double a = std::stod(s);\n"
      "double b = std::stod(s);\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "L1");
  EXPECT_EQ(diagnostics[0].line, 3);
}

// ---------------------------------------------------------------------------
// L6 — memory mappings outside csv::MappedFile.
// ---------------------------------------------------------------------------

TEST(LintL6, RawMmapFires) {
  const auto diagnostics = LintSource(
      "src/core/fast_loader.cc",
      "void* base = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);\n");
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L6"});
}

TEST(LintL6, MunmapAndWindowsMappersFire) {
  const auto diagnostics = LintSource("src/eval/loader.cc",
                                      "munmap(base, size);\n"
                                      "void* v = MapViewOfFile(h, 0, 0, 0, 0);\n");
  EXPECT_EQ(RulesFired(diagnostics),
            (std::vector<std::string>{"L6", "L6"}));
}

TEST(LintL6, MappedFileImplementationExempt) {
  const auto diagnostics = LintSource(
      "src/csv/mapped_file.cc",
      "void* base = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);\n"
      "munmap(base, size);\n");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintL6, MemberNamedMmapExempt) {
  const auto diagnostics =
      LintSource("src/core/thing.cc", "holder.mmap(size);\n");
  EXPECT_TRUE(diagnostics.empty());
}

// ---------------------------------------------------------------------------
// L7 — view escapes out of the owning grid/arena's lifetime.
// ---------------------------------------------------------------------------

TEST(LintL7, ViewMemberWithoutOwnsContractFires) {
  const auto diagnostics = LintSource("src/core/fixture.cc",
                                      "class Cache {\n"
                                      " public:\n"
                                      "  void Fill();\n"
                                      " private:\n"
                                      "  std::string_view last_;\n"
                                      "};\n");
  ASSERT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L7"});
  EXPECT_EQ(diagnostics[0].line, 5);
}

TEST(LintL7, MemberAfterNestedClassesKeepsOuterScope) {
  // Regression: the symbol indexer passed the enclosing class name by
  // reference into the recursive region parse; nested class definitions
  // reallocated the class vector and the outer name dangled (use-after-free
  // on src/cellclass/random_forest.h's RandomForest{Node,Tree} shape). The
  // member after the nested structs must still scope to the outer class.
  const auto diagnostics = LintSource("src/cellclass/fixture.h",
                                      "class Forest {\n"
                                      " public:\n"
                                      "  struct Node { int feature = 0; };\n"
                                      "  struct Tree { int root = 0; };\n"
                                      " private:\n"
                                      "  std::string_view cached_;\n"
                                      "};\n");
  ASSERT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L7"});
  EXPECT_EQ(diagnostics[0].line, 6);
}

TEST(LintL7, OwnsContractSanctionsViewMembers) {
  EXPECT_TRUE(LintSource("src/csv/fixture.h",
                         "class Table {\n"
                         " private:\n"
                         "  // aggrecol-lint: owns(arena_)\n"
                         "  std::vector<std::string_view> cells_;\n"
                         "  std::shared_ptr<CellArena> arena_;\n"
                         "};\n")
                  .empty());
}

TEST(LintL7, OwnsContractMustNameAnOwningMember) {
  const auto diagnostics = LintSource("src/core/fixture.h",
                                      "class Bad {\n"
                                      " private:\n"
                                      "  // aggrecol-lint: owns(missing_)\n"
                                      "  std::string_view view_;\n"
                                      "  int count_ = 0;\n"
                                      "};\n");
  ASSERT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L7"});
  EXPECT_NE(diagnostics[0].message.find("missing_"), std::string::npos);
}

TEST(LintL7, NamespaceScopeViewNeedsLiteralInit) {
  EXPECT_EQ(RulesFired(LintSource("src/eval/fixture.cc",
                                  "std::string_view g_name = Compute();\n")),
            std::vector<std::string>{"L7"});
  EXPECT_TRUE(LintSource("src/eval/fixture.cc",
                         "constexpr std::string_view kName = \"numfmt\";\n")
                  .empty());
}

TEST(LintL7, ReturningViewOfLocalOwnerFires) {
  const auto diagnostics =
      LintSource("src/core/fixture.cc",
                 "std::string_view Leak() {\n"
                 "  std::string buffer = Build();\n"
                 "  return std::string_view(buffer);\n"
                 "}\n");
  ASSERT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L7"});
  EXPECT_EQ(diagnostics[0].line, 3);
}

TEST(LintL7, ReturningViewOfStringTemporaryFires) {
  const auto diagnostics = LintSource(
      "src/core/fixture.cc",
      "std::string_view Label(int x) { return std::string(\"v\") + S(x); }\n");
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L7"});
}

TEST(LintL7, StoringBorrowedViewIntoMemberFires) {
  const auto diagnostics = LintSource("src/core/fixture.cc",
                                      "void Cache::Fill() {\n"
                                      "  std::string local = Load();\n"
                                      "  last_ = std::string_view(local);\n"
                                      "}\n");
  ASSERT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L7"});
  EXPECT_EQ(diagnostics[0].line, 3);
}

TEST(LintL7, TaintFlowsThroughViewLocals) {
  // The borrow is laundered through an intermediate view local; the member
  // store must still be caught.
  const auto diagnostics = LintSource("src/core/fixture.cc",
                                      "void Cache::Fill() {\n"
                                      "  std::string local = Load();\n"
                                      "  std::string_view v = local;\n"
                                      "  names_.push_back(v);\n"
                                      "}\n");
  ASSERT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L7"});
  EXPECT_EQ(diagnostics[0].line, 4);
}

TEST(LintL7, StaticViewOfLocalOwnerFires) {
  const auto diagnostics = LintSource(
      "src/core/fixture.cc",
      "void F() {\n"
      "  std::string buffer = Load();\n"
      "  static std::string_view cached = std::string_view(buffer);\n"
      "}\n");
  EXPECT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L7"});
}

TEST(LintL7, BorrowsOfParametersAndMembersAreFine) {
  // Views of parameters/members outlive the call by the caller's contract;
  // scalar reads from owners are not borrows at all.
  EXPECT_TRUE(LintSource("src/core/fixture.cc",
                         "std::string_view Trim(std::string_view text) {\n"
                         "  return text.substr(1);\n"
                         "}\n"
                         "void Cache::Fill() {\n"
                         "  csv::Grid grid = Load();\n"
                         "  count_ = grid.rows();\n"
                         "}\n")
                  .empty());
}

TEST(LintL7, SuppressionWithReasonCoversMember) {
  EXPECT_TRUE(
      LintSource("src/core/fixture.cc",
                 "class Cursor {\n"
                 " private:\n"
                 "  // aggrecol-lint: allow(L7): borrower dies with the frame\n"
                 "  std::string_view text_;\n"
                 "};\n")
          .empty());
}

TEST(LintL7, OnlyPipelinePathsAreInScope) {
  const std::string source = "class C { std::string_view v_; };\n";
  EXPECT_TRUE(LintSource("tests/fixture.cc", source).empty());
  EXPECT_TRUE(LintSource("src/cli/fixture.cc", source).empty());
  EXPECT_TRUE(LintSource("tools/lint/fixture.cc", source).empty());
}

// ---------------------------------------------------------------------------
// L8 — allocation inside registered hot-path functions.
// ---------------------------------------------------------------------------

TEST(LintL8, StringConstructionInHotPathFires) {
  const auto diagnostics = LintSource(
      "src/core/window_strategy.cc",
      "void WindowStrategy::TestWindows(const Grid& grid) {\n"
      "  std::string copy(grid.at(0, 0));\n"
      "}\n"
      "bool RejectWholeWindow() { return false; }\n");
  ASSERT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L8"});
  EXPECT_EQ(diagnostics[0].line, 2);
}

TEST(LintL8, NewAndAllocatingHelpersFire) {
  const auto diagnostics =
      LintSource("src/core/window_strategy.cc",
                 "void WindowStrategy::TestWindows(const Grid& grid) {\n"
                 "  int* scratch = new int[8];\n"
                 "  const auto parts = Split(text, ',');\n"
                 "}\n"
                 "bool RejectWholeWindow() { return false; }\n");
  EXPECT_EQ(RulesFired(diagnostics), (std::vector<std::string>{"L8", "L8"}));
}

TEST(LintL8, NonRegisteredFunctionsInHotFilesMayAllocate) {
  EXPECT_TRUE(LintSource(
                  "src/core/window_strategy.cc",
                  "void WindowStrategy::TestWindows(const Grid& g) { Use(g); }\n"
                  "bool RejectWholeWindow() { return false; }\n"
                  "std::string Describe() { return std::string(\"w\"); }\n")
                  .empty());
}

TEST(LintL8, RenamedHotPathFunctionIsItselfAViolation) {
  // Registered names must keep existing; a rename would silently drop
  // coverage otherwise.
  const auto diagnostics =
      LintSource("src/core/window_strategy.cc",
                 "void SomethingElse() { int x = 0; }\n"
                 "bool RejectWholeWindow() { return false; }\n");
  ASSERT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L8"});
  EXPECT_NE(diagnostics[0].message.find("TestWindows"), std::string::npos);
}

TEST(LintL8, NonHotFilesAreOutOfScope) {
  EXPECT_TRUE(
      LintSource("src/core/fixture.cc",
                 "void TestWindows() { std::string s = std::string(\"x\"); }\n")
          .empty());
}

TEST(LintL8, SuppressionWithReasonCovers) {
  EXPECT_TRUE(LintSource(
                  "src/core/window_strategy.cc",
                  "void WindowStrategy::TestWindows(const Grid& grid) {\n"
                  "  // aggrecol-lint: allow(L8): one-time setup, not per-cell\n"
                  "  std::string header(grid.at(0, 0));\n"
                  "}\n"
                  "bool RejectWholeWindow() { return false; }\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// L9 — include-graph layering.
// ---------------------------------------------------------------------------

TEST(LintL9, CoreIncludingCliFires) {
  const auto diagnostics =
      LintSource("src/core/fixture.cc", "#include \"cli/args.h\"\n");
  ASSERT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L9"});
  EXPECT_EQ(diagnostics[0].line, 1);
}

TEST(LintL9, NumfmtIncludingSinksAndEvalFires) {
  const auto diagnostics =
      LintSource("src/numfmt/fixture.cc",
                 "#include \"eval/metrics.h\"\n"
                 "#include \"obs/sinks.h\"\n");
  EXPECT_EQ(RulesFired(diagnostics), (std::vector<std::string>{"L9", "L9"}));
}

TEST(LintL9, CsvIncludingCoreFires) {
  EXPECT_EQ(RulesFired(LintSource("src/csv/fixture.cc",
                                  "#include \"core/line_index.h\"\n")),
            std::vector<std::string>{"L9"});
}

TEST(LintL9, AllowedEdgesPass) {
  // core -> csv, core -> obs metrics, eval -> anything: all sanctioned.
  EXPECT_TRUE(LintSource("src/core/fixture.cc",
                         "#include \"csv/grid.h\"\n"
                         "#include \"obs/metrics.h\"\n"
                         "#include \"numfmt/number_format.h\"\n")
                  .empty());
  EXPECT_TRUE(
      LintSource("src/eval/fixture.cc", "#include \"cli/args.h\"\n").empty());
}

TEST(LintL9, TransitiveChainsAreReportedThroughTheGraph) {
  IncludeGraph graph;
  graph.AddFile("src/core/a.h", {{"src/util/b.h", 1}});
  graph.AddFile("src/util/b.h", {{"src/cli/args.h", 3}});
  Options options;
  options.include_graph = &graph;
  const auto diagnostics =
      LintSource("src/core/a.h", "#include \"util/b.h\"\n", options);
  ASSERT_EQ(RulesFired(diagnostics), std::vector<std::string>{"L9"});
  EXPECT_NE(diagnostics[0].message.find(
                "src/core/a.h -> src/util/b.h -> src/cli/args.h"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// io — unreadable inputs are diagnostics, not silent skips.
// ---------------------------------------------------------------------------

TEST(LintIo, MissingRootTreesAreReported) {
  const auto diagnostics = LintTree("/nonexistent/aggrecol-lint-root");
  ASSERT_EQ(diagnostics.size(), 4u);  // src, tests, bench, tools
  for (const Diagnostic& diagnostic : diagnostics) {
    EXPECT_EQ(diagnostic.rule, "io");
    EXPECT_EQ(diagnostic.line, 0);
  }
}

// ---------------------------------------------------------------------------
// Registry and the repository itself.
// ---------------------------------------------------------------------------

TEST(LintRegistry, NineRulesWithStableIds) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 9u);
  const std::vector<std::string> expected = {"L1", "L2", "L3", "L4", "L5",
                                             "L6", "L7", "L8", "L9"};
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].id, expected[i]);
    EXPECT_FALSE(rules[i].name.empty());
    EXPECT_FALSE(rules[i].summary.empty());
    EXPECT_FALSE(rules[i].paths.empty());
  }
}

TEST(LintRepository, RepositoryLintsClean) {
  std::vector<std::string> scanned;
  const auto diagnostics = LintTree(AGGRECOL_SOURCE_DIR, &scanned);
  for (const Diagnostic& diagnostic : diagnostics) {
    ADD_FAILURE() << diagnostic.path << ":" << diagnostic.line << " ["
                  << diagnostic.rule << "] " << diagnostic.message;
  }
  // Sanity: the walk actually visited all four trees.
  EXPECT_GT(scanned.size(), 100u);
  std::set<std::string> roots;
  for (const std::string& path : scanned) {
    roots.insert(path.substr(0, path.find('/')));
  }
  EXPECT_EQ(roots, (std::set<std::string>{"bench", "src", "tests", "tools"}));
}

}  // namespace
}  // namespace aggrecol::lint
