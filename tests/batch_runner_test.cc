#include "eval/batch_runner.h"

#include <cmath>
#include <vector>

#include "core/aggrecol.h"
#include "datagen/corpus.h"
#include "datagen/file_generator.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"

// Sanitizer instrumentation slows the detection pipeline by up to an order
// of magnitude, so deadline margins tuned for plain builds flip outcomes:
// an ordinary small file misses a 2-second per-file deadline under TSan.
// Scale the margins; the huge file misses its deadline at any slack.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define AGGRECOL_UNDER_SANITIZER 1
#endif
#endif
#if !defined(AGGRECOL_UNDER_SANITIZER) && \
    (defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__))
#define AGGRECOL_UNDER_SANITIZER 1
#endif

namespace aggrecol::eval {
namespace {

#if defined(AGGRECOL_UNDER_SANITIZER)
constexpr double kTimingSlack = 10.0;
#else
constexpr double kTimingSlack = 1.0;
#endif

std::vector<AnnotatedFile> SmallCorpus(int count, uint64_t seed) {
  return datagen::GenerateSmallCorpus(count, seed);
}

// A file expensive enough that it cannot finish within the deadlines used
// below even with sanitizer slack applied (detection cost grows superlinearly
// in rows, so 10k rows buys minutes of headroom; the pipeline's cancellation
// checks fire long before the full run would complete, so tests still end at
// the deadline, not after a full detection).
AnnotatedFile HugeFile() {
  datagen::GeneratorProfile profile;
  profile.p_no_aggregation = 0.0;
  profile.p_tiny_file = 0.0;
  profile.p_big_file = 1.0;
  profile.big_file_rows = 10000;
  return datagen::GenerateFile(profile, 4242, "huge.csv");
}

TEST(BatchRunner, MatchesSequentialDetectionPerFile) {
  const auto files = SmallCorpus(12, 99);

  // Reference: plain sequential Detect per file.
  const core::AggreCol detector{core::AggreColConfig{}};
  std::vector<core::DetectionResult> expected;
  for (const auto& file : files) expected.push_back(detector.Detect(file.grid));

  BatchOptions options;
  options.threads = 2;
  options.max_in_flight = 3;
  const auto report = BatchRunner(options).Run(files);

  ASSERT_EQ(report.files.size(), files.size());
  EXPECT_EQ(report.ok, static_cast<int>(files.size()));
  EXPECT_EQ(report.timed_out, 0);
  EXPECT_EQ(report.failed, 0);
  for (size_t f = 0; f < files.size(); ++f) {
    EXPECT_EQ(report.files[f].name, files[f].name);  // input order preserved
    EXPECT_EQ(report.files[f].result.aggregations, expected[f].aggregations)
        << files[f].name;
  }
}

TEST(BatchRunner, AggregatesEqualPerFileSums) {
  const auto files = SmallCorpus(10, 7);
  BatchOptions options;
  options.threads = 2;
  const auto report = BatchRunner(options).Run(files);

  size_t aggregations = 0;
  double individual = 0, collective = 0, supplemental = 0;
  std::vector<Scores> scores;
  for (const auto& file : report.files) {
    aggregations += file.result.aggregations.size();
    individual += file.result.seconds_individual;
    collective += file.result.seconds_collective;
    supplemental += file.result.seconds_supplemental;
    scores.push_back(file.scores);
  }
  EXPECT_EQ(report.total_aggregations, aggregations);
  EXPECT_DOUBLE_EQ(report.seconds_individual, individual);
  EXPECT_DOUBLE_EQ(report.seconds_collective, collective);
  EXPECT_DOUBLE_EQ(report.seconds_supplemental, supplemental);

  const Scores expected = Accumulate(scores);
  EXPECT_EQ(report.scores.correct, expected.correct);
  EXPECT_EQ(report.scores.incorrect, expected.incorrect);
  EXPECT_EQ(report.scores.missed, expected.missed);
  EXPECT_DOUBLE_EQ(report.scores.precision, expected.precision);
  EXPECT_DOUBLE_EQ(report.scores.recall, expected.recall);
}

TEST(BatchRunner, BoundedInFlightWindowRespected) {
  const auto files = SmallCorpus(12, 321);
  BatchOptions options;
  options.threads = 4;
  options.max_in_flight = 2;
  const auto report = BatchRunner(options).Run(files);

  EXPECT_EQ(report.ok, 12);
  EXPECT_GE(report.max_in_flight_observed, 1);
  EXPECT_LE(report.max_in_flight_observed, 2);
}

TEST(BatchRunner, SequentialRunnerHasSingleFileInFlight) {
  const auto files = SmallCorpus(5, 11);
  BatchOptions options;
  options.threads = 1;
  options.max_in_flight = 8;
  BatchRunner runner(options);
  EXPECT_EQ(runner.pool(), nullptr);
  const auto report = runner.Run(files);
  EXPECT_EQ(report.ok, 5);
  EXPECT_EQ(report.max_in_flight_observed, 1);
}

TEST(BatchRunner, SlowFileTimesOutWithoutStallingTheBatch) {
  auto files = SmallCorpus(6, 55);
  files.insert(files.begin() + 2, HugeFile());

  BatchOptions options;
  options.threads = 2;
  options.max_in_flight = 2;
  // Wide margins on both sides so CPU contention from parallel test runners
  // cannot flip an outcome: small files need tens of milliseconds (a couple
  // of seconds when a loaded single-core box timeshares them against the
  // huge file), the huge file tens of seconds.
  options.file_timeout_seconds = 4.0 * kTimingSlack;
  const auto report = BatchRunner(options).Run(files);

  ASSERT_EQ(report.files.size(), 7u);
  EXPECT_EQ(report.files[2].name, "huge.csv");
  EXPECT_EQ(report.files[2].outcome, FileOutcome::kTimedOut);
  EXPECT_TRUE(report.files[2].result.aggregations.empty());
  EXPECT_EQ(report.timed_out, 1);
  EXPECT_EQ(report.ok, 6);
  for (size_t f = 0; f < report.files.size(); ++f) {
    if (f == 2) continue;
    EXPECT_EQ(report.files[f].outcome, FileOutcome::kOk) << report.files[f].name;
  }
  // The batch finished instead of hanging on the expensive file: the whole
  // run is bounded way below what the huge file alone would need.
  EXPECT_LT(report.seconds_wall, 60.0 * kTimingSlack);
  EXPECT_STREQ(ToString(FileOutcome::kTimedOut), "timed_out");
}

TEST(BatchRunner, TimeoutAppliesInSequentialModeToo) {
  std::vector<AnnotatedFile> files = {HugeFile()};
  BatchOptions options;
  options.threads = 1;
  options.file_timeout_seconds = 0.2;
  const auto report = BatchRunner(options).Run(files);
  EXPECT_EQ(report.timed_out, 1);
  EXPECT_EQ(report.files[0].outcome, FileOutcome::kTimedOut);
}

TEST(BatchRunner, ZeroTimeoutMeansNoDeadline) {
  const auto files = SmallCorpus(3, 8);
  BatchOptions options;
  options.threads = 2;
  options.file_timeout_seconds = 0.0;
  const auto report = BatchRunner(options).Run(files);
  EXPECT_EQ(report.ok, 3);
  EXPECT_EQ(report.timed_out, 0);
}

TEST(BatchRunner, SuccessRateExcludesTimedOutFromDenominator) {
  // Regression: a timed-out file is a scheduling outcome, not a detection
  // failure, so it must not appear in the success-rate denominator.
  BatchReport report;
  report.ok = 6;
  report.timed_out = 2;
  report.failed = 0;
  EXPECT_DOUBLE_EQ(SuccessRate(report), 1.0);  // not 6/8

  report.failed = 2;
  EXPECT_DOUBLE_EQ(SuccessRate(report), 0.75);  // 6/8 decided, not 6/10

  // Vacuously perfect when nothing was decided (even if everything timed out).
  report.ok = 0;
  report.failed = 0;
  EXPECT_DOUBLE_EQ(SuccessRate(report), 1.0);
}

TEST(BatchRunner, SuccessRateOfLiveRunWithTimeout) {
  auto files = SmallCorpus(4, 17);
  files.push_back(HugeFile());
  BatchOptions options;
  options.threads = 2;
  options.file_timeout_seconds = 4.0 * kTimingSlack;
  const auto report = BatchRunner(options).Run(files);
  ASSERT_EQ(report.ok, 4);
  ASSERT_EQ(report.timed_out, 1);
  ASSERT_EQ(report.failed, 0);
  EXPECT_DOUBLE_EQ(SuccessRate(report), 1.0);
}

TEST(BatchRunner, EmitsSchedulingMetrics) {
  if (!obs::CompiledIn()) GTEST_SKIP() << "built with AGGRECOL_OBS=OFF";
  const auto files = SmallCorpus(6, 23);
  BatchOptions options;
  options.threads = 2;
  options.max_in_flight = 3;

  obs::ScopedMetrics scoped;
  const auto report = BatchRunner(options).Run(files);
  const auto snapshot = obs::Registry::Instance().Snapshot();

  EXPECT_EQ(snapshot.counter("batch.files.submitted"), files.size());
  EXPECT_EQ(snapshot.counter("batch.files.ok"),
            static_cast<uint64_t>(report.ok));
  EXPECT_EQ(snapshot.counter("batch.files.timed_out"), 0u);
  EXPECT_EQ(snapshot.counter("batch.files.failed"), 0u);

  int64_t in_flight_max = -1, window = -1, threads = -1;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "batch.in_flight.max") in_flight_max = value;
    if (name == "batch.window") window = value;
    if (name == "batch.threads") threads = value;
  }
  EXPECT_EQ(in_flight_max, report.max_in_flight_observed);
  EXPECT_EQ(window, 3);
  EXPECT_EQ(threads, 2);

  bool saw_file_seconds = false;
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "batch.file.seconds") {
      saw_file_seconds = true;
      EXPECT_EQ(histogram.count, files.size());
    }
  }
  EXPECT_TRUE(saw_file_seconds);
}

}  // namespace
}  // namespace aggrecol::eval
