#include "core/collective_detector.h"

#include "core/individual_detector.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::Contains;
using aggrecol::testing::MakeNumeric;

TEST(Collective, Figure6SpuriousAverageRemoved) {
  // The fictitious Figure 6 table: total = heating + water + electricity +
  // garbage, while garbage coincidentally averages the other three items in
  // three of four rows. The sum group has the larger range and wins; the
  // average group is completely included in it and is pruned.
  const auto grid = MakeNumeric({
      {"total", "heating", "water", "electricity", "garbage"},
      {"280", "110", "30", "70", "70"},
      {"320", "120", "45", "75", "80"},
      {"217", "74", "35", "58", "50"},  // 50 is not the mean here
      {"240", "75", "33", "72", "60"},
  });
  IndividualConfig config;
  config.error_level = 0.0;
  config.coverage = 0.7;
  std::vector<Aggregation> candidates =
      DetectIndividualRowwise(grid, AggregationFunction::kSum, config);
  const auto averages =
      DetectIndividualRowwise(grid, AggregationFunction::kAverage, config);
  candidates.insert(candidates.end(), averages.begin(), averages.end());

  // Both the true sums and the spurious averages survive stage 1.
  EXPECT_TRUE(
      Contains(candidates, Agg(1, 0, {1, 2, 3, 4}, AggregationFunction::kSum)));
  EXPECT_TRUE(
      Contains(candidates, Agg(1, 4, {1, 2, 3}, AggregationFunction::kAverage)));

  const auto refined = CollectivePrune(grid, candidates);
  EXPECT_TRUE(Contains(refined, Agg(1, 0, {1, 2, 3, 4}, AggregationFunction::kSum)));
  for (const auto& aggregation : refined) {
    EXPECT_NE(aggregation.function, AggregationFunction::kAverage);
  }
}

TEST(Collective, DivisionAlwaysIncluded) {
  // Fig. 5's a2/a4: the division "Kenya in Africa" (13 <- {9, 8}) overlaps
  // the sum a2 (8 <- {9, 10}) via complete inclusion, yet both must survive.
  const std::vector<Aggregation> candidates = {
      Agg(1, 8, {9, 10}, AggregationFunction::kSum),
      Agg(2, 8, {9, 10}, AggregationFunction::kSum),
      Agg(1, 13, {9, 8}, AggregationFunction::kDivision),
      Agg(2, 13, {9, 8}, AggregationFunction::kDivision),
  };
  const auto grid = MakeNumeric({
      {"x", "x", "x", "x", "x", "x", "x", "x", "64", "58", "6", "x", "x", "0.90625"},
      {"x", "x", "x", "x", "x", "x", "x", "x", "22", "6", "16", "x", "x", "0.272727"},
      {"x", "x", "x", "x", "x", "x", "x", "x", "23", "6", "17", "x", "x", "0.260870"},
  });
  const auto refined = CollectivePrune(grid, candidates);
  EXPECT_TRUE(Contains(refined, Agg(1, 8, {9, 10}, AggregationFunction::kSum)));
  EXPECT_TRUE(Contains(refined, Agg(1, 13, {9, 8}, AggregationFunction::kDivision)));
}

TEST(Collective, CircularRelativeChangeAgainstDivisionRemoved) {
  // share = B / C implies relchange(share -> B) = C - 1 ~= C: a circular
  // (mutually inclusive) artifact that must not survive against the division.
  const std::vector<Aggregation> candidates = {
      Agg(0, 2, {0, 1}, AggregationFunction::kDivision),      // share = B/C
      Agg(1, 2, {0, 1}, AggregationFunction::kDivision),
      Agg(0, 1, {2, 0}, AggregationFunction::kRelativeChange),  // C ~ (B-share)/share
      Agg(1, 1, {2, 0}, AggregationFunction::kRelativeChange),
  };
  const auto grid = MakeNumeric({
      {"58", "64", "0.90625"},
      {"30", "60", "0.5"},
  });
  const auto refined = CollectivePrune(grid, candidates);
  EXPECT_TRUE(Contains(refined, Agg(0, 2, {0, 1}, AggregationFunction::kDivision)));
  for (const auto& aggregation : refined) {
    EXPECT_NE(aggregation.function, AggregationFunction::kRelativeChange);
  }
}

TEST(Collective, SameAggregateDisjointRangesAllowed) {
  // Net income can be both gross - expense (canonicalized as a sum group
  // elsewhere) and the sum of quarters: same aggregate, disjoint ranges.
  const std::vector<Aggregation> candidates = {
      Agg(0, 0, {1, 2, 3, 4}, AggregationFunction::kSum),  // quarters
      Agg(1, 0, {1, 2, 3, 4}, AggregationFunction::kSum),
      Agg(0, 0, {5, 6}, AggregationFunction::kDifference),  // gross - expense
      Agg(1, 0, {5, 6}, AggregationFunction::kDifference),
  };
  const auto grid = MakeNumeric({
      {"10", "1", "2", "3", "4", "16", "6"},
      {"14", "2", "3", "4", "5", "20", "6"},
  });
  const auto refined = CollectivePrune(grid, candidates);
  EXPECT_TRUE(Contains(refined, Agg(0, 0, {1, 2, 3, 4}, AggregationFunction::kSum)));
  EXPECT_TRUE(Contains(refined, Agg(0, 0, {5, 6}, AggregationFunction::kDifference)));
}

TEST(Collective, SameAggregateOverlappingRangesConflict) {
  // An average and a sum over overlapping ranges into the same aggregate
  // cannot both hold semantically; the larger range wins.
  const std::vector<Aggregation> candidates = {
      Agg(0, 0, {1, 2, 3}, AggregationFunction::kSum),
      Agg(1, 0, {1, 2, 3}, AggregationFunction::kSum),
      Agg(0, 0, {1, 2}, AggregationFunction::kAverage),
      Agg(1, 0, {1, 2}, AggregationFunction::kAverage),
  };
  const auto grid = MakeNumeric({
      {"6", "4", "8", "-6"},
      {"6", "4", "8", "-6"},
  });
  const auto refined = CollectivePrune(grid, candidates);
  EXPECT_TRUE(Contains(refined, Agg(0, 0, {1, 2, 3}, AggregationFunction::kSum)));
  for (const auto& aggregation : refined) {
    EXPECT_NE(aggregation.function, AggregationFunction::kAverage);
  }
}

TEST(Collective, RanksByRangeSizeFirst) {
  // A 2-element group with many members loses to a 3-element group with
  // fewer members when they conflict.
  const std::vector<Aggregation> candidates = {
      Agg(0, 0, {1, 2, 3}, AggregationFunction::kSum),
      Agg(0, 1, {2, 0}, AggregationFunction::kSum),  // mutually inclusive w/ above
      Agg(1, 1, {2, 0}, AggregationFunction::kSum),
      Agg(2, 1, {2, 0}, AggregationFunction::kSum),
  };
  const auto grid = MakeNumeric({
      {"6", "1", "2", "3"},
      {"6", "1", "2", "3"},
      {"6", "1", "2", "3"},
  });
  const auto refined = CollectivePrune(grid, candidates);
  EXPECT_TRUE(Contains(refined, Agg(0, 0, {1, 2, 3}, AggregationFunction::kSum)));
  for (const auto& aggregation : refined) {
    EXPECT_NE(aggregation.aggregate, 1);
  }
}

TEST(Collective, AxesDoNotConflict) {
  // A row-wise and a column-wise pattern with numerically colliding indices
  // must both survive: the inclusion rules only apply within one axis.
  const std::vector<Aggregation> candidates = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum, Axis::kRow),
      Agg(1, 0, {1, 2}, AggregationFunction::kSum, Axis::kRow),
      Agg(0, 1, {0, 2}, AggregationFunction::kSum, Axis::kColumn),
      Agg(1, 1, {0, 2}, AggregationFunction::kSum, Axis::kColumn),
  };
  const auto grid = MakeNumeric({
      {"3", "1", "2"},
      {"5", "2", "3"},
      {"8", "3", "5"},
  });
  const auto refined = CollectivePrune(grid, candidates);
  EXPECT_TRUE(
      Contains(refined, Agg(0, 0, {1, 2}, AggregationFunction::kSum, Axis::kRow)));
  EXPECT_TRUE(
      Contains(refined, Agg(0, 1, {0, 2}, AggregationFunction::kSum, Axis::kColumn)));
}

TEST(Collective, EmptyInput) {
  const auto grid = MakeNumeric({{"1"}});
  EXPECT_TRUE(CollectivePrune(grid, {}).empty());
}

}  // namespace
}  // namespace aggrecol::core
