// Differential property: on small grids the eager baseline enumerates every
// arithmetically valid candidate, so every aggregation AggreCol reports —
// through any of its three stages — must appear in the baseline's output at
// the same error levels. This cross-checks the adjacency, window, extension,
// and supplemental machinery against an independent oracle.
#include <random>

#include "baselines/eager_baseline.h"
#include "core/aggrecol.h"
#include "gtest/gtest.h"

namespace aggrecol {
namespace {

std::vector<core::Aggregation> EagerOracle(const numfmt::NumericGrid& numeric,
                                           const core::AggreColConfig& config) {
  std::vector<core::Aggregation> all;
  for (core::AggregationFunction function : core::kAllFunctions) {
    baselines::EagerBaselineConfig eager;
    eager.function = function;
    eager.error_level = config.error_level(function);
    eager.budget_seconds = 30.0;
    const auto result = baselines::RunEagerBaseline(numeric, eager);
    EXPECT_TRUE(result.finished);
    all.insert(all.end(), result.aggregations.begin(), result.aggregations.end());
  }
  return core::CanonicalizeAll(all);
}

class Differential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Differential, AggreColIsSubsetOfEagerEnumeration) {
  std::mt19937_64 rng(GetParam());
  // Small random grid with planted structure: a sum column plus noise.
  const int rows = 3 + static_cast<int>(rng() % 4);
  const int columns = 5 + static_cast<int>(rng() % 3);
  csv::Grid grid(rows, columns);
  for (int i = 0; i < rows; ++i) {
    double sum = 0.0;
    for (int j = 1; j < columns; ++j) {
      const int value = 1 + static_cast<int>(rng() % 30);
      grid.set(i, j, std::to_string(value));
      if (j <= 3) sum += value;
    }
    grid.set(i, 0, std::to_string(static_cast<int>(sum)));  // 0 = 1+2+3
  }

  core::AggreColConfig config;  // defaults, all three stages
  const auto numeric = numfmt::NumericGrid::FromGrid(grid);
  const auto detected =
      core::CanonicalizeAll(core::AggreCol(config).Detect(numeric).aggregations);
  const auto oracle = EagerOracle(numeric, config);

  for (const auto& aggregation : detected) {
    EXPECT_TRUE(std::binary_search(oracle.begin(), oracle.end(), aggregation,
                                   core::AggregationLess))
        << ToString(aggregation);
  }
  // And the planted sum is found by both.
  core::Aggregation planted;
  planted.axis = core::Axis::kRow;
  planted.line = 0;
  planted.aggregate = 0;
  planted.range = {1, 2, 3};
  planted.function = core::AggregationFunction::kSum;
  EXPECT_TRUE(std::binary_search(oracle.begin(), oracle.end(),
                                 core::Canonicalize(planted),
                                 core::AggregationLess));
  EXPECT_NE(std::find(detected.begin(), detected.end(), core::Canonicalize(planted)),
            detected.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace aggrecol
