#include "numfmt/numeric_grid.h"

#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::numfmt {
namespace {

using aggrecol::testing::MakeGrid;

const NormalizeOptions kDefault{};

TEST(InterpretCell, NumericCell) {
  const auto cell = InterpretCell("1,234.5", NumberFormat::kCommaDot, kDefault);
  EXPECT_EQ(cell.kind, CellKind::kNumeric);
  EXPECT_DOUBLE_EQ(cell.value, 1234.5);
}

TEST(InterpretCell, EmptyIsZero) {
  const auto cell = InterpretCell("   ", NumberFormat::kCommaDot, kDefault);
  EXPECT_EQ(cell.kind, CellKind::kEmptyZero);
  EXPECT_EQ(cell.value, 0.0);
}

TEST(InterpretCell, EmptyNotZeroWhenDisabled) {
  NormalizeOptions options;
  options.treat_empty_as_zero = false;
  const auto cell = InterpretCell("", NumberFormat::kCommaDot, options);
  EXPECT_EQ(cell.kind, CellKind::kText);
}

TEST(InterpretCell, ZeroMarkers) {
  for (const char* marker : {"x", "X", "-"}) {
    const auto cell = InterpretCell(marker, NumberFormat::kCommaDot, kDefault);
    EXPECT_EQ(cell.kind, CellKind::kZeroMarker) << marker;
    EXPECT_EQ(cell.value, 0.0);
  }
}

TEST(InterpretCell, ZeroMarkersDisabled) {
  NormalizeOptions options;
  options.recognize_zero_markers = false;
  const auto cell = InterpretCell("x", NumberFormat::kCommaDot, options);
  EXPECT_EQ(cell.kind, CellKind::kText);
}

TEST(InterpretCell, LenientExtractionOfDecoratedNumber) {
  // The paper's "+1.4 Points" example (Sec. 4.1).
  const auto cell = InterpretCell("+1.4 Points", NumberFormat::kCommaDot, kDefault);
  EXPECT_EQ(cell.kind, CellKind::kNumeric);
  EXPECT_DOUBLE_EQ(cell.value, 1.4);
}

TEST(InterpretCell, LenientExtractionRejectsLeadingText) {
  const auto cell = InterpretCell("Age 0-14", NumberFormat::kCommaDot, kDefault);
  EXPECT_EQ(cell.kind, CellKind::kText);
}

TEST(InterpretCell, LenientExtractionDisabled) {
  NormalizeOptions options;
  options.lenient_extraction = false;
  const auto cell = InterpretCell("+1.4 Points", NumberFormat::kCommaDot, options);
  EXPECT_EQ(cell.kind, CellKind::kText);
}

TEST(InterpretCell, YearRangeStaysText) {
  const auto cell = InterpretCell("1875-2009", NumberFormat::kCommaDot, kDefault);
  EXPECT_EQ(cell.kind, CellKind::kText);
}

TEST(NumericGrid, KindsAndValues) {
  const auto grid = MakeGrid({
      {"Year", "Population", "Share"},
      {"1875", "1,912,647", "34.5"},
      {"1900", "", "x"},
  });
  const auto numeric = NumericGrid::FromGrid(grid, NumberFormat::kCommaDot);
  EXPECT_EQ(numeric.kind(0, 0), CellKind::kText);
  EXPECT_EQ(numeric.kind(1, 0), CellKind::kNumeric);
  EXPECT_DOUBLE_EQ(numeric.value(1, 1), 1912647.0);
  EXPECT_EQ(numeric.kind(2, 1), CellKind::kEmptyZero);
  EXPECT_EQ(numeric.kind(2, 2), CellKind::kZeroMarker);
  EXPECT_TRUE(numeric.IsRangeUsable(2, 1));
  EXPECT_TRUE(numeric.IsRangeUsable(2, 2));
  EXPECT_FALSE(numeric.IsNumeric(2, 1));
  EXPECT_FALSE(numeric.IsRangeUsable(0, 0));
}

TEST(NumericGrid, ElectsFormatAutomatically) {
  const auto grid = MakeGrid({{"12 345,67"}, {"9 876,50"}});
  const auto numeric = NumericGrid::FromGrid(grid);
  EXPECT_EQ(numeric.format(), NumberFormat::kSpaceComma);
  EXPECT_DOUBLE_EQ(numeric.value(0, 0), 12345.67);
}

TEST(NumericGrid, CountsNumericCells) {
  const auto grid = MakeGrid({
      {"a", "1", "2"},
      {"b", "3", ""},
      {"c", "x", "4"},
  });
  const auto numeric = NumericGrid::FromGrid(grid, NumberFormat::kCommaDot);
  EXPECT_EQ(numeric.NumericCountInColumn(0), 0);
  EXPECT_EQ(numeric.NumericCountInColumn(1), 2);
  EXPECT_EQ(numeric.NumericCountInColumn(2), 2);
  EXPECT_EQ(numeric.NumericCountInRow(0), 2);
  EXPECT_EQ(numeric.NumericCountInRow(1), 1);
}

TEST(NumericGrid, Transposed) {
  const auto grid = MakeGrid({{"1", "2"}, {"3", "text"}});
  const auto numeric = NumericGrid::FromGrid(grid, NumberFormat::kCommaDot);
  const auto transposed = numeric.Transposed();
  EXPECT_EQ(transposed.rows(), 2);
  EXPECT_DOUBLE_EQ(transposed.value(1, 0), 2.0);
  EXPECT_EQ(transposed.kind(1, 1), CellKind::kText);
}

TEST(NumericGrid, WithColumns) {
  const auto grid = MakeGrid({{"1", "2", "3"}});
  const auto numeric = NumericGrid::FromGrid(grid, NumberFormat::kCommaDot);
  const auto projected = numeric.WithColumns({2, 0});
  EXPECT_EQ(projected.columns(), 2);
  EXPECT_DOUBLE_EQ(projected.value(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(projected.value(0, 1), 1.0);
}

}  // namespace
}  // namespace aggrecol::numfmt
