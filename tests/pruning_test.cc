#include "core/pruning.h"

#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::Contains;
using aggrecol::testing::MakeNumeric;

Pattern MakePattern(int aggregate, std::vector<int> range, AggregationFunction function,
                    Axis axis = Axis::kRow) {
  Pattern pattern;
  pattern.axis = axis;
  pattern.aggregate = aggregate;
  pattern.range = std::move(range);
  pattern.function = function;
  return pattern;
}

TEST(SideOf, LeftRightMixed) {
  EXPECT_EQ(SideOf(MakePattern(4, {5, 6, 7}, AggregationFunction::kSum)),
            RangeSide::kRight);
  EXPECT_EQ(SideOf(MakePattern(4, {2, 3}, AggregationFunction::kSum)),
            RangeSide::kLeft);
  EXPECT_EQ(SideOf(MakePattern(4, {2, 6}, AggregationFunction::kSum)),
            RangeSide::kMixed);
}

TEST(DirectionalDisagreement, PaperExample) {
  // (row:3, 4 <- {5,6,7}) vs (row:3, 4 <- {2,3}) — same aggregate, opposite
  // sides: conflict (Sec. 3.1).
  const Pattern right = MakePattern(4, {5, 6, 7}, AggregationFunction::kSum);
  const Pattern left = MakePattern(4, {2, 3}, AggregationFunction::kSum);
  EXPECT_TRUE(DirectionalDisagreement(right, left));
  EXPECT_TRUE(DirectionalDisagreement(left, right));
}

TEST(DirectionalDisagreement, RequiresSameAggregateAndFunction) {
  const Pattern a = MakePattern(4, {5, 6}, AggregationFunction::kSum);
  const Pattern b = MakePattern(3, {1, 2}, AggregationFunction::kSum);
  EXPECT_FALSE(DirectionalDisagreement(a, b));
  const Pattern c = MakePattern(4, {2, 3}, AggregationFunction::kAverage);
  EXPECT_FALSE(DirectionalDisagreement(a, c));
}

TEST(DirectionalDisagreement, SameSideIsFine) {
  const Pattern a = MakePattern(4, {5, 6}, AggregationFunction::kSum);
  const Pattern b = MakePattern(4, {5, 6, 7}, AggregationFunction::kSum);
  EXPECT_FALSE(DirectionalDisagreement(a, b));
}

TEST(CompleteInclusion, PaperExample) {
  // (row:1, 4 <- {5,6}) and (row:1, 3 <- {4,5,6,7}): the first aggregation's
  // aggregate and part of its range lie inside the second's range.
  const Pattern inner = MakePattern(4, {5, 6}, AggregationFunction::kSum);
  const Pattern outer = MakePattern(3, {4, 5, 6, 7}, AggregationFunction::kSum);
  EXPECT_TRUE(CompleteInclusion(inner, outer));
  EXPECT_TRUE(CompleteInclusion(outer, inner));  // symmetric check
}

TEST(CompleteInclusion, RequiresRangeOverlap) {
  // Aggregate inside the other range but disjoint ranges: no inclusion.
  const Pattern a = MakePattern(4, {8, 9}, AggregationFunction::kSum);
  const Pattern b = MakePattern(3, {4, 5}, AggregationFunction::kSum);
  EXPECT_FALSE(CompleteInclusion(a, b));
}

TEST(CompleteInclusion, DifferentAxesNeverConflict) {
  const Pattern a = MakePattern(4, {5, 6}, AggregationFunction::kSum, Axis::kRow);
  const Pattern b =
      MakePattern(3, {4, 5, 6, 7}, AggregationFunction::kSum, Axis::kColumn);
  EXPECT_FALSE(CompleteInclusion(a, b));
}

TEST(MutualInclusion, PaperExample) {
  // (row:1, 4 <- {5,6}) and (row:1, 5 <- {3,4}) are mutually inclusive.
  const Pattern a = MakePattern(4, {5, 6}, AggregationFunction::kSum);
  const Pattern b = MakePattern(5, {3, 4}, AggregationFunction::kSum);
  EXPECT_TRUE(MutualInclusion(a, b));
  EXPECT_TRUE(MutualInclusion(b, a));
}

TEST(MutualInclusion, OneWayIsNotMutual) {
  const Pattern a = MakePattern(4, {5, 6}, AggregationFunction::kSum);
  const Pattern b = MakePattern(5, {7, 8}, AggregationFunction::kSum);
  EXPECT_FALSE(MutualInclusion(a, b));
}

TEST(GroupByPattern, SufficiencyUsesNumericColumnCount) {
  // Column 0 has 4 numeric cells; the pattern holds in 2 rows -> 0.5.
  const auto grid = MakeNumeric({
      {"3", "1", "2"},
      {"5", "2", "3"},
      {"9", "1", "1"},
      {"7", "3", "3"},
  });
  const std::vector<Aggregation> candidates = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum),
      Agg(1, 0, {1, 2}, AggregationFunction::kSum),
  };
  const auto groups = GroupByPattern(grid, candidates);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_DOUBLE_EQ(groups[0].sufficiency, 0.5);
  EXPECT_EQ(groups[0].members.size(), 2u);
}

TEST(GroupByPattern, MeanError) {
  const auto grid = MakeNumeric({{"3", "1", "2"}, {"5", "2", "3"}});
  const std::vector<Aggregation> candidates = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum, Axis::kRow, 0.02),
      Agg(1, 0, {1, 2}, AggregationFunction::kSum, Axis::kRow, 0.04),
  };
  const auto groups = GroupByPattern(grid, candidates);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_DOUBLE_EQ(groups[0].mean_error, 0.03);
}

TEST(PruneIndividual, DropsLowCoverageGroups) {
  // Pattern A holds in 3/4 rows (0.75 >= 0.7), pattern B in 1/4 (0.25 < 0.7).
  const auto grid = MakeNumeric({
      {"3", "1", "2", "9"},
      {"5", "2", "3", "9"},
      {"7", "3", "4", "9"},
      {"8", "4", "5", "9"},
  });
  const std::vector<Aggregation> candidates = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum),
      Agg(1, 0, {1, 2}, AggregationFunction::kSum),
      Agg(2, 0, {1, 2}, AggregationFunction::kSum),
      Agg(3, 3, {1, 2}, AggregationFunction::kSum),  // lone candidate
  };
  const auto pruned = PruneIndividual(grid, candidates, 0.7);
  EXPECT_EQ(pruned.size(), 3u);
  EXPECT_FALSE(Contains(pruned, candidates[3]));
}

TEST(PruneIndividual, SameAggregateKeepsHigherSufficiency) {
  const auto grid = MakeNumeric({
      {"3", "1", "2", "1"},
      {"5", "2", "3", "4"},
      {"7", "3", "4", "2"},
  });
  // Both patterns aggregate into column 0; the first has 3 members, the
  // second only 2 — with 3 numeric cells in column 0 that is 1.0 vs 0.67.
  const std::vector<Aggregation> candidates = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum),
      Agg(1, 0, {1, 2}, AggregationFunction::kSum),
      Agg(2, 0, {1, 2}, AggregationFunction::kSum),
      Agg(0, 0, {1, 3}, AggregationFunction::kSum),
      Agg(1, 0, {1, 3}, AggregationFunction::kSum),
  };
  const auto pruned = PruneIndividual(grid, candidates, 0.5);
  EXPECT_EQ(pruned.size(), 3u);
  for (const auto& aggregation : pruned) {
    EXPECT_EQ(aggregation.range, (std::vector<int>{1, 2}));
  }
}

TEST(PruneIndividual, SameRangeKeepsHigherSufficiency) {
  const auto grid = MakeNumeric({
      {"3", "1", "2", "3"},
      {"5", "2", "3", "5"},
      {"7", "3", "4", "9"},
  });
  // Two patterns share range {1, 2} with different aggregates.
  const std::vector<Aggregation> candidates = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum),
      Agg(1, 0, {1, 2}, AggregationFunction::kSum),
      Agg(2, 0, {1, 2}, AggregationFunction::kSum),
      Agg(0, 3, {1, 2}, AggregationFunction::kSum),
      Agg(1, 3, {1, 2}, AggregationFunction::kSum),
  };
  const auto pruned = PruneIndividual(grid, candidates, 0.5);
  EXPECT_EQ(pruned.size(), 3u);
  for (const auto& aggregation : pruned) {
    EXPECT_EQ(aggregation.aggregate, 0);
  }
}

TEST(PruneIndividual, DirectionalConflictResolvedByRank) {
  const auto grid = MakeNumeric({
      {"1", "2", "3", "2", "1"},
      {"2", "1", "3", "2", "1"},
      {"9", "8", "17", "9", "8"},
  });
  // Column 2 aggregates both left {0,1} and right {3,4}; left holds in all
  // three rows, right only in row 2 — wait, both hold in all rows here, so
  // craft: left group has 3 members, right 2.
  const std::vector<Aggregation> candidates = {
      Agg(0, 2, {0, 1}, AggregationFunction::kSum),
      Agg(1, 2, {0, 1}, AggregationFunction::kSum),
      Agg(2, 2, {0, 1}, AggregationFunction::kSum),
      Agg(0, 2, {3, 4}, AggregationFunction::kSum),
      Agg(1, 2, {3, 4}, AggregationFunction::kSum),
  };
  const auto pruned = PruneIndividual(grid, candidates, 0.5);
  // The same-aggregate dedup already keeps the better-covered left group;
  // directional disagreement would likewise reject the right one.
  EXPECT_EQ(pruned.size(), 3u);
  for (const auto& aggregation : pruned) {
    EXPECT_EQ(aggregation.range, (std::vector<int>{0, 1}));
  }
}

TEST(PruneIndividual, CompleteInclusionPrunesLowerRank) {
  const auto grid = MakeNumeric({
      {"10", "4", "2", "2", "2"},
      {"12", "6", "2", "2", "2"},
      {"14", "8", "2", "2", "2"},
  });
  // Outer pattern 0 <- {1,2,3,4} (3 members) vs inner 1 <- {2,3} (3 members,
  // completely included in the outer range together with its aggregate).
  const std::vector<Aggregation> candidates = {
      Agg(0, 0, {1, 2, 3, 4}, AggregationFunction::kSum),
      Agg(1, 0, {1, 2, 3, 4}, AggregationFunction::kSum),
      Agg(2, 0, {1, 2, 3, 4}, AggregationFunction::kSum),
      Agg(0, 1, {2, 3}, AggregationFunction::kSum),
      Agg(1, 1, {2, 3}, AggregationFunction::kSum),
  };
  const auto pruned = PruneIndividual(grid, candidates, 0.5);
  EXPECT_EQ(pruned.size(), 3u);
  for (const auto& aggregation : pruned) {
    EXPECT_EQ(aggregation.aggregate, 0);
  }
}

TEST(PruneIndividual, RuleTogglesDisableSteps) {
  // Low-coverage group survives when the coverage threshold is off.
  const auto grid = MakeNumeric({
      {"3", "1", "2"},
      {"9", "1", "2"},
      {"8", "1", "2"},
      {"7", "1", "2"},
  });
  const std::vector<Aggregation> lone = {Agg(0, 0, {1, 2}, AggregationFunction::kSum)};
  EXPECT_TRUE(PruneIndividual(grid, lone, 0.7).empty());
  PruningRules no_coverage;
  no_coverage.coverage_threshold = false;
  EXPECT_EQ(PruneIndividual(grid, lone, 0.7, no_coverage).size(), 1u);
}

TEST(PruneIndividual, MutualInclusionToggle) {
  const auto grid = MakeNumeric({
      {"6", "1", "2", "3"},
      {"6", "1", "2", "3"},
  });
  // Mutually inclusive pair with equal coverage.
  const std::vector<Aggregation> candidates = {
      Agg(0, 1, {2, 0}, AggregationFunction::kSum),
      Agg(1, 1, {2, 0}, AggregationFunction::kSum),
      Agg(0, 0, {1, 2}, AggregationFunction::kSum),
      Agg(1, 0, {1, 2}, AggregationFunction::kSum),
  };
  // Isolate the mutual-inclusion rule: disable the dedup steps and the
  // complete-inclusion rule (which also fires on this overlapping pair).
  PruningRules isolated;
  isolated.same_range_dedup = false;
  isolated.complete_inclusion = false;
  const auto with_rule = PruneIndividual(grid, candidates, 0.5, isolated);
  EXPECT_EQ(with_rule.size(), 2u);
  PruningRules no_mutual = isolated;
  no_mutual.mutual_inclusion = false;
  const auto without_rule = PruneIndividual(grid, candidates, 0.5, no_mutual);
  EXPECT_EQ(without_rule.size(), 4u);
}

TEST(PruneIndividual, CompleteInclusionToggle) {
  const auto grid = MakeNumeric({
      {"10", "4", "2", "2", "2"},
      {"12", "6", "2", "2", "2"},
      {"14", "8", "2", "2", "2"},
  });
  const std::vector<Aggregation> candidates = {
      Agg(0, 0, {1, 2, 3, 4}, AggregationFunction::kSum),
      Agg(1, 0, {1, 2, 3, 4}, AggregationFunction::kSum),
      Agg(2, 0, {1, 2, 3, 4}, AggregationFunction::kSum),
      Agg(0, 1, {2, 3}, AggregationFunction::kSum),
      Agg(1, 1, {2, 3}, AggregationFunction::kSum),
  };
  EXPECT_EQ(PruneIndividual(grid, candidates, 0.5).size(), 3u);
  PruningRules no_complete;
  no_complete.complete_inclusion = false;
  EXPECT_EQ(PruneIndividual(grid, candidates, 0.5, no_complete).size(), 5u);
}

TEST(PruneIndividual, EmptyInput) {
  const auto grid = MakeNumeric({{"1"}});
  EXPECT_TRUE(PruneIndividual(grid, {}, 0.7).empty());
}

}  // namespace
}  // namespace aggrecol::core
