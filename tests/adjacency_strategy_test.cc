#include "core/adjacency_strategy.h"

#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::AllActive;
using aggrecol::testing::Contains;
using aggrecol::testing::MakeNumeric;

TEST(Adjacency, SumWithRangeOnTheRight) {
  const auto grid = MakeNumeric({{"6", "1", "2", "3"}});
  const auto found =
      DetectAdjacentCommutative(grid, AllActive(grid), 0, AggregationFunction::kSum, 0.0);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 2, 3}, AggregationFunction::kSum)));
}

TEST(Adjacency, SumWithRangeOnTheLeft) {
  const auto grid = MakeNumeric({{"1", "2", "3", "6"}});
  const auto found =
      DetectAdjacentCommutative(grid, AllActive(grid), 0, AggregationFunction::kSum, 0.0);
  // The range is reported in ascending column order.
  EXPECT_TRUE(Contains(found, Agg(0, 3, {0, 1, 2}, AggregationFunction::kSum)));
}

TEST(Adjacency, GreedyStopsAtFirstMatch) {
  // 3 = 1 + 2 matches before the longer 1 + 2 + 0 is reached.
  const auto grid = MakeNumeric({{"3", "1", "2", "0"}});
  const auto found =
      DetectAdjacentCommutative(grid, AllActive(grid), 0, AggregationFunction::kSum, 0.0);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 2}, AggregationFunction::kSum)));
  EXPECT_FALSE(Contains(found, Agg(0, 0, {1, 2, 3}, AggregationFunction::kSum)));
}

TEST(Adjacency, RequiresTwoRangeElements) {
  // 5 = 5 alone must not be reported (Sec. 3.1: single-element ranges are
  // false-positive factories).
  const auto grid = MakeNumeric({{"5", "5", "9"}});
  const auto found =
      DetectAdjacentCommutative(grid, AllActive(grid), 0, AggregationFunction::kSum, 0.0);
  EXPECT_FALSE(Contains(found, Agg(0, 0, {1}, AggregationFunction::kSum)));
}

TEST(Adjacency, AverageDetection) {
  const auto grid = MakeNumeric({{"2", "1", "2", "3"}});
  const auto found = DetectAdjacentCommutative(grid, AllActive(grid), 0,
                                               AggregationFunction::kAverage, 0.0);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 2, 3}, AggregationFunction::kAverage)));
}

TEST(Adjacency, SkipsTextCellsWithoutBlocking) {
  // The text cell between aggregate and range is skipped, not a barrier.
  const auto grid = MakeNumeric({{"6", "note", "1", "2", "3"}});
  const auto found =
      DetectAdjacentCommutative(grid, AllActive(grid), 0, AggregationFunction::kSum, 0.0);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {2, 3, 4}, AggregationFunction::kSum)));
}

TEST(Adjacency, EmptyCellsCountAsZero) {
  // 6 = 1 + (empty=0) fails at size 2, then + 5 matches at size 3.
  const auto grid = MakeNumeric({{"6", "1", "", "5"}});
  const auto found =
      DetectAdjacentCommutative(grid, AllActive(grid), 0, AggregationFunction::kSum, 0.0);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 2, 3}, AggregationFunction::kSum)));
}

TEST(Adjacency, EmptyCellIsNotAnAggregateCandidate) {
  const auto grid = MakeNumeric({{"", "0", "0"}});
  const auto found =
      DetectAdjacentCommutative(grid, AllActive(grid), 0, AggregationFunction::kSum, 0.0);
  EXPECT_FALSE(Contains(found, Agg(0, 0, {1, 2}, AggregationFunction::kSum)));
}

TEST(Adjacency, InactiveColumnsAreInvisible) {
  // With column 1 masked out, 6 = 2 + 4 over columns {2, 3}.
  const auto grid = MakeNumeric({{"6", "99", "2", "4"}});
  std::vector<bool> active = {true, false, true, true};
  const auto found =
      DetectAdjacentCommutative(grid, active, 0, AggregationFunction::kSum, 0.0);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {2, 3}, AggregationFunction::kSum)));
  // And the masked aggregate candidate is not scanned at all.
  for (const auto& aggregation : found) EXPECT_NE(aggregation.aggregate, 1);
}

TEST(Adjacency, ToleratesErrorWithinLevel) {
  // 100 vs 98+3=101: error 1% <= 1%.
  const auto grid = MakeNumeric({{"100", "98", "3"}});
  const auto found = DetectAdjacentCommutative(grid, AllActive(grid), 0,
                                               AggregationFunction::kSum, 0.01);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 2}, AggregationFunction::kSum)));
  const auto strict = DetectAdjacentCommutative(grid, AllActive(grid), 0,
                                                AggregationFunction::kSum, 0.0);
  EXPECT_TRUE(strict.empty());
}

TEST(Adjacency, ReportsObservedError) {
  const auto grid = MakeNumeric({{"100", "98", "3"}});
  const auto found = DetectAdjacentCommutative(grid, AllActive(grid), 0,
                                               AggregationFunction::kSum, 0.05);
  ASSERT_FALSE(found.empty());
  EXPECT_NEAR(found[0].error, 0.01, 1e-9);
}

TEST(Adjacency, NegativeValues) {
  const auto grid = MakeNumeric({{"-1", "4", "-5"}});
  const auto found =
      DetectAdjacentCommutative(grid, AllActive(grid), 0, AggregationFunction::kSum, 0.0);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 2}, AggregationFunction::kSum)));
}

TEST(Adjacency, BothDirectionsFromOneAggregate) {
  // 5 sits between {2, 3} and {1, 4}; both directions match.
  const auto grid = MakeNumeric({{"2", "3", "5", "1", "4"}});
  const auto found =
      DetectAdjacentCommutative(grid, AllActive(grid), 0, AggregationFunction::kSum, 0.0);
  EXPECT_TRUE(Contains(found, Agg(0, 2, {0, 1}, AggregationFunction::kSum)));
  EXPECT_TRUE(Contains(found, Agg(0, 2, {3, 4}, AggregationFunction::kSum)));
}

}  // namespace
}  // namespace aggrecol::core
