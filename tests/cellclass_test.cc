#include <random>

#include "cellclass/features.h"
#include "cellclass/line_classifier.h"
#include "cellclass/random_forest.h"
#include "cellclass/strudel_experiment.h"
#include "datagen/corpus.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::cellclass {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::MakeGrid;

TEST(Features, NamesMatchCount) {
  EXPECT_EQ(FeatureNames().size(), static_cast<size_t>(kFeatureCount));
  EXPECT_EQ(FeatureNames()[kAggregateFeature], "is_aggregate");
}

TEST(Features, ShapeAndBasicValues) {
  const auto grid = MakeGrid({
      {"Total", "10"},
      {"", "3.5"},
  });
  const auto numeric =
      numfmt::NumericGrid::FromGrid(grid, numfmt::NumberFormat::kCommaDot);
  const std::vector<bool> mask(4, false);
  const auto features = ExtractFeatures(grid, numeric, mask);
  ASSERT_EQ(features.size(), 4u);
  for (const auto& row : features) EXPECT_EQ(row.size(), size_t{kFeatureCount});

  // (0,0) "Total": text, keyword, first column.
  EXPECT_EQ(features[0][0], 0.0f);  // is_numeric
  EXPECT_EQ(features[0][9], 1.0f);  // has_keyword
  EXPECT_EQ(features[0][16], 1.0f);  // is_first_column
  // (0,1) "10": numeric, no decimals.
  EXPECT_EQ(features[1][0], 1.0f);
  EXPECT_EQ(features[1][4], 0.0f);
  // (1,0) empty.
  EXPECT_EQ(features[2][1], 1.0f);
  // (1,1) "3.5": numeric with decimals.
  EXPECT_EQ(features[3][0], 1.0f);
  EXPECT_EQ(features[3][4], 1.0f);
}

TEST(Features, AggregateMaskMapsAxes) {
  const auto grid = MakeGrid({
      {"1", "2", "3"},
      {"4", "5", "6"},
  });
  const std::vector<core::Aggregation> aggregations = {
      Agg(0, 2, {0, 1}, core::AggregationFunction::kSum),  // row 0, column 2
      Agg(1, 1, {0}, core::AggregationFunction::kSum, core::Axis::kColumn),
      // column 1, row 1
  };
  const auto mask = AggregateMask(grid, aggregations);
  EXPECT_TRUE(mask[0 * 3 + 2]);
  EXPECT_TRUE(mask[1 * 3 + 1]);
  EXPECT_FALSE(mask[0 * 3 + 0]);
}

TEST(Features, AggregateFeatureFollowsMask) {
  const auto grid = MakeGrid({{"1", "2"}});
  const auto numeric =
      numfmt::NumericGrid::FromGrid(grid, numfmt::NumberFormat::kCommaDot);
  std::vector<bool> mask = {true, false};
  const auto features = ExtractFeatures(grid, numeric, mask);
  EXPECT_EQ(features[0][kAggregateFeature], 1.0f);
  EXPECT_EQ(features[1][kAggregateFeature], 0.0f);
}

Dataset MakeSeparableDataset(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> uniform(0.0f, 1.0f);
  Dataset data;
  for (int i = 0; i < n; ++i) {
    const float x0 = uniform(rng);
    const float x1 = uniform(rng);
    const float x2 = uniform(rng);
    data.features.push_back({x0, x1, x2});
    data.labels.push_back(x0 > 0.5f ? 1 : 0);
  }
  return data;
}

TEST(RandomForest, LearnsSeparableData) {
  const Dataset train = MakeSeparableDataset(500, 1);
  const Dataset test = MakeSeparableDataset(200, 2);
  ForestConfig config;
  config.tree_count = 10;
  RandomForest forest(config);
  forest.Fit(train, 2);
  int correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    if (forest.Predict(test.features[i]) == test.labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.9);
}

TEST(RandomForest, LearnsThreeClasses) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<float> noise(-0.1f, 0.1f);
  Dataset train;
  for (int i = 0; i < 600; ++i) {
    const int label = i % 3;
    train.features.push_back({label * 1.0f + noise(rng), noise(rng)});
    train.labels.push_back(label);
  }
  RandomForest forest;
  forest.Fit(train, 3);
  EXPECT_EQ(forest.Predict({0.0f, 0.0f}), 0);
  EXPECT_EQ(forest.Predict({1.0f, 0.0f}), 1);
  EXPECT_EQ(forest.Predict({2.0f, 0.0f}), 2);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  const Dataset train = MakeSeparableDataset(300, 5);
  ForestConfig config;
  config.seed = 17;
  RandomForest a(config);
  RandomForest b(config);
  a.Fit(train, 2);
  b.Fit(train, 2);
  const Dataset test = MakeSeparableDataset(50, 6);
  EXPECT_EQ(a.PredictAll(test.features), b.PredictAll(test.features));
}

TEST(RandomForest, EmptyTrainingSetIsSafe) {
  RandomForest forest;
  forest.Fit(Dataset{}, 2);
  SUCCEED();
}

TEST(RandomForest, SingleClassDataPredictsThatClass) {
  Dataset train;
  for (int i = 0; i < 50; ++i) {
    train.features.push_back({static_cast<float>(i)});
    train.labels.push_back(1);
  }
  RandomForest forest;
  forest.Fit(train, 2);
  EXPECT_EQ(forest.Predict({25.0f}), 1);
}

TEST(StrudelExperiment, RunsOnSmallCorpus) {
  const auto files = datagen::GenerateSmallCorpus(8, 77);
  ForestConfig config;
  config.tree_count = 8;
  config.max_depth = 8;
  const auto result =
      RunStrudelExperiment(files, AggregateFeatureSource::kAggreCol, 2, config);
  EXPECT_GT(result.cells, 100);
  EXPECT_GT(result.accuracy, 0.5);
  // Data cells dominate and should be classified well.
  EXPECT_GT(result.per_role[eval::IndexOf(eval::CellRole::kData)].F1(), 0.45);
}

TEST(StrudelExperiment, BothFeatureSourcesProduceScores) {
  const auto files = datagen::GenerateSmallCorpus(6, 78);
  ForestConfig config;
  config.tree_count = 6;
  config.max_depth = 8;
  const auto original =
      RunStrudelExperiment(files, AggregateFeatureSource::kAdjacentOnly, 2, config);
  const auto aggrecol =
      RunStrudelExperiment(files, AggregateFeatureSource::kAggreCol, 2, config);
  EXPECT_EQ(original.cells, aggrecol.cells);
  EXPECT_GT(original.accuracy, 0.0);
  EXPECT_GT(aggrecol.accuracy, 0.0);
}

TEST(LineFeatures, ShapeAndContent) {
  const auto grid = MakeGrid({
      {"Population report", "", ""},
      {"Item", "A", "Total"},
      {"x", "1", "1"},
      {"Total", "1", "1"},
  });
  const auto numeric =
      numfmt::NumericGrid::FromGrid(grid, numfmt::NumberFormat::kCommaDot);
  const std::vector<core::Aggregation> aggregations = {
      Agg(2, 2, {1}, core::AggregationFunction::kSum),
      Agg(3, 2, {1}, core::AggregationFunction::kSum),
  };
  const auto features = ExtractLineFeatures(grid, numeric, aggregations);
  ASSERT_EQ(features.size(), 4u);
  for (const auto& line : features) {
    EXPECT_EQ(line.size(), static_cast<size_t>(kLineFeatureCount));
  }
  // Title row: only the leading cell is populated, no numerics.
  EXPECT_EQ(features[0][0], 0.0f);
  EXPECT_EQ(features[0][10], 1.0f);
  // Data row: numeric cells present; one of two numerics is an aggregate.
  EXPECT_GT(features[2][0], 0.0f);
  EXPECT_FLOAT_EQ(features[2][kAggregateLineFeature], 0.5f);
  // "Total" row carries a keyword in its leading cell.
  EXPECT_EQ(features[3][8], 1.0f);
}

TEST(LineFeatures, DominantRole) {
  using eval::CellRole;
  EXPECT_EQ(DominantLineRole({CellRole::kHeader, CellRole::kHeader,
                              CellRole::kEmpty}),
            CellRole::kHeader);
  EXPECT_EQ(DominantLineRole({CellRole::kEmpty, CellRole::kEmpty}),
            CellRole::kEmpty);
  EXPECT_EQ(DominantLineRole({CellRole::kHeader, CellRole::kData, CellRole::kData}),
            CellRole::kData);
}

TEST(LineExperiment, RunsOnSmallCorpus) {
  const auto files = datagen::GenerateSmallCorpus(8, 81);
  ForestConfig config;
  config.tree_count = 8;
  config.max_depth = 8;
  const auto result =
      RunLineExperiment(files, AggregateFeatureSource::kAggreCol, 2, config);
  EXPECT_GT(result.lines, 50);
  EXPECT_GT(result.accuracy, 0.7);
  // Data lines dominate and should classify very well.
  EXPECT_GT(result.per_role[eval::IndexOf(eval::CellRole::kData)].F1(), 0.8);
}

TEST(ClassScores, Formulas) {
  ClassScores scores;
  scores.true_positives = 8;
  scores.false_positives = 2;
  scores.false_negatives = 8;
  EXPECT_DOUBLE_EQ(scores.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(scores.Recall(), 0.5);
  EXPECT_NEAR(scores.F1(), 2 * 0.8 * 0.5 / 1.3, 1e-12);
}

}  // namespace
}  // namespace aggrecol::cellclass
