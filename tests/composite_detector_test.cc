#include "core/composite_detector.h"

#include "core/aggrecol.h"
#include "datagen/corpus.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::MakeNumeric;

CompositeConfig Config(double error = 1e-6) {
  CompositeConfig config;
  config.error_level = error;
  return config;
}

bool ContainsComposite(const std::vector<CompositeAggregation>& composites,
                       const CompositeAggregation& wanted) {
  for (const auto& composite : composites) {
    if (composite == wanted) return true;
  }
  return false;
}

CompositeAggregation Composite(int line, int aggregate, std::vector<int> numerator,
                               int denominator) {
  CompositeAggregation composite;
  composite.line = line;
  composite.aggregate = aggregate;
  composite.numerator = std::move(numerator);
  composite.denominator = denominator;
  return composite;
}

TEST(Composite, DetectsSumThenDivide) {
  // share = (10 + 20 + 30) / 200 = 0.3, no intermediate sum column.
  const auto grid = MakeNumeric({
      {"200", "10", "20", "30", "0.3"},
      {"400", "40", "50", "70", "0.4"},
      {"500", "60", "70", "120", "0.5"},
  });
  const auto found = DetectCompositeRowwise(grid, Config(), {});
  for (int row = 0; row < 3; ++row) {
    EXPECT_TRUE(ContainsComposite(found, Composite(row, 4, {1, 2, 3}, 0)))
        << "row " << row;
  }
}

TEST(Composite, RedundantWithDetectedSumSuppressed) {
  // Same table but with an intermediate "Total degrees" column whose sum
  // aggregation is already detected: the plain division covers the relation.
  const auto grid = MakeNumeric({
      {"200", "10", "20", "30", "60", "0.3"},
      {"400", "40", "50", "70", "160", "0.4"},
  });
  const std::vector<Aggregation> detected = {
      Agg(0, 4, {1, 2, 3}, AggregationFunction::kSum),
      Agg(1, 4, {1, 2, 3}, AggregationFunction::kSum),
  };
  const auto found = DetectCompositeRowwise(grid, Config(), detected);
  EXPECT_FALSE(ContainsComposite(found, Composite(0, 5, {1, 2, 3}, 0)));
}

TEST(Composite, DivisionAggregateCellsSkipped) {
  // A cell already explained as a plain division must not also be reported
  // as a composite.
  const auto grid = MakeNumeric({
      {"200", "10", "20", "30", "0.3"},
      {"400", "40", "50", "70", "0.4"},
  });
  const std::vector<Aggregation> detected = {
      Agg(0, 4, {3, 0}, AggregationFunction::kDivision),
      Agg(1, 4, {3, 0}, AggregationFunction::kDivision),
  };
  const auto found = DetectCompositeRowwise(grid, Config(), detected);
  EXPECT_FALSE(ContainsComposite(found, Composite(0, 4, {1, 2, 3}, 0)));
}

TEST(Composite, CoveragePrunesCoincidences) {
  // The relation holds in only one of four rows.
  const auto grid = MakeNumeric({
      {"200", "10", "20", "30", "0.3"},
      {"400", "40", "50", "70", "0.9"},
      {"500", "60", "70", "120", "0.1"},
      {"300", "10", "10", "10", "0.7"},
  });
  const auto found = DetectCompositeRowwise(grid, Config(), {});
  EXPECT_FALSE(ContainsComposite(found, Composite(0, 4, {1, 2, 3}, 0)));
}

TEST(Composite, ToleratesRoundedRatios) {
  // 0.31 vs 60/200 = 0.30: within 5%, not within 1e-6.
  const auto grid = MakeNumeric({
      {"200", "10", "20", "30", "0.31"},
      {"400", "40", "50", "70", "0.41"},
  });
  EXPECT_TRUE(DetectCompositeRowwise(grid, Config(1e-6), {}).empty());
  const auto tolerant = DetectCompositeRowwise(grid, Config(0.05), {});
  EXPECT_TRUE(ContainsComposite(tolerant, Composite(0, 4, {1, 2, 3}, 0)));
}

TEST(Composite, EndToEndThroughPipeline) {
  datagen::GeneratorProfile profile;
  profile.p_no_aggregation = 0.0;
  profile.p_composite = 1.0;
  profile.p_second_table = 0.0;
  profile.p_big_file = 0.0;
  profile.p_tiny_file = 0.0;
  const auto file = datagen::GenerateFile(profile, 321, "composite.csv");
  ASSERT_FALSE(file.composites.empty());

  core::AggreColConfig config;
  config.detect_composites = true;
  const auto result = core::AggreCol(config).Detect(file.grid);

  int matched = 0;
  for (const auto& truth : file.composites) {
    if (ContainsComposite(result.composites, truth)) ++matched;
  }
  // Most of the planted composites surface (rounding keeps this below 100%).
  EXPECT_GT(static_cast<double>(matched) / file.composites.size(), 0.7);
}

TEST(Composite, OffByDefault) {
  datagen::GeneratorProfile profile;
  profile.p_no_aggregation = 0.0;
  profile.p_composite = 1.0;
  const auto file = datagen::GenerateFile(profile, 321, "composite.csv");
  const auto result = core::AggreCol().Detect(file.grid);
  EXPECT_TRUE(result.composites.empty());
}

TEST(Composite, SerializationRoundTrip) {
  const std::vector<CompositeAggregation> in = {
      Composite(2, 5, {1, 2, 3}, 0),
      Composite(7, 9, {4, 6}, 8),
  };
  const std::string text = eval::SerializeComposites(in);
  const auto parsed = eval::ParseComposites(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) EXPECT_EQ((*parsed)[i], in[i]);
  // Plain-aggregation parsing skips composite lines.
  const auto aggregations = eval::ParseAnnotations(text);
  ASSERT_TRUE(aggregations.has_value());
  EXPECT_TRUE(aggregations->empty());
}

}  // namespace
}  // namespace aggrecol::core
