#include <thread>

#include "gtest/gtest.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace aggrecol::util {
namespace {

TEST(StripWhitespace, RemovesLeadingAndTrailing) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("\t x \n"), "x");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StripWhitespace, EmptyAndAllWhitespace) {
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StripWhitespace, PreservesInteriorWhitespace) {
  EXPECT_EQ(StripWhitespace(" 12 345 "), "12 345");
}

TEST(Split, BasicFields) {
  const auto fields = Split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, EmptyFieldsPreserved) {
  const auto fields = Split(",a,,b,", ',');
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[4], "");
}

TEST(Split, EmptyInputYieldsSingleEmptyField) {
  const auto fields = Split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "", "yz"};
  EXPECT_EQ(Join(parts, ";"), "x;;yz");
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(Join, SingleAndEmpty) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
}

TEST(ToLower, MixedCase) {
  EXPECT_EQ(ToLower("TotAL Sum"), "total sum");
  EXPECT_EQ(ToLower("123-X"), "123-x");
}

TEST(ContainsIgnoreCase, Matches) {
  EXPECT_TRUE(ContainsIgnoreCase("Grand Total", "total"));
  EXPECT_TRUE(ContainsIgnoreCase("SUBTOTAL", "subtotal"));
  EXPECT_FALSE(ContainsIgnoreCase("Totally unrelated", "sum"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
  EXPECT_FALSE(ContainsIgnoreCase("ab", "abc"));
}

TEST(IsAllDigits, Cases) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits("-12"));
}

TEST(ReplaceAll, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("1,234,567", ",", ""), "1234567");
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(FormatDouble(1234.5678, 2), "1234.57");
  EXPECT_EQ(FormatDouble(1234.5678, 0), "1235");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter printer;
  printer.SetHeader({"name", "value"});
  printer.AddRow({"a", "1"});
  printer.AddRow({"long name", "22"});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long name | 22    |"), std::string::npos);
}

TEST(TablePrinter, SeparatorAndRaggedRows) {
  TablePrinter printer;
  printer.SetHeader({"a", "b", "c"});
  printer.AddRow({"1"});
  printer.AddSeparator();
  printer.AddRow({"2", "3", "4"});
  const std::string out = printer.ToString();
  // Two rule lines: under the header, and the explicit separator.
  int rules = 0;
  size_t pos = 0;
  while ((pos = out.find("\n|-", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 2);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch stopwatch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(stopwatch.ElapsedMillis(), 9.0);
  stopwatch.Reset();
  EXPECT_LT(stopwatch.ElapsedMillis(), 9.0);
  EXPECT_GE(stopwatch.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace aggrecol::util
