#include "eval/error_analysis.h"

#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::eval {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::MakeNumeric;
using core::AggregationFunction;

core::AggreColConfig DefaultConfig() { return core::AggreColConfig{}; }

TEST(ErrorAnalysis, PerfectDetectionHasNoErrors) {
  const auto numeric = MakeNumeric({{"3", "1", "2"}});
  const std::vector<core::Aggregation> truth = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum)};
  const auto breakdown = AnalyzeErrors(numeric, truth, truth, DefaultConfig());
  EXPECT_EQ(breakdown.TotalFalseNegatives(), 0);
  EXPECT_EQ(breakdown.TotalFalsePositives(), 0);
}

TEST(ErrorAnalysis, ErrorLevelFalseNegative) {
  // 110 vs 1+2=3: observed error far beyond the 1% sum tolerance.
  const auto numeric = MakeNumeric({{"110", "1", "2"}});
  const std::vector<core::Aggregation> truth = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum)};
  const auto breakdown = AnalyzeErrors(numeric, {}, truth, DefaultConfig());
  EXPECT_EQ(breakdown.false_negatives[static_cast<size_t>(
                FalseNegativeCause::kErrorLevel)],
            1);
}

TEST(ErrorAnalysis, WindowFalseNegative) {
  // Division operands sit 11+ usable cells away from the aggregate.
  std::vector<std::string> row(14, "7");
  row[0] = "2";   // aggregate
  row[12] = "6";  // B
  row[13] = "3";  // C: 6/3 = 2
  const auto numeric = numfmt::NumericGrid::FromGrid(
      csv::Grid(std::vector<std::vector<std::string>>{row}),
      numfmt::NumberFormat::kCommaDot);
  const std::vector<core::Aggregation> truth = {
      Agg(0, 0, {12, 13}, AggregationFunction::kDivision)};
  const auto breakdown = AnalyzeErrors(numeric, {}, truth, DefaultConfig());
  EXPECT_EQ(breakdown.false_negatives[static_cast<size_t>(
                FalseNegativeCause::kWindowSize)],
            1);
}

TEST(ErrorAnalysis, ZeroTailFalseNegative) {
  // 3 = 1 + 2 + 0: the greedy scan stops at {1, 2}.
  const auto numeric = MakeNumeric({{"3", "1", "2", "0"}});
  const std::vector<core::Aggregation> truth = {
      Agg(0, 0, {1, 2, 3}, AggregationFunction::kSum)};
  const auto breakdown = AnalyzeErrors(numeric, {}, truth, DefaultConfig());
  EXPECT_EQ(
      breakdown.false_negatives[static_cast<size_t>(FalseNegativeCause::kZeroTail)],
      1);
}

TEST(ErrorAnalysis, BlockedRangeFalseNegative) {
  // 6 = 1 + 2 + 3 with an unrelated numeric cell (9) inside the span.
  const auto numeric = MakeNumeric({{"6", "9", "1", "2", "3"}});
  const std::vector<core::Aggregation> truth = {
      Agg(0, 0, {2, 3, 4}, AggregationFunction::kSum)};
  const auto breakdown = AnalyzeErrors(numeric, {}, truth, DefaultConfig());
  EXPECT_EQ(breakdown.false_negatives[static_cast<size_t>(
                FalseNegativeCause::kBlockedRange)],
            1);
}

TEST(ErrorAnalysis, ZeroCellFalsePositive) {
  const auto numeric = MakeNumeric({{"0", "0", "0"}});
  const std::vector<core::Aggregation> predicted = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum)};
  const auto breakdown = AnalyzeErrors(numeric, predicted, {}, DefaultConfig());
  EXPECT_EQ(
      breakdown.false_positives[static_cast<size_t>(FalsePositiveCause::kZeroCells)],
      1);
}

TEST(ErrorAnalysis, InverseDivisionFalsePositive) {
  // Truth: 2 <- {0, 1} (0.90625 = 58/64); predicted inverse: 1 <- {0, 2}.
  const auto numeric = MakeNumeric({{"58", "64", "0.90625"}});
  const std::vector<core::Aggregation> truth = {
      Agg(0, 2, {0, 1}, AggregationFunction::kDivision)};
  const std::vector<core::Aggregation> predicted = {
      Agg(0, 1, {0, 2}, AggregationFunction::kDivision)};
  const auto breakdown = AnalyzeErrors(numeric, predicted, truth, DefaultConfig());
  EXPECT_EQ(breakdown.false_positives[static_cast<size_t>(
                FalsePositiveCause::kInverseDivision)],
            1);
}

TEST(ErrorAnalysis, AlternativeDecompositionFalsePositive) {
  // Truth: grand = G1 + G2; predicted: grand = members.
  const auto numeric = MakeNumeric({{"10", "3", "1", "2", "7", "3", "4"}});
  const std::vector<core::Aggregation> truth = {
      Agg(0, 0, {1, 4}, AggregationFunction::kSum)};
  const std::vector<core::Aggregation> predicted = {
      Agg(0, 0, {2, 3, 5, 6}, AggregationFunction::kSum)};
  const auto breakdown = AnalyzeErrors(numeric, predicted, truth, DefaultConfig());
  EXPECT_EQ(breakdown.false_positives[static_cast<size_t>(
                FalsePositiveCause::kAlternativeDecomposition)],
            1);
}

TEST(ErrorAnalysis, CoincidenceFalsePositive) {
  const auto numeric = MakeNumeric({{"5", "2", "3"}});
  const std::vector<core::Aggregation> predicted = {
      Agg(0, 0, {1, 2}, AggregationFunction::kSum)};
  const auto breakdown = AnalyzeErrors(numeric, predicted, {}, DefaultConfig());
  EXPECT_EQ(breakdown.false_positives[static_cast<size_t>(
                FalsePositiveCause::kCoincidence)],
            1);
}

TEST(ErrorAnalysis, BreakdownAccumulates) {
  ErrorBreakdown a;
  a.false_negatives[0] = 2;
  a.false_positives[1] = 3;
  ErrorBreakdown b;
  b.false_negatives[0] = 1;
  b.false_positives[3] = 4;
  a.Add(b);
  EXPECT_EQ(a.false_negatives[0], 3);
  EXPECT_EQ(a.false_positives[1], 3);
  EXPECT_EQ(a.false_positives[3], 4);
  EXPECT_EQ(a.TotalFalseNegatives(), 3);
  EXPECT_EQ(a.TotalFalsePositives(), 7);
}

TEST(ErrorAnalysis, CauseNamesAreStable) {
  EXPECT_EQ(ToString(FalseNegativeCause::kErrorLevel), "error beyond tolerance");
  EXPECT_EQ(ToString(FalsePositiveCause::kZeroCells), "zero-valued cells");
}

}  // namespace
}  // namespace aggrecol::eval
