#include <algorithm>

#include "baselines/adjacent_only_detector.h"
#include "baselines/eager_baseline.h"
#include "baselines/keyword_baseline.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::baselines {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::Contains;
using aggrecol::testing::MakeGrid;
using aggrecol::testing::MakeNumeric;
using core::AggregationFunction;
using core::Axis;

TEST(EagerBaseline, FindsPlantedSum) {
  const auto grid = MakeNumeric({{"10", "1", "9", "17", "4"}});
  EagerBaselineConfig config;
  config.function = AggregationFunction::kSum;
  config.columns = false;
  const auto result = RunEagerBaseline(grid, config);
  EXPECT_TRUE(result.finished);
  EXPECT_TRUE(Contains(result.aggregations, Agg(0, 0, {1, 2}, AggregationFunction::kSum)));
}

TEST(EagerBaseline, FindsNonAdjacentCombinations) {
  // 14 = 1 + 9 + 4: elements scattered, skipping 17 — the eager search's one
  // genuine capability over the adjacency strategy.
  const auto grid = MakeNumeric({{"14", "1", "9", "17", "4"}});
  EagerBaselineConfig config;
  config.function = AggregationFunction::kSum;
  config.columns = false;
  const auto result = RunEagerBaseline(grid, config);
  EXPECT_TRUE(Contains(result.aggregations,
                       Agg(0, 0, {1, 2, 4}, AggregationFunction::kSum)));
}

TEST(EagerBaseline, ManyFalsePositivesOnBinaryData) {
  // A 0/1 roster row: the eager enumeration reports a flood of subsets
  // (Sec. 4.4's precision collapse).
  const auto grid = MakeNumeric({{"1", "0", "1", "0", "1", "0"}});
  EagerBaselineConfig config;
  config.function = AggregationFunction::kSum;
  config.columns = false;
  const auto result = RunEagerBaseline(grid, config);
  EXPECT_GT(result.aggregations.size(), 20u);
}

TEST(EagerBaseline, PairwiseDivision) {
  const auto grid = MakeNumeric({{"0.5", "7", "2", "4"}});
  EagerBaselineConfig config;
  config.function = AggregationFunction::kDivision;
  config.columns = false;
  const auto result = RunEagerBaseline(grid, config);
  EXPECT_TRUE(Contains(result.aggregations,
                       Agg(0, 0, {2, 3}, AggregationFunction::kDivision)));
}

TEST(EagerBaseline, BudgetExpiryFlagsUnfinished) {
  // 2 rows x 40 numeric columns: ~2^39 subsets per aggregate; a microscopic
  // budget must expire and return partial results.
  std::vector<std::vector<std::string>> rows(2, std::vector<std::string>(40));
  for (auto& row : rows) {
    for (auto& cell : row) cell = "7";
  }
  const auto grid =
      numfmt::NumericGrid::FromGrid(csv::Grid(rows), numfmt::NumberFormat::kCommaDot);
  EagerBaselineConfig config;
  config.function = AggregationFunction::kSum;
  config.budget_seconds = 0.02;
  const auto result = RunEagerBaseline(grid, config);
  EXPECT_FALSE(result.finished);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(EagerBaseline, ScansColumnsToo) {
  const auto grid = MakeNumeric({{"2"}, {"3"}, {"5"}});
  EagerBaselineConfig config;
  config.function = AggregationFunction::kSum;
  const auto result = RunEagerBaseline(grid, config);
  EXPECT_TRUE(Contains(result.aggregations,
                       Agg(0, 2, {0, 1}, AggregationFunction::kSum, Axis::kColumn)));
}

TEST(KeywordBaseline, SumDictionaryMatchesPaper) {
  const auto& keywords = KeywordsFor(AggregationFunction::kSum);
  for (const char* expected : {"total", "all", "sum", "subtotal", "overall"}) {
    EXPECT_NE(std::find(keywords.begin(), keywords.end(), expected), keywords.end())
        << expected;
  }
}

TEST(KeywordBaseline, FlagsColumnsUnderKeywordHeaders) {
  const auto grid = MakeGrid({
      {"Item", "Total", "France"},
      {"a", "10", "4"},
      {"b", "20", "8"},
  });
  const auto numeric = numfmt::NumericGrid::FromGrid(grid, numfmt::NumberFormat::kCommaDot);
  const auto prediction = RunKeywordBaseline(grid, numeric, AggregationFunction::kSum);
  EXPECT_NE(std::find(prediction.aggregate_cells.begin(), prediction.aggregate_cells.end(),
                      std::make_pair(1, 1)),
            prediction.aggregate_cells.end());
  EXPECT_EQ(std::find(prediction.aggregate_cells.begin(), prediction.aggregate_cells.end(),
                      std::make_pair(1, 2)),
            prediction.aggregate_cells.end());
}

TEST(KeywordBaseline, FlagsRowsWithKeywordLabels) {
  const auto grid = MakeGrid({
      {"Item", "A", "B"},
      {"x", "1", "4"},
      {"Total", "6", "15"},
  });
  const auto numeric = numfmt::NumericGrid::FromGrid(grid, numfmt::NumberFormat::kCommaDot);
  const auto prediction = RunKeywordBaseline(grid, numeric, AggregationFunction::kSum);
  EXPECT_NE(std::find(prediction.aggregate_cells.begin(), prediction.aggregate_cells.end(),
                      std::make_pair(2, 1)),
            prediction.aggregate_cells.end());
  EXPECT_EQ(std::find(prediction.aggregate_cells.begin(), prediction.aggregate_cells.end(),
                      std::make_pair(1, 1)),
            prediction.aggregate_cells.end());
}

TEST(KeywordBaseline, KeywordsAreUnreliable) {
  // A keyword header over a plain data column: every cell below becomes a
  // false positive (the Sec. 4.4 precision problem).
  const auto grid = MakeGrid({
      {"All items", "B"},
      {"1", "2"},
      {"3", "4"},
  });
  const auto numeric = numfmt::NumericGrid::FromGrid(grid, numfmt::NumberFormat::kCommaDot);
  const auto prediction = RunKeywordBaseline(grid, numeric, AggregationFunction::kSum);
  EXPECT_EQ(prediction.aggregate_cells.size(), 2u);
}

TEST(AdjacentOnly, FindsAdjacentSumAndAverage) {
  const auto grid = MakeNumeric({
      {"6", "1", "2", "3"},
      {"9", "2", "3", "4"},
  });
  const auto found = DetectAdjacentOnly(grid, 0.0);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 2, 3}, AggregationFunction::kSum)));
  EXPECT_TRUE(Contains(found, Agg(1, 0, {1, 2, 3}, AggregationFunction::kSum)));
}

TEST(AdjacentOnly, MissesCumulativeAggregations) {
  // Grand = G1 + G2 is invisible without the cumulative iteration.
  const auto grid = MakeNumeric({
      {"10", "3", "1", "2", "7", "3", "4"},
  });
  const auto found = DetectAdjacentOnly(grid, 0.0);
  EXPECT_FALSE(Contains(found, Agg(0, 0, {1, 4}, AggregationFunction::kSum)));
}

TEST(AdjacentOnly, MissesInterruptAggregations) {
  const auto grid = MakeNumeric({
      {"6", "2", "1", "2", "3"},  // total | avg | m1 m2 m3
  });
  const auto found = DetectAdjacentOnly(grid, 0.0);
  EXPECT_FALSE(Contains(found, Agg(0, 0, {2, 3, 4}, AggregationFunction::kSum)));
}

}  // namespace
}  // namespace aggrecol::baselines
