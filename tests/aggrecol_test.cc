#include "core/aggrecol.h"

#include "csv/writer.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::Contains;
using aggrecol::testing::ContainsCanonical;
using aggrecol::testing::Figure5Grid;
using aggrecol::testing::MakeGrid;

AggreColConfig StrictRowConfig() {
  AggreColConfig config;
  config.error_levels.fill(1e-6);
  config.detect_columns = false;
  return config;
}

TEST(AggreCol, Figure5EndToEnd) {
  const auto result = AggreCol(StrictRowConfig()).Detect(Figure5Grid());
  // a1, a2, a3, a4 as in the paper (row 1 shown; a1 also checked on its
  // non-compliant row).
  EXPECT_TRUE(Contains(result.aggregations,
                       Agg(1, 1, {2, 3, 4, 5, 6, 7}, AggregationFunction::kSum)));
  EXPECT_TRUE(
      Contains(result.aggregations, Agg(1, 8, {9, 10}, AggregationFunction::kSum)));
  EXPECT_TRUE(
      Contains(result.aggregations, Agg(1, 12, {1, 8, 11}, AggregationFunction::kSum)));
  EXPECT_TRUE(
      Contains(result.aggregations, Agg(1, 13, {9, 8}, AggregationFunction::kDivision)));
  EXPECT_FALSE(Contains(result.aggregations,
                        Agg(6, 1, {2, 3, 4, 5, 6, 7}, AggregationFunction::kSum)));
}

TEST(AggreCol, StagesAreMonotonicSnapshots) {
  const auto result = AggreCol(StrictRowConfig()).Detect(Figure5Grid());
  // Stage C only removes candidates; stage S only adds.
  for (const auto& aggregation : result.collective_stage) {
    EXPECT_TRUE(Contains(result.individual_stage, aggregation));
    EXPECT_TRUE(Contains(result.aggregations, aggregation));
  }
  EXPECT_GE(result.individual_stage.size(), result.collective_stage.size());
  EXPECT_GE(result.aggregations.size(), result.collective_stage.size());
}

TEST(AggreCol, ColumnWiseDetection) {
  // A total row: column-wise sums over the data rows.
  const auto grid = MakeGrid({
      {"Item", "A", "B"},
      {"x", "1", "4"},
      {"y", "2", "5"},
      {"z", "3", "6"},
      {"Total", "6", "15"},
  });
  AggreColConfig config;
  config.error_levels.fill(0.0);
  config.detect_rows = false;
  const auto result = AggreCol(config).Detect(grid);
  EXPECT_TRUE(Contains(result.aggregations,
                       Agg(1, 4, {1, 2, 3}, AggregationFunction::kSum, Axis::kColumn)));
  EXPECT_TRUE(Contains(result.aggregations,
                       Agg(2, 4, {1, 2, 3}, AggregationFunction::kSum, Axis::kColumn)));
}

TEST(AggreCol, RowsAndColumnsTogether) {
  const auto grid = MakeGrid({
      {"Item", "A", "B", "Sum"},
      {"x", "1", "4", "5"},
      {"y", "2", "5", "7"},
      {"z", "3", "6", "9"},
      {"Total", "6", "15", "21"},
  });
  AggreColConfig config;
  config.error_levels.fill(0.0);
  const auto result = AggreCol(config).Detect(grid);
  // Row-wise sums in every data row and the total row.
  for (int row = 1; row <= 4; ++row) {
    EXPECT_TRUE(ContainsCanonical(result.aggregations,
                                  Agg(row, 3, {1, 2}, AggregationFunction::kSum)))
        << "row " << row;
  }
  // Column-wise sums for all three numeric columns.
  for (int col = 1; col <= 3; ++col) {
    EXPECT_TRUE(Contains(result.aggregations,
                         Agg(col, 4, {1, 2, 3}, AggregationFunction::kSum, Axis::kColumn)))
        << "col " << col;
  }
}

TEST(AggreCol, DetectTextSniffsDialect) {
  const std::string csv =
      "Item;A;B;Sum\n"
      "x;1;4;5\n"
      "y;2;5;7\n"
      "z;3;6;9\n";
  AggreColConfig config;
  config.error_levels.fill(0.0);
  config.detect_columns = false;
  const auto result = AggreCol(config).DetectText(csv);
  EXPECT_TRUE(ContainsCanonical(result.aggregations,
                                Agg(1, 3, {1, 2}, AggregationFunction::kSum)));
}

TEST(AggreCol, NumberFormatNormalizationBeforeDetection) {
  // Space-grouped, comma-decimal numbers: 1 912,5 = 1 900,0 + 12,5.
  const auto grid = MakeGrid({
      {"Total", "A", "B"},
      {"1 912,5", "1 900,0", "12,5"},
      {"3 500,5", "3 000,0", "500,5"},
      {"2 001,0", "2 000,5", "0,5"},
  });
  AggreColConfig config;
  config.error_levels.fill(0.0);
  config.detect_columns = false;
  const auto result = AggreCol(config).Detect(grid);
  EXPECT_EQ(result.format, numfmt::NumberFormat::kSpaceComma);
  for (int row = 1; row <= 3; ++row) {
    EXPECT_TRUE(
        Contains(result.aggregations, Agg(row, 0, {1, 2}, AggregationFunction::kSum)))
        << "row " << row;
  }
}

TEST(AggreCol, FunctionSubsetRestrictsDetection) {
  AggreColConfig config;
  config.error_levels.fill(1e-6);
  config.detect_columns = false;
  config.functions = {AggregationFunction::kSum};
  const auto result = AggreCol(config).Detect(Figure5Grid());
  for (const auto& aggregation : result.aggregations) {
    EXPECT_EQ(aggregation.function, AggregationFunction::kSum);
  }
}

TEST(AggreCol, NoAggregationsInPlainText) {
  const auto grid = MakeGrid({
      {"Notes", ""},
      {"This file has no numbers at all", ""},
  });
  const auto result = AggreCol().Detect(grid);
  EXPECT_TRUE(result.aggregations.empty());
}

TEST(AggreCol, TimingsArePopulated) {
  const auto result = AggreCol(StrictRowConfig()).Detect(Figure5Grid());
  EXPECT_GE(result.seconds_individual, 0.0);
  EXPECT_GE(result.seconds_collective, 0.0);
  EXPECT_GE(result.seconds_supplemental, 0.0);
}

// End-to-end detection must work identically under every number format the
// generator can emit (Sec. 4.2: normalization precedes detection).
class FormatSweep : public ::testing::TestWithParam<numfmt::NumberFormat> {};

TEST_P(FormatSweep, DetectionIsFormatInvariant) {
  const numfmt::NumberFormat format = GetParam();
  auto render = [format](double value, int decimals) {
    return numfmt::FormatNumber(value, format, decimals);
  };
  const auto grid = MakeGrid({
      {"Item", "A", "B", "Sum"},
      {"x", render(1234.5, 1), render(4321.5, 1), render(5556.0, 1)},
      {"y", render(2000.25, 2), render(3000.75, 2), render(5001.0, 2)},
      {"z", render(10.0, 0), render(20.0, 0), render(30.0, 0)},
  });
  AggreColConfig config;
  config.error_levels.fill(0.0);
  config.detect_columns = false;
  const auto result = AggreCol(config).Detect(grid);
  for (int row = 1; row <= 3; ++row) {
    EXPECT_TRUE(ContainsCanonical(result.aggregations,
                                  Agg(row, 3, {1, 2}, AggregationFunction::kSum)))
        << ToString(format) << " row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, FormatSweep,
                         ::testing::ValuesIn(numfmt::kAllNumberFormats));

TEST(AggreCol, ErrorLevelAccessor) {
  AggreColConfig config;
  config.error_level(AggregationFunction::kDivision) = 0.05;
  EXPECT_DOUBLE_EQ(config.error_level(AggregationFunction::kDivision), 0.05);
  EXPECT_DOUBLE_EQ(config.error_levels[IndexOf(AggregationFunction::kDivision)], 0.05);
}

}  // namespace
}  // namespace aggrecol::core
