#include "core/formula_export.h"

#include "core/aggrecol.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::MakeGrid;

TEST(CellNames, A1Notation) {
  EXPECT_EQ(CellName(0, 0), "A1");
  EXPECT_EQ(CellName(2, 3), "D3");
  EXPECT_EQ(CellName(0, 25), "Z1");
  EXPECT_EQ(CellName(0, 26), "AA1");
  EXPECT_EQ(CellName(9, 27), "AB10");
  EXPECT_EQ(CellName(0, 701), "ZZ1");
  EXPECT_EQ(CellName(0, 702), "AAA1");
}

TEST(Formulas, ContiguousSumBecomesRange) {
  const auto cell = FormulaFor(Agg(1, 1, {2, 3, 4}, AggregationFunction::kSum));
  EXPECT_EQ(cell.row, 1);
  EXPECT_EQ(cell.column, 1);
  EXPECT_EQ(cell.formula, "=SUM(C2:E2)");
}

TEST(Formulas, ScatteredSumListsArguments) {
  const auto cell = FormulaFor(Agg(0, 0, {1, 3, 5}, AggregationFunction::kSum));
  EXPECT_EQ(cell.formula, "=SUM(B1;D1;F1)");
}

TEST(Formulas, ColumnWiseSum) {
  // Column-wise: line = column index, aggregate/range = row indices.
  const auto cell =
      Agg(1, 4, {1, 2, 3}, AggregationFunction::kSum, Axis::kColumn);
  const auto formula = FormulaFor(cell);
  EXPECT_EQ(formula.row, 4);
  EXPECT_EQ(formula.column, 1);
  EXPECT_EQ(formula.formula, "=SUM(B2:B4)");
}

TEST(Formulas, AverageDifferenceDivisionRelChange) {
  EXPECT_EQ(FormulaFor(Agg(0, 0, {1, 2}, AggregationFunction::kAverage)).formula,
            "=AVERAGE(B1:C1)");
  EXPECT_EQ(FormulaFor(Agg(0, 0, {1, 2}, AggregationFunction::kDifference)).formula,
            "=B1-C1");
  EXPECT_EQ(FormulaFor(Agg(0, 5, {1, 3}, AggregationFunction::kDivision)).formula,
            "=B1/D1");
  EXPECT_EQ(
      FormulaFor(Agg(2, 4, {1, 2}, AggregationFunction::kRelativeChange)).formula,
      "=(C3-B3)/B3");
}

TEST(Formulas, CompositeSumThenDivide) {
  CompositeAggregation composite;
  composite.line = 1;
  composite.aggregate = 5;
  composite.numerator = {1, 2, 3};
  composite.denominator = 0;
  EXPECT_EQ(FormulaFor(composite).formula, "=SUM(B2:D2)/A2");
}

TEST(Formulas, ExportSortsByPosition) {
  const std::vector<Aggregation> aggregations = {
      Agg(2, 3, {1, 2}, AggregationFunction::kSum),
      Agg(0, 3, {1, 2}, AggregationFunction::kSum),
      Agg(0, 1, {2, 3}, AggregationFunction::kAverage),
  };
  const auto formulas = ExportFormulas(aggregations);
  ASSERT_EQ(formulas.size(), 3u);
  EXPECT_EQ(formulas[0].row, 0);
  EXPECT_EQ(formulas[0].column, 1);
  EXPECT_EQ(formulas[2].row, 2);
}

TEST(Formulas, EndToEndFromDetection) {
  const auto grid = MakeGrid({
      {"Item", "A", "B", "Sum"},
      {"x", "1", "4", "5"},
      {"y", "2", "5", "7"},
      {"z", "3", "6", "9"},
      {"Total", "6", "15", "21"},
  });
  AggreColConfig config;
  config.error_levels.fill(0.0);
  const auto result = AggreCol(config).Detect(grid);
  const auto formulas = ExportFormulas(CanonicalizeAll(result.aggregations));
  // Every formula lands on a cell of the grid, and the total-row sums exist.
  bool found_column_sum = false;
  for (const auto& formula : formulas) {
    EXPECT_GE(formula.row, 0);
    EXPECT_LT(formula.row, grid.rows());
    EXPECT_GE(formula.column, 0);
    EXPECT_LT(formula.column, grid.columns());
    if (formula.formula == "=SUM(B2:B4)") found_column_sum = true;
  }
  EXPECT_TRUE(found_column_sum);
}

}  // namespace
}  // namespace aggrecol::core
