#include "core/function.h"

#include <vector>

#include "core/aggregation.h"
#include "gtest/gtest.h"

namespace aggrecol::core {
namespace {

TEST(Traits, MatchTable1) {
  // Sum: >= 1 element formally, cumulative, commutative.
  EXPECT_FALSE(TraitsOf(AggregationFunction::kSum).pairwise);
  EXPECT_TRUE(TraitsOf(AggregationFunction::kSum).commutative);
  EXPECT_TRUE(TraitsOf(AggregationFunction::kSum).cumulative);
  // Difference: exactly 2, cumulative, not commutative.
  EXPECT_TRUE(TraitsOf(AggregationFunction::kDifference).pairwise);
  EXPECT_FALSE(TraitsOf(AggregationFunction::kDifference).commutative);
  EXPECT_TRUE(TraitsOf(AggregationFunction::kDifference).cumulative);
  // Average: not cumulative.
  EXPECT_FALSE(TraitsOf(AggregationFunction::kAverage).pairwise);
  EXPECT_TRUE(TraitsOf(AggregationFunction::kAverage).commutative);
  EXPECT_FALSE(TraitsOf(AggregationFunction::kAverage).cumulative);
  // Division / relative change: pairwise, non-cumulative.
  EXPECT_TRUE(TraitsOf(AggregationFunction::kDivision).pairwise);
  EXPECT_FALSE(TraitsOf(AggregationFunction::kDivision).cumulative);
  EXPECT_TRUE(TraitsOf(AggregationFunction::kRelativeChange).pairwise);
  EXPECT_FALSE(TraitsOf(AggregationFunction::kRelativeChange).cumulative);
}

TEST(Traits, IndexOfIsDense) {
  for (size_t i = 0; i < kAllFunctions.size(); ++i) {
    EXPECT_EQ(IndexOf(kAllFunctions[i]), i);
  }
}

TEST(Names, AreStable) {
  EXPECT_EQ(ToString(AggregationFunction::kSum), "sum");
  EXPECT_EQ(ToString(AggregationFunction::kDifference), "difference");
  EXPECT_EQ(ToString(AggregationFunction::kAverage), "average");
  EXPECT_EQ(ToString(AggregationFunction::kDivision), "division");
  EXPECT_EQ(ToString(AggregationFunction::kRelativeChange), "relative change");
}

TEST(ApplyCommutative, SumAndAverage) {
  EXPECT_DOUBLE_EQ(ApplyCommutative(AggregationFunction::kSum, {1, 2, 3}), 6.0);
  EXPECT_DOUBLE_EQ(ApplyCommutative(AggregationFunction::kAverage, {1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(ApplyCommutative(AggregationFunction::kSum, {-5, 5}), 0.0);
}

TEST(ApplyPairwise, FormulasPerTable1) {
  EXPECT_DOUBLE_EQ(*ApplyPairwise(AggregationFunction::kDifference, 10, 4), 6.0);
  EXPECT_DOUBLE_EQ(*ApplyPairwise(AggregationFunction::kDivision, 10, 4), 2.5);
  // Relative change from B to C, normalized by B.
  EXPECT_DOUBLE_EQ(*ApplyPairwise(AggregationFunction::kRelativeChange, 100, 125),
                   0.25);
  EXPECT_DOUBLE_EQ(*ApplyPairwise(AggregationFunction::kRelativeChange, 100, 75),
                   -0.25);
}

TEST(ApplyPairwise, UndefinedCases) {
  EXPECT_FALSE(ApplyPairwise(AggregationFunction::kDivision, 1, 0).has_value());
  EXPECT_FALSE(ApplyPairwise(AggregationFunction::kRelativeChange, 0, 5).has_value());
  // Sum is not a pairwise function.
  EXPECT_FALSE(ApplyPairwise(AggregationFunction::kSum, 1, 2).has_value());
}

TEST(Apply, DispatchesOnTraits) {
  EXPECT_DOUBLE_EQ(*Apply(AggregationFunction::kSum, {1, 2, 3, 4}), 10.0);
  EXPECT_DOUBLE_EQ(*Apply(AggregationFunction::kAverage, {2, 4}), 3.0);
  EXPECT_DOUBLE_EQ(*Apply(AggregationFunction::kDifference, {9, 5}), 4.0);
  EXPECT_DOUBLE_EQ(*Apply(AggregationFunction::kDivision, {9, 3}), 3.0);
  EXPECT_FALSE(Apply(AggregationFunction::kDifference, {1, 2, 3}).has_value());
  EXPECT_FALSE(Apply(AggregationFunction::kSum, {}).has_value());
}

TEST(ApplyCommutative, CompensatedSummationSurvivesCancellation) {
  // A 1000-element range whose detection outcome flips under naive
  // summation: 2^53 + 1 - 2^53 loses the +1 entirely in plain left-to-right
  // order (1 is half an ulp at 2^53 magnitude, ties-to-even drops it), so a
  // naive sum yields 997 against the true 998 — an error level of ~1e-3,
  // far outside kErrorSlack. The Kahan accumulator's compensation term
  // carries the lost 1 and recovers the sum exactly.
  std::vector<double> values = {9007199254740992.0, 1.0, -9007199254740992.0};
  for (int i = 0; i < 997; ++i) values.push_back(1.0);
  ASSERT_EQ(values.size(), 1000u);

  double plain = 0.0;
  for (double v : values) plain += v;
  EXPECT_FALSE(WithinErrorLevel(ErrorLevel(998.0, plain), 0.0));

  const double compensated = ApplyCommutative(AggregationFunction::kSum, values);
  EXPECT_EQ(compensated, 998.0);
  EXPECT_TRUE(WithinErrorLevel(ErrorLevel(998.0, compensated), 0.0));
  EXPECT_EQ(ApplyCommutative(AggregationFunction::kAverage, values), 0.998);
}

TEST(MinRange, TwoElementsForAllFunctions) {
  // Sec. 3.1: single-element sums/averages would flood the result with false
  // positives, so AggreCol requires two elements everywhere.
  for (AggregationFunction function : kAllFunctions) {
    EXPECT_EQ(MinRangeSize(function), 2);
  }
}

}  // namespace
}  // namespace aggrecol::core
