// Ingest-pipeline tests: MappedFile sourcing, arena lifetime, and the
// differential contract of docs/INGEST.md — the zero-copy ParseGrid must be
// bit-identical to the retained reference (Grid(ParseRows(...))) for every
// input and dialect, all the way through detection output.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/aggrecol.h"
#include "csv/mapped_file.h"
#include "csv/parser.h"
#include "csv/sniffer.h"
#include "csv/writer.h"
#include "datagen/corpus.h"
#include "datagen/messy_generator.h"
#include "gtest/gtest.h"

#ifndef AGGRECOL_SOURCE_DIR
#error "AGGRECOL_SOURCE_DIR must point at the repository root"
#endif

namespace aggrecol::csv {
namespace {

/// Writes `content` to a throwaway file in the test's working directory and
/// removes it on scope exit.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& content,
                       const std::string& name = "ingest_scratch.csv")
      : path_(std::filesystem::current_path() / name) {
    std::ofstream out(path_, std::ios::binary);
    out << content;
  }
  ~ScratchFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

std::vector<std::string> LoadFuzzSeeds() {
  const std::filesystem::path dir =
      std::filesystem::path(AGGRECOL_SOURCE_DIR) / "tests" / "fuzz_seeds";
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".csv") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::string> corpus;
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    corpus.push_back(buffer.str());
  }
  return corpus;
}

std::vector<Dialect> AllDialects() {
  return {
      Dialect{',', '"'},       Dialect{';', '"'},       Dialect{'\t', '"'},
      Dialect{'|', '\''},      Dialect{',', '"', '\\'}, Dialect{';', '\'', '\\'},
  };
}

// ---------------------------------------------------------------------------
// MappedFile sourcing and fallback.

TEST(MappedFile, RegularFileIsMappedAndMatchesContents) {
  const std::string content = "a,b,c\n1,2,3\n";
  ScratchFile file(content);
  auto mapped = MappedFile::Open(file.path());
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->source(), MappedFile::Source::kMmap);
  EXPECT_EQ(mapped->view(), content);
  EXPECT_EQ(mapped->size(), content.size());
}

TEST(MappedFile, EmptyFileFallsBackToRead) {
  ScratchFile file("", "ingest_empty.csv");
  auto mapped = MappedFile::Open(file.path());
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->source(), MappedFile::Source::kRead);
  EXPECT_EQ(mapped->view(), "");
  EXPECT_EQ(mapped->size(), 0u);
}

TEST(MappedFile, MissingFileIsNullopt) {
  EXPECT_FALSE(
      MappedFile::Open("ingest_definitely_does_not_exist.csv").has_value());
}

#ifndef _WIN32
TEST(MappedFile, NonRegularFileFallsBackToRead) {
  // /dev/null is a character device: S_ISREG fails, so the read() path runs.
  auto mapped = MappedFile::Open("/dev/null");
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->source(), MappedFile::Source::kRead);
  EXPECT_EQ(mapped->size(), 0u);
}
#endif

TEST(MappedFile, FromBufferWrapsOwnedBytes) {
  const MappedFile file = MappedFile::FromBuffer("x,y\n1,2\n");
  EXPECT_EQ(file.source(), MappedFile::Source::kRead);
  EXPECT_EQ(file.view(), "x,y\n1,2\n");
}

TEST(MappedFile, MoveTransfersMapping) {
  const std::string content = "m,n\n3,4\n";
  ScratchFile file(content, "ingest_move.csv");
  auto mapped = MappedFile::Open(file.path());
  ASSERT_TRUE(mapped.has_value());
  MappedFile moved = std::move(*mapped);
  EXPECT_EQ(moved.view(), content);
  MappedFile assigned = MappedFile::FromBuffer("tmp");
  assigned = std::move(moved);
  EXPECT_EQ(assigned.view(), content);
}

// ---------------------------------------------------------------------------
// Arena lifetime: grids must own (or keep alive) every byte their cells view.

TEST(IngestLifetime, GridOutlivesTheSourceString) {
  Grid grid = [] {
    std::string source = "alpha,beta\n\"ga,mma\",delta\n";
    const Grid parsed = ParseGrid(source, Dialect{',', '"'});
    // Clobber the source before it even goes out of scope.
    std::fill(source.begin(), source.end(), '#');
    return parsed;
  }();
  EXPECT_EQ(grid.at(0, 0), "alpha");
  EXPECT_EQ(grid.at(1, 0), "ga,mma");
  EXPECT_EQ(grid.at(1, 1), "delta");
}

TEST(IngestLifetime, GridOutlivesTheMappedFileAndItsPath) {
  const std::string content = "h1,h2\n\"quoted \"\"cell\"\"\",plain\nlast,row\n";
  Grid grid = [&] {
    ScratchFile file(content, "ingest_lifetime.csv");
    auto mapped = MappedFile::Open(file.path());
    EXPECT_EQ(mapped->source(), MappedFile::Source::kMmap);
    return ParseGrid(std::move(*mapped), Dialect{',', '"'});
    // ScratchFile unlinks the path here; the arena holds the mapping alive.
  }();
  EXPECT_EQ(grid.rows(), 3);
  EXPECT_EQ(grid.at(1, 0), "quoted \"cell\"");
  EXPECT_EQ(grid.at(2, 1), "row");
}

TEST(IngestLifetime, DerivedGridsShareTheArena) {
  const std::string content = "a,b,c\n1,2,3\n4,5,6\n";
  Grid grid = ParseGrid(content, Dialect{',', '"'});
  const Grid transposed = grid.Transposed();
  const Grid sub = grid.SubRows(1, 2);
  grid = Grid();  // drop the original; shared arena must keep bytes alive
  EXPECT_EQ(transposed.at(2, 0), "c");
  EXPECT_EQ(sub.at(1, 2), "6");
}

// ---------------------------------------------------------------------------
// Differential contract: zero-copy == reference, bit for bit.

void ExpectDifferentialMatch(const std::string& text, const Dialect& dialect,
                             const std::string& label) {
  const Grid reference = ParseGridReference(text, dialect);
  const Grid zero_copy = ParseGrid(text, dialect);
  ASSERT_EQ(zero_copy.rows(), reference.rows()) << label;
  ASSERT_EQ(zero_copy.columns(), reference.columns()) << label;
  ASSERT_EQ(zero_copy, reference) << label;
  // The MappedFile overload must agree as well.
  const Grid from_buffer =
      ParseGrid(MappedFile::FromBuffer(text), dialect);
  ASSERT_EQ(from_buffer, reference) << label << " (FromBuffer)";
}

TEST(IngestDifferential, FuzzSeedCorpusUnderEveryDialect) {
  const auto seeds = LoadFuzzSeeds();
  ASSERT_GE(seeds.size(), 8u);
  for (size_t s = 0; s < seeds.size(); ++s) {
    for (const Dialect& dialect : AllDialects()) {
      ExpectDifferentialMatch(seeds[s], dialect,
                              "seed " + std::to_string(s) + " delim '" +
                                  std::string(1, dialect.delimiter) + "'");
    }
  }
}

TEST(IngestDifferential, HandPickedEdgeCases) {
  const Dialect rfc{',', '"'};
  const std::vector<std::string> cases = {
      "",
      "\n",
      "\r",
      "\r\n",
      ",",
      "\"",
      "a",
      "\xEF\xBB\xBF",               // BOM only
      "\xEF\xBB\xBF" "a,b\r\n1,2\r",  // BOM + CRLF + trailing lone CR
      "\"unterminated",
      "\"a\"\"b\",c",               // doubled quote
      "\"multi\nline\",x",          // newline inside quotes
      "a,\"b\"c,d",                 // stray content after closing quote
      "a,b\rc,d\r\ne,f\ng,h",      // mixed terminators in one file
      std::string(100, ','),        // 101 empty fields
      "trailing,newline\n",
      "\"\",\"\"\n",
  };
  for (const auto& text : cases) {
    ExpectDifferentialMatch(text, rfc, "case [" + text + "]");
    ExpectDifferentialMatch(text, Dialect{',', '"', '\\'},
                            "escape case [" + text + "]");
  }
}

TEST(IngestDifferential, EscapeDialectCollisionsAndEscapedStructurals) {
  // Escape char collides with quote/delimiter, escapes at EOF, escaped
  // structural characters — the paths where the scanner must defer to the
  // state machine.
  const std::vector<std::pair<std::string, Dialect>> cases = {
      {"a\\,b,c", Dialect{',', '"', '\\'}},
      {"a\\\nb,c", Dialect{',', '"', '\\'}},
      {"trailing\\", Dialect{',', '"', '\\'}},
      {"\"in\\\"quote\"", Dialect{',', '"', '\\'}},
      {"a,b", Dialect{',', ',', ','}},    // degenerate: all three collide
      {"x\\y", Dialect{',', '"', '"'}},   // escape == quote
  };
  for (const auto& [text, dialect] : cases) {
    ExpectDifferentialMatch(text, dialect, "escape case [" + text + "]");
  }
}

const std::vector<eval::AnnotatedFile>& CleanCorpus() {
  static const auto* const kFiles = new std::vector<eval::AnnotatedFile>(
      datagen::GenerateCorpus(datagen::ValidationCorpus()));
  return *kFiles;
}

TEST(IngestDifferential, CleanCorpusRoundTripsUnderEveryDialect) {
  const auto& files = CleanCorpus();
  ASSERT_FALSE(files.empty());
  // Serializing every validation grid and differential-parsing the bytes
  // covers realistic wide/numeric content at scale: the full corpus under
  // the RFC dialect, a prefix under the whole dialect battery.
  for (size_t f = 0; f < files.size(); ++f) {
    const std::string text = WriteGrid(files[f].grid, Dialect{',', '"'});
    ExpectDifferentialMatch(text, Dialect{',', '"'}, files[f].name);
  }
  const size_t swept = std::min<size_t>(files.size(), 40);
  for (size_t f = 0; f < swept; ++f) {
    for (const Dialect& dialect : AllDialects()) {
      const std::string text = WriteGrid(files[f].grid, dialect);
      ExpectDifferentialMatch(text, dialect, files[f].name);
    }
  }
}

TEST(IngestDifferential, MessyCorpusRawBytes) {
  // The adversarial corpus ships raw on-disk bytes (BOM, CRLF, lone CR,
  // embedded quotes); differential-parse them under the ground-truth dialect
  // and the full dialect battery.
  datagen::MessyCorpusSpec spec;
  spec.files_per_category = 4;
  const auto files = datagen::GenerateMessyCorpus(spec);
  ASSERT_FALSE(files.empty());
  for (const auto& file : files) {
    ExpectDifferentialMatch(file.text, file.dialect, file.annotated.name);
    for (const Dialect& dialect : AllDialects()) {
      ExpectDifferentialMatch(file.text, dialect, file.annotated.name);
    }
  }
}

TEST(IngestDifferential, DialectElectionIsIdenticalOnMappedBytes) {
  // Sniffing the mapped view must elect exactly what sniffing an owned
  // string elects — same dialect, same modal width.
  datagen::MessyCorpusSpec spec;
  spec.files_per_category = 2;
  for (const auto& file : datagen::GenerateMessyCorpus(spec)) {
    ScratchFile scratch(file.text, "ingest_sniff.csv");
    auto mapped = MappedFile::Open(scratch.path());
    ASSERT_TRUE(mapped.has_value());
    const SniffResult from_map = SniffDialect(mapped->view());
    const SniffResult from_string = SniffDialect(file.text);
    EXPECT_EQ(from_map.dialect, from_string.dialect) << file.annotated.name;
    EXPECT_EQ(from_map.modal_row_width, from_string.modal_row_width)
        << file.annotated.name;
  }
}

TEST(IngestDifferential, DetectionOutputIsPinnedAcrossParsePaths) {
  // End-to-end: aggregation detection over the zero-copy grid must equal
  // detection over the reference grid, file by file.
  const core::AggreCol detector;
  const auto& files = CleanCorpus();
  const size_t count = std::min<size_t>(files.size(), 8);
  for (size_t f = 0; f < count; ++f) {
    const std::string text = WriteGrid(files[f].grid, Dialect{',', '"'});
    const Grid reference = ParseGridReference(text, Dialect{',', '"'});
    const Grid zero_copy = ParseGrid(text, Dialect{',', '"'});
    const auto ref_result = detector.Detect(reference);
    const auto zc_result = detector.Detect(zero_copy);
    EXPECT_EQ(zc_result.aggregations, ref_result.aggregations)
        << files[f].name;
  }
}

// ---------------------------------------------------------------------------
// ParseHints: a width hint is a pure pre-size, never a semantic input.

TEST(ParseHints, HintNeverChangesTheGrid) {
  const auto seeds = LoadFuzzSeeds();
  ASSERT_FALSE(seeds.empty());
  for (const auto& text : seeds) {
    const SniffResult sniffed = SniffDialect(text);
    const Grid plain = ParseGrid(text, sniffed.dialect);
    for (int hint : {0, 1, sniffed.modal_row_width, 10'000}) {
      const Grid hinted =
          ParseGrid(text, sniffed.dialect, ParseHints{hint});
      ASSERT_EQ(hinted, plain) << "hint " << hint;
    }
  }
}

TEST(ParseHints, SnifferMeasuresTheModalWidthOfCleanFiles) {
  const SniffResult sniffed = SniffDialect("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(sniffed.modal_row_width, 3);
  const SniffResult ragged = SniffDialect("a,b\n1,2\nx\n3,4\n");
  EXPECT_EQ(ragged.modal_row_width, 2);
}

}  // namespace
}  // namespace aggrecol::csv
